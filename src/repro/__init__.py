"""NuevoMatch reproduction: RQ-RMI learned packet classification.

This package reproduces "A Computational Approach to Packet Classification"
(Rashelbach, Rottenstreich, Silberstein — SIGCOMM 2020).  It provides:

* :mod:`repro.core` — the RQ-RMI learned range index, iSet partitioning and
  the end-to-end NuevoMatch classifier (the paper's contribution).
* :mod:`repro.rules` — rule model, ClassBench-like and Stanford-backbone-like
  rule-set generators, and the ClassBench text format parser.
* :mod:`repro.classifiers` — baseline classifiers used both as comparison
  points and as remainder-set indexes: linear search, Tuple Space Search,
  TupleMerge, HiCuts, CutSplit, and a NeuroCuts-style optimised tree.
* :mod:`repro.traffic` — packet traces: uniform, Zipf-skewed and CAIDA-like.
* :mod:`repro.simulation` — cache-hierarchy and memory-access cost model used
  to reproduce the paper's throughput/latency-shaped experiments.
* :mod:`repro.analysis` — memory-footprint accounting, coverage analysis and
  reporting helpers used by the benchmark harness.

Quickstart::

    from repro import generate_classbench, NuevoMatch
    from repro.classifiers import TupleMergeClassifier

    rules = generate_classbench("acl1", 1000, seed=1)
    nm = NuevoMatch.build(rules, remainder_classifier=TupleMergeClassifier)
    packet = rules[0].sample_packet()
    match = nm.classify(packet)
"""

from repro.rules import (
    FieldSchema,
    Packet,
    Rule,
    RuleSet,
    generate_classbench,
    generate_stanford_backbone,
)
from repro.core import (
    NuevoMatch,
    NuevoMatchConfig,
    RQRMI,
    RQRMIConfig,
    partition_isets,
)

__version__ = "1.0.0"

__all__ = [
    "FieldSchema",
    "Packet",
    "Rule",
    "RuleSet",
    "generate_classbench",
    "generate_stanford_backbone",
    "NuevoMatch",
    "NuevoMatchConfig",
    "RQRMI",
    "RQRMIConfig",
    "partition_isets",
    "__version__",
]
