"""NuevoMatch reproduction: RQ-RMI learned packet classification.

This package reproduces "A Computational Approach to Packet Classification"
(Rashelbach, Rottenstreich, Silberstein — SIGCOMM 2020).  The canonical
serving API is the :class:`ClassificationEngine` facade: batch-first lookups
over any registered classifier, with save/load persistence so RQ-RMI training
cost is paid once per rule-set::

    from repro import ClassificationEngine, generate_classbench

    rules = generate_classbench("acl1", 1000, seed=1)
    engine = ClassificationEngine.build(rules, classifier="nm",
                                        remainder_classifier="tm")
    packets = rules.sample_packets(256, seed=2)
    results = engine.classify_batch(packets)      # vectorized RQ-RMI inference
    engine.save("acl1.engine.json.gz")
    restored = ClassificationEngine.load("acl1.engine.json.gz")

Classifiers are registered by name (``repro.classifiers.register``); resolve
and build them with :func:`build_classifier` and list them with
:func:`available_classifiers`.

Subsystems:

* :mod:`repro.engine` — the :class:`ClassificationEngine` serving facade:
  build → serve → update → persist.
* :mod:`repro.serving` — multi-core sharded serving: :class:`ShardedEngine`
  partitions the rules across per-shard engines (iSet-aware), fans batches
  out over a worker pool, and absorbs online updates with background
  retraining, the way the paper's evaluation scales across cores.
* :mod:`repro.core` — the RQ-RMI learned range index, iSet partitioning and
  the end-to-end NuevoMatch classifier (the paper's contribution), plus the
  parallel warm-start training pipeline (:mod:`repro.core.pipeline`):
  stacked vectorized submodel training, per-iSet process fan-out, and
  retrains seeded from the engine being replaced.
* :mod:`repro.rules` — rule model, ClassBench-like and Stanford-backbone-like
  rule-set generators, and the ClassBench text format parser.
* :mod:`repro.classifiers` — the classifier registry plus baselines used both
  as comparison points and as remainder-set indexes: linear search, Tuple
  Space Search, TupleMerge, HiCuts, CutSplit, and a NeuroCuts-style tree.
* :mod:`repro.traffic` — packet traces: uniform, Zipf-skewed and CAIDA-like.
* :mod:`repro.workloads` — end-to-end scenario replay: drive any generated
  trace through any engine (cached/uncached, 1..N shards) and report hit
  rate, throughput and latency percentiles (``repro replay`` on the CLI).
* :mod:`repro.simulation` — cache-hierarchy and memory-access cost model used
  to reproduce the paper's throughput/latency-shaped experiments, including
  batch-level accounting (:func:`repro.simulation.evaluate_classifier_batched`).
* :mod:`repro.analysis` — memory-footprint accounting, coverage analysis and
  reporting helpers used by the benchmark harness.
"""

from repro.rules import (
    FieldSchema,
    Packet,
    Rule,
    RuleSet,
    generate_classbench,
    generate_stanford_backbone,
)
from repro.classifiers import (
    available_classifiers,
    build_classifier,
    register,
    resolve_classifier,
)
from repro.core import (
    NuevoMatch,
    NuevoMatchConfig,
    PipelineConfig,
    RQRMI,
    RQRMIConfig,
    TrainingPipeline,
    partition_isets,
)
from repro.engine import ClassificationEngine
from repro.serving import CachedEngine, FlowCache, ShardedEngine, UpdateQueue

__version__ = "1.3.0"

__all__ = [
    "FieldSchema",
    "Packet",
    "Rule",
    "RuleSet",
    "generate_classbench",
    "generate_stanford_backbone",
    "ClassificationEngine",
    "ShardedEngine",
    "UpdateQueue",
    "FlowCache",
    "CachedEngine",
    "available_classifiers",
    "build_classifier",
    "register",
    "resolve_classifier",
    "NuevoMatch",
    "NuevoMatchConfig",
    "PipelineConfig",
    "RQRMI",
    "RQRMIConfig",
    "TrainingPipeline",
    "partition_isets",
    "__version__",
]
