"""Open-loop network load generation against an :class:`AsyncServer`.

The trace-replay harness (:mod:`repro.workloads.replay`) drives pre-formed
batches through an engine in-process — a *closed-loop* measurement.  Real
serving traffic is open-loop: requests arrive on their own schedule whether
or not earlier ones finished, which is exactly the regime the
:class:`~repro.serving.server.RequestBatcher` exists for.  This module
provides that client side:

* :func:`open_loop_load` — an asyncio load generator: ``connections`` TCP
  clients share the packet stream; each packet is *scheduled* by the offered
  rate (``rate_pps``; ``None`` offers as fast as the in-flight window allows)
  and its latency is measured from the scheduled arrival, so server queueing
  under overload is charged to the server, not hidden by the client.  The
  in-flight window bounds client memory, making the generator quasi-open-loop
  (the standard compromise, cf. open-loop harnesses like wrk2).
* :class:`RampProfile` / :class:`BurstProfile` — time-varying offered-rate
  schedules (a linear capacity sweep, a periodic square-wave burst) in place
  of the constant ``rate_pps``; the shapes the overload-control bench drives
  the adaptive server with.
* :func:`run_load` — blocking wrapper (``asyncio.run``) returning a
  :class:`LoadReport`.

Traces come from :func:`repro.workloads.make_trace`, so the §5.1.1 skew
regimes (uniform / zipf-{80,85,90,95} / caida) apply to network serving
unchanged.  The wire protocol the clients speak is specified in
docs/PROTOCOL.md; by default each connection negotiates binary protocol v2
(``protocol="auto"``) and falls back to JSON against older servers;
``protocol="json"`` pins the v1 encoding for baseline comparisons.  With
``batch > 1`` packets travel as pre-formed classify batches (one v2 frame,
or pipelined JSON requests) instead of per-packet sends.  ``overloaded``
rejections from the server's bounded queue are counted per
:class:`LoadReport` rather than raised, so offered-load sweeps can ride
through backpressure.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.serving.server import AsyncClient, ServerError

__all__ = [
    "BurstProfile",
    "LoadReport",
    "RampProfile",
    "open_loop_load",
    "run_load",
]


@dataclass(frozen=True)
class RampProfile:
    """Offered rate ramping linearly from ``start_pps`` to ``end_pps``.

    The arrival schedule accumulates per-packet gaps of the instantaneous
    rate, so a ramp across a server's capacity sweeps it from underload to
    overload within one run — the shape the overload controller's e2e tests
    and bench use to watch adaptation mid-stream.
    """

    start_pps: float
    end_pps: float

    name = "ramp"

    def __post_init__(self):
        if self.start_pps <= 0 or self.end_pps <= 0:
            raise ValueError("ramp rates must be positive")

    def offsets(self, n: int) -> np.ndarray:
        """Arrival-time offsets (seconds from run start) for ``n`` packets."""
        if n < 1:
            return np.zeros(0)
        fractions = np.arange(n) / max(n - 1, 1)
        rates = self.start_pps + (self.end_pps - self.start_pps) * fractions
        gaps = 1.0 / rates
        return np.concatenate(([0.0], np.cumsum(gaps[:-1])))


@dataclass(frozen=True)
class BurstProfile:
    """A square-wave offered rate: ``base_pps`` with periodic bursts.

    Each ``period_s`` opens with a burst of ``burst_pps`` lasting
    ``duty * period_s``, then falls back to ``base_pps`` — the classic
    overload-recovery shape (e.g. a 2x-capacity burst against a steady 0.6x
    background).  Offsets are integrated packet by packet: each gap is the
    inverse of the instantaneous rate at that packet's arrival.
    """

    base_pps: float
    burst_pps: float
    period_s: float = 1.0
    duty: float = 0.2

    name = "burst"

    def __post_init__(self):
        if self.base_pps <= 0 or self.burst_pps <= 0:
            raise ValueError("burst rates must be positive")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if not 0.0 < self.duty < 1.0:
            raise ValueError("duty must be in (0, 1)")

    def offsets(self, n: int) -> np.ndarray:
        """Arrival-time offsets (seconds from run start) for ``n`` packets."""
        out = np.empty(n)
        burst_span = self.duty * self.period_s
        t = 0.0
        for index in range(n):
            out[index] = t
            rate = (
                self.burst_pps
                if (t % self.period_s) < burst_span
                else self.base_pps
            )
            t += 1.0 / rate
        return out


@dataclass
class LoadReport:
    """What one open-loop run observed from the client side."""

    packets: int
    completed: int
    matched: int
    overloaded: int
    errors: int
    wall_seconds: float
    offered_rate_pps: Optional[float]
    throughput_rps: float
    latency_p50_us: float
    latency_p99_us: float
    connections: int
    window: int
    batch: int = 1
    protocol: str = "json"
    profile: Optional[str] = None
    server: dict = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        """Server-reported mean coalesced batch size (0.0 if stats missing)."""
        batcher = self.server.get("server", {}).get("batcher", {})
        return float(batcher.get("mean_batch_size", 0.0))

    def as_dict(self) -> dict[str, object]:
        return {
            "packets": self.packets,
            "completed": self.completed,
            "matched": self.matched,
            "overloaded": self.overloaded,
            "errors": self.errors,
            "wall_seconds": round(self.wall_seconds, 4),
            "offered_rate_pps": self.offered_rate_pps,
            "throughput_rps": round(self.throughput_rps, 1),
            "latency_p50_us": round(self.latency_p50_us, 1),
            "latency_p99_us": round(self.latency_p99_us, 1),
            "connections": self.connections,
            "window": self.window,
            "batch": self.batch,
            "protocol": self.protocol,
            "profile": self.profile,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "server": self.server,
        }


async def _drive_connection(
    host: str,
    port: int,
    packets: Sequence[tuple[int, ...]],
    schedule: Sequence[float] | None,
    start_at: float,
    window: int,
    latencies_us: list[float],
    counters: dict[str, int],
    batch: int = 1,
    negotiate: bool = True,
) -> None:
    """One connection's share: scheduled sends, bounded in-flight window."""
    inflight = asyncio.Semaphore(window)
    tasks: list[asyncio.Task] = []
    loop = asyncio.get_running_loop()

    async def _one(packet: tuple[int, ...], scheduled: float) -> None:
        try:
            response = await client.classify(packet)
            if response["matched"]:
                counters["matched"] += 1
            counters["completed"] += 1
            # Latency from the *scheduled* arrival: open-loop measurements
            # charge queueing delay to the server.  Only completed work
            # samples — shed requests return fast by design, and mixing
            # their turnaround into the percentiles would let a server look
            # "faster" by rejecting more (percentiles are of *admitted*
            # traffic; sheds are reported separately in `overloaded`).
            latencies_us.append((time.monotonic() - scheduled) * 1e6)
        except ServerError as exc:
            if exc.code == "overloaded":
                counters["overloaded"] += 1
            else:
                counters["errors"] += 1
        except (ConnectionError, RuntimeError):
            counters["errors"] += 1
        finally:
            inflight.release()

    async def _many(group: np.ndarray, scheduled: float) -> None:
        try:
            responses = await client.classify_batch(group)
            counters["matched"] += sum(1 for r in responses if r["matched"])
            counters["completed"] += len(responses)
            # One latency sample *per packet*, not per batch: `completed`
            # counts packets, so percentiles must weight a 8-packet batch
            # eight times or batch>1 runs would report per-batch quantiles
            # in packet-denominated reports.
            latencies_us.extend(
                [(time.monotonic() - scheduled) * 1e6] * len(responses)
            )
        except ServerError as exc:
            if exc.code == "overloaded":
                counters["overloaded"] += len(group)
            else:
                counters["errors"] += len(group)
        except (ConnectionError, RuntimeError):
            counters["errors"] += len(group)
        finally:
            inflight.release()

    async with await AsyncClient.connect(host, port, negotiate=negotiate) as client:
        if client.wire_v2:
            counters["wire_v2"] = counters.get("wire_v2", 0) + 1
        if batch <= 1:
            units: Sequence = packets
            send = _one
            unit_schedule = schedule
        else:
            # Batches ride as slices of one columnar block: the client's v2
            # encoder maps contiguous uint64 rows straight into the frame, so
            # no per-packet conversion happens after this point.
            share_block = np.array(packets, dtype=np.uint64)
            units = [
                share_block[start : start + batch]
                for start in range(0, len(packets), batch)
            ]
            send = _many
            # A batch inherits its first packet's scheduled arrival.
            unit_schedule = (
                [schedule[start] for start in range(0, len(packets), batch)]
                if schedule is not None
                else None
            )
        for index, unit in enumerate(units):
            if unit_schedule is not None:
                scheduled = start_at + unit_schedule[index]
                delay = scheduled - time.monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
            await inflight.acquire()
            # Without a rate there is no arrival schedule: latency runs from
            # the actual send.  With one, it runs from the *scheduled* arrival
            # even when the window made the send late — otherwise an
            # overloaded server's queueing delay would vanish from the report
            # (coordinated omission).
            tasks.append(
                loop.create_task(
                    send(
                        unit,
                        time.monotonic() if unit_schedule is None else scheduled,
                    )
                )
            )
        if tasks:
            await asyncio.gather(*tasks)


async def open_loop_load(
    host: str,
    port: int,
    packets: Sequence,
    connections: int = 4,
    window: int = 32,
    rate_pps: float | None = None,
    batch: int = 1,
    protocol: str = "auto",
    profile: "RampProfile | BurstProfile | None" = None,
) -> LoadReport:
    """Fire ``packets`` at the server and report client-observed behaviour.

    Args:
        host, port: The :class:`~repro.serving.server.AsyncServer` address.
        packets: Packet value tuples (or :class:`~repro.rules.rule.Packet`),
            e.g. a :class:`~repro.traffic.Trace`'s packets.
        connections: Concurrent TCP connections sharing the stream
            round-robin (preserving each connection's relative order).
        window: Max in-flight requests per connection.
        rate_pps: Offered arrival rate across all connections; ``None``
            offers as fast as the windows allow.
        batch: Packets per classify request; > 1 sends pre-formed batches
            (one binary frame each on a v2 connection).  The in-flight
            window then counts batches, and ``rate_pps`` still paces
            *packets* (a batch departs at its first packet's arrival time).
        protocol: ``"auto"`` negotiates binary v2 with JSON fallback;
            ``"json"`` pins v1 (the pre-v2 client behaviour).
        profile: A time-varying offered rate (:class:`RampProfile` /
            :class:`BurstProfile`, or anything with ``offsets(n)`` and
            ``name``) instead of the constant ``rate_pps``; mutually
            exclusive with it.
    """
    if connections < 1:
        raise ValueError("connections must be at least 1")
    if window < 1:
        raise ValueError("window must be at least 1")
    if batch < 1:
        raise ValueError("batch must be at least 1")
    if protocol not in ("auto", "json"):
        raise ValueError("protocol must be 'auto' or 'json'")
    if profile is not None and rate_pps is not None:
        raise ValueError("rate_pps and profile are mutually exclusive")
    values = [
        packet if isinstance(packet, tuple) else tuple(packet) for packet in packets
    ]
    shares: list[list[tuple[int, ...]]] = [[] for _ in range(connections)]
    schedules: list[list[float]] | None = None
    offsets: np.ndarray | None = None
    if profile is not None:
        offsets = np.asarray(profile.offsets(len(values)), dtype=float)
        schedules = [[] for _ in range(connections)]
    elif rate_pps is not None:
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        schedules = [[] for _ in range(connections)]
    for index, packet in enumerate(values):
        shares[index % connections].append(packet)
        if schedules is not None:
            schedules[index % connections].append(
                float(offsets[index]) if offsets is not None else index / rate_pps
            )

    latencies_us: list[float] = []
    counters = {"completed": 0, "matched": 0, "overloaded": 0, "errors": 0}
    start = time.monotonic()
    await asyncio.gather(
        *(
            _drive_connection(
                host,
                port,
                shares[conn],
                schedules[conn] if schedules is not None else None,
                start,
                window,
                latencies_us,
                counters,
                batch=batch,
                negotiate=protocol == "auto",
            )
            for conn in range(connections)
            if shares[conn]
        )
    )
    wall = time.monotonic() - start

    server_stats: dict = {}
    try:
        async with await AsyncClient.connect(host, port) as client:
            server_stats = await client.stats()
    except (ConnectionError, ServerError, OSError):
        pass

    window_us = np.asarray(latencies_us) if latencies_us else np.zeros(1)
    offered = rate_pps
    if offered is None and offsets is not None and len(offsets) > 1:
        span = float(offsets[-1])
        # The profile's *mean* rate; the instantaneous shape is in `profile`.
        offered = round((len(offsets) - 1) / span, 1) if span > 0 else None
    return LoadReport(
        packets=len(values),
        completed=counters["completed"],
        matched=counters["matched"],
        overloaded=counters["overloaded"],
        errors=counters["errors"],
        wall_seconds=wall,
        offered_rate_pps=offered,
        throughput_rps=counters["completed"] / wall if wall > 0 else 0.0,
        latency_p50_us=float(np.percentile(window_us, 50)),
        latency_p99_us=float(np.percentile(window_us, 99)),
        connections=connections,
        window=window,
        batch=batch,
        protocol="v2" if counters.get("wire_v2") else "json",
        profile=profile.name if profile is not None else None,
        server=server_stats,
    )


def run_load(
    host: str,
    port: int,
    packets: Sequence,
    connections: int = 4,
    window: int = 32,
    rate_pps: float | None = None,
    batch: int = 1,
    protocol: str = "auto",
    profile: "RampProfile | BurstProfile | None" = None,
) -> LoadReport:
    """Blocking wrapper around :func:`open_loop_load`."""
    return asyncio.run(
        open_loop_load(
            host,
            port,
            packets,
            connections=connections,
            window=window,
            rate_pps=rate_pps,
            batch=batch,
            protocol=protocol,
            profile=profile,
        )
    )
