"""Open-loop network load generation against an :class:`AsyncServer`.

The trace-replay harness (:mod:`repro.workloads.replay`) drives pre-formed
batches through an engine in-process — a *closed-loop* measurement.  Real
serving traffic is open-loop: requests arrive on their own schedule whether
or not earlier ones finished, which is exactly the regime the
:class:`~repro.serving.server.RequestBatcher` exists for.  This module
provides that client side:

* :func:`open_loop_load` — an asyncio load generator: ``connections`` TCP
  clients share the packet stream; each packet is *scheduled* by the offered
  rate (``rate_pps``; ``None`` offers as fast as the in-flight window allows)
  and its latency is measured from the scheduled arrival, so server queueing
  under overload is charged to the server, not hidden by the client.  The
  in-flight window bounds client memory, making the generator quasi-open-loop
  (the standard compromise, cf. open-loop harnesses like wrk2).
* :func:`run_load` — blocking wrapper (``asyncio.run``) returning a
  :class:`LoadReport`.

Traces come from :func:`repro.workloads.make_trace`, so the §5.1.1 skew
regimes (uniform / zipf-{80,85,90,95} / caida) apply to network serving
unchanged.  The wire protocol the clients speak is specified in
docs/PROTOCOL.md; by default each connection negotiates binary protocol v2
(``protocol="auto"``) and falls back to JSON against older servers;
``protocol="json"`` pins the v1 encoding for baseline comparisons.  With
``batch > 1`` packets travel as pre-formed classify batches (one v2 frame,
or pipelined JSON requests) instead of per-packet sends.  ``overloaded``
rejections from the server's bounded queue are counted per
:class:`LoadReport` rather than raised, so offered-load sweeps can ride
through backpressure.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.serving.server import AsyncClient, ServerError

__all__ = ["LoadReport", "open_loop_load", "run_load"]


@dataclass
class LoadReport:
    """What one open-loop run observed from the client side."""

    packets: int
    completed: int
    matched: int
    overloaded: int
    errors: int
    wall_seconds: float
    offered_rate_pps: Optional[float]
    throughput_rps: float
    latency_p50_us: float
    latency_p99_us: float
    connections: int
    window: int
    batch: int = 1
    protocol: str = "json"
    server: dict = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        """Server-reported mean coalesced batch size (0.0 if stats missing)."""
        batcher = self.server.get("server", {}).get("batcher", {})
        return float(batcher.get("mean_batch_size", 0.0))

    def as_dict(self) -> dict[str, object]:
        return {
            "packets": self.packets,
            "completed": self.completed,
            "matched": self.matched,
            "overloaded": self.overloaded,
            "errors": self.errors,
            "wall_seconds": round(self.wall_seconds, 4),
            "offered_rate_pps": self.offered_rate_pps,
            "throughput_rps": round(self.throughput_rps, 1),
            "latency_p50_us": round(self.latency_p50_us, 1),
            "latency_p99_us": round(self.latency_p99_us, 1),
            "connections": self.connections,
            "window": self.window,
            "batch": self.batch,
            "protocol": self.protocol,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "server": self.server,
        }


async def _drive_connection(
    host: str,
    port: int,
    packets: Sequence[tuple[int, ...]],
    schedule: Sequence[float] | None,
    start_at: float,
    window: int,
    latencies_us: list[float],
    counters: dict[str, int],
    batch: int = 1,
    negotiate: bool = True,
) -> None:
    """One connection's share: scheduled sends, bounded in-flight window."""
    inflight = asyncio.Semaphore(window)
    tasks: list[asyncio.Task] = []
    loop = asyncio.get_running_loop()

    async def _one(packet: tuple[int, ...], scheduled: float) -> None:
        try:
            response = await client.classify(packet)
            if response["matched"]:
                counters["matched"] += 1
            counters["completed"] += 1
        except ServerError as exc:
            if exc.code == "overloaded":
                counters["overloaded"] += 1
            else:
                counters["errors"] += 1
        except (ConnectionError, RuntimeError):
            counters["errors"] += 1
        finally:
            # Latency from the *scheduled* arrival: open-loop measurements
            # charge queueing delay to the server.
            latencies_us.append((time.monotonic() - scheduled) * 1e6)
            inflight.release()

    async def _many(group: np.ndarray, scheduled: float) -> None:
        try:
            responses = await client.classify_batch(group)
            counters["matched"] += sum(1 for r in responses if r["matched"])
            counters["completed"] += len(responses)
        except ServerError as exc:
            if exc.code == "overloaded":
                counters["overloaded"] += len(group)
            else:
                counters["errors"] += len(group)
        except (ConnectionError, RuntimeError):
            counters["errors"] += len(group)
        finally:
            latencies_us.append((time.monotonic() - scheduled) * 1e6)
            inflight.release()

    async with await AsyncClient.connect(host, port, negotiate=negotiate) as client:
        if client.wire_v2:
            counters["wire_v2"] = counters.get("wire_v2", 0) + 1
        if batch <= 1:
            units: Sequence = packets
            send = _one
            unit_schedule = schedule
        else:
            # Batches ride as slices of one columnar block: the client's v2
            # encoder maps contiguous uint64 rows straight into the frame, so
            # no per-packet conversion happens after this point.
            share_block = np.array(packets, dtype=np.uint64)
            units = [
                share_block[start : start + batch]
                for start in range(0, len(packets), batch)
            ]
            send = _many
            # A batch inherits its first packet's scheduled arrival.
            unit_schedule = (
                [schedule[start] for start in range(0, len(packets), batch)]
                if schedule is not None
                else None
            )
        for index, unit in enumerate(units):
            if unit_schedule is not None:
                scheduled = start_at + unit_schedule[index]
                delay = scheduled - time.monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
            await inflight.acquire()
            # Without a rate there is no arrival schedule: latency runs from
            # the actual send.  With one, it runs from the *scheduled* arrival
            # even when the window made the send late — otherwise an
            # overloaded server's queueing delay would vanish from the report
            # (coordinated omission).
            tasks.append(
                loop.create_task(
                    send(
                        unit,
                        time.monotonic() if unit_schedule is None else scheduled,
                    )
                )
            )
        if tasks:
            await asyncio.gather(*tasks)


async def open_loop_load(
    host: str,
    port: int,
    packets: Sequence,
    connections: int = 4,
    window: int = 32,
    rate_pps: float | None = None,
    batch: int = 1,
    protocol: str = "auto",
) -> LoadReport:
    """Fire ``packets`` at the server and report client-observed behaviour.

    Args:
        host, port: The :class:`~repro.serving.server.AsyncServer` address.
        packets: Packet value tuples (or :class:`~repro.rules.rule.Packet`),
            e.g. a :class:`~repro.traffic.Trace`'s packets.
        connections: Concurrent TCP connections sharing the stream
            round-robin (preserving each connection's relative order).
        window: Max in-flight requests per connection.
        rate_pps: Offered arrival rate across all connections; ``None``
            offers as fast as the windows allow.
        batch: Packets per classify request; > 1 sends pre-formed batches
            (one binary frame each on a v2 connection).  The in-flight
            window then counts batches, and ``rate_pps`` still paces
            *packets* (a batch departs at its first packet's arrival time).
        protocol: ``"auto"`` negotiates binary v2 with JSON fallback;
            ``"json"`` pins v1 (the pre-v2 client behaviour).
    """
    if connections < 1:
        raise ValueError("connections must be at least 1")
    if window < 1:
        raise ValueError("window must be at least 1")
    if batch < 1:
        raise ValueError("batch must be at least 1")
    if protocol not in ("auto", "json"):
        raise ValueError("protocol must be 'auto' or 'json'")
    values = [
        packet if isinstance(packet, tuple) else tuple(packet) for packet in packets
    ]
    shares: list[list[tuple[int, ...]]] = [[] for _ in range(connections)]
    schedules: list[list[float]] | None = None
    if rate_pps is not None:
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        schedules = [[] for _ in range(connections)]
    for index, packet in enumerate(values):
        shares[index % connections].append(packet)
        if schedules is not None:
            schedules[index % connections].append(index / rate_pps)

    latencies_us: list[float] = []
    counters = {"completed": 0, "matched": 0, "overloaded": 0, "errors": 0}
    start = time.monotonic()
    await asyncio.gather(
        *(
            _drive_connection(
                host,
                port,
                shares[conn],
                schedules[conn] if schedules is not None else None,
                start,
                window,
                latencies_us,
                counters,
                batch=batch,
                negotiate=protocol == "auto",
            )
            for conn in range(connections)
            if shares[conn]
        )
    )
    wall = time.monotonic() - start

    server_stats: dict = {}
    try:
        async with await AsyncClient.connect(host, port) as client:
            server_stats = await client.stats()
    except (ConnectionError, ServerError, OSError):
        pass

    window_us = np.asarray(latencies_us) if latencies_us else np.zeros(1)
    return LoadReport(
        packets=len(values),
        completed=counters["completed"],
        matched=counters["matched"],
        overloaded=counters["overloaded"],
        errors=counters["errors"],
        wall_seconds=wall,
        offered_rate_pps=rate_pps,
        throughput_rps=counters["completed"] / wall if wall > 0 else 0.0,
        latency_p50_us=float(np.percentile(window_us, 50)),
        latency_p99_us=float(np.percentile(window_us, 99)),
        connections=connections,
        window=window,
        batch=batch,
        protocol="v2" if counters.get("wire_v2") else "json",
        server=server_stats,
    )


def run_load(
    host: str,
    port: int,
    packets: Sequence,
    connections: int = 4,
    window: int = 32,
    rate_pps: float | None = None,
    batch: int = 1,
    protocol: str = "auto",
) -> LoadReport:
    """Blocking wrapper around :func:`open_loop_load`."""
    return asyncio.run(
        open_loop_load(
            host,
            port,
            packets,
            connections=connections,
            window=window,
            rate_pps=rate_pps,
            batch=batch,
            protocol=protocol,
        )
    )
