"""Trace replay: one harness from generator trace to serving-stack report.

``replay_trace`` plays a :class:`~repro.traffic.Trace` through any engine
exposing ``classify_batch`` — a bare
:class:`~repro.engine.ClassificationEngine`, a multi-core
:class:`~repro.serving.ShardedEngine`, or either wrapped in a
:class:`~repro.serving.CachedEngine` — and reports:

* **measured** — wall-clock throughput and p50/p99 per-packet latency over
  the served batches, plus the flow-cache hit rate when a cache is present;
* **modelled** — a cache-aware latency estimate: misses priced by the
  :class:`~repro.simulation.CostModel` against the engine's structures
  (per-shard for sharded engines), hits priced by where the flow cache's
  footprint lands in the :class:`~repro.simulation.CacheHierarchy` — the same
  placement reasoning the paper applies to index structures (§2.2, §5.2.1).

``make_trace`` maps the paper's trace names (§5.1.1) to the generators:
``uniform``, ``zipf`` (with the four top-3%-share skew settings 80/85/90/95 of
Figure 12) and ``caida`` (heavy-tailed flows with bursty arrivals).

The CLI front-end is ``repro replay``; the scenario-matrix regression suite
(``tests/test_replay_scenarios.py``) uses the same entry points.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.engine import ClassificationEngine
from repro.rules.rule import RuleSet
from repro.serving import CachedEngine, ShardedEngine
from repro.simulation import (
    CostModel,
    evaluate_classifier_batched,
    evaluate_sharded,
)
from repro.traffic import (
    Trace,
    generate_caida_like_trace,
    generate_uniform_trace,
    generate_zipf_trace,
)

__all__ = [
    "TRACE_KINDS",
    "ReplayReport",
    "build_scenario_engine",
    "make_trace",
    "replay_trace",
    "run_scenario",
]

#: Trace regimes of §5.1.1, in CLI spelling.
TRACE_KINDS = ("uniform", "zipf", "caida")


def make_trace(
    kind: str,
    ruleset: RuleSet,
    num_packets: int,
    seed: int = 1,
    skew: int = 95,
    burstiness: float = 0.7,
) -> Trace:
    """Generate a trace of the given §5.1.1 regime over ``ruleset``.

    ``skew`` is the Zipf top-3%-flow traffic share (80/85/90/95, Figure 12)
    and only applies to ``kind="zipf"``; ``burstiness`` only to ``"caida"``.
    """
    if kind == "uniform":
        return generate_uniform_trace(ruleset, num_packets, seed=seed)
    if kind == "zipf":
        return generate_zipf_trace(ruleset, num_packets, top3_share=skew, seed=seed)
    if kind == "caida":
        return generate_caida_like_trace(
            ruleset, num_packets, seed=seed, burstiness=burstiness
        )
    raise ValueError(f"unknown trace kind {kind!r}; expected one of {TRACE_KINDS}")


def build_scenario_engine(
    ruleset: RuleSet,
    shards: int = 1,
    cache_size: int = 0,
    classifier: str | type = "tm",
    executor: str = "thread",
    background_retraining: bool = True,
    **params,
):
    """Build the engine a scenario names: ``shards`` × optional flow cache.

    ``shards <= 1`` builds a plain :class:`ClassificationEngine`; more builds
    a :class:`ShardedEngine`.  ``cache_size > 0`` wraps the result in a
    :class:`CachedEngine` (with its invalidation listener wired into the
    sharded engine's update queue).  ``params`` go to the classifier build.
    """
    if shards <= 1:
        engine = ClassificationEngine.build(ruleset, classifier=classifier, **params)
    else:
        engine = ShardedEngine.build(
            ruleset,
            shards=shards,
            classifier=classifier,
            executor=executor,
            background_retraining=background_retraining,
            **params,
        )
    if cache_size > 0:
        return CachedEngine(engine, capacity=cache_size)
    return engine


@dataclass
class ReplayReport:
    """What one trace replay measured (and what the cost model predicts)."""

    trace: str
    engine: str
    shards: int
    cache_size: int
    batch_size: int
    columnar: bool
    packets: int
    matched: int
    hit_rate: float
    wall_seconds: float
    throughput_pps: float
    latency_p50_ns: float
    latency_p99_ns: float
    modelled_latency_ns: float
    modelled_throughput_pps: float
    cache: dict = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready payload (the shape ``BENCH`` lines and the CLI print)."""
        return {
            "trace": self.trace,
            "engine": self.engine,
            "shards": self.shards,
            "cache_size": self.cache_size,
            "batch_size": self.batch_size,
            "columnar": self.columnar,
            "packets": self.packets,
            "matched": self.matched,
            "hit_rate": round(self.hit_rate, 4),
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput_pps": round(self.throughput_pps, 1),
            "latency_p50_ns": round(self.latency_p50_ns, 1),
            "latency_p99_ns": round(self.latency_p99_ns, 1),
            "modelled_latency_ns": round(self.modelled_latency_ns, 2),
            "modelled_throughput_pps": round(self.modelled_throughput_pps, 1),
            "cache": self.cache,
        }


def _unwrap(engine) -> tuple[object, Optional[CachedEngine]]:
    """(underlying engine, cache wrapper or None)."""
    if isinstance(engine, CachedEngine):
        return engine.engine, engine
    return engine, None


def _engine_label(engine) -> str:
    base, cached = _unwrap(engine)
    if isinstance(base, ShardedEngine):
        label = f"sharded[{base.num_shards}]"
    else:
        label = f"engine[{base.classifier_name}]"
    return f"cached({label})" if cached is not None else label


def _num_shards(engine) -> int:
    base, _cached = _unwrap(engine)
    return base.num_shards if isinstance(base, ShardedEngine) else 1


def _modelled_miss_latency_ns(
    base, trace: Trace, cost_model: CostModel, batch_size: int, max_packets: int
) -> float:
    """Cost-model latency of the slow path (the engine without the cache)."""
    if isinstance(base, ShardedEngine):
        report = evaluate_sharded(
            base, trace, cost_model, batch_size=batch_size, max_packets=max_packets
        )
    else:
        report = evaluate_classifier_batched(
            base.classifier,
            trace,
            cost_model,
            batch_size=batch_size,
            max_packets=max_packets,
        )
    return report.avg_latency_ns


def replay_trace(
    engine,
    trace: Trace,
    batch_size: int = 128,
    cost_model: CostModel | None = None,
    model_packets: int = 2000,
    columnar: bool | None = None,
) -> ReplayReport:
    """Play ``trace`` through ``engine`` batch by batch and report.

    With ``columnar`` (default: on whenever the engine serves blocks) the
    trace is packed into one uint64 block up front and each batch is a slice
    driven through ``classify_block`` — no per-packet objects anywhere on the
    serve path, which is what the measured numbers are meant to price.
    ``columnar=False`` forces the object path (``classify_batch``).

    Each batch call is timed; per-packet latency percentiles are taken over
    the batches (a batch's packets share its latency).  The modelled numbers
    combine the cost model's slow-path estimate (capped at ``model_packets``
    packets to bound modelling cost) with a flow-cache hit priced at the
    cache footprint's hierarchy level plus one hash.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    cost_model = cost_model or CostModel()
    base, cached = _unwrap(engine)
    stats_before = replace(cached.cache.stats) if cached else None
    if columnar is None:
        columnar = getattr(engine, "supports_block", False) or hasattr(
            engine, "classify_block"
        )

    packets = list(trace)
    matched = 0
    per_packet_ns: list[float] = []
    batch_sizes: list[int] = []
    wall = 0.0
    if columnar:
        block = np.array([tuple(packet) for packet in packets], dtype=np.uint64)
        for start in range(0, len(block), batch_size):
            chunk = block[start : start + batch_size]
            begin = time.perf_counter()
            rule_ids, _priorities = engine.classify_block(chunk)
            elapsed = time.perf_counter() - begin
            wall += elapsed
            matched += int((rule_ids >= 0).sum())
            per_packet_ns.append(elapsed * 1e9 / len(chunk))
            batch_sizes.append(len(chunk))
    else:
        for start in range(0, len(packets), batch_size):
            chunk = packets[start : start + batch_size]
            begin = time.perf_counter()
            results = engine.classify_batch(chunk)
            elapsed = time.perf_counter() - begin
            wall += elapsed
            matched += sum(1 for result in results if result.rule is not None)
            per_packet_ns.append(elapsed * 1e9 / len(chunk))
            batch_sizes.append(len(chunk))

    if cached is not None:
        assert stats_before is not None
        # Every reported counter is windowed to this replay, so repeated
        # replays on one warm engine stay internally consistent (the
        # capacity/entries/footprint fields describe the cache *now*).
        after = cached.cache.stats
        window = replace(
            after,
            hits=after.hits - stats_before.hits,
            misses=after.misses - stats_before.misses,
            insertions=after.insertions - stats_before.insertions,
            evictions=after.evictions - stats_before.evictions,
            invalidations=after.invalidations - stats_before.invalidations,
            dropped_fills=after.dropped_fills - stats_before.dropped_fills,
        )
        hit_rate = window.hit_rate
        cache_stats = {
            "capacity": cached.cache.capacity,
            "entries": len(cached.cache),
            "footprint_bytes": cached.cache.footprint_bytes(),
            **window.as_dict(),
        }
    else:
        hit_rate = 0.0
        cache_stats = {}

    miss_ns = _modelled_miss_latency_ns(
        base, trace, cost_model, batch_size, max_packets=model_packets
    )
    if cached is not None:
        assert cost_model.cache is not None
        hit_ns = (
            cost_model.cache.access_latency_ns(cached.cache.footprint_bytes())
            + cost_model.hash_ns
        )
        modelled_ns = hit_rate * hit_ns + (1.0 - hit_rate) * miss_ns
    else:
        modelled_ns = miss_ns

    latencies = np.repeat(np.asarray(per_packet_ns), np.asarray(batch_sizes))
    return ReplayReport(
        trace=trace.name,
        engine=_engine_label(engine),
        shards=_num_shards(engine),
        cache_size=cached.cache.capacity if cached else 0,
        batch_size=batch_size,
        columnar=bool(columnar),
        packets=len(packets),
        matched=matched,
        hit_rate=hit_rate,
        wall_seconds=wall,
        throughput_pps=len(packets) / wall if wall > 0 else 0.0,
        latency_p50_ns=float(np.percentile(latencies, 50)) if len(latencies) else 0.0,
        latency_p99_ns=float(np.percentile(latencies, 99)) if len(latencies) else 0.0,
        modelled_latency_ns=modelled_ns,
        modelled_throughput_pps=1e9 / modelled_ns if modelled_ns > 0 else 0.0,
        cache=cache_stats,
    )


def run_scenario(
    ruleset: RuleSet,
    trace_kind: str = "zipf",
    num_packets: int = 10_000,
    skew: int = 95,
    shards: int = 1,
    cache_size: int = 0,
    classifier: str | type = "tm",
    executor: str = "thread",
    batch_size: int = 128,
    seed: int = 1,
    cost_model: CostModel | None = None,
    columnar: bool | None = None,
    **params,
) -> ReplayReport:
    """Build a scenario's engine, generate its trace, replay, and clean up.

    One call = one cell of the scenario matrix {trace} × {cache} × {shards}.
    """
    trace = make_trace(trace_kind, ruleset, num_packets, seed=seed, skew=skew)
    engine = build_scenario_engine(
        ruleset,
        shards=shards,
        cache_size=cache_size,
        classifier=classifier,
        executor=executor,
        **params,
    )
    try:
        return replay_trace(
            engine,
            trace,
            batch_size=batch_size,
            cost_model=cost_model,
            columnar=columnar,
        )
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()
