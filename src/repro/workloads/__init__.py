"""End-to-end workload scenarios: trace replay through the serving stack.

The paper evaluates classifiers under three traffic regimes (§5.1.1): uniform
(the worst case for locality, Figures 8–11), Zipf-skewed at four settings of
top-3%-flow traffic share (80–95%, Figure 12) and a CAIDA-derived trace with
real temporal locality.  :mod:`repro.workloads.replay` drives any of those
traces through any engine configuration — cached or uncached, one shard or
many — and reports what an operator would measure: cache hit rate, wall-clock
throughput and per-packet latency percentiles, next to the cost-model's
cache-placement estimate.

:mod:`repro.workloads.loadgen` is the open-loop counterpart for network
serving: the same §5.1.1 traces offered as concurrent requests to an
:class:`~repro.serving.server.AsyncServer`, measuring coalescing behaviour
and client-observed latency.
"""

from repro.workloads.loadgen import (
    BurstProfile,
    LoadReport,
    RampProfile,
    open_loop_load,
    run_load,
)
from repro.workloads.replay import (
    TRACE_KINDS,
    ReplayReport,
    build_scenario_engine,
    make_trace,
    replay_trace,
    run_scenario,
)

__all__ = [
    "TRACE_KINDS",
    "BurstProfile",
    "LoadReport",
    "RampProfile",
    "ReplayReport",
    "build_scenario_engine",
    "make_trace",
    "open_loop_load",
    "replay_trace",
    "run_load",
    "run_scenario",
]
