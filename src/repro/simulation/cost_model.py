"""Memory-access cost model: lookup traces → nanoseconds.

Every classifier reports, per lookup, how many dependent accesses it made to
its index structure, how many rule entries it touched and how much compute it
performed (:class:`~repro.classifiers.base.LookupTrace`).  The cost model
combines those counts with the structure footprints and a
:class:`~repro.simulation.cache.CacheHierarchy` to produce a latency estimate:

* index accesses pay the latency of the cache level the index fits into,
* rule accesses pay the latency of the (much larger) rule storage,
* RQ-RMI model accesses pay L1 latency (the models are L1-resident by design),
* compute is charged per vector operation, scaled by the SIMD width,
* hash computations have a small fixed cost.

This is deliberately a *placement* model, not a cycle-accurate simulator: the
paper's speedups come from which cache level each structure occupies and how
many dependent accesses a lookup performs, and those are exactly the inputs
here.  Batched serving prices a whole batch with one call by aggregating the
per-packet traces first (:meth:`LookupTrace.aggregate
<repro.classifiers.base.LookupTrace.aggregate>`); the trace-replay harness
additionally mixes in the flow-cache hit cost at the cache footprint's
hierarchy level (:mod:`repro.workloads.replay`).  See docs/ARCHITECTURE.md
for where the model sits in the stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classifiers.base import Classifier, LookupTrace, MemoryFootprint
from repro.simulation.cache import CacheHierarchy
from repro.simulation.vectorization import SUBMODEL_SCALAR_OPS

__all__ = ["LatencyBreakdown", "CostModel"]


@dataclass
class LatencyBreakdown:
    """Latency of one lookup split by component (all in nanoseconds)."""

    model_ns: float = 0.0
    index_ns: float = 0.0
    rule_ns: float = 0.0
    compute_ns: float = 0.0
    hash_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        return self.model_ns + self.index_ns + self.rule_ns + self.compute_ns + self.hash_ns

    def merge(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        return LatencyBreakdown(
            self.model_ns + other.model_ns,
            self.index_ns + other.index_ns,
            self.rule_ns + other.rule_ns,
            self.compute_ns + other.compute_ns,
            self.hash_ns + other.hash_ns,
        )

    def scaled(self, factor: float) -> "LatencyBreakdown":
        return LatencyBreakdown(
            self.model_ns * factor,
            self.index_ns * factor,
            self.rule_ns * factor,
            self.compute_ns * factor,
            self.hash_ns * factor,
        )


@dataclass
class CostModel:
    """Converts lookup traces into latency estimates.

    Attributes:
        cache: The cache hierarchy (defaults to the paper's Xeon Silver 4116).
        vector_width: SIMD lanes available to the inference/validation compute
            (8 = AVX, as used by the paper's implementation).
        ns_per_scalar_op: Cost of one scalar arithmetic operation.
        hash_ns: Cost of one hash computation.
        access_overhead_ns: Instruction-processing overhead charged per
            dependent index/rule access (pointer chasing, comparisons, branch
            handling) on top of the pure memory latency.
        locality: Fraction of accesses hitting a hot, L1-resident working set;
            0 for uniform traffic, rising with trace skew (Figure 12).
    """

    cache: CacheHierarchy | None = None
    vector_width: int = 8
    ns_per_scalar_op: float = 0.5
    hash_ns: float = 3.0
    access_overhead_ns: float = 2.0
    locality: float = 0.0

    def __post_init__(self) -> None:
        if self.cache is None:
            self.cache = CacheHierarchy.xeon_silver_4116()

    # -- core conversion -------------------------------------------------------

    def lookup_latency(
        self,
        trace: LookupTrace,
        index_bytes: int,
        rule_bytes: int,
        model_bytes: int = 0,
    ) -> LatencyBreakdown:
        """Latency of a single lookup described by ``trace``."""
        assert self.cache is not None
        index_latency = (
            self.cache.access_latency_ns(index_bytes, self.locality)
            + self.access_overhead_ns
        )
        rule_latency = (
            self.cache.access_latency_ns(rule_bytes + index_bytes, self.locality)
            + self.access_overhead_ns
        )
        model_latency = self.cache.access_latency_ns(max(model_bytes, 1), self.locality)
        compute_ns = (
            trace.compute_ops / self.vector_width
        ) * self.ns_per_scalar_op
        return LatencyBreakdown(
            model_ns=trace.model_accesses * model_latency,
            index_ns=trace.index_accesses * index_latency,
            rule_ns=trace.rule_accesses * rule_latency,
            compute_ns=compute_ns,
            hash_ns=trace.hash_ops * self.hash_ns,
        )

    def classifier_lookup_latency(
        self, classifier: Classifier, trace: LookupTrace
    ) -> LatencyBreakdown:
        """Latency of one lookup of ``classifier`` using its own footprint."""
        footprint = classifier.memory_footprint()
        model_bytes = footprint.breakdown.get("rqrmi", 0)
        index_bytes = footprint.index_bytes - model_bytes
        return self.lookup_latency(
            trace, index_bytes, footprint.rule_bytes, model_bytes=model_bytes
        )

    def with_locality(self, locality: float) -> "CostModel":
        """A copy of this model with a different locality estimate."""
        return CostModel(
            cache=self.cache,
            vector_width=self.vector_width,
            ns_per_scalar_op=self.ns_per_scalar_op,
            hash_ns=self.hash_ns,
            access_overhead_ns=self.access_overhead_ns,
            locality=locality,
        )

    def inference_ns(self, hidden_units: int = 8, stages: int = 3) -> float:
        """Modelled cost of one full RQ-RMI inference (all stages)."""
        ops = SUBMODEL_SCALAR_OPS * stages * hidden_units / 8
        return ops / self.vector_width * self.ns_per_scalar_op
