"""Cache-hierarchy model.

The paper's performance story is about *where the classifier's index lives in
the memory hierarchy*: structures that fit in the per-core L1/L2 caches answer
lookups in a few nanoseconds, structures that spill to the shared L3 or DRAM
stall the CPU (§2.2, §5.2.1).  This module models the hierarchy of the
evaluation machine (Intel Xeon Silver 4116: 32 KB L1, 1 MB L2, 16 MB L3) and
converts a structure footprint plus an access-locality estimate into an
average access latency.  It also supports restricting the available L3 (the
paper's Cache Allocation Technology experiments, CAIDA* and §5.2.1) and an L3
contention factor for multi-tenant scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheLevel", "CacheHierarchy"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the hierarchy."""

    name: str
    size_bytes: int
    latency_cycles: float


@dataclass
class CacheHierarchy:
    """A cache hierarchy with a DRAM backstop.

    Attributes:
        levels: Cache levels ordered from fastest/smallest to slowest/largest.
        dram_latency_cycles: Latency of a DRAM access.
        frequency_ghz: Core frequency used to convert cycles to nanoseconds.
        l3_contention: Multiplier (>1) applied to L3 latency to model cache
            contention from co-running workloads (§5.2.1).
    """

    levels: list[CacheLevel] = field(default_factory=list)
    dram_latency_cycles: float = 220.0
    frequency_ghz: float = 2.1
    l3_contention: float = 1.0

    @classmethod
    def xeon_silver_4116(cls, l3_limit_bytes: int | None = None) -> "CacheHierarchy":
        """The evaluation machine of §5.1 (optionally with a restricted L3)."""
        l3_size = 16 * 1024 * 1024 if l3_limit_bytes is None else l3_limit_bytes
        return cls(
            levels=[
                CacheLevel("L1", 32 * 1024, 4.0),
                CacheLevel("L2", 1024 * 1024, 14.0),
                CacheLevel("L3", l3_size, 68.0),
            ],
            dram_latency_cycles=220.0,
            frequency_ghz=2.1,
        )

    # -- helpers -----------------------------------------------------------------

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles / self.frequency_ghz

    def placement_level(self, footprint_bytes: int) -> str:
        """Name of the smallest level that can hold ``footprint_bytes``."""
        for level in self.levels:
            if footprint_bytes <= level.size_bytes:
                return level.name
        return "DRAM"

    def _level_latency_cycles(self, name: str) -> float:
        for level in self.levels:
            if level.name == name:
                cycles = level.latency_cycles
                if name == "L3":
                    cycles *= self.l3_contention
                return cycles
        return self.dram_latency_cycles

    def placement_latency_ns(self, footprint_bytes: int) -> float:
        """Latency of a dependent access into a structure of the given size."""
        return self.cycles_to_ns(
            self._level_latency_cycles(self.placement_level(footprint_bytes))
        )

    def access_latency_ns(self, footprint_bytes: int, locality: float = 0.0) -> float:
        """Average access latency accounting for temporal locality.

        ``locality`` is the fraction of accesses that hit a small, hot working
        set assumed to stay in L1 regardless of the structure's total size —
        the mechanism by which skewed traffic narrows the gap between small
        and large classifiers (Figure 12).
        """
        locality = min(max(locality, 0.0), 1.0)
        cold = self.placement_latency_ns(footprint_bytes)
        hot = self.cycles_to_ns(self.levels[0].latency_cycles) if self.levels else cold
        return locality * hot + (1.0 - locality) * cold

    def describe(self) -> dict[str, object]:
        return {
            "levels": [
                {
                    "name": level.name,
                    "size_bytes": level.size_bytes,
                    "latency_ns": self.cycles_to_ns(self._level_latency_cycles(level.name)),
                }
                for level in self.levels
            ],
            "dram_latency_ns": self.cycles_to_ns(self.dram_latency_cycles),
            "l3_contention": self.l3_contention,
        }
