"""Performance evaluation harness: classifiers × traces → latency / throughput.

This is the module the benchmark files use to reproduce the paper's
performance figures.  It runs a classifier over a trace, converts every
lookup's :class:`~repro.classifiers.base.LookupTrace` into nanoseconds via the
:class:`~repro.simulation.cost_model.CostModel`, and aggregates into the same
quantities the paper reports: average per-packet latency and throughput in
packets per second, for single-core and two-core execution models:

* **Baselines, two cores** (§5.1): two independent instances split the input
  evenly — throughput doubles, per-packet latency is unchanged.
* **NuevoMatch, two cores**: the RQ-RMIs run on one core and the remainder
  classifier on the other; per-packet latency is the maximum of the two paths
  plus a small synchronisation overhead (amortised over 128-packet batches).
* **NuevoMatch, single core**: iSets and remainder run sequentially with the
  early-termination optimisation (§4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.classifiers.base import Classifier, LookupTrace
from repro.core.nuevomatch import LookupBreakdown, NuevoMatch
from repro.simulation.cost_model import CostModel, LatencyBreakdown
from repro.traffic.packet import Trace

__all__ = [
    "PerfReport",
    "evaluate_classifier",
    "evaluate_classifier_batched",
    "evaluate_nuevomatch",
    "evaluate_sharded",
    "speedup",
]

#: Per-packet synchronisation overhead of the two-core NuevoMatch pipeline,
#: amortised over the paper's 128-packet batches.
SYNC_OVERHEAD_NS = 5.0


@dataclass
class PerfReport:
    """Latency/throughput estimate for one classifier on one trace."""

    classifier: str
    trace: str
    cores: int
    packets: int
    avg_latency_ns: float
    throughput_pps: float
    breakdown: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    extra: dict = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        return {
            "classifier": self.classifier,
            "trace": self.trace,
            "cores": self.cores,
            "latency_ns": round(self.avg_latency_ns, 1),
            "throughput_Mpps": round(self.throughput_pps / 1e6, 3),
        }


def _average_breakdown(parts: list[LatencyBreakdown]) -> LatencyBreakdown:
    if not parts:
        return LatencyBreakdown()
    total = LatencyBreakdown()
    for part in parts:
        total = total.merge(part)
    return total.scaled(1.0 / len(parts))


def evaluate_classifier(
    classifier: Classifier,
    trace: Trace | Iterable,
    cost_model: CostModel | None = None,
    cores: int = 1,
    max_packets: int | None = None,
) -> PerfReport:
    """Evaluate a (baseline) classifier on a trace.

    With ``cores > 1`` the standard replication model applies: throughput
    scales linearly, per-packet latency does not change (§5.1,
    "Multi-core implementation").
    """
    cost_model = cost_model or CostModel()
    packets = list(trace)[: max_packets or None]
    latencies: list[LatencyBreakdown] = []
    for packet in packets:
        result = classifier.classify_traced(packet)
        latencies.append(cost_model.classifier_lookup_latency(classifier, result.trace))
    breakdown = _average_breakdown(latencies)
    avg_latency = breakdown.total_ns if latencies else 0.0
    throughput = cores / (avg_latency * 1e-9) if avg_latency > 0 else 0.0
    return PerfReport(
        classifier=classifier.name,
        trace=getattr(trace, "name", "trace"),
        cores=cores,
        packets=len(packets),
        avg_latency_ns=avg_latency,
        throughput_pps=throughput,
        breakdown=breakdown,
    )


def evaluate_classifier_batched(
    classifier: Classifier,
    trace: Trace | Iterable,
    cost_model: CostModel | None = None,
    batch_size: int = 128,
    cores: int = 1,
    max_packets: int | None = None,
) -> PerfReport:
    """Evaluate a classifier in batch-serving mode.

    Packets are classified through ``classify_batch`` in fixed-size chunks and
    each chunk is priced in one :class:`CostModel` call on its *aggregated*
    :class:`LookupTrace` — the batch-level accounting the vectorized serving
    path (and the paper's Table-1 batching) makes meaningful.  The reported
    latency is the average per-packet share of its batch's latency.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    cost_model = cost_model or CostModel()
    packets = list(trace)[: max_packets or None]
    total = LatencyBreakdown()
    num_batches = 0
    for start in range(0, len(packets), batch_size):
        chunk = packets[start : start + batch_size]
        results = classifier.classify_batch(chunk)
        aggregate = LookupTrace.aggregate(result.trace for result in results)
        total = total.merge(
            cost_model.classifier_lookup_latency(classifier, aggregate)
        )
        num_batches += 1
    breakdown = total.scaled(1.0 / len(packets)) if packets else LatencyBreakdown()
    avg_latency = breakdown.total_ns if packets else 0.0
    throughput = cores / (avg_latency * 1e-9) if avg_latency > 0 else 0.0
    return PerfReport(
        classifier=classifier.name,
        trace=getattr(trace, "name", "trace"),
        cores=cores,
        packets=len(packets),
        avg_latency_ns=avg_latency,
        throughput_pps=throughput,
        breakdown=breakdown,
        extra={"batch_size": batch_size, "num_batches": num_batches},
    )


def evaluate_nuevomatch(
    nm: NuevoMatch,
    trace: Trace | Iterable,
    cost_model: CostModel | None = None,
    mode: str = "parallel",
    max_packets: int | None = None,
) -> PerfReport:
    """Evaluate NuevoMatch in the paper's two execution modes.

    Args:
        nm: A built NuevoMatch classifier.
        trace: Input packets.
        cost_model: Latency model (defaults to the Xeon Silver hierarchy).
        mode: ``"parallel"`` — iSets and remainder on separate cores (2-core,
            Figure 8); ``"single"`` — both on one core with early termination
            (Figure 9).
        max_packets: Optionally cap the number of evaluated packets.
    """
    if mode not in ("parallel", "single"):
        raise ValueError("mode must be 'parallel' or 'single'")
    cost_model = cost_model or CostModel()
    packets = list(trace)[: max_packets or None]

    rqrmi_bytes = nm.rqrmi_size_bytes()
    value_array_bytes = nm.value_array_bytes()
    remainder_fp = nm.remainder.memory_footprint()
    rule_bytes = nm.memory_footprint().rule_bytes

    latencies: list[LatencyBreakdown] = []
    breakdown_totals = LookupBreakdown()

    for packet in packets:
        if mode == "parallel":
            _best, iset_trace = nm.classify_isets_only(packet)
            remainder_result = nm.remainder.classify_traced(packet)
            iset_latency = cost_model.lookup_latency(
                iset_trace, value_array_bytes, rule_bytes, model_bytes=rqrmi_bytes
            )
            remainder_latency = cost_model.lookup_latency(
                remainder_result.trace,
                remainder_fp.index_bytes,
                remainder_fp.rule_bytes,
            )
            if iset_latency.total_ns >= remainder_latency.total_ns:
                packet_latency = iset_latency
            else:
                packet_latency = remainder_latency
            packet_latency = packet_latency.merge(
                LatencyBreakdown(hash_ns=SYNC_OVERHEAD_NS)
            )
            latencies.append(packet_latency)
        else:
            result, lookup_breakdown = nm.classify_detailed(packet)
            breakdown_totals = breakdown_totals.merge(lookup_breakdown)
            latencies.append(
                cost_model.lookup_latency(
                    result.trace,
                    remainder_fp.index_bytes,
                    rule_bytes,
                    model_bytes=rqrmi_bytes,
                )
            )

    breakdown = _average_breakdown(latencies)
    avg_latency = breakdown.total_ns if latencies else 0.0
    throughput = 1.0 / (avg_latency * 1e-9) if avg_latency > 0 else 0.0
    extra = {
        "coverage": nm.coverage,
        "num_isets": nm.num_isets,
        "rqrmi_bytes": rqrmi_bytes,
        "remainder_index_bytes": remainder_fp.index_bytes,
        "mode": mode,
    }
    if mode == "single" and packets:
        extra["avg_breakdown"] = {
            "inference_ops": breakdown_totals.inference_ops / len(packets),
            "search_accesses": breakdown_totals.search_accesses / len(packets),
            "validation_accesses": breakdown_totals.validation_accesses / len(packets),
            "remainder_accesses": breakdown_totals.remainder_accesses / len(packets),
        }
    return PerfReport(
        classifier=f"nm({nm.remainder.name})",
        trace=getattr(trace, "name", "trace"),
        cores=2 if mode == "parallel" else 1,
        packets=len(packets),
        avg_latency_ns=avg_latency,
        throughput_pps=throughput,
        breakdown=breakdown,
        extra=extra,
    )


def evaluate_sharded(
    sharded,
    trace: Trace | Iterable,
    cost_model: CostModel | None = None,
    batch_size: int = 128,
    max_packets: int | None = None,
) -> PerfReport:
    """Evaluate a :class:`~repro.serving.ShardedEngine` on a trace.

    Shards run on separate cores, so a batch's modelled latency is the
    *maximum* over the shards' batch latencies (each priced on that shard's
    aggregated :class:`LookupTrace` against that shard's structures) plus the
    same per-packet synchronisation overhead as the two-core NuevoMatch
    pipeline.  Throughput is packets over total time — the shard-count
    scaling knob the paper's multi-core evaluation turns.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    cost_model = cost_model or CostModel()
    packets = list(trace)[: max_packets or None]
    shard_classifiers = [
        shard.engine.classifier for shard in sharded._shards
    ]
    total = LatencyBreakdown()
    num_batches = 0
    for start in range(0, len(packets), batch_size):
        chunk = packets[start : start + batch_size]
        per_shard = sharded.classify_batch_per_shard(chunk)
        slowest = LatencyBreakdown()
        for classifier, results in zip(shard_classifiers, per_shard):
            aggregate = LookupTrace.aggregate(result.trace for result in results)
            latency = cost_model.classifier_lookup_latency(classifier, aggregate)
            if latency.total_ns > slowest.total_ns:
                slowest = latency
        total = total.merge(slowest).merge(
            LatencyBreakdown(hash_ns=SYNC_OVERHEAD_NS * len(chunk))
        )
        num_batches += 1
    breakdown = total.scaled(1.0 / len(packets)) if packets else LatencyBreakdown()
    avg_latency = breakdown.total_ns if packets else 0.0
    throughput = 1.0 / (avg_latency * 1e-9) if avg_latency > 0 else 0.0
    return PerfReport(
        classifier=f"sharded[{sharded.num_shards}]",
        trace=getattr(trace, "name", "trace"),
        cores=sharded.num_shards,
        packets=len(packets),
        avg_latency_ns=avg_latency,
        throughput_pps=throughput,
        breakdown=breakdown,
        extra={
            "batch_size": batch_size,
            "num_batches": num_batches,
            "num_shards": sharded.num_shards,
            "shard_sizes": sharded.shard_sizes(),
        },
    )


def speedup(nm_report: PerfReport, baseline_report: PerfReport) -> dict[str, float]:
    """Latency and throughput speedups of NuevoMatch over a baseline."""
    latency_speedup = (
        baseline_report.avg_latency_ns / nm_report.avg_latency_ns
        if nm_report.avg_latency_ns > 0
        else 0.0
    )
    throughput_speedup = (
        nm_report.throughput_pps / baseline_report.throughput_pps
        if baseline_report.throughput_pps > 0
        else 0.0
    )
    return {"latency": latency_speedup, "throughput": throughput_speedup}
