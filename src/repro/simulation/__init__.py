"""Performance substrate: cache model, cost model and evaluation harness."""

from repro.simulation.cache import CacheHierarchy, CacheLevel
from repro.simulation.cost_model import CostModel, LatencyBreakdown
from repro.simulation.perf import (
    PerfReport,
    evaluate_classifier,
    evaluate_classifier_batched,
    evaluate_nuevomatch,
    evaluate_sharded,
    speedup,
)
from repro.simulation.vectorization import (
    SUBMODEL_SCALAR_OPS,
    VECTOR_WIDTHS,
    inference_time_ns,
    measure_inference_ns,
    table1_model,
)

__all__ = [
    "CacheHierarchy",
    "CacheLevel",
    "CostModel",
    "LatencyBreakdown",
    "PerfReport",
    "evaluate_classifier",
    "evaluate_classifier_batched",
    "evaluate_nuevomatch",
    "evaluate_sharded",
    "speedup",
    "SUBMODEL_SCALAR_OPS",
    "VECTOR_WIDTHS",
    "inference_time_ns",
    "measure_inference_ns",
    "table1_model",
]
