"""Vectorised submodel inference cost model (Table 1).

Each RQ-RMI submodel is a 1×8×1 ReLU network; its inference is a handful of
fused multiply-adds that map directly onto SIMD lanes (§4, Table 1).  The
paper measures 126 ns per inference with scalar code, 62 ns with SSE (4 floats
per instruction) and 49 ns with AVX (8 floats).  This module provides:

* an analytic model calibrated to those measurements (a fixed per-inference
  overhead plus a per-scalar-operation cost divided by the vector width), and
* a wall-clock measurement helper that times the pure-numpy implementation at
  different effective widths, to show the same trend on the host running the
  benchmarks.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.submodel import Submodel

__all__ = [
    "SUBMODEL_SCALAR_OPS",
    "inference_time_ns",
    "table1_model",
    "measure_inference_ns",
    "VECTOR_WIDTHS",
]

#: Scalar floating-point operations in one 1×8×1 submodel inference:
#: 8 multiplies + 8 adds (hidden pre-activation), 8 ReLUs, 8 multiply-adds
#: (output layer) — the "handful of vector instructions" of §4.
SUBMODEL_SCALAR_OPS = 32

#: Vector widths of Table 1: scalar, SSE (4 floats), AVX (8 floats).
VECTOR_WIDTHS = {"Serial": 1, "SSE": 4, "AVX": 8}

#: Calibration constants fitted to Table 1 (126 / 62 / 49 ns).
_NS_PER_SCALAR_OP = 2.67
_FIXED_OVERHEAD_NS = 40.6


def inference_time_ns(
    vector_width: int,
    scalar_ops: int = SUBMODEL_SCALAR_OPS,
    ns_per_op: float = _NS_PER_SCALAR_OP,
    overhead_ns: float = _FIXED_OVERHEAD_NS,
) -> float:
    """Modelled single-submodel inference time for a given vector width."""
    if vector_width < 1:
        raise ValueError("vector_width must be at least 1")
    return scalar_ops / vector_width * ns_per_op + overhead_ns


def table1_model() -> dict[str, float]:
    """The modelled Table 1 row: instruction set → inference time (ns)."""
    return {name: inference_time_ns(width) for name, width in VECTOR_WIDTHS.items()}


def measure_inference_ns(
    submodel: Submodel | None = None,
    lanes: int = 1,
    iterations: int = 2000,
    seed: int = 0,
) -> float:
    """Measure wall-clock numpy inference time with ``lanes`` keys per call.

    Evaluating ``lanes`` independent keys in one vectorised numpy call mimics
    packing more floats per instruction; the per-key time dropping with
    ``lanes`` is the Python-level analogue of Table 1's SIMD trend.
    """
    if submodel is None:
        rng = np.random.default_rng(seed)
        submodel = Submodel(
            rng.normal(size=8), rng.normal(size=8), rng.normal(size=8), 0.0
        )
    keys = np.random.default_rng(seed).random(lanes)
    # Warm up.
    submodel.predict_batch(keys)
    start = time.perf_counter()
    for _ in range(iterations):
        submodel.predict_batch(keys)
    elapsed = time.perf_counter() - start
    return elapsed / iterations / lanes * 1e9
