"""Serialization of rule-sets and engine snapshots.

The engine file format is a single JSON document (gzip-compressed when the
path ends in ``.gz``)::

    {
      "format": 1,                 # engine file format version
      "repro_version": "1.1.0",    # library that wrote the file
      "classifier_kind": "nm",     # registry name of the classifier
      "ruleset": {...},            # schema + rules, exact integer ranges
      "classifier": {...},         # the classifier's to_state() payload
      "metadata": {...}            # free-form caller annotations
    }

Rules are stored with their exact ranges, priority, action and ``rule_id``,
so a restored classifier sees the same rule objects (by value) in the same
order — a requirement for bitwise-identical lookups after a round-trip.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

from repro.rules.fields import FieldSchema, FieldSpec
from repro.rules.rule import Rule, RuleSet

__all__ = [
    "ENGINE_FILE_VERSION",
    "SHARDED_FILE_VERSION",
    "rule_to_state",
    "rule_from_state",
    "ruleset_to_state",
    "ruleset_from_state",
    "write_engine_file",
    "read_engine_file",
    "read_document",
]

#: Version of the on-disk engine file layout.
ENGINE_FILE_VERSION = 1

#: Version of the on-disk sharded-engine snapshot layout (a top-level document
#: embedding one engine document per shard; see ``repro.serving``).
SHARDED_FILE_VERSION = 1


def rule_to_state(rule: Rule) -> list:
    """JSON-compatible dump of one rule: exact ranges, priority, action, id."""
    return [
        [[int(lo), int(hi)] for lo, hi in rule.ranges],
        rule.priority,
        rule.action,
        rule.rule_id,
    ]


def rule_from_state(state: list) -> Rule:
    """Inverse of :func:`rule_to_state`."""
    ranges, priority, action, rule_id = state
    return Rule(
        ranges=tuple((int(lo), int(hi)) for lo, hi in ranges),
        priority=int(priority),
        action=action,
        rule_id=int(rule_id),
    )


def ruleset_to_state(ruleset: RuleSet) -> dict:
    """JSON-compatible dump of a rule-set: schema plus exact rules."""
    return {
        "name": ruleset.name,
        "schema": [
            {"name": spec.name, "bits": spec.bits, "kind": spec.kind}
            for spec in ruleset.schema
        ],
        "rules": [rule_to_state(rule) for rule in ruleset],
    }


def ruleset_from_state(state: dict) -> RuleSet:
    """Inverse of :func:`ruleset_to_state`."""
    schema = FieldSchema(
        [
            FieldSpec(spec["name"], int(spec["bits"]), spec.get("kind", "int"))
            for spec in state["schema"]
        ]
    )
    rules = [rule_from_state(rule_state) for rule_state in state["rules"]]
    return RuleSet(rules, schema, name=state.get("name", "ruleset"))


def write_engine_file(path: str | Path, document: dict) -> None:
    """Write an engine snapshot document as (optionally gzipped) JSON."""
    path = Path(path)
    payload = json.dumps(document, separators=(",", ":")).encode("utf-8")
    if path.suffix == ".gz":
        with gzip.open(path, "wb") as handle:
            handle.write(payload)
    else:
        path.write_bytes(payload)


def read_document(path: str | Path) -> dict:
    """Read an (optionally gzipped) JSON snapshot document, no version check.

    Callers validate the ``format`` field themselves — engine files and
    sharded-engine files are versioned independently.
    """
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rb") as handle:
            payload = handle.read()
    else:
        payload = path.read_bytes()
    return json.loads(payload.decode("utf-8"))


def read_engine_file(path: str | Path) -> dict:
    """Read an engine snapshot document written by :func:`write_engine_file`."""
    document = read_document(path)
    version = document.get("format")
    if version != ENGINE_FILE_VERSION:
        raise ValueError(
            f"unsupported engine file format {version!r} "
            f"(this build reads version {ENGINE_FILE_VERSION})"
        )
    return document
