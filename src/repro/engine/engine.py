"""The :class:`ClassificationEngine` serving facade.

The engine owns the build → serve → update → persist lifecycle for any
registered classifier:

* **build** — ``ClassificationEngine.build(ruleset, classifier="nm", ...)``
  resolves the classifier through the registry and constructs it.
* **serve** — batch-first lookups: :meth:`classify_batch` is the primary
  interface (the paper's throughput comes from batched, vectorized RQ-RMI
  inference); :meth:`classify` / :meth:`classify_traced` remain for
  single-packet use.
* **update** — :meth:`insert` / :meth:`remove` delegate to classifiers that
  implement :class:`~repro.classifiers.base.UpdatableClassifier`.
* **persist** — :meth:`save` / :meth:`load` round-trip the trained structures
  (RQ-RMI submodels, iSet partitions, remainder state) through the versioned
  ``to_state``/``from_state`` protocol, so training cost is paid once per
  rule-set.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.classifiers.base import (
    TRACE_FIELDS,
    ClassificationResult,
    Classifier,
    LookupTrace,
    MemoryFootprint,
    UpdatableClassifier,
    results_to_arrays,
)
from repro.classifiers.registry import resolve_classifier
from repro.engine.serialization import (
    ENGINE_FILE_VERSION,
    read_document,
    ruleset_from_state,
    ruleset_to_state,
    write_engine_file,
)
from repro.rules.rule import Packet, Rule, RuleSet

__all__ = [
    "ClassificationEngine",
    "BatchReport",
    "serve_in_batches",
    "results_to_arrays",
    "validate_block",
]


def validate_block(block) -> np.ndarray:
    """Validate a packet block and return it as contiguous ``(n, fields)`` uint64.

    The one shared entry gate for every engine stack's ``classify_block``
    (plain, sharded, cached), so validation — and its error messages — cannot
    diverge between them:

    * the block must be a numeric *integer* array (object/ragged and float
      inputs are rejected, never probed),
    * it must be 2-dimensional,
    * field values must be non-negative (signed inputs are checked, not
      silently wrapped into huge uint64 values).

    Already-conforming uint64 arrays pass through zero-copy.
    """
    array = np.asarray(block)
    if not np.issubdtype(array.dtype, np.integer):
        raise ValueError("packet block must be an integer array")
    if array.ndim != 2:
        raise ValueError("packet block must be 2-dimensional")
    if np.issubdtype(array.dtype, np.signedinteger) and array.size:
        if int(array.min()) < 0:
            raise ValueError("packet field values must be non-negative")
    return np.ascontiguousarray(array, dtype=np.uint64)


class BatchReport:
    """Outcome of one served batch: per-packet results + aggregate trace."""

    def __init__(self, results: list[ClassificationResult]):
        self.results = results
        self.trace = LookupTrace.aggregate(result.trace for result in results)
        # Counted once here rather than re-scanning the results on every
        # property access — serve loops read `matched` per batch.
        self._matched = sum(1 for result in results if result.matched)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def matched(self) -> int:
        """Number of packets that matched some rule."""
        return self._matched


def serve_in_batches(
    classify_batch, packets: Iterable, batch_size: int = 128
) -> Iterable[BatchReport]:
    """Serve a packet stream in fixed-size batches through ``classify_batch``.

    Shared by every serving front-end (:meth:`ClassificationEngine.serve`,
    :meth:`repro.serving.ShardedEngine.serve`) so batching semantics cannot
    drift between them.  The ``batch_size`` validation fires at the call
    site, not on first iteration.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")

    def _batches() -> Iterable[BatchReport]:
        batch: list = []
        for packet in packets:
            batch.append(packet)
            if len(batch) >= batch_size:
                yield BatchReport(classify_batch(batch))
                batch = []
        if batch:
            yield BatchReport(classify_batch(batch))

    return _batches()


class ClassificationEngine:
    """Facade over a built classifier: batch serving, updates, persistence."""

    def __init__(
        self,
        classifier: Classifier,
        metadata: dict | None = None,
    ):
        self.classifier = classifier
        self.metadata = dict(metadata or {})
        # Online updates applied through the engine, so save() can persist the
        # *effective* rule-set (the classifier's own ruleset is the build-time
        # snapshot and does not see insert/remove).
        self._inserted: dict[int, Rule] = {}
        self._removed: set[int] = set()
        self._rules_by_id_cache: dict[int, Rule] | None = None

    # ------------------------------------------------------------------ build

    @classmethod
    def build(
        cls,
        ruleset: RuleSet,
        classifier: str | type[Classifier] = "nm",
        metadata: dict | None = None,
        pipeline=None,
        warm_from=None,
        **params,
    ) -> "ClassificationEngine":
        """Build an engine over ``ruleset``.

        Args:
            ruleset: Input rules.
            classifier: Registry name/alias (``"nm"``, ``"tuplemerge"``, …) or
                a :class:`Classifier` subclass.
            metadata: Free-form annotations persisted with :meth:`save`.
            pipeline: A :class:`~repro.core.pipeline.TrainingPipeline` for
                classifiers with trained state (NuevoMatch): stage training
                runs vectorized and fans across ``pipeline.jobs`` processes.
            warm_from: A previous engine (or its classifier) over an earlier
                version of the rules; trained submodels are seeded/reused
                from it (see :meth:`NuevoMatch.build
                <repro.core.nuevomatch.NuevoMatch.build>`).
            **params: Forwarded to the classifier's ``build`` (e.g. ``config``
                for NuevoMatch, ``binth`` for the tree baselines).

        The resulting training provenance (pipeline mode, job count,
        warm-start reuse counters) is recorded under the engine metadata's
        ``"training"`` key and persisted by :meth:`save`.
        """
        classifier_cls = (
            resolve_classifier(classifier) if isinstance(classifier, str) else classifier
        )
        pipelined = pipeline is not None or warm_from is not None
        if pipelined:
            if not getattr(classifier_cls, "supports_training_pipeline", False):
                raise ValueError(
                    f"classifier {classifier_cls.name!r} has no trained state; "
                    "pipeline/warm_from apply to NuevoMatch-style classifiers"
                )
            if warm_from is not None and isinstance(warm_from, cls):
                warm_from = warm_from.classifier
            params["pipeline"] = pipeline
            params["warm_from"] = warm_from
        built = classifier_cls.build(ruleset, **params)
        provenance = getattr(built, "training_provenance", None)
        if pipelined and provenance:
            metadata = dict(metadata or {})
            metadata.setdefault("training", dict(provenance))
        return cls(built, metadata=metadata)

    # ------------------------------------------------------------------ serve

    @property
    def ruleset(self) -> RuleSet:
        return self.classifier.ruleset

    @property
    def classifier_name(self) -> str:
        return self.classifier.name

    def classify(self, packet: Packet | Sequence[int]) -> Optional[Rule]:
        """Single-packet lookup (thin wrapper; prefer :meth:`classify_batch`)."""
        return self.classifier.classify(packet)

    def classify_traced(self, packet: Packet | Sequence[int]) -> ClassificationResult:
        return self.classifier.classify_traced(packet)

    def classify_batch(
        self, packets: Sequence[Packet | Sequence[int]]
    ) -> list[ClassificationResult]:
        """Classify a batch of packets (vectorized where the classifier allows).

        For classifiers with a columnar path (``supports_block``) this is a
        thin object-materializing wrapper over :meth:`classify_block`: the
        lookup itself stays columnar and the per-packet
        :class:`ClassificationResult`/:class:`LookupTrace` objects are built
        only here, because this caller asked for them.
        """
        classifier = self.classifier
        if not getattr(classifier, "supports_block", False):
            return classifier.classify_batch(packets)
        if isinstance(packets, np.ndarray) and packets.ndim == 2:
            block = packets
        else:
            packet_list = list(packets)
            if not packet_list:
                return []
            block = np.array(
                [
                    packet.values if isinstance(packet, Packet) else tuple(packet)
                    for packet in packet_list
                ],
                dtype=np.int64,
            )
        n = len(block)
        if n == 0:
            return []
        traces = np.zeros((n, len(TRACE_FIELDS)), dtype=np.int64)
        rule_ids, _priorities = classifier.classify_block(
            validate_block(block), traces=traces
        )
        by_id = self.rules_by_id()
        results: list[ClassificationResult] = []
        for row in range(n):
            rule_id = int(rule_ids[row])
            rule = None
            if rule_id >= 0:
                rule = by_id.get(rule_id)
                if rule is None:  # map went stale under a direct classifier update
                    by_id = self.rules_by_id(refresh=True)
                    rule = by_id.get(rule_id)
            results.append(
                ClassificationResult(
                    rule,
                    LookupTrace(
                        index_accesses=int(traces[row, 0]),
                        rule_accesses=int(traces[row, 1]),
                        model_accesses=int(traces[row, 2]),
                        compute_ops=int(traces[row, 3]),
                        hash_ops=int(traces[row, 4]),
                    ),
                )
            )
        return results

    def classify_block(
        self,
        block: np.ndarray,
        traces: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Columnar lookup: ``(n, fields)`` uint64 block → ``(rule_ids, priorities)``.

        The serving data plane's native shape (shared-memory rings, wire
        protocol v2) and the primitive every other lookup surface wraps.
        Misses encode as ``rule_id == -1`` with ``priority == 0``.  ``traces``
        is an optional ``(n, 5)`` int64 out-array filled with per-packet
        lookup counters (:data:`~repro.classifiers.base.TRACE_FIELDS` order).
        Input validation is shared across all engine stacks via
        :func:`validate_block`.  Classifiers without a columnar path fall
        back to the object route inside
        :meth:`Classifier.classify_block <repro.classifiers.base.Classifier.classify_block>`.
        """
        return self.classifier.classify_block(validate_block(block), traces=traces)

    def rules_by_id(self, refresh: bool = False) -> dict[int, Rule]:
        """Map ``rule_id`` → :class:`Rule` over the *effective* rules.

        Used by :meth:`classify_batch` (and wrapping stacks like
        ``CachedEngine``) to materialize Rule objects from columnar
        ``rule_ids``.  Cached; invalidated by :meth:`insert`/:meth:`remove`.
        """
        if refresh or self._rules_by_id_cache is None:
            mapping = {rule.rule_id: rule for rule in self.ruleset}
            for rule_id in self._removed:
                mapping.pop(rule_id, None)
            mapping.update(self._inserted)
            self._rules_by_id_cache = mapping
        return self._rules_by_id_cache

    def serve(
        self, packets: Iterable[Packet | Sequence[int]], batch_size: int = 128
    ) -> Iterable[BatchReport]:
        """Serve a packet stream in fixed-size batches, yielding batch reports."""
        return serve_in_batches(self.classify_batch, packets, batch_size)

    def verify(self, packets: Iterable[Packet]) -> int:
        """Check the engine against linear search; see :meth:`Classifier.verify`."""
        return self.classifier.verify(packets)

    def close(self) -> None:
        """Release serving resources (a plain engine holds none).

        Part of the uniform engine-stack surface — ``classify_batch`` /
        ``insert`` / ``remove`` / ``statistics`` / ``close`` — that serving
        front-ends (:class:`~repro.serving.ShardedEngine` wrappers, the
        :class:`~repro.serving.server.AsyncServer`) rely on, so any stack can
        be torn down without type-sniffing.
        """

    def __enter__(self) -> "ClassificationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------------- update

    @property
    def supports_updates(self) -> bool:
        """True when :meth:`insert`/:meth:`remove` will be accepted."""
        return isinstance(self.classifier, UpdatableClassifier)

    def insert(self, rule: Rule) -> None:
        """Insert a rule online (classifiers supporting updates only)."""
        self._updatable().insert(rule)
        self._removed.discard(rule.rule_id)
        self._inserted[rule.rule_id] = rule
        self._rules_by_id_cache = None

    def remove(self, rule_id: int) -> bool:
        """Remove a rule online; returns True if it was present."""
        removed = self._updatable().remove(rule_id)
        if removed:
            if rule_id in self._inserted:
                del self._inserted[rule_id]
            else:
                self._removed.add(rule_id)
            self._rules_by_id_cache = None
        return removed

    def _effective_ruleset(self) -> RuleSet:
        """The build-time rule-set with the engine's online updates applied."""
        if not self._inserted and not self._removed:
            return self.ruleset
        rules = [
            rule
            for rule in self.ruleset
            if rule.rule_id not in self._removed and rule.rule_id not in self._inserted
        ]
        rules.extend(self._inserted.values())
        return self.ruleset.subset(rules)

    def _updatable(self) -> UpdatableClassifier:
        if not isinstance(self.classifier, UpdatableClassifier):
            raise TypeError(
                f"classifier {self.classifier_name!r} does not support online "
                "updates; wrap NuevoMatch in repro.core.UpdatableNuevoMatch or "
                "use an updatable remainder classifier (tss, tm)"
            )
        return self.classifier

    # ----------------------------------------------------------- introspection

    def memory_footprint(self) -> MemoryFootprint:
        return self.classifier.memory_footprint()

    def statistics(self) -> dict[str, object]:
        stats = self.classifier.statistics()
        stats["engine_metadata"] = dict(self.metadata)
        return stats

    # ------------------------------------------------------------ persistence

    def to_document(self) -> dict:
        """The engine's snapshot document (the JSON payload :meth:`save` writes).

        Exposed separately so composite snapshots — the sharded-engine format
        embeds one engine document per shard — reuse the same layout.
        """
        from repro import __version__

        return {
            "format": ENGINE_FILE_VERSION,
            "repro_version": __version__,
            "classifier_kind": self.classifier_name,
            "ruleset": ruleset_to_state(self._effective_ruleset()),
            "classifier": self.classifier.to_state(),
            "metadata": self.metadata,
        }

    @classmethod
    def from_document(cls, document: dict) -> "ClassificationEngine":
        """Inverse of :meth:`to_document` (validates the format version)."""
        if document.get("kind") == "sharded-engine":
            raise ValueError(
                "this is a sharded-engine snapshot; load it with "
                "repro.serving.ShardedEngine.load"
            )
        version = document.get("format")
        if version != ENGINE_FILE_VERSION:
            raise ValueError(
                f"unsupported engine file format {version!r} "
                f"(this build reads version {ENGINE_FILE_VERSION})"
            )
        ruleset = ruleset_from_state(document["ruleset"])
        classifier_cls = resolve_classifier(document["classifier_kind"])
        classifier = classifier_cls.from_state(document["classifier"], ruleset)
        return cls(classifier, metadata=document.get("metadata"))

    def save(self, path: str | Path) -> None:
        """Persist the engine — rules plus trained classifier state — to disk.

        The snapshot restores with :meth:`load` to an engine whose
        ``classify_batch`` output is bitwise-identical to this one's, without
        repeating RQ-RMI training.  An engine that received online
        :meth:`insert`/:meth:`remove` updates is persisted with its *updated*
        rule-set and restored by rebuilding over it: the restored matches
        include every update, though the rebuilt structure's lookup traces may
        differ from the incrementally-updated original's.  Paths ending in
        ``.gz`` are compressed.
        """
        write_engine_file(path, self.to_document())

    @classmethod
    def load(cls, path: str | Path) -> "ClassificationEngine":
        """Restore an engine saved with :meth:`save`.

        The format/kind validation lives in :meth:`from_document` alone, so
        the raw document is read without a second version check.
        """
        return cls.from_document(read_document(path))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClassificationEngine({self.classifier_name!r}, "
            f"{len(self.ruleset)} rules)"
        )
