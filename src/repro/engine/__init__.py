"""Serving layer: the :class:`ClassificationEngine` facade.

This package is the canonical entry point for using the library as a
classification *service* rather than a bag of algorithms::

    from repro.engine import ClassificationEngine

    engine = ClassificationEngine.build(ruleset, classifier="nm")
    results = engine.classify_batch(packets)       # batch-first serving
    engine.save("acl1.engine.json.gz")             # training paid once
    restored = ClassificationEngine.load("acl1.engine.json.gz")

See :mod:`repro.engine.engine` for the facade and
:mod:`repro.engine.serialization` for the on-disk format.
"""

from repro.engine.engine import (
    BatchReport,
    ClassificationEngine,
    results_to_arrays,
    serve_in_batches,
    validate_block,
)
from repro.engine.serialization import (
    ENGINE_FILE_VERSION,
    SHARDED_FILE_VERSION,
    read_document,
    read_engine_file,
    rule_from_state,
    rule_to_state,
    ruleset_from_state,
    ruleset_to_state,
    write_engine_file,
)

__all__ = [
    "ClassificationEngine",
    "BatchReport",
    "serve_in_batches",
    "results_to_arrays",
    "validate_block",
    "ENGINE_FILE_VERSION",
    "SHARDED_FILE_VERSION",
    "rule_to_state",
    "rule_from_state",
    "ruleset_to_state",
    "ruleset_from_state",
    "write_engine_file",
    "read_engine_file",
    "read_document",
]
