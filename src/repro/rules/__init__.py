"""Rule model, generators and parsers.

Public API:

* :class:`~repro.rules.fields.FieldSchema`, :data:`~repro.rules.fields.FIVE_TUPLE`,
  :data:`~repro.rules.fields.FORWARDING` — field schemas.
* :class:`~repro.rules.rule.Rule`, :class:`~repro.rules.rule.Packet`,
  :class:`~repro.rules.rule.RuleSet` — the data model.
* :func:`~repro.rules.classbench.generate_classbench` — ClassBench-like
  synthetic rule-sets (ACL/FW/IPC).
* :func:`~repro.rules.stanford.generate_stanford_backbone` — forwarding tables.
* :func:`~repro.rules.parser.parse_classbench_file` /
  :func:`~repro.rules.parser.write_classbench_file` — the ClassBench text format.
"""

from repro.rules.fields import (
    FIVE_TUPLE,
    FORWARDING,
    FieldSchema,
    FieldSpec,
    int_to_ip,
    ip_to_int,
    merge_ranges,
    prefix_length_of_range,
    prefix_to_range,
    range_is_prefix,
    range_to_prefixes,
)
from repro.rules.rule import Packet, Rule, RuleSet
from repro.rules.classbench import (
    APPLICATION_PROFILES,
    CLASSBENCH_APPLICATIONS,
    blend_rulesets,
    generate_classbench,
    generate_low_diversity,
)
from repro.rules.stanford import generate_stanford_backbone
from repro.rules.parser import (
    parse_classbench_file,
    parse_classbench_lines,
    write_classbench_file,
)

__all__ = [
    "FieldSchema",
    "FieldSpec",
    "FIVE_TUPLE",
    "FORWARDING",
    "Packet",
    "Rule",
    "RuleSet",
    "APPLICATION_PROFILES",
    "CLASSBENCH_APPLICATIONS",
    "generate_classbench",
    "generate_low_diversity",
    "generate_stanford_backbone",
    "blend_rulesets",
    "parse_classbench_file",
    "parse_classbench_lines",
    "write_classbench_file",
    "ip_to_int",
    "int_to_ip",
    "prefix_to_range",
    "range_to_prefixes",
    "range_is_prefix",
    "prefix_length_of_range",
    "merge_ranges",
]
