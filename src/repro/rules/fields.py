"""Field definitions and conversions between prefixes, ranges and values.

A classification *field* is a fixed-width unsigned integer (e.g. a 32-bit IPv4
address or a 16-bit transport port).  Rules constrain fields with inclusive
integer ranges ``[lo, hi]``; prefixes and exact values are special cases of
ranges.  This module holds the field schema used across the library plus the
helpers to move between the textual ClassBench representation (dotted-quad
prefixes, port ranges, protocol/mask) and integer ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "FieldSpec",
    "FieldSchema",
    "FIVE_TUPLE",
    "FORWARDING",
    "ip_to_int",
    "int_to_ip",
    "prefix_to_range",
    "range_to_prefixes",
    "range_is_prefix",
    "prefix_length_of_range",
]


@dataclass(frozen=True)
class FieldSpec:
    """A single match field.

    Attributes:
        name: Human-readable field name (e.g. ``"src_ip"``).
        bits: Field width in bits; values lie in ``[0, 2**bits - 1]``.
        kind: Informal category used by generators and parsers, one of
            ``"ip"``, ``"port"``, ``"proto"`` or ``"int"``.
    """

    name: str
    bits: int
    kind: str = "int"

    @property
    def max_value(self) -> int:
        """Largest representable value for this field."""
        return (1 << self.bits) - 1

    @property
    def domain_size(self) -> int:
        """Number of distinct values the field can take."""
        return 1 << self.bits

    def full_range(self) -> tuple[int, int]:
        """The wildcard range covering the whole field domain."""
        return (0, self.max_value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FieldSpec({self.name!r}, bits={self.bits}, kind={self.kind!r})"


class FieldSchema:
    """An ordered collection of :class:`FieldSpec` describing rule structure.

    The schema defines the number of dimensions, their names and widths.  All
    rules and packets in a :class:`~repro.rules.rule.RuleSet` share one schema.
    """

    def __init__(self, specs: Sequence[FieldSpec]):
        if not specs:
            raise ValueError("a FieldSchema needs at least one field")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in schema: {names}")
        self._specs = tuple(specs)
        self._index = {s.name: i for i, s in enumerate(self._specs)}

    @property
    def specs(self) -> tuple[FieldSpec, ...]:
        return self._specs

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self):
        return iter(self._specs)

    def __getitem__(self, key: int | str) -> FieldSpec:
        if isinstance(key, str):
            return self._specs[self._index[key]]
        return self._specs[key]

    def index_of(self, name: str) -> int:
        """Return the dimension index of the field called ``name``."""
        return self._index[name]

    def full_ranges(self) -> tuple[tuple[int, int], ...]:
        """Wildcard ranges for every field (a rule matching everything)."""
        return tuple(s.full_range() for s in self._specs)

    def validate_ranges(self, ranges: Sequence[tuple[int, int]]) -> None:
        """Raise ``ValueError`` if ``ranges`` does not fit this schema."""
        if len(ranges) != len(self._specs):
            raise ValueError(
                f"expected {len(self._specs)} ranges, got {len(ranges)}"
            )
        for (lo, hi), spec in zip(ranges, self._specs):
            if lo > hi:
                raise ValueError(f"{spec.name}: empty range [{lo}, {hi}]")
            if lo < 0 or hi > spec.max_value:
                raise ValueError(
                    f"{spec.name}: range [{lo}, {hi}] outside "
                    f"[0, {spec.max_value}]"
                )

    def validate_values(self, values: Sequence[int]) -> None:
        """Raise ``ValueError`` if packet ``values`` do not fit this schema."""
        if len(values) != len(self._specs):
            raise ValueError(
                f"expected {len(self._specs)} values, got {len(values)}"
            )
        for value, spec in zip(values, self._specs):
            if value < 0 or value > spec.max_value:
                raise ValueError(
                    f"{spec.name}: value {value} outside [0, {spec.max_value}]"
                )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FieldSchema):
            return NotImplemented
        return self._specs == other._specs

    def __hash__(self) -> int:
        return hash(self._specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FieldSchema({list(self.names)})"


#: The classic 5-tuple schema used by ClassBench and the paper's evaluation.
FIVE_TUPLE = FieldSchema(
    [
        FieldSpec("src_ip", 32, "ip"),
        FieldSpec("dst_ip", 32, "ip"),
        FieldSpec("src_port", 16, "port"),
        FieldSpec("dst_port", 16, "port"),
        FieldSpec("protocol", 8, "proto"),
    ]
)

#: Single destination-IP schema used by the Stanford backbone forwarding sets.
FORWARDING = FieldSchema([FieldSpec("dst_ip", 32, "ip")])


def ip_to_int(text: str) -> int:
    """Convert a dotted-quad IPv4 address to its 32-bit integer value."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted-quad IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if octet < 0 or octet > 255:
            raise ValueError(f"octet {octet} out of range in {text!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to a dotted-quad IPv4 address string."""
    if value < 0 or value > 0xFFFFFFFF:
        raise ValueError(f"value {value} is not a 32-bit address")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def prefix_to_range(value: int, prefix_len: int, bits: int = 32) -> tuple[int, int]:
    """Convert a ``value/prefix_len`` prefix to an inclusive integer range.

    Args:
        value: The prefix value (host bits are ignored).
        prefix_len: Number of significant leading bits, ``0 <= prefix_len <= bits``.
        bits: Field width.

    Returns:
        ``(lo, hi)`` covering every value matching the prefix.
    """
    if prefix_len < 0 or prefix_len > bits:
        raise ValueError(f"prefix length {prefix_len} outside [0, {bits}]")
    if prefix_len == 0:
        return (0, (1 << bits) - 1)
    host_bits = bits - prefix_len
    mask = ((1 << prefix_len) - 1) << host_bits
    lo = value & mask
    hi = lo | ((1 << host_bits) - 1)
    return (lo, hi)


def range_is_prefix(lo: int, hi: int, bits: int = 32) -> bool:
    """Return True if ``[lo, hi]`` is exactly expressible as a single prefix."""
    span = hi - lo + 1
    if span & (span - 1):
        return False  # not a power of two
    return lo % span == 0


def prefix_length_of_range(lo: int, hi: int, bits: int = 32) -> int | None:
    """Prefix length of ``[lo, hi]`` if it is a prefix range, else ``None``."""
    if not range_is_prefix(lo, hi, bits):
        return None
    span = hi - lo + 1
    return bits - span.bit_length() + 1


def range_to_prefixes(lo: int, hi: int, bits: int = 32) -> list[tuple[int, int]]:
    """Decompose an arbitrary range into a minimal list of prefixes.

    Returns a list of ``(value, prefix_len)`` pairs whose union equals
    ``[lo, hi]``.  This is the standard greedy decomposition used when loading
    range rules into prefix-only structures (e.g. tuple-space hash tables).
    """
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    prefixes: list[tuple[int, int]] = []
    cursor = lo
    while cursor <= hi:
        # Largest power-of-two block starting at `cursor` that is aligned and
        # does not overshoot `hi`.
        max_align = cursor & -cursor if cursor else (1 << bits)
        max_span = hi - cursor + 1
        block = min(max_align, 1 << (max_span.bit_length() - 1))
        prefix_len = bits - (block.bit_length() - 1)
        prefixes.append((cursor, prefix_len))
        cursor += block
    return prefixes


def merge_ranges(ranges: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge overlapping/adjacent inclusive ranges into a sorted disjoint list."""
    ordered = sorted(ranges)
    merged: list[tuple[int, int]] = []
    for lo, hi in ordered:
        if merged and lo <= merged[-1][1] + 1:
            prev_lo, prev_hi = merged[-1]
            merged[-1] = (prev_lo, max(prev_hi, hi))
        else:
            merged.append((lo, hi))
    return merged
