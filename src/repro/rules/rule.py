"""Rule, Packet and RuleSet data model.

A :class:`Rule` matches a packet when every packet field value falls inside
the rule's inclusive range for that field.  When several rules match, the one
with the *highest priority* wins; following the paper (Figure 2) lower
numeric priority values denote higher priority (priority 1 beats priority 5).

A :class:`RuleSet` is an ordered collection of rules sharing one
:class:`~repro.rules.fields.FieldSchema`, with helpers used throughout the
library: linear-search ground truth, per-field projections, sampling of
matching packets, and structural statistics (diversity, overlap).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.rules.fields import FIVE_TUPLE, FieldSchema

__all__ = ["Packet", "Rule", "RuleSet"]


@dataclass(frozen=True)
class Packet:
    """An immutable packet header: one integer value per schema field."""

    values: tuple[int, ...]

    def __getitem__(self, dim: int) -> int:
        return self.values[dim]

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[int]:
        return iter(self.values)


@dataclass(frozen=True)
class Rule:
    """A multi-field classification rule.

    Attributes:
        ranges: One inclusive ``(lo, hi)`` range per field.
        priority: Lower values win (priority 1 beats priority 2).
        action: Opaque action identifier returned to the caller on a match.
        rule_id: Stable identifier, unique within a rule-set.
    """

    ranges: tuple[tuple[int, int], ...]
    priority: int
    action: str = ""
    rule_id: int = -1

    def matches(self, packet: Packet | Sequence[int]) -> bool:
        """Return True if every packet field lies inside the rule's range."""
        values = packet.values if isinstance(packet, Packet) else packet
        for (lo, hi), value in zip(self.ranges, values):
            if value < lo or value > hi:
                return False
        return True

    def matches_field(self, dim: int, value: int) -> bool:
        """Return True if ``value`` lies in the rule's range for field ``dim``."""
        lo, hi = self.ranges[dim]
        return lo <= value <= hi

    def field_range(self, dim: int) -> tuple[int, int]:
        """The rule's inclusive range in field ``dim``."""
        return self.ranges[dim]

    def field_span(self, dim: int) -> int:
        """Number of values matched in field ``dim``."""
        lo, hi = self.ranges[dim]
        return hi - lo + 1

    def is_exact(self, dim: int) -> bool:
        """True if the rule matches a single value in field ``dim``."""
        lo, hi = self.ranges[dim]
        return lo == hi

    def is_wildcard(self, dim: int, schema: FieldSchema) -> bool:
        """True if the rule matches the whole domain of field ``dim``."""
        return self.ranges[dim] == schema[dim].full_range()

    def overlaps(self, other: "Rule") -> bool:
        """True if the two rules' hyper-rectangles intersect in every field."""
        for (alo, ahi), (blo, bhi) in zip(self.ranges, other.ranges):
            if ahi < blo or bhi < alo:
                return False
        return True

    def overlaps_field(self, other: "Rule", dim: int) -> bool:
        """True if the two rules' ranges intersect in field ``dim``."""
        alo, ahi = self.ranges[dim]
        blo, bhi = other.ranges[dim]
        return not (ahi < blo or bhi < alo)

    def sample_packet(self, rng: random.Random | None = None) -> Packet:
        """Return a uniformly random packet matching this rule."""
        rng = rng or random
        return Packet(tuple(rng.randint(lo, hi) for lo, hi in self.ranges))

    def with_id(self, rule_id: int) -> "Rule":
        """Return a copy of the rule with a new ``rule_id``."""
        return Rule(self.ranges, self.priority, self.action, rule_id)

    def with_priority(self, priority: int) -> "Rule":
        """Return a copy of the rule with a new ``priority``."""
        return Rule(self.ranges, priority, self.action, self.rule_id)


class RuleSet:
    """An ordered set of rules sharing one field schema.

    Rules are stored in the order given; ``rule_id`` is assigned to the
    position in the set when not already set, and priorities default to the
    position as well (earlier rules win), matching ClassBench convention.
    """

    def __init__(
        self,
        rules: Iterable[Rule],
        schema: FieldSchema = FIVE_TUPLE,
        name: str = "ruleset",
    ):
        self.schema = schema
        self.name = name
        normalized: list[Rule] = []
        for position, rule in enumerate(rules):
            schema.validate_ranges(rule.ranges)
            rule_id = rule.rule_id if rule.rule_id >= 0 else position
            priority = rule.priority if rule.priority >= 0 else position
            normalized.append(Rule(tuple(rule.ranges), priority, rule.action, rule_id))
        self._rules = normalized

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __getitem__(self, index: int) -> Rule:
        return self._rules[index]

    @property
    def rules(self) -> list[Rule]:
        return self._rules

    @property
    def num_fields(self) -> int:
        return len(self.schema)

    # -- ground truth --------------------------------------------------------------

    def match(self, packet: Packet | Sequence[int]) -> Rule | None:
        """Linear-search ground truth: highest-priority matching rule or None."""
        best: Rule | None = None
        for rule in self._rules:
            if rule.matches(packet):
                if best is None or rule.priority < best.priority:
                    best = rule
        return best

    def all_matches(self, packet: Packet | Sequence[int]) -> list[Rule]:
        """Every rule matching the packet, sorted by priority (best first)."""
        hits = [rule for rule in self._rules if rule.matches(packet)]
        hits.sort(key=lambda rule: rule.priority)
        return hits

    # -- derived sets --------------------------------------------------------------

    def subset(self, rules: Iterable[Rule], name: str | None = None) -> "RuleSet":
        """A new RuleSet over the same schema containing ``rules`` as-is."""
        return RuleSet(list(rules), self.schema, name or self.name)

    def without(self, rule_ids: Iterable[int], name: str | None = None) -> "RuleSet":
        """A new RuleSet with the rules whose ids are in ``rule_ids`` removed."""
        excluded = set(rule_ids)
        kept = [rule for rule in self._rules if rule.rule_id not in excluded]
        return RuleSet(kept, self.schema, name or self.name)

    def filter(self, predicate: Callable[[Rule], bool]) -> "RuleSet":
        """A new RuleSet containing only rules satisfying ``predicate``."""
        return RuleSet(
            [rule for rule in self._rules if predicate(rule)], self.schema, self.name
        )

    def by_id(self) -> dict[int, Rule]:
        """Mapping from rule_id to rule."""
        return {rule.rule_id: rule for rule in self._rules}

    # -- sampling ------------------------------------------------------------------

    def sample_matching_packet(
        self, rng: random.Random | None = None, rule: Rule | None = None
    ) -> Packet:
        """A random packet matching a (given or random) rule in the set."""
        rng = rng or random
        if rule is None:
            rule = rng.choice(self._rules)
        return rule.sample_packet(rng)

    def sample_packets(self, count: int, seed: int = 0) -> list[Packet]:
        """``count`` packets each matching a uniformly chosen rule."""
        rng = random.Random(seed)
        return [self.sample_matching_packet(rng) for _ in range(count)]

    # -- structural statistics -----------------------------------------------------

    def field_diversity(self, dim: int) -> float:
        """Rule-set diversity of field ``dim`` (§3.7).

        The number of unique values (for exact-match fields we use the range
        low bound as the value) divided by the number of rules.  It upper
        bounds the fraction of rules the largest iSet on that field can hold.
        """
        if not self._rules:
            return 0.0
        unique = {rule.ranges[dim] for rule in self._rules}
        return len(unique) / len(self._rules)

    def diversity(self) -> dict[str, float]:
        """Per-field diversity keyed by field name."""
        return {
            spec.name: self.field_diversity(dim)
            for dim, spec in enumerate(self.schema)
        }

    def wildcard_fraction(self, dim: int) -> float:
        """Fraction of rules that wildcard field ``dim``."""
        if not self._rules:
            return 0.0
        full = self.schema[dim].full_range()
        count = sum(1 for rule in self._rules if rule.ranges[dim] == full)
        return count / len(self._rules)

    def stats(self) -> dict[str, object]:
        """Summary statistics used by reports and tests."""
        return {
            "name": self.name,
            "num_rules": len(self._rules),
            "num_fields": self.num_fields,
            "diversity": self.diversity(),
            "wildcards": {
                spec.name: self.wildcard_fraction(dim)
                for dim, spec in enumerate(self.schema)
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RuleSet({self.name!r}, {len(self._rules)} rules, {self.num_fields} fields)"
