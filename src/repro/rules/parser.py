"""ClassBench text format parser and writer.

The classic ClassBench filter format stores one rule per line::

    @<src_ip>/<len>  <dst_ip>/<len>  <sp_lo> : <sp_hi>  <dp_lo> : <dp_hi>  <proto>/<mask>

for example::

    @10.0.1.0/24 192.168.0.0/16 0 : 65535 80 : 80 0x06/0xFF

This module reads and writes that format so rule-sets produced by the real
ClassBench tool (or exported from other systems) can be used with the library,
and so generated rule-sets can be persisted for inspection.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, TextIO

from repro.rules.fields import (
    FIVE_TUPLE,
    int_to_ip,
    ip_to_int,
    prefix_length_of_range,
    prefix_to_range,
)
from repro.rules.rule import Rule, RuleSet

__all__ = ["parse_classbench_file", "parse_classbench_lines", "write_classbench_file"]

_RULE_RE = re.compile(
    r"^@?\s*"
    r"(?P<src_ip>\d+\.\d+\.\d+\.\d+)/(?P<src_len>\d+)\s+"
    r"(?P<dst_ip>\d+\.\d+\.\d+\.\d+)/(?P<dst_len>\d+)\s+"
    r"(?P<sp_lo>\d+)\s*:\s*(?P<sp_hi>\d+)\s+"
    r"(?P<dp_lo>\d+)\s*:\s*(?P<dp_hi>\d+)\s+"
    r"(?P<proto>0x[0-9a-fA-F]+|\d+)/(?P<proto_mask>0x[0-9a-fA-F]+|\d+)"
)


def _parse_int(text: str) -> int:
    return int(text, 16) if text.lower().startswith("0x") else int(text)


def parse_classbench_lines(lines: Iterable[str], name: str = "classbench") -> RuleSet:
    """Parse an iterable of ClassBench-format lines into a :class:`RuleSet`.

    Lines that are empty or start with ``#`` are skipped.  Rules are assigned
    priorities in file order (first rule wins), matching ClassBench semantics.
    """
    rules: list[Rule] = []
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _RULE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: cannot parse rule: {raw!r}")
        src_range = prefix_to_range(
            ip_to_int(match["src_ip"]), int(match["src_len"])
        )
        dst_range = prefix_to_range(
            ip_to_int(match["dst_ip"]), int(match["dst_len"])
        )
        sport = (int(match["sp_lo"]), int(match["sp_hi"]))
        dport = (int(match["dp_lo"]), int(match["dp_hi"]))
        proto_value = _parse_int(match["proto"])
        proto_mask = _parse_int(match["proto_mask"])
        proto = (0, 255) if proto_mask == 0 else (proto_value, proto_value)
        index = len(rules)
        rules.append(
            Rule(
                (src_range, dst_range, sport, dport, proto),
                priority=index,
                action=f"a{index}",
                rule_id=index,
            )
        )
    return RuleSet(rules, FIVE_TUPLE, name=name)


def parse_classbench_file(path: str | Path, name: str | None = None) -> RuleSet:
    """Parse a ClassBench filter file from disk."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return parse_classbench_lines(handle, name=name or path.stem)


def _format_ip_prefix(lo: int, hi: int) -> str:
    prefix_len = prefix_length_of_range(lo, hi, bits=32)
    if prefix_len is None:
        raise ValueError(
            f"IP range [{lo}, {hi}] is not a prefix and cannot be written in "
            "ClassBench format"
        )
    return f"{int_to_ip(lo)}/{prefix_len}"


def write_classbench_file(ruleset: RuleSet, destination: str | Path | TextIO) -> None:
    """Write a 5-tuple rule-set in ClassBench filter format.

    The rules are written in priority order so a round-trip preserves match
    semantics.  IP fields must be prefix ranges (which is how the generators
    produce them); ports may be arbitrary ranges; the protocol must be exact
    or a full wildcard.
    """
    if len(ruleset.schema) != 5:
        raise ValueError("ClassBench format requires the 5-tuple schema")

    def _write(handle: TextIO) -> None:
        for rule in sorted(ruleset.rules, key=lambda r: r.priority):
            src = _format_ip_prefix(*rule.ranges[0])
            dst = _format_ip_prefix(*rule.ranges[1])
            sp_lo, sp_hi = rule.ranges[2]
            dp_lo, dp_hi = rule.ranges[3]
            proto_lo, proto_hi = rule.ranges[4]
            if proto_lo == 0 and proto_hi == 255:
                proto = "0x00/0x00"
            elif proto_lo == proto_hi:
                proto = f"0x{proto_lo:02X}/0xFF"
            else:
                raise ValueError(
                    f"protocol range [{proto_lo}, {proto_hi}] is neither exact "
                    "nor wildcard"
                )
            handle.write(
                f"@{src}\t{dst}\t{sp_lo} : {sp_hi}\t{dp_lo} : {dp_hi}\t{proto}\n"
            )

    if isinstance(destination, (str, Path)):
        with Path(destination).open("w", encoding="utf-8") as handle:
            _write(handle)
    else:
        _write(destination)
