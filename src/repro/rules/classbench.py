"""ClassBench-like synthetic rule-set generator.

The paper evaluates on rule-sets produced by ClassBench [Taylor & Turner 2007]
for three application classes — Access Control Lists (ACL), Firewalls (FW) and
IP Chains (IPC) — at sizes 1K, 10K, 100K and 500K, twelve distinct
applications in total (ACL1–5, FW1–5, IPC1–2).

The original ClassBench tool and its seed files are not available offline, so
this module generates rule-sets with the *structural* properties ClassBench
controls and that the paper's experiments are sensitive to:

* per-application IP prefix-length distributions (ACL rules carry long, highly
  diverse prefixes; FW rules carry many wildcards and short prefixes; IPC is
  intermediate);
* port-range classes: wildcard, well-known exact ports, the ephemeral range,
  arbitrary ranges, exact ports;
* protocol mix (TCP/UDP/ICMP/wildcard);
* address locality: addresses are drawn from a hierarchy of shared network
  seeds so prefixes nest and overlap the way real filter sets do;
* value diversity per field — the property that drives iSet coverage (§3.7).

The substitution preserves the paper's behaviour because every experiment
consumes only these structural properties (coverage, diversity, range
shapes), never the exact ClassBench parameter files.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.rules.fields import FIVE_TUPLE, prefix_to_range
from repro.rules.rule import Rule, RuleSet

__all__ = [
    "ApplicationProfile",
    "APPLICATION_PROFILES",
    "CLASSBENCH_APPLICATIONS",
    "generate_classbench",
    "generate_low_diversity",
    "blend_rulesets",
]

# Well-known destination ports that appear in real filter sets.
_WELL_KNOWN_PORTS = [20, 21, 22, 23, 25, 53, 80, 110, 123, 143, 161, 179, 443,
                     445, 514, 993, 995, 1433, 1521, 3306, 3389, 5060, 8080, 8443]

_PROTO_TCP = 6
_PROTO_UDP = 17
_PROTO_ICMP = 1

# Port class identifiers used in the profiles below.
_PORT_WILDCARD = "wc"
_PORT_WELL_KNOWN = "wk"
_PORT_EPHEMERAL = "eph"
_PORT_RANGE = "range"
_PORT_EXACT = "exact"


@dataclass(frozen=True)
class ApplicationProfile:
    """Structural parameters of one ClassBench application class.

    Attributes:
        name: Application name, e.g. ``"acl1"``.
        family: One of ``"acl"``, ``"fw"``, ``"ipc"``.
        src_prefix_weights: Mapping prefix-length -> weight for the source IP.
        dst_prefix_weights: Mapping prefix-length -> weight for the destination IP.
        src_port_classes: Mapping port-class -> weight for the source port.
        dst_port_classes: Mapping port-class -> weight for the destination port.
        proto_weights: Mapping protocol value (or ``None`` for wildcard) -> weight.
        network_seeds: Number of distinct top-level /16 networks addresses are
            drawn from; smaller values create more nesting/overlap.
        address_skew: Zipf-like skew over the network seeds (0 = uniform).
    """

    name: str
    family: str
    src_prefix_weights: dict[int, float]
    dst_prefix_weights: dict[int, float]
    src_port_classes: dict[str, float]
    dst_port_classes: dict[str, float]
    proto_weights: dict[int | None, float]
    network_seeds: int = 256
    address_skew: float = 0.8


def _acl_profile(name: str, seeds: int, skew: float) -> ApplicationProfile:
    """ACL-like: long, diverse prefixes; mostly exact/well-known dst ports."""
    return ApplicationProfile(
        name=name,
        family="acl",
        src_prefix_weights={0: 0.05, 8: 0.02, 16: 0.08, 24: 0.35, 28: 0.15, 32: 0.35},
        dst_prefix_weights={0: 0.02, 16: 0.05, 24: 0.33, 28: 0.20, 32: 0.40},
        src_port_classes={_PORT_WILDCARD: 0.80, _PORT_EPHEMERAL: 0.15, _PORT_EXACT: 0.05},
        dst_port_classes={
            _PORT_WILDCARD: 0.15,
            _PORT_WELL_KNOWN: 0.55,
            _PORT_RANGE: 0.10,
            _PORT_EXACT: 0.20,
        },
        proto_weights={_PROTO_TCP: 0.62, _PROTO_UDP: 0.25, _PROTO_ICMP: 0.05, None: 0.08},
        network_seeds=seeds,
        address_skew=skew,
    )


def _fw_profile(name: str, seeds: int, skew: float) -> ApplicationProfile:
    """Firewall-like: many wildcards and short prefixes, wide port ranges."""
    return ApplicationProfile(
        name=name,
        family="fw",
        src_prefix_weights={0: 0.30, 8: 0.10, 16: 0.18, 24: 0.22, 32: 0.20},
        dst_prefix_weights={0: 0.18, 8: 0.08, 16: 0.20, 24: 0.28, 32: 0.26},
        src_port_classes={_PORT_WILDCARD: 0.65, _PORT_EPHEMERAL: 0.20, _PORT_RANGE: 0.15},
        dst_port_classes={
            _PORT_WILDCARD: 0.30,
            _PORT_WELL_KNOWN: 0.30,
            _PORT_RANGE: 0.25,
            _PORT_EXACT: 0.15,
        },
        proto_weights={_PROTO_TCP: 0.50, _PROTO_UDP: 0.28, _PROTO_ICMP: 0.07, None: 0.15},
        network_seeds=seeds,
        address_skew=skew,
    )


def _ipc_profile(name: str, seeds: int, skew: float) -> ApplicationProfile:
    """IP-chain-like: intermediate between ACL and FW."""
    return ApplicationProfile(
        name=name,
        family="ipc",
        src_prefix_weights={0: 0.15, 16: 0.15, 24: 0.30, 28: 0.10, 32: 0.30},
        dst_prefix_weights={0: 0.10, 16: 0.12, 24: 0.33, 28: 0.15, 32: 0.30},
        src_port_classes={_PORT_WILDCARD: 0.70, _PORT_EPHEMERAL: 0.15, _PORT_EXACT: 0.15},
        dst_port_classes={
            _PORT_WILDCARD: 0.25,
            _PORT_WELL_KNOWN: 0.40,
            _PORT_RANGE: 0.15,
            _PORT_EXACT: 0.20,
        },
        proto_weights={_PROTO_TCP: 0.55, _PROTO_UDP: 0.28, _PROTO_ICMP: 0.05, None: 0.12},
        network_seeds=seeds,
        address_skew=skew,
    )


#: The twelve applications evaluated in the paper (Figures 8, 9, 17).
APPLICATION_PROFILES: dict[str, ApplicationProfile] = {
    "acl1": _acl_profile("acl1", seeds=512, skew=0.6),
    "acl2": _acl_profile("acl2", seeds=384, skew=0.8),
    "acl3": _acl_profile("acl3", seeds=256, skew=0.9),
    "acl4": _acl_profile("acl4", seeds=448, skew=0.7),
    "acl5": _acl_profile("acl5", seeds=320, skew=1.0),
    "fw1": _fw_profile("fw1", seeds=192, skew=0.9),
    "fw2": _fw_profile("fw2", seeds=160, skew=1.0),
    "fw3": _fw_profile("fw3", seeds=224, skew=0.8),
    "fw4": _fw_profile("fw4", seeds=128, skew=1.1),
    "fw5": _fw_profile("fw5", seeds=208, skew=0.9),
    "ipc1": _ipc_profile("ipc1", seeds=288, skew=0.8),
    "ipc2": _ipc_profile("ipc2", seeds=240, skew=0.9),
}

#: Names in the order used by the paper's figures.
CLASSBENCH_APPLICATIONS: tuple[str, ...] = tuple(APPLICATION_PROFILES)


def _weighted_choice(rng: random.Random, weights: dict) -> object:
    keys = list(weights)
    total = sum(weights.values())
    pick = rng.random() * total
    acc = 0.0
    for key in keys:
        acc += weights[key]
        if pick <= acc:
            return key
    return keys[-1]


def _zipf_index(rng: random.Random, count: int, skew: float) -> int:
    """Pick an index in [0, count) with Zipf-like skew (0 = uniform)."""
    if skew <= 0:
        return rng.randrange(count)
    # Inverse-CDF sampling of a truncated Pareto-ish distribution; cheap and
    # good enough for generating address locality.
    u = rng.random()
    index = int(count * (u ** (1.0 + skew)))
    return min(index, count - 1)


class _AddressPool:
    """Hierarchical IPv4 address pool creating nested, overlapping prefixes."""

    def __init__(
        self,
        rng: random.Random,
        network_seeds: int,
        skew: float,
        subnets_per_network: int = 32,
        host_spread: float = 0.5,
    ):
        self._rng = rng
        self._skew = skew
        self._subnets_per_network = max(4, subnets_per_network)
        self._host_spread = min(max(host_spread, 0.0), 1.0)
        # Top-level /16 networks; subnets and hosts are derived from them so
        # that longer prefixes nest inside shorter ones, as in real rule sets.
        self._networks = [rng.randrange(0, 1 << 16) << 16 for _ in range(network_seeds)]
        self._subnet_cache: dict[tuple[int, int], list[int]] = {}

    def address(self, prefix_len: int) -> int:
        """A random address whose ``prefix_len``-bit prefix nests in the pool."""
        # Long prefixes (hosts and small subnets) are spread over the whole
        # address space with probability ``host_spread``; the rest nest inside
        # the pool's networks.  Real filter sets grow mostly by adding distinct
        # hosts, which is why larger ClassBench sets have higher diversity.
        if prefix_len >= 25 and self._rng.random() < self._host_spread:
            return self._rng.randrange(0, 1 << 32)
        network = self._networks[
            _zipf_index(self._rng, len(self._networks), self._skew)
        ]
        if prefix_len <= 16:
            return network
        # Reuse a bounded set of subnets per network so /24s repeat and overlap
        # with /28 and /32 rules below them.
        key = (network, min(prefix_len, 24))
        subnets = self._subnet_cache.get(key)
        if subnets is None:
            subnets = [
                network | (self._rng.randrange(0, 1 << 8) << 8)
                for _ in range(self._subnets_per_network)
            ]
            self._subnet_cache[key] = subnets
        subnet = subnets[_zipf_index(self._rng, len(subnets), self._skew * 0.5)]
        if prefix_len <= 24:
            return subnet
        return subnet | self._rng.randrange(0, 1 << 8)


def _make_port_range(rng: random.Random, port_class: str) -> tuple[int, int]:
    if port_class == _PORT_WILDCARD:
        return (0, 65535)
    if port_class == _PORT_EPHEMERAL:
        return (1024, 65535)
    if port_class == _PORT_WELL_KNOWN:
        port = rng.choice(_WELL_KNOWN_PORTS)
        return (port, port)
    if port_class == _PORT_EXACT:
        port = rng.randrange(1, 65536)
        return (port, port)
    if port_class == _PORT_RANGE:
        lo = rng.randrange(0, 65000)
        width = rng.choice([3, 7, 15, 31, 63, 255, 1023])
        return (lo, min(65535, lo + width))
    raise ValueError(f"unknown port class {port_class!r}")


def generate_classbench(
    application: str,
    num_rules: int,
    seed: int = 0,
    schema=FIVE_TUPLE,
) -> RuleSet:
    """Generate a ClassBench-like 5-tuple rule-set.

    Args:
        application: One of :data:`CLASSBENCH_APPLICATIONS` (``acl1`` … ``ipc2``).
        num_rules: Number of distinct rules to generate.
        seed: RNG seed; the same (application, num_rules, seed) triple always
            produces the same rule-set.
        schema: Field schema; defaults to the classic 5-tuple.

    Returns:
        A :class:`RuleSet` with ``num_rules`` unique rules, priorities equal to
        their position (earlier rules win).
    """
    profile = APPLICATION_PROFILES.get(application)
    if profile is None:
        raise ValueError(
            f"unknown application {application!r}; "
            f"expected one of {sorted(APPLICATION_PROFILES)}"
        )
    if num_rules <= 0:
        raise ValueError("num_rules must be positive")

    # zlib.crc32 keeps the stream independent of PYTHONHASHSEED so the same
    # (application, num_rules, seed) triple is reproducible across processes.
    rng = random.Random((zlib.crc32(application.encode()) & 0xFFFF) ^ (seed * 0x9E3779B1))

    # ClassBench grows the address space with the filter-set size: larger
    # rule-sets draw from more networks and more subnets per network, so field
    # diversity — and therefore iSet coverage (§3.7, Table 2) — improves with
    # scale, while small sets reuse few addresses and overlap heavily.
    size_factor = num_rules / 20_000.0
    effective_seeds = int(min(max(profile.network_seeds * size_factor, 48), 32_768))
    subnets_per_network = int(min(max(num_rules / effective_seeds, 8), 256))
    effective_skew = profile.address_skew * min(
        1.6, max(0.35, (2_000.0 / max(num_rules, 1)) ** 0.3)
    )
    host_spread = min(0.95, max(0.15, 0.9 * size_factor**0.5))
    src_pool = _AddressPool(
        rng, effective_seeds, effective_skew, subnets_per_network, host_spread
    )
    dst_pool = _AddressPool(
        rng, effective_seeds, effective_skew, subnets_per_network, host_spread
    )

    seen: set[tuple] = set()
    rules: list[Rule] = []
    attempts = 0
    max_attempts = num_rules * 50
    while len(rules) < num_rules and attempts < max_attempts:
        attempts += 1
        src_len = _weighted_choice(rng, profile.src_prefix_weights)
        dst_len = _weighted_choice(rng, profile.dst_prefix_weights)
        src_range = prefix_to_range(src_pool.address(src_len), src_len)
        dst_range = prefix_to_range(dst_pool.address(dst_len), dst_len)
        sport = _make_port_range(rng, _weighted_choice(rng, profile.src_port_classes))
        dport = _make_port_range(rng, _weighted_choice(rng, profile.dst_port_classes))
        proto = _weighted_choice(rng, profile.proto_weights)
        proto_range = (0, 255) if proto is None else (proto, proto)
        ranges = (src_range, dst_range, sport, dport, proto_range)
        if ranges in seen:
            continue
        seen.add(ranges)
        index = len(rules)
        rules.append(Rule(ranges, priority=index, action=f"a{index}", rule_id=index))
    if len(rules) < num_rules:
        raise RuntimeError(
            f"could not generate {num_rules} unique rules for {application!r} "
            f"(got {len(rules)})"
        )
    return RuleSet(rules, schema, name=f"{application}-{num_rules}")


def generate_low_diversity(
    num_rules: int,
    values_per_field: int = 8,
    seed: int = 0,
    schema=FIVE_TUPLE,
) -> RuleSet:
    """Low-diversity rule-set built as a Cartesian product of few exact values.

    Used by the Table 3 experiment (§5.3.3): the paper synthesises rules as a
    Cartesian product of a small number of exact values per field (no ranges),
    yielding a rule-set whose per-field diversity — and therefore iSet
    coverage — is very poor.
    """
    rng = random.Random(seed)
    pools = [
        sorted(rng.sample(range(spec.domain_size), min(values_per_field, spec.domain_size)))
        for spec in schema
    ]
    seen: set[tuple] = set()
    rules: list[Rule] = []
    attempts = 0
    max_attempts = num_rules * 100
    while len(rules) < num_rules and attempts < max_attempts:
        attempts += 1
        values = tuple(rng.choice(pool) for pool in pools)
        if values in seen:
            continue
        seen.add(values)
        index = len(rules)
        ranges = tuple((value, value) for value in values)
        rules.append(Rule(ranges, priority=index, action=f"a{index}", rule_id=index))
    if len(rules) < num_rules:
        raise RuntimeError(
            "cannot generate the requested number of unique low-diversity rules; "
            "increase values_per_field"
        )
    return RuleSet(rules, schema, name=f"low-diversity-{num_rules}")


def blend_rulesets(base: RuleSet, replacement: RuleSet, fraction: float, seed: int = 0) -> RuleSet:
    """Replace ``fraction`` of ``base`` rules with rules from ``replacement``.

    Keeps the total number of rules identical to ``base`` (as in §5.3.3's
    blended rule-sets).  Priorities and rule ids are re-assigned by position.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if base.schema != replacement.schema:
        raise ValueError("rule-sets must share a schema to be blended")
    rng = random.Random(seed)
    total = len(base)
    replace_count = int(round(total * fraction))
    if replace_count > len(replacement):
        raise ValueError("replacement rule-set is too small for the requested fraction")
    keep_indexes = set(range(total))
    for index in rng.sample(range(total), replace_count):
        keep_indexes.discard(index)
    replacement_rules = rng.sample(list(replacement.rules), replace_count)
    blended: list[Rule] = []
    replacement_iter = iter(replacement_rules)
    for index in range(total):
        source = base[index] if index in keep_indexes else next(replacement_iter)
        blended.append(Rule(source.ranges, priority=index, action=source.action, rule_id=index))
    return RuleSet(blended, base.schema, name=f"{base.name}+{fraction:.0%}-low-div")
