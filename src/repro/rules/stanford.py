"""Stanford-backbone-like forwarding rule-set generator.

The paper's real-world evaluation (Figure 10, Table 2 last row) uses the
Stanford backbone dataset: four IP forwarding tables of roughly 180K rules,
each matching only on the destination IP address.  The dataset itself is not
redistributable here, so this module generates forwarding tables with the
structural properties that drive the paper's results:

* a realistic prefix-length distribution for a campus/backbone forwarding
  table (dominated by /24 with substantial /16–/23 and a tail of /25–/32);
* prefix nesting (more-specific routes inside aggregates), which is what
  limits single-iSet coverage to ~58% and requires 2–3 iSets for >90% (Table 2);
* a single-field schema, exercising the degenerate-dimension code path of the
  iSet partitioner.
"""

from __future__ import annotations

import random

from repro.rules.fields import FORWARDING, prefix_to_range
from repro.rules.rule import Rule, RuleSet

__all__ = ["generate_stanford_backbone", "STANFORD_PREFIX_WEIGHTS"]

#: Approximate prefix-length mix of a backbone forwarding table.
STANFORD_PREFIX_WEIGHTS: dict[int, float] = {
    8: 0.002,
    12: 0.005,
    14: 0.008,
    16: 0.06,
    18: 0.04,
    20: 0.09,
    21: 0.07,
    22: 0.11,
    23: 0.10,
    24: 0.42,
    25: 0.02,
    26: 0.02,
    27: 0.015,
    28: 0.015,
    30: 0.01,
    32: 0.025,
}


def generate_stanford_backbone(
    num_rules: int = 180_000,
    seed: int = 0,
    nesting: float = 0.35,
) -> RuleSet:
    """Generate one Stanford-backbone-like forwarding rule-set.

    Args:
        num_rules: Number of forwarding entries (the real tables hold ~180K).
        seed: RNG seed; also selects which of the "four routers" is emulated.
        nesting: Fraction of rules generated as more-specifics of an already
            emitted aggregate, producing the nested-prefix overlap structure
            that limits single-iSet coverage.

    Returns:
        A single-field (destination IP) :class:`RuleSet`.  Longer prefixes get
        higher priority (lower numeric value), mirroring longest-prefix-match.
    """
    if num_rules <= 0:
        raise ValueError("num_rules must be positive")
    rng = random.Random(0x57A4F02D ^ seed)

    lengths = list(STANFORD_PREFIX_WEIGHTS)
    weights = [STANFORD_PREFIX_WEIGHTS[length] for length in lengths]

    seen: set[tuple[int, int]] = set()
    entries: list[tuple[int, int]] = []  # (address, prefix_len)
    aggregates: list[tuple[int, int]] = []  # emitted prefixes shorter than /24

    attempts = 0
    max_attempts = num_rules * 60
    while len(entries) < num_rules and attempts < max_attempts:
        attempts += 1
        if aggregates and rng.random() < nesting:
            # More-specific of an existing aggregate.
            base_addr, base_len = aggregates[rng.randrange(len(aggregates))]
            prefix_len = min(32, base_len + rng.choice([1, 2, 3, 4, 6, 8]))
            host_bits = 32 - prefix_len
            addr = base_addr | (rng.randrange(0, 1 << (prefix_len - base_len)) << host_bits)
        else:
            prefix_len = rng.choices(lengths, weights)[0]
            addr = rng.randrange(0, 1 << 32)
            addr &= ~((1 << (32 - prefix_len)) - 1) if prefix_len < 32 else 0xFFFFFFFF
        key = (addr, prefix_len)
        if key in seen:
            continue
        seen.add(key)
        entries.append(key)
        if prefix_len <= 23 and len(aggregates) < 4096:
            aggregates.append(key)

    if len(entries) < num_rules:
        raise RuntimeError(
            f"could not generate {num_rules} unique forwarding entries "
            f"(got {len(entries)})"
        )

    # Longest prefix first => highest priority (lowest numeric value).
    entries.sort(key=lambda item: -item[1])
    rules = [
        Rule(
            (prefix_to_range(addr, prefix_len),),
            priority=index,
            action=f"port{index % 64}",
            rule_id=index,
        )
        for index, (addr, prefix_len) in enumerate(entries)
    ]
    return RuleSet(rules, FORWARDING, name=f"stanford-{seed}-{num_rules}")
