"""Reporting helpers used by the benchmark harness.

The benchmarks print the same rows and series the paper's tables and figures
report; these helpers keep that formatting consistent: fixed-width text
tables, geometric means (the paper aggregates per-rule-set speedups with a
geometric mean, labelled "GM" in Figures 8/9), and simple ASCII series for
figure-shaped results.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["geometric_mean", "format_table", "format_series", "format_kv"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0 if the input is empty)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _stringify(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Render a fixed-width text table."""
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    xs: Sequence[object], ys: Sequence[float], x_label: str = "x", y_label: str = "y",
    title: str | None = None,
) -> str:
    """Render an (x, y) series as a two-column table (one figure line)."""
    return format_table([x_label, y_label], list(zip(xs, ys)), title=title)


def format_kv(pairs: dict[str, object], title: str | None = None) -> str:
    """Render a key/value mapping, one line each."""
    lines = [title] if title else []
    width = max((len(k) for k in pairs), default=0)
    for key, value in pairs.items():
        lines.append(f"{key.ljust(width)} : {_stringify(value)}")
    return "\n".join(lines)
