"""Memory-footprint accounting across classifiers (Figures 11 and 13).

The paper compares the size of the *index structures only* (not the stored
rules): hash tables for TupleMerge, trees for CutSplit/NeuroCuts, and for
NuevoMatch the RQ-RMI model weights plus the remainder classifier's index.
This module builds the requested classifiers over a rule-set and reports those
sizes, together with the cache level each structure lands in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classifiers import Classifier, resolve_classifier
from repro.core.config import NuevoMatchConfig
from repro.core.nuevomatch import NuevoMatch
from repro.rules.rule import RuleSet
from repro.simulation.cache import CacheHierarchy

__all__ = ["FootprintReport", "classifier_footprint", "compare_footprints"]


@dataclass
class FootprintReport:
    """Index footprint of one classifier over one rule-set."""

    classifier: str
    ruleset: str
    num_rules: int
    index_bytes: int
    rqrmi_bytes: int
    remainder_index_bytes: int
    cache_level: str

    def as_row(self) -> list[object]:
        return [
            self.classifier,
            self.num_rules,
            self.index_bytes,
            self.rqrmi_bytes,
            self.remainder_index_bytes,
            self.cache_level,
        ]


def classifier_footprint(
    classifier: Classifier, ruleset_name: str, cache: CacheHierarchy | None = None
) -> FootprintReport:
    """Footprint report for an already-built classifier."""
    cache = cache or CacheHierarchy.xeon_silver_4116()
    footprint = classifier.memory_footprint()
    rqrmi_bytes = footprint.breakdown.get("rqrmi", 0)
    remainder_bytes = footprint.breakdown.get("remainder_index", 0)
    return FootprintReport(
        classifier=classifier.name,
        ruleset=ruleset_name,
        num_rules=len(classifier.ruleset),
        index_bytes=footprint.index_bytes,
        rqrmi_bytes=rqrmi_bytes,
        remainder_index_bytes=remainder_bytes,
        cache_level=cache.placement_level(footprint.index_bytes),
    )


def compare_footprints(
    ruleset: RuleSet,
    baselines: list[str] = ("cs", "nc", "tm"),
    with_nuevomatch: bool = True,
    nm_config: NuevoMatchConfig | None = None,
    cache: CacheHierarchy | None = None,
) -> list[FootprintReport]:
    """Build each baseline (and NuevoMatch on top of it) and report footprints.

    This reproduces a Figure 13 bar cluster for one rule-set: for every
    baseline the stand-alone index size, and for NuevoMatch the remainder
    index plus the RQ-RMI models.
    """
    cache = cache or CacheHierarchy.xeon_silver_4116()
    reports: list[FootprintReport] = []
    for name in baselines:
        baseline_cls = resolve_classifier(name)
        baseline = baseline_cls.build(ruleset)
        reports.append(classifier_footprint(baseline, ruleset.name, cache))
        if with_nuevomatch:
            nm = NuevoMatch.build(
                ruleset, remainder_classifier=baseline_cls, config=nm_config
            )
            report = classifier_footprint(nm, ruleset.name, cache)
            report.classifier = f"nm({name})"
            reports.append(report)
    return reports
