"""iSet coverage analysis (Table 2, Table 3, Figure 14's coverage curve)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.isets import partition_isets
from repro.core.metrics import ruleset_centrality, ruleset_diversity
from repro.rules.rule import RuleSet

__all__ = ["CoverageReport", "coverage_report", "coverage_table_rows"]


@dataclass
class CoverageReport:
    """Cumulative iSet coverage of one rule-set."""

    ruleset: str
    num_rules: int
    cumulative_coverage: list[float]
    diversity: dict[str, float]
    centrality: int

    def coverage_at(self, num_isets: int) -> float:
        """Coverage after ``num_isets`` iSets (0 if fewer iSets exist)."""
        if num_isets <= 0 or not self.cumulative_coverage:
            return 0.0
        index = min(num_isets, len(self.cumulative_coverage)) - 1
        return self.cumulative_coverage[index]


def coverage_report(
    ruleset: RuleSet, max_isets: int = 4, estimate_centrality: bool = False
) -> CoverageReport:
    """Coverage of the first ``max_isets`` iSets, plus the §3.7 metrics."""
    partition = partition_isets(ruleset, max_isets=max_isets)
    return CoverageReport(
        ruleset=ruleset.name,
        num_rules=len(ruleset),
        cumulative_coverage=partition.cumulative_coverage(),
        diversity=ruleset_diversity(ruleset),
        centrality=ruleset_centrality(ruleset) if estimate_centrality else 0,
    )


def coverage_table_rows(
    reports: list[CoverageReport], max_isets: int = 4
) -> list[list[object]]:
    """Rows shaped like Table 2: per rule-set, coverage for 1..max_isets iSets."""
    rows: list[list[object]] = []
    for report in reports:
        row: list[object] = [report.ruleset, report.num_rules]
        for count in range(1, max_isets + 1):
            row.append(round(100.0 * report.coverage_at(count), 1))
        rows.append(row)
    return rows
