"""Analysis helpers: footprint accounting, coverage analysis and reporting."""

from repro.analysis.coverage import CoverageReport, coverage_report, coverage_table_rows
from repro.analysis.footprint import (
    FootprintReport,
    classifier_footprint,
    compare_footprints,
)
from repro.analysis.reporting import (
    format_kv,
    format_series,
    format_table,
    geometric_mean,
)

__all__ = [
    "CoverageReport",
    "coverage_report",
    "coverage_table_rows",
    "FootprintReport",
    "classifier_footprint",
    "compare_footprints",
    "format_kv",
    "format_series",
    "format_table",
    "geometric_mean",
]
