"""Trace generators: uniform, Zipf-skewed and CAIDA-like (§5.1.1).

* **Uniform** traces access all rules uniformly — the worst case for cache
  locality and the trace behind the paper's headline numbers (Figures 8–11).
* **Zipf** traces draw flows from a Zipf distribution parameterised, as in the
  paper, by the share of traffic carried by the 3% most frequent flows
  (80%, 85%, 90%, 95% → α ≈ 1.05, 1.10, 1.15, 1.25; Figure 12).
* **CAIDA-like** traces emulate the paper's CAIDA methodology: a flow-level
  trace with heavy-tailed flow sizes and packet-level temporal locality whose
  five-tuples are consistently rewritten to match the evaluated rule-set.
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.rules.rule import Packet, Rule, RuleSet
from repro.traffic.packet import Trace

__all__ = [
    "generate_uniform_trace",
    "generate_zipf_trace",
    "generate_caida_like_trace",
    "ZIPF_ALPHAS",
    "zipf_alpha_for_top3_share",
]

#: The paper's four skew settings: share of traffic in the top-3% flows → α.
ZIPF_ALPHAS: dict[int, float] = {80: 1.05, 85: 1.10, 90: 1.15, 95: 1.25}


def zipf_alpha_for_top3_share(share_percent: int) -> float:
    """The Zipf α the paper associates with a top-3%-flow traffic share."""
    try:
        return ZIPF_ALPHAS[share_percent]
    except KeyError as exc:
        raise ValueError(
            f"unknown skew {share_percent}; expected one of {sorted(ZIPF_ALPHAS)}"
        ) from exc


def _packet_for_rule(rule: Rule, rng: random.Random) -> Packet:
    return rule.sample_packet(rng)


def generate_uniform_trace(
    ruleset: RuleSet, num_packets: int, seed: int = 0, name: str | None = None
) -> Trace:
    """A trace whose packets match rules drawn uniformly at random.

    Every packet is a fresh random point inside a uniformly chosen rule, which
    defeats any caching of recently used rules — the paper's worst-case
    memory-access pattern.
    """
    rng = random.Random(seed)
    rules = ruleset.rules
    packets = [
        _packet_for_rule(rules[rng.randrange(len(rules))], rng)
        for _ in range(num_packets)
    ]
    return Trace(
        packets,
        name=name or f"uniform-{ruleset.name}",
        metadata={"distribution": "uniform", "seed": seed, "ruleset": ruleset.name},
    )


def generate_zipf_trace(
    ruleset: RuleSet,
    num_packets: int,
    top3_share: int = 90,
    seed: int = 0,
    name: str | None = None,
) -> Trace:
    """A Zipf-skewed trace over per-rule flows (Figure 12).

    One flow (a fixed five-tuple) is created per rule; flows are ranked in a
    random order and packet arrivals follow a Zipf distribution with the α
    associated with ``top3_share``.
    """
    alpha = zipf_alpha_for_top3_share(top3_share)
    rng = random.Random(seed)
    np_rng = np.random.default_rng(seed)
    rules = list(ruleset.rules)
    rng.shuffle(rules)
    flows = [_packet_for_rule(rule, rng) for rule in rules]

    ranks = np.arange(1, len(flows) + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    weights /= weights.sum()
    choices = np_rng.choice(len(flows), size=num_packets, p=weights)
    packets = [flows[i] for i in choices]
    return Trace(
        packets,
        name=name or f"zipf-{top3_share}",
        metadata={
            "distribution": "zipf",
            "alpha": alpha,
            "top3_share": top3_share,
            "seed": seed,
            "ruleset": ruleset.name,
        },
    )


def generate_caida_like_trace(
    ruleset: RuleSet,
    num_packets: int,
    num_flows: int | None = None,
    seed: int = 0,
    burstiness: float = 0.7,
    name: str | None = None,
) -> Trace:
    """A CAIDA-like trace mapped onto the rule-set (§5.1.1).

    The paper rewrites the five-tuples of a real CAIDA trace so each original
    flow maps consistently to a flow matching one of the evaluated rules.  We
    generate the flow-level structure directly: heavy-tailed (Pareto) flow
    sizes, a consistent flow→rule mapping, and bursty arrivals (a packet
    continues its previous flow with probability ``burstiness``), which gives
    the trace the temporal locality that makes skewed workloads cache-friendly.
    """
    rng = random.Random(seed)
    np_rng = np.random.default_rng(seed)
    rules = list(ruleset.rules)
    if num_flows is None:
        num_flows = max(64, min(len(rules), num_packets // 16))

    flow_rules = [rules[rng.randrange(len(rules))] for _ in range(num_flows)]
    flow_tuples = [_packet_for_rule(rule, rng) for rule in flow_rules]
    # Heavy-tailed flow popularity (Pareto shape ~1.2, as observed for flow sizes).
    popularity = np_rng.pareto(1.2, size=num_flows) + 1.0
    popularity /= popularity.sum()

    packets: list[Packet] = []
    current = int(np_rng.choice(num_flows, p=popularity))
    for _ in range(num_packets):
        if rng.random() > burstiness:
            current = int(np_rng.choice(num_flows, p=popularity))
        packets.append(flow_tuples[current])
    return Trace(
        packets,
        name=name or "caida-like",
        metadata={
            "distribution": "caida-like",
            "num_flows": num_flows,
            "burstiness": burstiness,
            "seed": seed,
            "ruleset": ruleset.name,
        },
    )
