"""Packet trace model and generators (uniform, Zipf, CAIDA-like)."""

from repro.traffic.packet import Trace
from repro.traffic.generators import (
    ZIPF_ALPHAS,
    generate_caida_like_trace,
    generate_uniform_trace,
    generate_zipf_trace,
    zipf_alpha_for_top3_share,
)

__all__ = [
    "Trace",
    "ZIPF_ALPHAS",
    "generate_uniform_trace",
    "generate_zipf_trace",
    "generate_caida_like_trace",
    "zipf_alpha_for_top3_share",
]
