"""Packet traces.

A :class:`Trace` is an ordered list of packets plus metadata about how it was
generated (distribution, skew, seed).  Traces are generated to *match a
rule-set*: every packet matches at least one rule, exactly as the paper builds
its evaluation traces (uniform over rules, Zipf-skewed, or CAIDA-derived with
headers rewritten to match the rule-set, §5.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.rules.rule import Packet

__all__ = ["Trace"]


@dataclass
class Trace:
    """An ordered packet trace.

    Attributes:
        packets: The packets, in arrival order.
        name: Human-readable trace name (e.g. ``"zipf-90"``).
        metadata: Generation parameters (distribution, skew, seed, …).
    """

    packets: list[Packet]
    name: str = "trace"
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets)

    def __getitem__(self, index: int) -> Packet:
        return self.packets[index]

    def unique_fraction(self) -> float:
        """Fraction of distinct packets — a cheap locality indicator."""
        if not self.packets:
            return 0.0
        return len({p.values for p in self.packets}) / len(self.packets)

    def top_flow_share(self, fraction: float = 0.03) -> float:
        """Share of traffic carried by the most frequent ``fraction`` of flows.

        The paper characterises its Zipf traces by the share of traffic in the
        3% most frequent flows (80%–95%).
        """
        if not self.packets:
            return 0.0
        counts: dict[tuple[int, ...], int] = {}
        for packet in self.packets:
            counts[packet.values] = counts.get(packet.values, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        top = max(1, int(len(ordered) * fraction))
        return sum(ordered[:top]) / len(self.packets)
