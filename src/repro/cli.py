"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — write a ClassBench-like or forwarding rule-set to a file in
  ClassBench text format.
* ``inspect``  — print structural statistics of a rule-set file (diversity,
  iSet coverage, estimated centrality).
* ``build``    — build a classifier (NuevoMatch or a baseline) over a rule-set
  file and report its structure: footprint, coverage, error bounds.
* ``train``    — build an engine through the parallel training pipeline
  (``--jobs N`` fans iSet training across processes, ``--warm-start SNAPSHOT``
  seeds submodels from a previous engine) and persist the snapshot with its
  training provenance.
* ``compare``  — build NuevoMatch and a baseline over the same rule-set and
  report the modelled latency/throughput speedups on a uniform trace.
* ``engine``   — the serving API: ``engine save`` builds a
  :class:`~repro.engine.ClassificationEngine` and persists it, ``engine load``
  inspects a saved engine, ``engine serve`` runs batched classification over
  a generated trace.
* ``serve``    — multi-core sharded serving: build a
  :class:`~repro.serving.ShardedEngine` over a rule-set (``--shards N``), run
  a generated trace through the worker pool, and report measured plus
  modelled throughput; ``--save`` persists all shards to one snapshot.  With
  ``--listen HOST:PORT`` the engine is served over asyncio TCP instead
  (length-prefixed JSON; classify/insert/remove/stats), with concurrent
  requests coalesced into micro-batches under the
  ``(--max-batch, --max-delay-us)`` policy, a packet-weighted admission
  budget (``--max-queue``) for backpressure shared by the JSON and binary
  paths, and an optional exact-match flow cache (``--cache-size``).
  ``--adaptive`` (implied by ``--slo-p99-us``) runs the overload
  controller: batch/delay/budget — and the cache, when one is configured —
  retune each window against the p99 SLO.
* ``replay``   — end-to-end scenario replay: drive a §5.1.1 trace
  (``--trace {uniform,zipf,caida}``, ``--skew`` for the Figure-12 Zipf
  settings) through any engine configuration (``--shards N``,
  ``--cache-size K`` for the exact-match flow cache) and report hit rate,
  measured throughput, p50/p99 latency and the cache-aware modelled latency.
  Without ``--ruleset`` a synthetic ClassBench rule-set is generated.

Classifier choice lists are generated from the registry
(:func:`repro.classifiers.available_classifiers`), so newly registered
classifiers appear automatically.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import format_kv, format_table
from repro.classifiers import available_classifiers, build_classifier
from repro.core.config import NuevoMatchConfig, RQRMIConfig
from repro.core.metrics import partition_quality
from repro.core.nuevomatch import NuevoMatch
from repro.engine import ClassificationEngine
from repro.rules import (
    CLASSBENCH_APPLICATIONS,
    generate_classbench,
    generate_stanford_backbone,
    parse_classbench_file,
    write_classbench_file,
)
from repro.serving import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY_US,
    DEFAULT_MAX_QUEUE,
    EXECUTORS,
    PARTITIONERS,
    CachedEngine,
    ShardedEngine,
    run_server,
)
from repro.serving.updates import DEFAULT_RETRAIN_THRESHOLD
from repro.simulation import (
    CostModel,
    evaluate_classifier,
    evaluate_nuevomatch,
    evaluate_sharded,
    speedup,
)
from repro.traffic import ZIPF_ALPHAS, generate_uniform_trace
from repro.workloads import TRACE_KINDS, run_scenario

__all__ = ["main", "build_parser"]


def _baseline_choices() -> list[str]:
    """Registry names usable as a stand-alone baseline / remainder index."""
    return [name for name in available_classifiers() if name != "nm"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NuevoMatch / RQ-RMI packet classification reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic rule-set file")
    gen.add_argument("output", help="destination file (ClassBench text format)")
    gen.add_argument("--application", default="acl1",
                     choices=list(CLASSBENCH_APPLICATIONS) + ["stanford"])
    gen.add_argument("--rules", type=int, default=10_000)
    gen.add_argument("--seed", type=int, default=0)

    ins = sub.add_parser("inspect", help="print structural statistics of a rule-set")
    ins.add_argument("ruleset", help="ClassBench-format rule-set file")
    ins.add_argument("--isets", type=int, default=4)

    build = sub.add_parser("build", help="build a classifier and report its structure")
    build.add_argument("ruleset", help="ClassBench-format rule-set file")
    build.add_argument("--classifier", default="nm", choices=available_classifiers())
    build.add_argument("--remainder", default="tm", choices=_baseline_choices())
    build.add_argument("--error-threshold", type=int, default=64)

    cmp_ = sub.add_parser("compare", help="compare NuevoMatch against a baseline")
    cmp_.add_argument("ruleset", help="ClassBench-format rule-set file")
    cmp_.add_argument("--baseline", default="tm", choices=_baseline_choices())
    cmp_.add_argument("--packets", type=int, default=500)
    cmp_.add_argument("--error-threshold", type=int, default=64)

    train = sub.add_parser(
        "train",
        help="build an engine through the parallel training pipeline and "
             "persist it (supports warm-starting from a previous snapshot)",
    )
    train.add_argument("ruleset", help="ClassBench-format rule-set file")
    train.add_argument("output", help="engine snapshot path (.json or .json.gz)")
    train.add_argument("--classifier", default="nm", choices=available_classifiers())
    train.add_argument("--remainder", default="tm", choices=_baseline_choices())
    train.add_argument("--error-threshold", type=int, default=64)
    train.add_argument("--jobs", type=int, default=1,
                       help="process-pool width for independent iSet training "
                            "jobs (results are identical for any job count)")
    train.add_argument("--warm-start", metavar="SNAPSHOT",
                       help="seed RQ-RMI training from this engine snapshot: "
                            "unchanged submodels are reused, changed ones "
                            "retrain from the old weights (cold fallback when "
                            "the error bound regresses)")
    train.add_argument("--warm-epochs", type=int, default=None,
                       help="Adam epochs for warm-started submodels "
                            "(default: a third of the cold budget)")
    train.add_argument("--serial-trainer", action="store_true",
                       help="use the serial per-submodel trainer instead of "
                            "the vectorized stacked trainer (baseline mode)")

    engine = sub.add_parser("engine", help="build, persist and serve engines")
    engine_sub = engine.add_subparsers(dest="engine_command", required=True)

    save = engine_sub.add_parser(
        "save", help="build a ClassificationEngine and persist it to disk"
    )
    save.add_argument("ruleset", help="ClassBench-format rule-set file")
    save.add_argument("output", help="engine snapshot path (.json or .json.gz)")
    save.add_argument("--classifier", default="nm", choices=available_classifiers())
    save.add_argument("--remainder", default="tm", choices=_baseline_choices())
    save.add_argument("--error-threshold", type=int, default=64)

    load = engine_sub.add_parser(
        "load", help="load a saved engine and print its structure"
    )
    load.add_argument("engine", help="engine snapshot path")

    serve = engine_sub.add_parser(
        "serve", help="load an engine and run batched classification"
    )
    serve.add_argument("engine", help="engine snapshot path")
    serve.add_argument("--packets", type=int, default=1000)
    serve.add_argument("--batch-size", type=int, default=128)
    serve.add_argument("--seed", type=int, default=1)

    sharded = sub.add_parser(
        "serve", help="serve a rule-set through a multi-core ShardedEngine"
    )
    sharded.add_argument(
        "ruleset", help="ClassBench-format rule-set file or .json/.json.gz "
                        "sharded snapshot saved with --save"
    )
    sharded.add_argument("--shards", type=int, default=2)
    sharded.add_argument("--classifier", default="nm", choices=available_classifiers())
    sharded.add_argument("--remainder", default="tm", choices=_baseline_choices())
    sharded.add_argument("--partitioner", default="auto", choices=list(PARTITIONERS))
    sharded.add_argument("--executor", default=None, choices=list(EXECUTORS),
                         help="fan-out strategy; default: 'workers' (the "
                              "persistent shared-memory shard-worker runtime) "
                              "when shards > 1, else 'thread'")
    sharded.add_argument("--retrain-threshold", type=float,
                         default=DEFAULT_RETRAIN_THRESHOLD)
    sharded.add_argument("--error-threshold", type=int, default=64)
    sharded.add_argument("--packets", type=int, default=2000)
    sharded.add_argument("--batch-size", type=int, default=128)
    sharded.add_argument("--seed", type=int, default=1)
    sharded.add_argument("--save", help="persist the sharded engine to this path")
    sharded.add_argument("--listen", metavar="HOST:PORT",
                         help="serve classify/insert/remove/stats over asyncio "
                              "TCP (length-prefixed JSON) instead of replaying "
                              "a local trace; PORT 0 picks an ephemeral port")
    sharded.add_argument("--max-batch", type=int, default=DEFAULT_MAX_BATCH,
                         help="request-coalescing micro-batch size cap")
    sharded.add_argument("--max-delay-us", type=float,
                         default=DEFAULT_MAX_DELAY_US,
                         help="max time the oldest queued request waits before "
                              "its batch closes (0 = no artificial delay)")
    sharded.add_argument("--max-queue", type=int, default=DEFAULT_MAX_QUEUE,
                         help="bounded request queue; submissions beyond it "
                              "are rejected with code 'overloaded'")
    sharded.add_argument("--cache-size", type=int, default=0,
                         help="front the engine with an exact-match flow "
                              "cache of this many entries (--listen only)")
    sharded.add_argument("--slo-p99-us", type=float, default=None,
                         help="p99 service-time objective (microseconds) for "
                              "the overload controller; implies --adaptive "
                              "unless --no-adaptive is given")
    sharded.add_argument("--adaptive", default=None,
                         action=argparse.BooleanOptionalAction,
                         help="self-tune max-batch/max-delay-us/max-queue "
                              "(and the flow cache, with --cache-size) "
                              "against the p99 SLO each control window")

    replay = sub.add_parser(
        "replay", help="replay a generated trace through the serving stack"
    )
    replay.add_argument("--ruleset",
                        help="ClassBench-format rule-set file (default: generate "
                             "a synthetic one, see --application/--rules)")
    replay.add_argument("--application", default="acl1",
                        choices=list(CLASSBENCH_APPLICATIONS))
    replay.add_argument("--rules", type=int, default=2000,
                        help="synthetic rule count when no --ruleset is given")
    replay.add_argument("--trace", default="zipf", choices=list(TRACE_KINDS))
    replay.add_argument("--skew", type=int, default=95,
                        choices=sorted(ZIPF_ALPHAS),
                        help="Zipf top-3%%-flow traffic share (Figure 12)")
    replay.add_argument("--packets", type=int, default=20_000)
    replay.add_argument("--cache-size", type=int, default=0,
                        help="flow-cache entries; 0 serves uncached")
    replay.add_argument("--shards", type=int, default=1)
    replay.add_argument("--classifier", default="tm",
                        choices=available_classifiers(),
                        help="per-shard classifier (tm by default so replay "
                             "measures serving, not RQ-RMI training)")
    replay.add_argument("--remainder", default="tm", choices=_baseline_choices())
    replay.add_argument("--error-threshold", type=int, default=64)
    replay.add_argument("--executor", default="thread", choices=list(EXECUTORS))
    replay.add_argument("--batch-size", type=int, default=128)
    replay.add_argument("--seed", type=int, default=1)
    replay.add_argument("--json", action="store_true",
                        help="emit the report as one JSON line instead of a table")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.application == "stanford":
        ruleset = generate_stanford_backbone(args.rules, seed=args.seed)
        print(f"generated {len(ruleset)} forwarding rules", file=sys.stderr)
        # Forwarding rules are single-field; store them as 5-tuple wildcards so
        # the ClassBench format applies.
        from repro.rules.fields import FIVE_TUPLE
        from repro.rules.rule import Rule, RuleSet

        widened = RuleSet(
            [
                Rule(
                    ((0, 0xFFFFFFFF), rule.ranges[0], (0, 65535), (0, 65535), (0, 255)),
                    priority=rule.priority,
                    action=rule.action,
                    rule_id=rule.rule_id,
                )
                for rule in ruleset
            ],
            FIVE_TUPLE,
            name=ruleset.name,
        )
        write_classbench_file(widened, args.output)
    else:
        ruleset = generate_classbench(args.application, args.rules, seed=args.seed)
        write_classbench_file(ruleset, args.output)
        print(f"generated {len(ruleset)} {args.application} rules", file=sys.stderr)
    print(args.output)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    ruleset = parse_classbench_file(args.ruleset)
    quality = partition_quality(ruleset, num_isets=args.isets)
    print(format_kv(
        {
            "rules": len(ruleset),
            "fields": len(ruleset.schema),
            "max diversity": round(quality["max_diversity"], 3),
            "centrality (lower bound)": quality["centrality_lower_bound"],
            "remainder fraction": round(quality["remainder_fraction"], 3),
        },
        title=f"rule-set {ruleset.name}",
    ))
    coverage = quality["cumulative_coverage"]
    print()
    print(format_table(
        ["iSets", "coverage %"],
        [[i + 1, round(100 * c, 1)] for i, c in enumerate(coverage)],
    ))
    return 0


def _nm_config(error_threshold: int) -> NuevoMatchConfig:
    return NuevoMatchConfig(
        max_isets=4,
        min_iset_coverage=0.05,
        rqrmi=RQRMIConfig(error_threshold=error_threshold),
    )


def _build_classifier_from_args(args: argparse.Namespace):
    ruleset = parse_classbench_file(args.ruleset)
    if args.classifier == "nm":
        classifier = NuevoMatch.build(
            ruleset,
            remainder_classifier=args.remainder,
            config=_nm_config(args.error_threshold),
        )
    else:
        classifier = build_classifier(args.classifier, ruleset)
    return ruleset, classifier


def _cmd_build(args: argparse.Namespace) -> int:
    ruleset, classifier = _build_classifier_from_args(args)
    stats = classifier.statistics()
    printable = {
        key: (round(value, 4) if isinstance(value, float) else value)
        for key, value in stats.items()
        if not isinstance(value, (dict, list))
    }
    print(format_kv(printable, title=f"{stats['name']} over {ruleset.name}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    ruleset = parse_classbench_file(args.ruleset)
    baseline = build_classifier(args.baseline, ruleset)
    nm = NuevoMatch.build(
        ruleset,
        remainder_classifier=type(baseline),
        config=_nm_config(args.error_threshold),
    )
    trace = generate_uniform_trace(ruleset, args.packets, seed=1)
    cost_model = CostModel()
    baseline_report = evaluate_classifier(baseline, trace, cost_model, cores=2)
    nm_report = evaluate_nuevomatch(nm, trace, cost_model, mode="parallel")
    factors = speedup(nm_report, baseline_report)
    print(format_table(
        ["classifier", "index KB", "latency ns", "throughput Mpps"],
        [
            [baseline.name,
             round(baseline.memory_footprint().index_bytes / 1024, 1),
             round(baseline_report.avg_latency_ns, 1),
             round(baseline_report.throughput_pps / 1e6, 3)],
            [f"nm({baseline.name})",
             round(nm.memory_footprint().index_bytes / 1024, 1),
             round(nm_report.avg_latency_ns, 1),
             round(nm_report.throughput_pps / 1e6, 3)],
        ],
        title=f"NuevoMatch vs {baseline.name} on {ruleset.name} "
              f"({len(ruleset)} rules, modelled, 2 cores)",
    ))
    print(f"\nspeedup: {factors['latency']:.2f}x latency, "
          f"{factors['throughput']:.2f}x throughput "
          f"(coverage {nm.coverage:.1%}, {nm.num_isets} iSets)")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    import time

    from repro.core.pipeline import TrainingPipeline

    ruleset = parse_classbench_file(args.ruleset)
    params = {}
    pipeline = None
    warm_from = None
    if args.warm_start and args.serial_trainer:
        print(
            "error: --warm-start requires the stacked trainer; drop "
            "--serial-trainer to warm-start",
            file=sys.stderr,
        )
        return 2
    if args.classifier == "nm":
        params = {
            "remainder_classifier": args.remainder,
            "config": _nm_config(args.error_threshold),
        }
        pipeline = TrainingPipeline(
            jobs=args.jobs,
            warm_epochs=args.warm_epochs,
            vectorized=not args.serial_trainer,
        )
        if args.warm_start:
            warm_from = ClassificationEngine.load(args.warm_start)
            if warm_from.classifier_name != "nm":
                print(
                    f"error: --warm-start snapshot holds a "
                    f"{warm_from.classifier_name!r} classifier; warm starting "
                    "applies to trained (nm) engines",
                    file=sys.stderr,
                )
                return 2
    elif args.warm_start or args.jobs != 1:
        print(
            f"error: classifier {args.classifier!r} has no trained state; "
            "--jobs/--warm-start apply to nm",
            file=sys.stderr,
        )
        return 2
    start = time.perf_counter()
    engine = ClassificationEngine.build(
        ruleset,
        classifier=args.classifier,
        pipeline=pipeline,
        warm_from=warm_from,
        **params,
    )
    build_seconds = time.perf_counter() - start
    engine.save(args.output)
    summary = {
        "rules": len(ruleset),
        "build wall s": round(build_seconds, 3),
    }
    for key, value in engine.metadata.get("training", {}).items():
        summary[f"training {key}"] = (
            round(value, 4) if isinstance(value, float) else value
        )
    print(format_kv(
        summary, title=f"trained engine[{engine.classifier_name}] over {ruleset.name}"
    ))
    print(args.output)
    return 0


def _print_engine_stats(engine: ClassificationEngine, title: str) -> None:
    stats = engine.statistics()
    printable = {
        key: (round(value, 4) if isinstance(value, float) else value)
        for key, value in stats.items()
        if not isinstance(value, (dict, list))
    }
    print(format_kv(printable, title=title))


def _cmd_engine_save(args: argparse.Namespace) -> int:
    ruleset, classifier = _build_classifier_from_args(args)
    engine = ClassificationEngine(classifier)
    engine.save(args.output)
    _print_engine_stats(
        engine, f"engine[{engine.classifier_name}] over {ruleset.name}"
    )
    print(args.output)
    return 0


def _cmd_engine_load(args: argparse.Namespace) -> int:
    engine = ClassificationEngine.load(args.engine)
    _print_engine_stats(
        engine,
        f"engine[{engine.classifier_name}] over {engine.ruleset.name} "
        f"({len(engine.ruleset)} rules)",
    )
    return 0


def _cmd_engine_serve(args: argparse.Namespace) -> int:
    engine = ClassificationEngine.load(args.engine)
    trace = generate_uniform_trace(engine.ruleset, args.packets, seed=args.seed)
    cost_model = CostModel()
    matched = 0
    num_batches = 0
    total_ns = 0.0
    # Each BatchReport carries its batch's aggregated LookupTrace; pricing it
    # directly avoids classifying the trace a second time just for the model.
    for report in engine.serve(trace, batch_size=args.batch_size):
        matched += report.matched
        num_batches += 1
        total_ns += cost_model.classifier_lookup_latency(
            engine.classifier, report.trace
        ).total_ns
    avg_latency = total_ns / len(trace) if len(trace) else 0.0
    throughput = 1.0 / (avg_latency * 1e-9) if avg_latency > 0 else 0.0
    print(format_kv(
        {
            "packets": len(trace),
            "batches": num_batches,
            "batch size": args.batch_size,
            "matched": matched,
            "modelled latency ns/pkt": round(avg_latency, 1),
            "modelled throughput Mpps": round(throughput / 1e6, 3),
        },
        title=f"engine[{engine.classifier_name}] serving {engine.ruleset.name}",
    ))
    return 0


def _listen_address(listen: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` --listen argument (empty host = 127.0.0.1)."""
    host, sep, port = listen.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(f"error: --listen expects HOST:PORT, got {listen!r}")
    return host or "127.0.0.1", int(port)


def _cmd_serve_listen(args: argparse.Namespace, engine) -> int:
    """Network-serving mode: front ``engine`` with an AsyncServer."""
    host, port = _listen_address(args.listen)
    if args.cache_size > 0:
        engine = CachedEngine(engine, capacity=args.cache_size)
    # Naming an SLO implies wanting it enforced; --no-adaptive still wins.
    adaptive = (
        args.adaptive
        if args.adaptive is not None
        else args.slo_p99_us is not None
    )
    try:
        stats = run_server(
            engine,
            host,
            port,
            max_batch=args.max_batch,
            max_delay_us=args.max_delay_us,
            max_queue=args.max_queue,
            slo_p99_us=args.slo_p99_us,
            adaptive=adaptive,
            ready=lambda server: print(
                f"listening on {server.host}:{server.port} "
                f"(max_batch={args.max_batch}, "
                f"max_delay_us={args.max_delay_us:g}, "
                f"cache_size={args.cache_size}, "
                f"adaptive={'on' if adaptive else 'off'})",
                file=sys.stderr,
                flush=True,
            ),
        )
    finally:
        engine.close()
    server_stats = stats.get("server", {})
    batcher = server_stats.get("batcher", {})
    budget = server_stats.get("budget", {})
    controller = server_stats.get("controller") or {}
    print(format_kv(
        {
            "requests served": server_stats.get("requests_served", 0),
            "batches": batcher.get("batches", 0),
            "mean batch size": batcher.get("mean_batch_size", 0.0),
            "max batch seen": batcher.get("max_batch_seen", 0),
            "rejected (overload)": batcher.get("rejected", 0),
            "max queue depth": batcher.get("max_queue_depth", 0),
            "shed packets": budget.get("rejected_packets", 0),
            "latency p50 us": round(server_stats.get("p50_us", 0.0), 1),
            "latency p99 us": round(server_stats.get("p99_us", 0.0), 1),
            **(
                {
                    "slo p99 us": controller.get("slo_p99_us"),
                    "control windows": controller.get("windows", 0),
                    "slo breaches": controller.get("breaches", 0),
                }
                if controller
                else {}
            ),
        },
        title="server shutdown statistics",
    ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    # Multi-shard serving defaults to the shared-memory worker runtime — the
    # executor whose *measured* throughput actually scales with shards; a
    # single shard has nothing to fan out and keeps threads.  A snapshot
    # restore without --executor keeps the snapshot's persisted choice.
    auto_executor = "workers" if args.shards > 1 else "thread"
    path = str(args.ruleset)
    if path.endswith((".json", ".json.gz")):
        import json

        try:
            sharded = ShardedEngine.load(path, executor=args.executor)
        except json.JSONDecodeError:
            print(
                f"error: {path} is not a sharded-engine snapshot (rule-set "
                "files must not use a .json/.json.gz extension)",
                file=sys.stderr,
            )
            return 2
        print(
            "serving from snapshot: --shards/--classifier/--partitioner/"
            "--retrain-threshold come from the snapshot",
            file=sys.stderr,
        )
    else:
        ruleset = parse_classbench_file(args.ruleset)
        params = {}
        if args.classifier == "nm":
            params = {
                "remainder_classifier": args.remainder,
                "config": _nm_config(args.error_threshold),
            }
        if args.listen and args.shards <= 1:
            # Network serving fronts any engine stack; one shard needs no
            # fan-out layer at all.
            return _cmd_serve_listen(
                args,
                ClassificationEngine.build(
                    ruleset, classifier=args.classifier, **params
                ),
            )
        sharded = ShardedEngine.build(
            ruleset,
            shards=args.shards,
            classifier=args.classifier,
            partitioner=args.partitioner,
            executor=args.executor or auto_executor,
            retrain_threshold=args.retrain_threshold,
            **params,
        )
    if args.listen:
        return _cmd_serve_listen(args, sharded)
    with sharded:
        trace = generate_uniform_trace(
            sharded.ruleset, args.packets, seed=args.seed
        )
        start = time.perf_counter()
        matched = 0
        num_batches = 0
        for report in sharded.serve(trace, batch_size=args.batch_size):
            matched += report.matched
            num_batches += 1
        elapsed = time.perf_counter() - start
        modelled = evaluate_sharded(
            sharded, trace, CostModel(), batch_size=args.batch_size
        )
        print(format_kv(
            {
                "shards": sharded.num_shards,
                "shard sizes": "/".join(str(s) for s in sharded.shard_sizes()),
                "executor": sharded.executor,
                "partitioner": sharded.partitioner,
                "packets": len(trace),
                "batches": num_batches,
                "matched": matched,
                "measured wall s": round(elapsed, 3),
                "measured kpps": round(len(trace) / elapsed / 1e3, 1)
                if elapsed > 0 else 0.0,
                "modelled latency ns/pkt": round(modelled.avg_latency_ns, 1),
                "modelled throughput Mpps": round(
                    modelled.throughput_pps / 1e6, 3
                ),
            },
            title=f"sharded[{sharded.num_shards}] serving "
                  f"{sum(sharded.shard_sizes())} rules",
        ))
        if args.save:
            sharded.save(args.save)
            print(args.save)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json

    if args.ruleset:
        ruleset = parse_classbench_file(args.ruleset)
    else:
        ruleset = generate_classbench(args.application, args.rules, seed=args.seed)
    params = {}
    if args.classifier == "nm":
        params = {
            "remainder_classifier": args.remainder,
            "config": _nm_config(args.error_threshold),
        }
    report = run_scenario(
        ruleset,
        trace_kind=args.trace,
        num_packets=args.packets,
        skew=args.skew,
        shards=args.shards,
        cache_size=args.cache_size,
        classifier=args.classifier,
        executor=args.executor,
        batch_size=args.batch_size,
        seed=args.seed,
        **params,
    )
    if args.json:
        print(json.dumps(report.as_dict(), sort_keys=True))
        return 0
    trace_label = (
        f"{args.trace}-{args.skew}" if args.trace == "zipf" else args.trace
    )
    print(format_kv(
        {
            "trace": trace_label,
            "ruleset": f"{ruleset.name} ({len(ruleset)} rules)",
            "shards": report.shards,
            "cache size": report.cache_size,
            "packets": report.packets,
            "matched": report.matched,
            "cache hit rate": f"{report.hit_rate:.1%}",
            "measured kpps": round(report.throughput_pps / 1e3, 1),
            "latency p50 ns/pkt": round(report.latency_p50_ns, 1),
            "latency p99 ns/pkt": round(report.latency_p99_ns, 1),
            "modelled latency ns/pkt": round(report.modelled_latency_ns, 1),
            "modelled throughput Mpps": round(
                report.modelled_throughput_pps / 1e6, 3
            ),
        },
        title=f"replay {trace_label} through {report.engine}",
    ))
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "inspect": _cmd_inspect,
    "build": _cmd_build,
    "compare": _cmd_compare,
    "train": _cmd_train,
    "serve": _cmd_serve,
    "replay": _cmd_replay,
}

_ENGINE_COMMANDS = {
    "save": _cmd_engine_save,
    "load": _cmd_engine_load,
    "serve": _cmd_engine_serve,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "engine":
        return _ENGINE_COMMANDS[args.engine_command](args)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
