"""Exact-match flow caching: :class:`FlowCache` and :class:`CachedEngine`.

The paper's skewed-traffic evaluation (§5.1.1, Figure 12) draws traces where
the 3% most frequent flows carry 80–95% of the packets.  In that regime the
classic software fast path is an exact-match *flow cache*: the first packet of
a flow pays the full classification (RQ-RMI inference + remainder search), and
every later packet of the same five-tuple is answered by one hash probe.
This module provides that layer for the serving stack:

* :class:`FlowCache` — a numpy-keyed LRU mapping five-tuple keys to
  classification winners.  Probe and fill operate on whole batches, eviction
  removes the least-recently-used entries in bulk, and invalidation is a
  vectorized range-containment scan over the key matrix.
* :class:`CachedEngine` — fronts any engine exposing ``classify_batch``
  (:class:`~repro.engine.ClassificationEngine` or
  :class:`~repro.serving.ShardedEngine`) with a :class:`FlowCache`: probe the
  batch, classify only the missed flows (each distinct missed flow once), fill,
  and return results in arrival order — identical matches to the uncached
  engine.

Consistency contract (eviction before ack)
------------------------------------------

A cached result may never outlive the rule-set state it was computed from.
:class:`CachedEngine` therefore registers an invalidation listener with the
wrapped engine's :class:`~repro.serving.updates.UpdateQueue` (or applies the
same policy inline for a plain :class:`~repro.engine.ClassificationEngine`):

* ``insert(rule)`` evicts every cached flow whose five-tuple lies inside the
  new rule's hyper-rectangle (the new rule may now win for those flows, and
  cached *no-match* entries inside it are stale too), plus any entry cached
  for a previous version of the same ``rule_id``.
* ``remove(rule_id)`` evicts every cached flow whose winner was that rule.

Both run *before the update call returns*: once ``insert``/``remove`` is
acknowledged, a subsequent ``classify`` cannot serve a pre-update cached
result.  A slow-path fill that raced an update cannot resurrect pre-update
state either: :class:`CachedEngine` snapshots the cache's invalidation
*epoch* before classifying misses, and :meth:`FlowCache.fill_batch` drops the
fill if any invalidation landed in between.  Results already *returned*
before the ack reflect the old state, exactly as a lookup that raced the
update would — callers needing a fence must order their lookups after the
update call returns (the same contract the update queue documents for
overlays).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.classifiers.base import (
    HASH_TABLE_OVERHEAD,
    POINTER_BYTES,
    ClassificationResult,
    LookupTrace,
)
from repro.rules.rule import Packet, Rule

__all__ = ["DEFAULT_CACHE_CAPACITY", "CacheStats", "FlowCache", "CachedEngine"]

#: Default entry count for CLI/benchmark front-ends (a 4K-flow cache keys
#: 5 × 8-byte fields per entry, ~224 KB — L2-resident on the paper's machine).
DEFAULT_CACHE_CAPACITY = 4096

#: ``rule_id`` sentinel stored for a cached *no-match* result.
_NO_MATCH = -1


@dataclass
class CacheStats:
    """Aggregate probe/fill/eviction counters of a :class:`FlowCache`."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    dropped_fills: int = 0

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from the cache (0.0 when unused)."""
        return self.hits / self.probes if self.probes else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "dropped_fills": self.dropped_fills,
        }


def pack_packets(
    packets: Sequence[Packet | Sequence[int]], num_fields: int
) -> np.ndarray:
    """Batch of packets as a contiguous ``(n, num_fields)`` uint64 key matrix."""
    arr = np.empty((len(packets), num_fields), dtype=np.uint64)
    for row, packet in enumerate(packets):
        arr[row] = packet.values if isinstance(packet, Packet) else tuple(packet)
    return arr


def _row_bytes(keys: np.ndarray) -> list[bytes]:
    """Per-row dict keys for a contiguous key matrix, via one ``tobytes``.

    One serialization of the whole matrix plus per-row slicing beats a
    ``tobytes`` call per row, and ``bytes`` keys hash/compare faster than
    numpy void scalars (which are unhashable on recent numpy anyway).
    """
    raw = keys.tobytes()
    stride = keys.shape[1] * keys.itemsize
    return [raw[start : start + stride] for start in range(0, len(raw), stride)]


class FlowCache:
    """An exact-match five-tuple → classification-result LRU cache.

    Entries live in fixed, slot-parallel storage: a ``(capacity, num_fields)``
    uint64 key matrix, a winner ``rule_id`` vector and a last-used clock vector
    (all numpy), plus a bytes-key → slot dict for exact probes.  Batch fills
    evict the *k* least-recently-used entries in one ``argpartition``;
    invalidation scans the key matrix with vectorized range containment, so
    update cost does not depend on rule count.

    No-match results are cached too (``rule_id`` sentinel −1): skewed traces
    repeat unmatched flows as often as matched ones, and the insert-side
    invalidation evicts any cached no-match the new rule now covers.

    A ``capacity`` of 0 disables the cache: probes always miss, fills are
    dropped.

    Thread safety: probe, fill, invalidation and clear serialize on an
    internal lock, so listener-driven invalidation (which runs on the
    updater's thread) cannot corrupt the slot bookkeeping or hand a probe
    another flow's entry; the epoch check in :meth:`fill_batch` additionally
    fences fills whose winners were computed before an invalidation landed.
    """

    def __init__(self, capacity: int, num_fields: int = 5):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if num_fields < 1:
            raise ValueError("num_fields must be >= 1")
        self.capacity = capacity
        self.num_fields = num_fields
        self.stats = CacheStats()
        self._keys = np.zeros((capacity, num_fields), dtype=np.uint64)
        self._rule_ids = np.full(capacity, _NO_MATCH, dtype=np.int64)
        self._priorities = np.zeros(capacity, dtype=np.int64)
        self._last_used = np.zeros(capacity, dtype=np.int64)
        self._occupied = np.zeros(capacity, dtype=bool)
        self._rules: list[Optional[Rule]] = [None] * capacity
        self._slot_keys: list[Optional[bytes]] = [None] * capacity
        self._index: dict[bytes, int] = {}
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        self._clock = 0
        self._epoch = 0
        # Windowed hit/miss deltas for the cache tuner (drained by
        # take_hit_window); aggregate history stays in ``stats``.
        self._window_hits = 0
        self._window_misses = 0
        # Serializes probe/fill against listener-driven invalidation: the
        # UpdateQueue notifies from the updater's thread, and an unlocked
        # probe racing _drop_slot/_store could read another flow's slot.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    @property
    def epoch(self) -> int:
        """Invalidation epoch: bumped by every invalidate/clear call.

        Snapshot it before computing results on the slow path and pass it to
        :meth:`fill_batch`: a fill whose epoch is stale (an update was
        acknowledged while the results were being computed) is dropped rather
        than re-caching state from before the update.
        """
        return self._epoch

    # -------------------------------------------------------------- probe/fill

    def probe_batch(
        self, keys: np.ndarray, row_bytes: Sequence[bytes] | None = None
    ) -> tuple[list[Optional[Rule]], np.ndarray]:
        """Probe a key matrix; returns (per-row cached winners, hit mask).

        The winners list holds the cached :class:`Rule` (or ``None`` for a
        cached no-match) at hit rows; miss rows hold ``None`` and are
        distinguished by the mask.  Hit slots' LRU clocks advance together.
        ``row_bytes`` lets a caller that already serialized the rows (the
        :class:`CachedEngine` hot path reuses them for miss dedup) skip the
        per-row ``tobytes``.
        """
        n = len(keys)
        mask = np.zeros(n, dtype=bool)
        winners: list[Optional[Rule]] = [None] * n
        if row_bytes is None:
            row_bytes = _row_bytes(keys)
        with self._lock:
            if not self._index:
                self.stats.misses += n
                self._window_misses += n
                return winners, mask
            hit_slots: list[int] = []
            index = self._index
            for row in range(n):
                slot = index.get(row_bytes[row])
                if slot is not None:
                    mask[row] = True
                    winners[row] = self._rules[slot]
                    hit_slots.append(slot)
            if hit_slots:
                self._clock += 1
                self._last_used[hit_slots] = self._clock
            self.stats.hits += len(hit_slots)
            self.stats.misses += n - len(hit_slots)
            self._window_hits += len(hit_slots)
            self._window_misses += n - len(hit_slots)
        return winners, mask

    def probe_block(
        self, keys: np.ndarray, row_bytes: Sequence[bytes] | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Columnar probe: ``(rule_ids, priorities, hit_mask)``, no objects.

        ``rule_ids``/``priorities`` are int64 ``(n,)`` in the one columnar
        miss encoding (``-1``/``0``); a *cached no-match* is a hit row with
        ``rule_id == -1`` — the mask is what separates it from a cold miss.
        LRU clocks and hit/miss stats advance exactly as in
        :meth:`probe_batch`.
        """
        n = len(keys)
        rule_ids = np.full(n, _NO_MATCH, dtype=np.int64)
        priorities = np.zeros(n, dtype=np.int64)
        mask = np.zeros(n, dtype=bool)
        if row_bytes is None:
            row_bytes = _row_bytes(keys)
        with self._lock:
            if not self._index:
                self.stats.misses += n
                self._window_misses += n
                return rule_ids, priorities, mask
            hit_rows: list[int] = []
            hit_slots: list[int] = []
            index = self._index
            for row in range(n):
                slot = index.get(row_bytes[row])
                if slot is not None:
                    hit_rows.append(row)
                    hit_slots.append(slot)
            if hit_slots:
                self._clock += 1
                self._last_used[hit_slots] = self._clock
                rule_ids[hit_rows] = self._rule_ids[hit_slots]
                priorities[hit_rows] = self._priorities[hit_slots]
                mask[hit_rows] = True
            self.stats.hits += len(hit_slots)
            self.stats.misses += n - len(hit_slots)
            self._window_hits += len(hit_slots)
            self._window_misses += n - len(hit_slots)
        return rule_ids, priorities, mask

    def fill_block(
        self,
        keys: np.ndarray,
        rule_ids: np.ndarray,
        rules_by_id: dict[int, Rule],
        epoch: int | None = None,
        row_bytes: Sequence[bytes] | None = None,
    ) -> None:
        """Columnar fill: cache ``(key row, rule_id)`` pairs from a block.

        Winners resolve through ``rules_by_id`` so object-path probes keep
        returning real :class:`Rule` instances; a row whose id no longer
        resolves (the rule was removed while the results were in flight) is
        skipped rather than cached as a spurious no-match.  ``rule_id == -1``
        rows cache as no-match entries.  Eviction, dedup and the ``epoch``
        fence match :meth:`fill_batch`.
        """
        if self.capacity == 0 or not len(keys):
            return
        resolvable = np.ones(len(keys), dtype=bool)
        winners: list[Optional[Rule]] = []
        for row, rule_id in enumerate(rule_ids):
            rule_id = int(rule_id)
            if rule_id < 0:
                winners.append(None)
                continue
            rule = rules_by_id.get(rule_id)
            if rule is None:
                resolvable[row] = False
            else:
                winners.append(rule)
        if not resolvable.all():
            keys = keys[resolvable]
            row_bytes = (
                None
                if row_bytes is None
                else [
                    row_bytes[row] for row in np.flatnonzero(resolvable)
                ]
            )
        self.fill_batch(keys, winners, epoch=epoch, row_bytes=row_bytes)

    def fill_batch(
        self,
        keys: np.ndarray,
        winners: Sequence[Optional[Rule]],
        epoch: int | None = None,
        row_bytes: Sequence[bytes] | None = None,
    ) -> None:
        """Insert (key row, winner) pairs, bulk-evicting LRU entries as needed.

        Duplicate keys within the batch collapse to one entry; keys already
        cached are refreshed in place.  When the batch brings more new flows
        than ``capacity``, only the last ``capacity`` of them are kept (they
        are the most recent fills).

        ``epoch`` is the :attr:`epoch` snapshot taken before the winners were
        computed.  If an invalidation landed in between, the whole fill is
        dropped (counted in ``stats.dropped_fills``): the winners may predate
        an acknowledged update, and caching them would let a post-ack lookup
        observe pre-update state.
        """
        if self.capacity == 0 or not len(keys):
            return
        if row_bytes is None:
            row_bytes = _row_bytes(keys)
        with self._lock:
            if epoch is not None and epoch != self._epoch:
                self.stats.dropped_fills += 1
                return
            fresh: dict[bytes, tuple[np.ndarray, Optional[Rule]]] = {}
            for row, key, winner in zip(keys, row_bytes, winners):
                slot = self._index.get(key)
                if slot is not None:
                    self._store(slot, row, key, winner, refresh=True)
                else:
                    fresh[key] = (row, winner)
            if len(fresh) > self.capacity:
                fresh = dict(list(fresh.items())[-self.capacity:])
            overflow = len(fresh) - len(self._free)
            if overflow > 0:
                self._evict_lru(overflow)
            for key, (row, winner) in fresh.items():
                self._store(self._free.pop(), row, key, winner, refresh=False)

    def _store(
        self,
        slot: int,
        row: np.ndarray,
        key: bytes,
        winner: Optional[Rule],
        refresh: bool,
    ) -> None:
        self._keys[slot] = row
        if winner is not None:
            self._rule_ids[slot] = winner.rule_id
            self._priorities[slot] = winner.priority
        else:
            self._rule_ids[slot] = _NO_MATCH
            self._priorities[slot] = 0
        self._rules[slot] = winner
        self._slot_keys[slot] = key
        self._occupied[slot] = True
        self._clock += 1
        self._last_used[slot] = self._clock
        if not refresh:
            self._index[key] = slot
            self.stats.insertions += 1

    def _evict_lru(self, count: int) -> None:
        occupied = np.flatnonzero(self._occupied)
        count = min(count, len(occupied))
        if count == 0:
            return
        if count < len(occupied):
            oldest = occupied[
                np.argpartition(self._last_used[occupied], count - 1)[:count]
            ]
        else:
            oldest = occupied
        for slot in oldest:
            self._drop_slot(int(slot))
            self.stats.evictions += 1

    def _drop_slot(self, slot: int) -> None:
        key = self._slot_keys[slot]
        assert key is not None
        del self._index[key]
        self._slot_keys[slot] = None
        self._rules[slot] = None
        self._rule_ids[slot] = _NO_MATCH
        self._priorities[slot] = 0
        self._occupied[slot] = False
        self._free.append(slot)

    # ------------------------------------------------------------ invalidation

    def invalidate_insert(self, rule: Rule) -> int:
        """Evict entries a newly inserted/replaced ``rule`` could change.

        Every cached flow inside the rule's hyper-rectangle (vectorized
        containment over the key matrix) plus any entry whose winner carries
        the same ``rule_id`` (a stale previous version).  Returns the number
        of evicted entries.
        """
        with self._lock:
            self._epoch += 1
            if not self._index:
                return 0
            lows = np.array([lo for lo, _hi in rule.ranges], dtype=np.uint64)
            highs = np.array([hi for _lo, hi in rule.ranges], dtype=np.uint64)
            stale = self._occupied & (
                ((self._keys >= lows) & (self._keys <= highs)).all(axis=1)
                | (self._rule_ids == rule.rule_id)
            )
            return self._drop_mask(stale)

    def invalidate_remove(self, rule_id: int) -> int:
        """Evict entries whose cached winner is the removed rule."""
        with self._lock:
            self._epoch += 1
            if not self._index:
                return 0
            stale = self._occupied & (self._rule_ids == rule_id)
            return self._drop_mask(stale)

    def _drop_mask(self, stale: np.ndarray) -> int:
        slots = np.flatnonzero(stale)
        for slot in slots:
            self._drop_slot(int(slot))
        self.stats.invalidations += len(slots)
        return len(slots)

    def handle_update(self, op: str, payload) -> None:
        """:class:`~repro.serving.updates.UpdateQueue` listener entry point."""
        if op == "insert":
            self.invalidate_insert(payload)
        elif op == "remove":
            self.invalidate_remove(payload)
        else:  # pragma: no cover - future-proofing
            raise ValueError(f"unknown update op {op!r}")

    def clear(self) -> int:
        """Drop every entry (counted as invalidations); returns the count."""
        with self._lock:
            self._epoch += 1
            return self._drop_mask(self._occupied.copy())

    # ---------------------------------------------------------------- resizing

    def resize(self, capacity: int) -> int:
        """Change capacity in place, keeping the most-recently-used entries.

        Shrinking below the current occupancy evicts the LRU overflow first
        (counted in ``stats.evictions``); surviving entries keep their LRU
        clocks and winners.  The invalidation epoch is *not* bumped — a
        resize changes no rule state, so an in-flight slow-path fill remains
        valid and is not dropped.  Returns the number of entries evicted.
        """
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        with self._lock:
            if capacity == self.capacity:
                return 0
            evicted = 0
            overflow = len(self._index) - capacity
            if overflow > 0:
                before = self.stats.evictions
                self._evict_lru(overflow)
                evicted = self.stats.evictions - before
            survivors = np.flatnonzero(self._occupied)
            keys = self._keys[survivors].copy()
            rule_ids = self._rule_ids[survivors].copy()
            priorities = self._priorities[survivors].copy()
            last_used = self._last_used[survivors].copy()
            rules = [self._rules[int(slot)] for slot in survivors]
            slot_keys = [self._slot_keys[int(slot)] for slot in survivors]
            self.capacity = capacity
            self._keys = np.zeros((capacity, self.num_fields), dtype=np.uint64)
            self._rule_ids = np.full(capacity, _NO_MATCH, dtype=np.int64)
            self._priorities = np.zeros(capacity, dtype=np.int64)
            self._last_used = np.zeros(capacity, dtype=np.int64)
            self._occupied = np.zeros(capacity, dtype=bool)
            self._rules = [None] * capacity
            self._slot_keys = [None] * capacity
            self._index = {}
            count = len(survivors)
            if count:
                self._keys[:count] = keys
                self._rule_ids[:count] = rule_ids
                self._priorities[:count] = priorities
                self._last_used[:count] = last_used
                self._occupied[:count] = True
                for slot in range(count):
                    key = slot_keys[slot]
                    assert key is not None
                    self._rules[slot] = rules[slot]
                    self._slot_keys[slot] = key
                    self._index[key] = slot
            self._free = list(range(capacity - 1, count - 1, -1))
            return evicted

    def take_hit_window(self) -> tuple[int, int]:
        """Drain and return ``(hits, misses)`` accumulated since the last call.

        The :class:`~repro.serving.control.CacheTuner` consumes one window per
        control interval; aggregate counters in :attr:`stats` are unaffected.
        """
        with self._lock:
            window = (self._window_hits, self._window_misses)
            self._window_hits = 0
            self._window_misses = 0
            return window

    # ----------------------------------------------------------- introspection

    def footprint_bytes(self) -> int:
        """Size of the cache structures, for cache-hierarchy placement.

        Key matrix + winner ids + winner priorities + LRU clocks + one
        pointer per slot, plus a fixed table overhead — the quantity the
        replay harness feeds to
        :meth:`repro.simulation.CacheHierarchy.access_latency_ns` to price a
        hit.
        """
        per_entry = self.num_fields * 8 + 8 + 8 + 8 + POINTER_BYTES
        return HASH_TABLE_OVERHEAD + self.capacity * per_entry

    def statistics(self) -> dict[str, object]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._index),
                "footprint_bytes": self.footprint_bytes(),
                **self.stats.as_dict(),
            }


def _hit_trace() -> LookupTrace:
    """Trace of a cache hit: one hash computation plus one slot access.

    A fresh instance per result — :class:`LookupTrace` is a mutable dataclass
    and results must not alias one another.
    """
    return LookupTrace(index_accesses=1, hash_ops=1)


class CachedEngine:
    """A flow cache fronting any batch-serving engine.

    ``classify_batch`` probes the cache, classifies each *distinct* missed
    five-tuple once through the wrapped engine, fills the cache and returns
    per-packet results in arrival order.  Matches are identical to the
    uncached engine; hit results carry the cache's own
    :class:`~repro.classifiers.base.LookupTrace` (one hash + one access)
    instead of the full lookup's.

    If the wrapped engine exposes an ``updates``
    :class:`~repro.serving.updates.UpdateQueue` (the
    :class:`~repro.serving.ShardedEngine` does), an invalidation listener is
    registered so *any* update path — including direct calls on the wrapped
    engine — evicts stale entries before the update is acknowledged.  For a
    plain :class:`~repro.engine.ClassificationEngine`, route updates through
    :meth:`insert`/:meth:`remove` on this wrapper, which applies the same
    eviction-before-ack ordering inline.
    """

    #: The columnar contract holds whenever the wrapped engine serves blocks
    #: (both :class:`~repro.engine.ClassificationEngine` and
    #: :class:`~repro.serving.ShardedEngine` do).
    supports_block = True

    def __init__(self, engine, capacity: int = DEFAULT_CACHE_CAPACITY):
        self.engine = engine
        self._num_fields = len(engine.ruleset.schema)
        self.cache = FlowCache(capacity, self._num_fields)
        self._queue = getattr(engine, "updates", None)
        self._listener = self._on_update
        self._rules_by_id: dict[int, Rule] | None = None
        if self._queue is not None:
            self._queue.add_listener(self._listener)

    def _on_update(self, op: str, payload) -> None:
        """Update listener: evict stale cache entries and drop the id map."""
        self._rules_by_id = None
        self.cache.handle_update(op, payload)

    def _rules_map(self, refresh: bool = False) -> dict[int, Rule]:
        """``rule_id -> Rule`` over the wrapped engine's live rules.

        Delegates to the engine's own per-generation cache when it has one;
        otherwise built from ``engine.ruleset`` and invalidated whenever an
        update lands (listener or inline).
        """
        getter = getattr(self.engine, "rules_by_id", None)
        if getter is not None:
            return getter(refresh=refresh)
        if refresh or self._rules_by_id is None:
            self._rules_by_id = {
                rule.rule_id: rule for rule in self.engine.ruleset
            }
        return self._rules_by_id

    # ------------------------------------------------------------------ serve

    @property
    def ruleset(self):
        return self.engine.ruleset

    def classify_batch(
        self, packets: Sequence[Packet | Sequence[int]]
    ) -> list[ClassificationResult]:
        packet_list = list(packets)
        if not packet_list:
            return []
        keys = pack_packets(packet_list, self._num_fields)
        # Rows are serialized once and reused for probe, miss dedup and fill.
        row_bytes = _row_bytes(keys)
        winners, hit_mask = self.cache.probe_batch(keys, row_bytes=row_bytes)
        results: list[Optional[ClassificationResult]] = [None] * len(packet_list)
        for row in np.flatnonzero(hit_mask):
            results[row] = ClassificationResult(winners[row], _hit_trace())
        miss_rows = np.flatnonzero(~hit_mask)
        if len(miss_rows):
            # Classify each distinct missed flow once: under skewed traffic a
            # batch repeats hot flows, and duplicates resolve to the same rule.
            first_row: dict[bytes, int] = {}
            for row in miss_rows:
                first_row.setdefault(row_bytes[row], int(row))
            unique_rows = sorted(first_row.values())
            epoch = self.cache.epoch
            missed = self.engine.classify_batch(
                [packet_list[row] for row in unique_rows]
            )
            by_key = {
                row_bytes[row]: result
                for row, result in zip(unique_rows, missed)
            }
            for row in miss_rows:
                key = row_bytes[row]
                result = by_key[key]
                if int(row) == first_row[key]:
                    results[row] = result
                else:
                    # Duplicate of an in-batch flow: resolved from the batch
                    # dedup, so it carries the hit trace (no aliased results,
                    # and the engine's one lookup is not counted per copy).
                    results[row] = ClassificationResult(result.rule, _hit_trace())
            # The epoch snapshot predates the slow-path classification: if an
            # update was acknowledged meanwhile, the fill is dropped so no
            # post-ack lookup can hit pre-update results.
            self.cache.fill_batch(
                keys[unique_rows],
                [result.rule for result in missed],
                epoch=epoch,
                row_bytes=[row_bytes[row] for row in unique_rows],
            )
        return results  # type: ignore[return-value]

    def classify_block(
        self, block, traces: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Columnar lookup through the cache: probe → classify misses → fill.

        The validated block *is* the cache's key matrix, so the hot path is
        one ``tobytes`` plus dict probes — no :class:`Packet`,
        :class:`~repro.classifiers.base.ClassificationResult` or
        :class:`~repro.classifiers.base.LookupTrace` objects are created.
        Distinct missed flows classify once through the wrapped engine's
        ``classify_block``; in-batch duplicates copy the first occurrence's
        columnar result.  Probe/fill/invalidation semantics (LRU clocks,
        stats, the epoch fence) are identical to :meth:`classify_batch`.
        Misses carry ``rule_id == -1`` and ``priority == 0``; ``traces``
        rows are the hit trace (one hash + one index access) for cache and
        in-batch duplicate hits, the wrapped engine's trace otherwise.
        """
        from repro.engine.engine import validate_block

        block = validate_block(block)
        n = block.shape[0]
        if traces is not None:
            traces[:n] = 0
        if n == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        row_bytes = _row_bytes(block)
        rule_ids, priorities, hit_mask = self.cache.probe_block(
            block, row_bytes=row_bytes
        )
        if traces is not None:
            traces[hit_mask, 0] = 1
            traces[hit_mask, 4] = 1
        miss_rows = np.flatnonzero(~hit_mask)
        if miss_rows.size:
            # Classify each distinct missed flow once (as in classify_batch).
            first_row: dict[bytes, int] = {}
            for row in miss_rows:
                first_row.setdefault(row_bytes[row], int(row))
            unique_rows = np.array(sorted(first_row.values()), dtype=np.int64)
            epoch = self.cache.epoch
            sub_block = block[unique_rows]
            sub_traces = (
                np.zeros((len(unique_rows), traces.shape[1]), dtype=np.int64)
                if traces is not None
                else None
            )
            sub_ids, sub_pris = self.engine.classify_block(
                sub_block, traces=sub_traces
            )
            rule_ids[unique_rows] = sub_ids
            priorities[unique_rows] = sub_pris
            if traces is not None:
                traces[unique_rows] = sub_traces
            if len(unique_rows) < miss_rows.size:
                # In-batch duplicates of a missed flow resolve from the batch
                # dedup and carry the hit trace, mirroring classify_batch.
                src = np.array(
                    [first_row[row_bytes[row]] for row in miss_rows],
                    dtype=np.int64,
                )
                dup = src != miss_rows
                dup_rows = miss_rows[dup]
                rule_ids[dup_rows] = rule_ids[src[dup]]
                priorities[dup_rows] = priorities[src[dup]]
                if traces is not None:
                    traces[dup_rows] = 0
                    traces[dup_rows, 0] = 1
                    traces[dup_rows, 4] = 1
            rules = self._rules_map()
            if any(int(rule_id) >= 0 and int(rule_id) not in rules
                   for rule_id in sub_ids):
                rules = self._rules_map(refresh=True)
            self.cache.fill_block(
                sub_block,
                sub_ids,
                rules,
                epoch=epoch,
                row_bytes=[row_bytes[row] for row in unique_rows],
            )
        return rule_ids, priorities

    def classify_traced(self, packet: Packet | Sequence[int]) -> ClassificationResult:
        return self.classify_batch([packet])[0]

    def classify(self, packet: Packet | Sequence[int]) -> Optional[Rule]:
        return self.classify_traced(packet).rule

    def serve(self, packets, batch_size: int = 128):
        """Serve a packet stream in fixed-size batches, yielding batch reports."""
        from repro.engine.engine import serve_in_batches

        return serve_in_batches(self.classify_batch, packets, batch_size)

    # ----------------------------------------------------------------- update

    @property
    def supports_updates(self) -> bool:
        """Whatever the wrapped engine accepts (the cache itself always can)."""
        return getattr(self.engine, "supports_updates", True)

    def insert(self, rule: Rule) -> None:
        """Insert a rule; stale cache entries are evicted before this returns."""
        self.engine.insert(rule)
        if getattr(self.engine, "updates", None) is None:
            self._rules_by_id = None
            self.cache.invalidate_insert(rule)

    def remove(self, rule_id: int) -> bool:
        """Remove a rule; stale cache entries are evicted before this returns."""
        removed = self.engine.remove(rule_id)
        if removed and getattr(self.engine, "updates", None) is None:
            self._rules_by_id = None
            self.cache.invalidate_remove(rule_id)
        return removed

    def resize_cache(self, capacity: int) -> int:
        """Resize the flow cache in place (MRU entries survive; see
        :meth:`FlowCache.resize`).  The hook the server's cache tuner uses."""
        return self.cache.resize(capacity)

    # ----------------------------------------------------------- introspection

    def hit_rate(self) -> float:
        return self.cache.stats.hit_rate

    def statistics(self) -> dict[str, object]:
        return {
            "name": "cached",
            "cache": self.cache.statistics(),
            "engine": self.engine.statistics(),
        }

    def close(self) -> None:
        if self._queue is not None:
            self._queue.remove_listener(self._listener)
            self._queue = None
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "CachedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CachedEngine({self.engine!r}, capacity={self.cache.capacity}, "
            f"entries={len(self.cache)})"
        )
