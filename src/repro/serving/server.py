"""Asyncio network serving with adaptive request coalescing.

NuevoMatch's throughput comes from batched RQ-RMI inference, but network
traffic arrives as many small concurrent requests.  This module closes that
gap with the classic adaptive-batching pattern from serving systems:

* :class:`RequestBatcher` — coalesces concurrent ``classify`` calls into
  micro-batches under a ``(max_batch, max_delay_us)`` policy.  A batch closes
  the moment it reaches ``max_batch`` entries or its oldest entry has waited
  ``max_delay_us``; a bounded queue provides backpressure (submissions beyond
  ``max_queue`` raise :class:`QueueFullError` instead of growing without
  bound).  The clock is injectable so the policy is testable deterministically
  (`tests/test_request_batcher.py` drives it with a fake clock).
* :class:`AsyncServer` — an asyncio TCP server speaking a length-prefixed
  JSON protocol in front of *any* engine stack exposing ``classify_batch``
  (plain :class:`~repro.engine.ClassificationEngine`,
  :class:`~repro.serving.ShardedEngine`, or either wrapped in a
  :class:`~repro.serving.CachedEngine`).  ``classify`` requests flow through
  the batcher; ``insert``/``remove``/``stats`` are serialized through the same
  single-threaded engine executor, so the
  :class:`~repro.serving.updates.UpdateQueue` eviction-before-ack contract
  holds over the wire: a classify *sent after* an update's response was
  received can never observe pre-update state.
* :class:`AsyncClient` — a pipelining client: many requests may be in flight
  on one connection, matched to responses by id.

Wire protocol
-------------

Every frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON (one object).  Requests carry ``id`` (echoed verbatim in
the response) and ``op``::

    {"id": 7, "op": "classify", "packet": [sip, dip, sport, dport, proto]}
    {"id": 8, "op": "insert",   "rule": [[[lo, hi], ...], priority, action, rule_id]}
    {"id": 9, "op": "remove",   "rule_id": 3}
    {"id": 10, "op": "stats"}

Responses are ``{"id": ..., "ok": true, ...}`` on success or
``{"id": ..., "ok": false, "error": msg, "code": code}`` on failure; the
``code`` is ``"overloaded"`` when the batcher queue rejected the request
(backpressure) and ``"bad-request"``/``"error"`` otherwise.  A classify
response carries ``matched``, ``rule_id``, ``priority`` and ``action``
(``rule_id``/``priority``/``action`` are ``null`` on a miss).

Protocol v2 (:mod:`repro.serving.wire`) adds a binary classify-batch fast
path negotiated per connection via the ``hello`` op; JSON remains the
fallback and the control plane.  See docs/PROTOCOL.md for the normative
spec.

Admission is *packet-weighted* and shared across both protocols: every
classify — a JSON request (1 packet) or a binary batch (its row count) —
charges one :class:`~repro.serving.control.PacketBudget` before it is
accepted, so ``max_queue`` bounds rows of outstanding work rather than
request counts, and the binary fast path is subject to the same
backpressure (``STATUS_OVERLOADED``) as JSON (``code: "overloaded"``).
With ``adaptive=True`` an :class:`~repro.serving.control.OverloadController`
retunes ``(max_batch, max_delay_us, max_queue)`` each window against a p99
SLO; see :mod:`repro.serving.control`.
"""

from __future__ import annotations

import asyncio
import json
import struct
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Awaitable, Callable, Optional, Sequence

import numpy as np

from repro.engine.engine import results_to_arrays
from repro.engine.serialization import rule_from_state, rule_to_state
from repro.rules.rule import Packet, Rule
from repro.serving import wire
from repro.serving.control import (
    DEFAULT_SLO_P99_US,
    CacheTuner,
    ControllerConfig,
    ControlSettings,
    OverloadController,
    PacketBudget,
    QueueFullError,
)

__all__ = [
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_DELAY_US",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_SLO_P99_US",
    "MAX_FRAME_BYTES",
    "PacketBudget",
    "QueueFullError",
    "ServerError",
    "BatcherStats",
    "PendingRequest",
    "RequestBatcher",
    "AsyncServer",
    "AsyncClient",
    "run_server",
]

#: Largest batch one engine call serves (the paper's batched-inference sweet
#: spot is well below this; the delay bound usually closes batches first).
DEFAULT_MAX_BATCH = 128

#: How long the oldest queued request may wait before its batch closes.  0
#: disables the artificial delay: a batch closes as soon as the dispatcher is
#: free, coalescing only what already queued behind the previous batch.
DEFAULT_MAX_DELAY_US = 200.0

#: Bounded-queue capacity; submissions past it are rejected (backpressure).
DEFAULT_MAX_QUEUE = 8192

#: Hard cap on one frame's JSON payload (a malformed length prefix must not
#: make the server allocate gigabytes).
MAX_FRAME_BYTES = 1 << 22

_LENGTH = struct.Struct(">I")


class ServerError(RuntimeError):
    """An ``ok: false`` response received by :class:`AsyncClient`."""

    def __init__(self, message: str, code: str = "error"):
        super().__init__(message)
        self.code = code


# ---------------------------------------------------------------------------
# Request coalescing


@dataclass
class BatcherStats:
    """Aggregate coalescing counters of a :class:`RequestBatcher`."""

    requests: int = 0
    rejected: int = 0
    batches: int = 0
    coalesced: int = 0
    max_batch_seen: int = 0
    #: Peak queued *packets* (requests weight their row count, so this is
    #: comparable against ``max_queue`` — also packet-denominated).
    max_queue_depth: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Mean closed-batch size (0.0 before the first batch closes)."""
        return self.coalesced / self.batches if self.batches else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "requests": self.requests,
            "rejected": self.rejected,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "max_batch_seen": self.max_batch_seen,
            "max_queue_depth": self.max_queue_depth,
        }


class PendingRequest:
    """One queued classify request: payload, arrival time, future, weight.

    ``weight`` is the request's admission cost in packets (rows) — what it
    charged the :class:`~repro.serving.control.PacketBudget` and will free
    when its batch is taken.
    """

    __slots__ = ("payload", "enqueued_at", "future", "weight")

    def __init__(self, payload, enqueued_at: float, future, weight: int = 1):
        self.payload = payload
        self.enqueued_at = enqueued_at
        self.future = future
        self.weight = weight


class RequestBatcher:
    """Coalesce concurrent requests into micro-batches.

    The policy is a pure, clock-driven state machine — :meth:`submit`,
    :meth:`due_in` and :meth:`take_batch` have no asyncio dependency, so unit
    tests drive them deterministically with a fake ``clock`` and a plain
    ``future_factory``.  :meth:`run` is the asyncio dispatcher the server
    mounts on top: it closes batches per policy, hands their payloads to the
    processing coroutine and completes each request's future exactly once.

    Args:
        max_batch: Close a batch once this many requests are queued.
        max_delay_us: Close a batch once its oldest request has waited this
            long (microseconds); 0 closes batches as soon as the dispatcher
            is free.
        max_queue: Bounded-queue capacity in *packets*; :meth:`submit` raises
            :class:`QueueFullError` beyond it.  Ignored when ``budget`` is
            given.
        clock: Monotonic seconds source (injectable for determinism).
        future_factory: Constructor for per-request futures; defaults to the
            running event loop's ``create_future``.
        budget: A shared :class:`~repro.serving.control.PacketBudget` to
            charge admissions against (the server passes the one its binary
            path also draws from); by default the batcher owns a private
            budget of ``max_queue`` packets.
    """

    def __init__(
        self,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay_us: float = DEFAULT_MAX_DELAY_US,
        max_queue: int = DEFAULT_MAX_QUEUE,
        clock: Callable[[], float] = time.monotonic,
        future_factory: Callable[[], object] | None = None,
        budget: PacketBudget | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay_us < 0:
            raise ValueError("max_delay_us must be >= 0")
        if budget is None and max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        self.max_batch = max_batch
        self.max_delay_us = max_delay_us
        self.budget = budget if budget is not None else PacketBudget(max_queue)
        self.stats = BatcherStats()
        self._clock = clock
        self._future_factory = future_factory
        self._pending: deque[PendingRequest] = deque()
        self._queued_packets = 0
        self._closed = False
        self._wakeup: asyncio.Event | None = None

    @property
    def max_queue(self) -> int:
        """Admission capacity in packets (the shared budget's limit)."""
        return self.budget.limit

    @max_queue.setter
    def max_queue(self, value: int) -> None:
        if value < 1:
            raise ValueError("max_queue must be at least 1")
        self.budget.limit = int(value)

    # ----------------------------------------------------------- pure policy

    def _new_future(self):
        if self._future_factory is not None:
            return self._future_factory()
        return asyncio.get_running_loop().create_future()

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    @property
    def queued_packets(self) -> int:
        """Total admission weight currently queued (packets, not requests)."""
        return self._queued_packets

    def submit(self, payload, weight: int = 1) -> PendingRequest:
        """Queue one request of ``weight`` packets; raises
        :class:`QueueFullError` when the packet budget is at capacity.

        ``weight`` is the admission cost in rows — 1 for a single-packet
        classify, ``len(payload)`` for a pre-formed batch payload.  A
        request wider than the whole budget is still admitted when nothing
        else is queued or in flight (progress guarantee; see
        :class:`~repro.serving.control.PacketBudget`).
        """
        if self._closed:
            raise RuntimeError("batcher is closed")
        try:
            self.budget.try_acquire(weight)
        except QueueFullError:
            self.stats.rejected += 1
            raise
        pending = PendingRequest(
            payload, self._clock(), self._new_future(), weight
        )
        self._pending.append(pending)
        self._queued_packets += weight
        self.stats.requests += 1
        if self._queued_packets > self.stats.max_queue_depth:
            self.stats.max_queue_depth = self._queued_packets
        if self._wakeup is not None:
            self._wakeup.set()
        return pending

    def due_in(self) -> Optional[float]:
        """Seconds until the current batch must close.

        ``None`` when nothing is queued; ``0.0`` when a batch is ready now
        (``max_batch`` reached, or the oldest request has waited
        ``max_delay_us``).
        """
        if not self._pending:
            return None
        if len(self._pending) >= self.max_batch:
            return 0.0
        waited_us = (self._clock() - self._pending[0].enqueued_at) * 1e6
        return max(0.0, (self.max_delay_us - waited_us) / 1e6)

    def take_batch(self) -> list[PendingRequest]:
        """Close and return the current batch (oldest ``max_batch`` requests).

        Taking a batch frees its packet weight back to the admission budget:
        the budget bounds *queued* work, matching the pre-weighted
        ``max_queue`` semantics (capacity frees as batches are taken, not as
        they finish processing).
        """
        count = min(len(self._pending), self.max_batch)
        batch = [self._pending.popleft() for _ in range(count)]
        if batch:
            freed = sum(pending.weight for pending in batch)
            self._queued_packets -= freed
            self.budget.release(freed)
            self.stats.batches += 1
            self.stats.coalesced += len(batch)
            if len(batch) > self.stats.max_batch_seen:
                self.stats.max_batch_seen = len(batch)
        return batch

    def close(self) -> None:
        """Refuse new submissions; :meth:`run` drains the queue and returns."""
        self._closed = True
        if self._wakeup is not None:
            self._wakeup.set()

    # ------------------------------------------------------------ dispatcher

    async def run(
        self, process: Callable[[list], Awaitable[list]]
    ) -> None:
        """Dispatcher loop: close batches per policy and complete futures.

        ``process(payloads)`` returns one result per payload, in order.  Every
        submitted request's future is completed exactly once — with its result,
        or with the batch's exception.  Returns once :meth:`close` was called
        and the queue is drained.
        """
        self._wakeup = asyncio.Event()
        try:
            while True:
                self._wakeup.clear()
                if not self._pending:
                    if self._closed:
                        return
                    await self._wakeup.wait()
                    continue
                delay = self.due_in()
                # A closed batcher flushes partial batches without waiting out
                # the delay: shutdown must not strand queued requests.
                if delay and not self._closed:
                    try:
                        await asyncio.wait_for(self._wakeup.wait(), timeout=delay)
                    except (asyncio.TimeoutError, TimeoutError):
                        pass
                    continue
                batch = self.take_batch()
                try:
                    results = await process([p.payload for p in batch])
                    if len(results) != len(batch):
                        raise RuntimeError(
                            f"process returned {len(results)} results for a "
                            f"batch of {len(batch)}"
                        )
                except Exception as exc:  # noqa: BLE001 - forwarded to callers
                    for pending in batch:
                        if not pending.future.done():
                            pending.future.set_exception(exc)
                else:
                    for pending, result in zip(batch, results):
                        if not pending.future.done():
                            pending.future.set_result(result)
        finally:
            self._wakeup = None


# ---------------------------------------------------------------------------
# Framing


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one length-prefixed JSON frame; ``None`` on a clean EOF."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    payload = await reader.readexactly(length)
    return json.loads(payload.decode("utf-8"))


def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Queue one length-prefixed JSON frame (caller drains)."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    writer.write(_LENGTH.pack(len(payload)) + payload)


def _packet_values(packet) -> tuple[int, ...]:
    """Normalize a wire packet to a tuple of non-negative ints."""
    if isinstance(packet, Packet):
        return packet.values
    values = tuple(int(value) for value in packet)
    if not values:
        raise ValueError("packet must have at least one field")
    if any(value < 0 for value in values):
        raise ValueError("packet field values must be non-negative")
    return values


# ---------------------------------------------------------------------------
# Server


class AsyncServer:
    """An asyncio TCP front-end over any batch-serving engine stack.

    ``classify`` requests coalesce through a :class:`RequestBatcher`; each
    closed batch runs as *one* ``engine.classify_batch`` call on a dedicated
    single-threaded executor.  ``insert``/``remove``/``stats`` run on the same
    executor, so all engine operations serialize in submission order: by the
    time an update's response reaches the client, the engine (and any flow
    cache listening on its :class:`~repro.serving.updates.UpdateQueue`) has
    applied it, and every classify batched afterwards observes the new state
    — the eviction-before-ack contract, extended over the wire.

    The server does not own the engine: :meth:`stop` shuts down the network
    side and the dispatcher but leaves the engine to its caller (close it via
    its own ``close()``, uniformly present on every engine stack).

    Admission is packet-weighted and shared: ``self.budget`` (a
    :class:`~repro.serving.control.PacketBudget` of ``max_queue`` packets) is
    charged by the JSON batcher per queued packet *and* by the binary path
    per classify-batch row, so either protocol's load sheds the other.  With
    ``adaptive=True`` (or an explicit ``controller``) an
    :class:`~repro.serving.control.OverloadController` retunes the batcher
    and the budget every window against ``slo_p99_us``; ``tune_cache``
    additionally lets a :class:`~repro.serving.control.CacheTuner` resize
    the engine's flow cache from observed hit rates (default: on whenever
    the controller runs and the engine exposes ``resize_cache``).
    """

    def __init__(
        self,
        engine,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay_us: float = DEFAULT_MAX_DELAY_US,
        max_queue: int = DEFAULT_MAX_QUEUE,
        clock: Callable[[], float] = time.monotonic,
        wire_v2: bool = True,
        slo_p99_us: float | None = None,
        adaptive: bool = False,
        tune_cache: bool | None = None,
        controller: OverloadController | None = None,
    ):
        self.engine = engine
        #: Offer binary protocol v2 in ``hello`` negotiation (v1 JSON always
        #: stays available; False emulates a pre-v2 server).
        self.wire_v2 = wire_v2
        self._binary_batches = 0
        #: Shared packet-weighted admission budget (both wire paths).
        self.budget = PacketBudget(max_queue)
        self.batcher = RequestBatcher(
            max_batch=max_batch,
            max_delay_us=max_delay_us,
            clock=clock,
            budget=self.budget,
        )
        if controller is None and adaptive:
            controller = OverloadController(
                ControllerConfig(
                    slo_p99_us=(
                        slo_p99_us if slo_p99_us is not None
                        else DEFAULT_SLO_P99_US
                    )
                ),
                ControlSettings(
                    max_batch=max_batch,
                    max_delay_us=max_delay_us,
                    max_queue=max_queue,
                ),
                clock=clock,
            )
        self._controller = controller
        self.slo_p99_us = (
            controller.config.slo_p99_us if controller is not None else slo_p99_us
        )
        if tune_cache is None:
            tune_cache = controller is not None
        self._cache_tuner = (
            CacheTuner()
            if tune_cache and hasattr(engine, "resize_cache")
            else None
        )
        self._control_task: asyncio.Task | None = None
        self._clock = clock
        self._server: asyncio.base_events.Server | None = None
        self._dispatcher: asyncio.Task | None = None
        self._worker: ThreadPoolExecutor | None = None
        self._connections = 0
        self._client_writers: set[asyncio.StreamWriter] = set()
        self._requests_served = 0
        # Sliding window of classify service times (submit -> response ready),
        # in microseconds; bounded so a long-lived server's stats stay O(1).
        self._latencies_us: deque[float] = deque(maxlen=8192)
        self.host: str | None = None
        self.port: int | None = None

    # -------------------------------------------------------------- lifecycle

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving (``port=0`` picks an ephemeral port)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._worker = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="engine-worker"
        )
        self._server = await asyncio.start_server(self._handle_client, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._dispatcher = asyncio.get_running_loop().create_task(
            self.batcher.run(self._process_batch)
        )
        if self._controller is not None:
            self._control_task = asyncio.get_running_loop().create_task(
                self._control_loop()
            )

    async def stop(self) -> None:
        """Stop accepting, drain queued requests, shut the dispatcher down.

        Open connections are closed actively: from Python 3.12 on,
        ``Server.wait_closed`` waits for every connection handler to finish,
        and a handler only finishes when its client sends EOF — an idle but
        connected client must not be able to wedge shutdown.
        """
        if self._server is not None:
            self._server.close()
            for writer in list(self._client_writers):
                writer.close()
            await self._server.wait_closed()
            self._server = None
        if self._control_task is not None:
            self._control_task.cancel()
            try:
                await self._control_task
            except asyncio.CancelledError:
                pass
            self._control_task = None
        self.batcher.close()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        if self._worker is not None:
            self._worker.shutdown(wait=True)
            self._worker = None

    async def __aenter__(self) -> "AsyncServer":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -------------------------------------------------------------- engine ops

    async def _in_worker(self, fn, *args):
        assert self._worker is not None, "server not started"
        return await asyncio.get_running_loop().run_in_executor(
            self._worker, fn, *args
        )

    async def _process_batch(self, packets: list) -> list:
        return await self._in_worker(self.engine.classify_batch, packets)

    # --------------------------------------------------------------- control

    async def _control_loop(self) -> None:
        """The observe → decide → apply loop of the overload controller.

        Sleeps until the controller's window closes, feeds it the budget
        occupancy, and applies whatever settings it decides to the batcher
        and the shared budget.  Latency/shed observations stream in from the
        request paths; this loop only closes windows.  Cancelled by
        :meth:`stop`.
        """
        controller = self._controller
        assert controller is not None
        while True:
            await asyncio.sleep(max(controller.due_in(), 0.005))
            controller.observe_queue(self.budget.in_flight)
            settings = controller.maybe_roll()
            if settings is None:
                continue
            self.batcher.max_batch = settings.max_batch
            self.batcher.max_delay_us = settings.max_delay_us
            self.budget.limit = settings.max_queue
            if self._cache_tuner is not None:
                await self._tune_cache()

    async def _tune_cache(self) -> None:
        """One cache-tuning step: drain the hit window, maybe resize.

        The resize runs on the engine worker so it serializes with classify
        batches — the cache is never rebuilt under a concurrent probe.
        """
        assert self._cache_tuner is not None
        cache = self.engine.cache
        hits, misses = cache.take_hit_window()
        capacity = cache.capacity
        target = self._cache_tuner.on_window(capacity, hits, misses)
        if target != capacity:
            await self._in_worker(self.engine.resize_cache, target)

    # ------------------------------------------------------------ connections

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        self._client_writers.add(writer)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    frame = await wire.read_any_frame(reader)
                except (ValueError, json.JSONDecodeError):
                    async with write_lock:
                        write_frame(
                            writer,
                            {
                                "id": None,
                                "ok": False,
                                "error": "malformed frame",
                                "code": "bad-request",
                            },
                        )
                        await writer.drain()
                    break
                if frame is None:
                    break
                kind, request = frame
                # One task per request: classifies from one connection can sit
                # in the same micro-batch while later frames are being read.
                if kind == "binary":
                    task = loop.create_task(
                        self._serve_binary(request, writer, write_lock)
                    )
                else:
                    task = loop.create_task(
                        self._serve_request(request, writer, write_lock)
                    )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            self._connections -= 1
            self._client_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_request(
        self, request: dict, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        request_id = request.get("id") if isinstance(request, dict) else None
        try:
            response = await self._dispatch_op(request)
        except QueueFullError as exc:
            response = {"ok": False, "error": str(exc), "code": "overloaded"}
        except (KeyError, TypeError, ValueError) as exc:
            response = {"ok": False, "error": str(exc), "code": "bad-request"}
        except Exception as exc:  # noqa: BLE001 - reported to the client
            response = {"ok": False, "error": str(exc), "code": "error"}
        response["id"] = request_id
        # Only successful work counts as served; rejected/errored requests
        # show up in the batcher's `rejected` counter and the error responses
        # themselves, so goodput stays readable from the stats.  Protocol
        # negotiation is connection setup, not work.
        if response.get("ok") and request.get("op") != "hello":
            self._requests_served += 1
        async with write_lock:
            write_frame(writer, response)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch_op(self, request: dict) -> dict:
        if not isinstance(request, dict):
            raise ValueError("request must be a JSON object")
        op = request.get("op")
        if op == "classify":
            return await self._op_classify(request)
        if op == "insert":
            rule = rule_from_state(request["rule"])
            await self._in_worker(self.engine.insert, rule)
            return {"ok": True, "rule_id": rule.rule_id}
        if op == "remove":
            removed = await self._in_worker(
                self.engine.remove, int(request["rule_id"])
            )
            return {"ok": True, "removed": bool(removed)}
        if op == "stats":
            return {"ok": True, "stats": await self._in_worker(self.statistics)}
        if op == "hello" and self.wire_v2:
            offered = request.get("protocols")
            if not isinstance(offered, list):
                raise ValueError("hello must carry a 'protocols' list")
            granted = [wire.WIRE_V2] if wire.WIRE_V2 in offered else []
            return {"ok": True, "protocols": granted}
        # With wire_v2 disabled, 'hello' falls through to the unknown-op
        # rejection — exactly what a pre-v2 server answers.
        raise ValueError(f"unknown op {op!r}")

    async def _op_classify(self, request: dict) -> dict:
        values = _packet_values(request["packet"])
        start = self._clock()
        try:
            pending = self.batcher.submit(values)
        except QueueFullError:
            if self._controller is not None:
                self._controller.observe_shed(1)
            raise
        if self._controller is not None:
            self._controller.observe_queue(self.budget.in_flight)
        result = await pending.future
        latency_us = (self._clock() - start) * 1e6
        self._latencies_us.append(latency_us)
        if self._controller is not None:
            self._controller.observe_completion(latency_us, 1)
        rule = result.rule
        return {
            "ok": True,
            "matched": rule is not None,
            "rule_id": rule.rule_id if rule is not None else None,
            "priority": rule.priority if rule is not None else None,
            "action": rule.action if rule is not None else None,
        }

    # ----------------------------------------------------------- binary path

    def _classify_block(self, block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Columnar classify on the engine worker thread.

        Engine stacks expose ``classify_block`` (vectorized through the
        shard-worker rings where available); the ``classify_batch`` fallback
        keeps foreign engine objects servable.
        """
        classify_block = getattr(self.engine, "classify_block", None)
        if classify_block is not None:
            return classify_block(block)
        return results_to_arrays(self.engine.classify_batch(block))

    async def _serve_binary(
        self, payload: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        """Serve one v2 classify-batch frame.

        The batch arrives pre-formed, so it bypasses the *coalescing* batcher
        — but not admission: it charges its row count against the shared
        packet budget before dispatch and frees it when the response is
        computed, so an overloaded server answers ``STATUS_OVERLOADED``
        instead of queueing without bound (and binary load sheds JSON load,
        and vice versa).  Admitted batches run as one ``classify_block`` call
        on the same single-threaded engine executor all other ops serialize
        through — the eviction-before-ack ordering holds unchanged (an
        acknowledged update already ran on that executor before this batch
        does).
        """
        request_id = 0
        shed_packets = 1
        response: bytes
        try:
            request_id, block = wire.decode_classify_request(payload)
            num_fields = len(self.engine.ruleset.schema)
            if block.shape[1] != num_fields:
                raise ValueError(
                    f"packets have {block.shape[1]} fields, engine expects "
                    f"{num_fields}"
                )
            shed_packets = len(block)
            self.budget.try_acquire(len(block))
            try:
                if self._controller is not None:
                    self._controller.observe_queue(self.budget.in_flight)
                start = self._clock()
                rule_ids, priorities = await self._in_worker(
                    self._classify_block, block
                )
                latency_us = (self._clock() - start) * 1e6
            finally:
                self.budget.release(len(block))
            self._latencies_us.append(latency_us)
            if self._controller is not None:
                self._controller.observe_completion(latency_us, len(block))
            response = wire.encode_classify_response(
                request_id, rule_ids, priorities
            )
            self._requests_served += 1
            self._binary_batches += 1
        except QueueFullError:
            if self._controller is not None:
                self._controller.observe_shed(shed_packets)
            response = wire.encode_error_response(
                request_id, wire.STATUS_OVERLOADED
            )
        except (wire.WireError, KeyError, TypeError, ValueError):
            response = wire.encode_error_response(
                request_id, wire.STATUS_BAD_REQUEST
            )
        except Exception:  # noqa: BLE001 - reported to the client
            response = wire.encode_error_response(request_id, wire.STATUS_ERROR)
        async with write_lock:
            wire.write_binary_frame(writer, response)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ----------------------------------------------------------- introspection

    def latency_percentiles_us(self) -> dict[str, float]:
        """p50/p99 classify service time (submit → result), microseconds."""
        if not self._latencies_us:
            return {"p50_us": 0.0, "p99_us": 0.0}
        window = np.asarray(self._latencies_us)
        return {
            "p50_us": float(np.percentile(window, 50)),
            "p99_us": float(np.percentile(window, 99)),
        }

    def statistics(self) -> dict[str, object]:
        """Server-side coalescing/latency stats plus the engine's own."""
        return {
            "server": {
                "host": self.host,
                "port": self.port,
                "connections": self._connections,
                "requests_served": self._requests_served,
                "wire_v2": self.wire_v2,
                "binary_batches": self._binary_batches,
                "supports_updates": bool(
                    getattr(self.engine, "supports_updates", False)
                ),
                "queue_depth": self.batcher.queue_depth,
                "queued_packets": self.batcher.queued_packets,
                "max_batch": self.batcher.max_batch,
                "max_delay_us": self.batcher.max_delay_us,
                "max_queue": self.batcher.max_queue,
                "batcher": self.batcher.stats.as_dict(),
                "budget": self.budget.as_dict(),
                "adaptive": self._controller is not None,
                "controller": (
                    self._controller.as_dict()
                    if self._controller is not None
                    else None
                ),
                "cache_tuner": (
                    self._cache_tuner.as_dict()
                    if self._cache_tuner is not None
                    else None
                ),
                **self.latency_percentiles_us(),
            },
            "engine": self.engine.statistics(),
        }


# ---------------------------------------------------------------------------
# Client


class AsyncClient:
    """A pipelining client for :class:`AsyncServer`'s wire protocol.

    Any number of requests may be in flight on one connection; a background
    reader task matches responses to requests by id.  All methods raise
    :class:`ServerError` on an ``ok: false`` response (``exc.code`` carries
    the server's error code, e.g. ``"overloaded"`` under backpressure).

    :meth:`connect` negotiates binary protocol v2 by default: when the server
    grants it, :meth:`classify_batch` travels as one fixed-width binary frame
    instead of per-packet JSON requests; against an older server the client
    silently stays on JSON.  ``client.wire_v2`` reports the outcome.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._pending: dict[int, asyncio.Future] = {}
        self._binary_pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._closed = False
        self.wire_v2 = False
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str, port: int, negotiate: bool = True
    ) -> "AsyncClient":
        """Connect; with ``negotiate`` (default) attempt the v2 upgrade.

        Negotiation is one ``hello`` round-trip.  An older server rejects the
        unknown op with ``code: "bad-request"`` — the client swallows exactly
        that error and stays on JSON (``negotiate=False`` skips the
        round-trip and emulates a pre-v2 client).
        """
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        if negotiate:
            try:
                response = await client.request(
                    "hello", protocols=[wire.WIRE_V2]
                )
                client.wire_v2 = wire.WIRE_V2 in response.get("protocols", [])
            except ServerError as exc:
                if exc.code != "bad-request":
                    await client.close()
                    raise
        return client

    async def _read_loop(self) -> None:
        error: Exception | None = None
        try:
            while True:
                frame = await wire.read_any_frame(self._reader)
                if frame is None:
                    break
                kind, response = frame
                if kind == "binary":
                    request_id, status, rule_ids, priorities = (
                        wire.decode_classify_response(response)
                    )
                    future = self._binary_pending.pop(request_id, None)
                    if future is not None and not future.done():
                        future.set_result((status, rule_ids, priorities))
                    continue
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except Exception as exc:  # noqa: BLE001 - fanned out to waiters
            error = exc
        for future in list(self._pending.values()) + list(
            self._binary_pending.values()
        ):
            if not future.done():
                future.set_exception(
                    error or ConnectionError("connection closed by server")
                )
        self._pending.clear()
        self._binary_pending.clear()

    async def request(self, op: str, **fields) -> dict:
        """Send one request and await its matched response (raw dict)."""
        if self._closed:
            raise RuntimeError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        # Register before checking: if the reader exits after this line, its
        # cleanup fans the failure out to this future too.  If it already
        # exited, the future would be orphaned — fail fast instead of letting
        # the caller await a response that can never arrive.
        if self._reader_task.done():
            self._pending.pop(request_id, None)
            raise ConnectionError("connection closed by server")
        write_frame(self._writer, {"id": request_id, "op": op, **fields})
        await self._writer.drain()
        response = await future
        if not response.get("ok", False):
            raise ServerError(
                response.get("error", "request failed"),
                code=response.get("code", "error"),
            )
        return response

    async def classify(self, packet: Packet | Sequence[int]) -> dict:
        """Classify one packet; returns the response dict (see module docs)."""
        return await self.request("classify", packet=list(_packet_values(packet)))

    async def classify_batch(self, packets: Sequence) -> list[dict]:
        """Classify a batch; one ``{"matched", "rule_id", "priority"}`` dict
        per packet (``rule_id``/``priority`` are ``None`` on a miss).

        On a v2 connection the whole batch travels as one binary frame; on
        JSON it fans out as pipelined per-packet requests.  Both paths return
        the same normalized dicts — binary responses carry no action strings,
        so neither path exposes them (use :meth:`classify` for actions).
        """
        block = wire.packet_block(packets)
        if self.wire_v2:
            status, rule_ids, priorities = await self._classify_block(block)
            if status != wire.STATUS_OK:
                code = wire.STATUS_CODES.get(status, "error")
                raise ServerError(f"binary classify batch failed ({code})", code)
            return [
                {
                    "matched": bool(rule_id >= 0),
                    "rule_id": int(rule_id) if rule_id >= 0 else None,
                    "priority": int(priority) if rule_id >= 0 else None,
                }
                for rule_id, priority in zip(rule_ids, priorities)
            ]
        responses = await asyncio.gather(
            *(self.classify(tuple(int(v) for v in row)) for row in block)
        )
        return [
            {
                "matched": bool(response["matched"]),
                "rule_id": response["rule_id"],
                "priority": response["priority"],
            }
            for response in responses
        ]

    async def _classify_block(
        self, block: np.ndarray
    ) -> tuple[int, np.ndarray, np.ndarray]:
        """Classify a block over binary frames; awaits the matched response.

        A batch too large for one 24-bit frame is chunked into several
        pipelined frames and the results concatenated in order — the
        connection never sees an oversized frame.  If any chunk fails, its
        status is returned (with empty arrays) and the successful chunks'
        results are discarded.
        """
        max_rows = wire.max_block_rows(block.shape[1])
        if len(block) > max_rows:
            parts = await asyncio.gather(
                *(
                    self._classify_block(block[start : start + max_rows])
                    for start in range(0, len(block), max_rows)
                )
            )
            for status, _rule_ids, _priorities in parts:
                if status != wire.STATUS_OK:
                    empty = np.empty(0, dtype=np.int64)
                    return status, empty, empty
            return (
                wire.STATUS_OK,
                np.concatenate([part[1] for part in parts]),
                np.concatenate([part[2] for part in parts]),
            )
        if self._closed:
            raise RuntimeError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        future = asyncio.get_running_loop().create_future()
        self._binary_pending[request_id] = future
        if self._reader_task.done():
            self._binary_pending.pop(request_id, None)
            raise ConnectionError("connection closed by server")
        try:
            wire.write_binary_frame(
                self._writer, wire.encode_classify_request(request_id, block)
            )
            await self._writer.drain()
        except BaseException:
            # A failed write means no response will ever match this id —
            # drop the pending entry so it cannot leak (or swallow a future
            # response to a reused id).
            self._binary_pending.pop(request_id, None)
            raise
        return await future

    async def insert(self, rule: Rule) -> dict:
        return await self.request("insert", rule=rule_to_state(rule))

    async def remove(self, rule_id: int) -> bool:
        response = await self.request("remove", rule_id=rule_id)
        return bool(response["removed"])

    async def stats(self) -> dict:
        return (await self.request("stats"))["stats"]

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        await self._reader_task

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


# ---------------------------------------------------------------------------
# Blocking front-end (the CLI entry point)


def run_server(
    engine,
    host: str = "127.0.0.1",
    port: int = 8590,
    max_batch: int = DEFAULT_MAX_BATCH,
    max_delay_us: float = DEFAULT_MAX_DELAY_US,
    max_queue: int = DEFAULT_MAX_QUEUE,
    slo_p99_us: float | None = None,
    adaptive: bool = False,
    ready: Callable[[AsyncServer], None] | None = None,
    shutdown: "asyncio.Event | None" = None,
) -> dict:
    """Serve ``engine`` over TCP until interrupted; returns final statistics.

    ``ready(server)`` fires once the socket is bound (the CLI prints the
    listening address there); ``shutdown`` is an optional externally-set event
    for embedding the blocking server in tests.  The engine is *not* closed —
    the caller owns its lifecycle.  ``adaptive`` enables the overload
    controller against ``slo_p99_us`` (see :class:`AsyncServer`).
    """
    final_stats: dict = {}

    async def _main() -> None:
        server = AsyncServer(
            engine,
            max_batch=max_batch,
            max_delay_us=max_delay_us,
            max_queue=max_queue,
            slo_p99_us=slo_p99_us,
            adaptive=adaptive,
        )
        await server.start(host, port)
        if ready is not None:
            ready(server)
        try:
            await (shutdown or asyncio.Event()).wait()
        finally:
            final_stats.update(server.statistics())
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return final_stats
