"""Self-tuning overload control for the serving layer.

The serving stack's throughput knobs — the request batcher's ``(max_batch,
max_delay_us)`` policy and the bounded admission queue — used to be fixed at
startup, but the right settings depend on the offered workload: a batch/delay
pair that maximizes throughput under heavy load inflates latency under light
load, and a queue bound that absorbs a burst on a fast engine drowns a slow
one.  This module closes ROADMAP item 2 with a measured-load-drives-control
feedback loop (the congestion-avoidance pattern of the DVB-RCS2 dynamic
control work): every window, observed service latency percentiles and queue
occupancy decide the next window's settings.

Three cooperating pieces, each a pure state machine with an injectable clock
so policy is deterministically testable (``tests/test_control.py`` mirrors
the fake-clock style of ``tests/test_request_batcher.py``):

* :class:`PacketBudget` — the *shared*, packet-weighted admission budget.
  Both wire paths charge it before work is accepted: a JSON ``classify``
  costs 1 packet, a binary classify-batch frame costs its row count.  This
  is what makes admission mean something again — previously the binary fast
  path bypassed the request queue entirely, so ``max_queue`` bounded nothing
  on the hot path and the ``overloaded`` status was unreachable there.
* :class:`OverloadController` — the per-window feedback loop.  It collects
  packet-weighted completion latencies, shed counts and queue-occupancy
  samples, and at each window boundary applies an AIMD policy against a p99
  SLO: a violation multiplicatively backs off delay, batch and the admission
  budget (shed earlier, queue less); sustained headroom grows them
  additively; in between lies a deadband where settings hold, which is what
  makes the budget *converge* instead of oscillating on a step load.
* :class:`CacheTuner` — auto-sizes a :class:`~repro.serving.FlowCache` from
  the observed *marginal* hit-rate value: capacity doubles while a doubling
  still buys at least ``min_gain`` of hit rate, then settles back to the
  last capacity that paid for itself; a later hit-rate collapse (workload
  shift) re-opens probing.

The :class:`~repro.serving.server.AsyncServer` owns the loop that feeds
observations in and applies decisions (``observe → decide → apply``); the
classes here never touch asyncio, sockets or engines.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

__all__ = [
    "DEFAULT_SLO_P99_US",
    "QueueFullError",
    "BudgetStats",
    "PacketBudget",
    "ControlSettings",
    "ControllerConfig",
    "WindowReport",
    "OverloadController",
    "CacheTuner",
]

#: Default p99 service-time objective (microseconds) when adaptive control is
#: enabled without an explicit SLO: 50 ms keeps an interactive client happy
#: while leaving room for coalescing delay on a loaded server.
DEFAULT_SLO_P99_US = 50_000.0


class QueueFullError(RuntimeError):
    """Admission was refused: the packet-weighted budget is at capacity.

    Raised by :meth:`PacketBudget.try_acquire` (and therefore by
    ``RequestBatcher.submit`` and the binary classify-batch path); the wire
    layers translate it to the ``overloaded`` JSON code / binary
    ``STATUS_OVERLOADED``.
    """


# ---------------------------------------------------------------------------
# Shared packet-weighted admission


@dataclass
class BudgetStats:
    """Aggregate admission counters of a :class:`PacketBudget`."""

    admitted: int = 0
    admitted_packets: int = 0
    rejected: int = 0
    rejected_packets: int = 0

    def as_dict(self) -> dict[str, object]:
        return {
            "admitted": self.admitted,
            "admitted_packets": self.admitted_packets,
            "rejected": self.rejected,
            "rejected_packets": self.rejected_packets,
        }


class PacketBudget:
    """A packet-weighted bound on admitted-but-unfinished serving work.

    One instance is shared by every admission point of a server: the JSON
    request batcher charges each queued ``classify`` (1 packet) until its
    batch is taken for processing, and the binary path charges a whole
    classify-batch frame (its row count) until the response is computed.
    ``limit`` is therefore a bound on *rows of outstanding work*, which is
    what actually bounds memory and engine backlog — a bound counted in
    requests is meaningless when one request may carry 10 000 rows.

    Progress guarantee: a request wider than the whole budget is admitted
    when nothing else is in flight (otherwise it could never be served and
    the client would retry forever); it still blocks later admissions until
    it completes.  ``limit`` is mutable — the
    :class:`OverloadController` retunes it between windows.
    """

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError("limit must be at least 1")
        self.limit = int(limit)
        self.in_flight = 0
        self.stats = BudgetStats()

    def try_acquire(self, packets: int) -> None:
        """Admit ``packets`` rows of work or raise :class:`QueueFullError`."""
        if packets < 1:
            raise ValueError("packets must be at least 1")
        if self.in_flight > 0 and self.in_flight + packets > self.limit:
            self.stats.rejected += 1
            self.stats.rejected_packets += packets
            raise QueueFullError(
                f"admission budget at capacity ({self.in_flight}/{self.limit} "
                f"packets in flight, {packets} more requested); retry later"
            )
        self.in_flight += packets
        self.stats.admitted += 1
        self.stats.admitted_packets += packets

    def release(self, packets: int) -> None:
        """Return ``packets`` rows of budget (clamped at zero)."""
        self.in_flight = max(0, self.in_flight - packets)

    def as_dict(self) -> dict[str, object]:
        return {
            "limit": self.limit,
            "in_flight": self.in_flight,
            **self.stats.as_dict(),
        }


# ---------------------------------------------------------------------------
# Windowed feedback control


@dataclass(frozen=True)
class ControlSettings:
    """One consistent set of serving knobs, as applied for one window."""

    max_batch: int
    max_delay_us: float
    max_queue: int

    def as_dict(self) -> dict[str, object]:
        return {
            "max_batch": self.max_batch,
            "max_delay_us": round(self.max_delay_us, 3),
            "max_queue": self.max_queue,
        }


@dataclass(frozen=True)
class ControllerConfig:
    """Policy envelope of an :class:`OverloadController`.

    ``slo_p99_us`` is the objective: the p99 of *admitted* traffic's service
    time must stay at or below it.  ``headroom`` defines the deadband — the
    controller only grows settings while p99 < ``headroom * slo_p99_us``, so
    between headroom and the SLO it holds, which is what stops grow/shrink
    oscillation on a steady load.  Growth is additive (``batch_step``,
    ``delay_step_us``, ``queue_growth``), backoff on an SLO breach is
    multiplicative (``backoff``) — classic AIMD.
    """

    slo_p99_us: float
    window_s: float = 0.25
    headroom: float = 0.7
    min_batch: int = 8
    max_batch: int = 1024
    batch_step: int = 16
    min_delay_us: float = 0.0
    max_delay_us: float = 5_000.0
    delay_step_us: float = 50.0
    min_queue: int = 64
    max_queue: int = 1 << 20
    queue_growth: float = 1.25
    backoff: float = 0.5

    def __post_init__(self):
        if self.slo_p99_us <= 0:
            raise ValueError("slo_p99_us must be positive")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 0.0 < self.headroom < 1.0:
            raise ValueError("headroom must be in (0, 1)")
        if not 1 <= self.min_batch <= self.max_batch:
            raise ValueError("need 1 <= min_batch <= max_batch")
        if not 0.0 <= self.min_delay_us <= self.max_delay_us:
            raise ValueError("need 0 <= min_delay_us <= max_delay_us")
        if not 1 <= self.min_queue <= self.max_queue:
            raise ValueError("need 1 <= min_queue <= max_queue")
        if self.batch_step < 1 or self.delay_step_us < 0:
            raise ValueError("steps must be positive")
        if self.queue_growth <= 1.0:
            raise ValueError("queue_growth must exceed 1.0")
        if not 0.0 < self.backoff < 1.0:
            raise ValueError("backoff must be in (0, 1)")


@dataclass
class WindowReport:
    """What one closed control window observed and decided."""

    completed_packets: int = 0
    shed_packets: int = 0
    p50_us: float = 0.0
    p99_us: float = 0.0
    queue_peak: int = 0
    decision: str = "hold"

    def as_dict(self) -> dict[str, object]:
        return {
            "completed_packets": self.completed_packets,
            "shed_packets": self.shed_packets,
            "p50_us": round(self.p50_us, 1),
            "p99_us": round(self.p99_us, 1),
            "queue_peak": self.queue_peak,
            "decision": self.decision,
        }


class OverloadController:
    """Per-window AIMD feedback over observed latency and queue occupancy.

    Pure and clock-driven, mirroring ``RequestBatcher``'s testable core:
    :meth:`observe_completion` / :meth:`observe_shed` / :meth:`observe_queue`
    record the current window, :meth:`due_in` says when it closes, and
    :meth:`maybe_roll` closes it and returns the next
    :class:`ControlSettings` (or ``None`` while the window is still open).
    The caller — :class:`~repro.serving.server.AsyncServer`'s control loop —
    applies whatever is returned; this class never mutates a server.

    Decision policy per closed window (all values packet-weighted):

    * **breach** (``p99 > slo``, or everything shed): multiplicative
      decrease — delay, batch and the admission budget all scale by
      ``backoff``.  Smaller batches and less coalescing delay cut per-batch
      service time; a smaller budget sheds earlier so admitted work queues
      less.
    * **grow** (``p99 < headroom * slo``): additive increase of batch and
      delay (more coalescing, more throughput headroom).  The budget only
      grows when the window *shed* traffic while healthy — shedding at low
      latency means the budget, not the engine, is the bottleneck.  A
      healthy window with no sheds leaves the budget alone: that is the
      fixed point the budget converges to.
    * **hold** (deadband, or an idle window): no change.
    """

    def __init__(
        self,
        config: ControllerConfig,
        initial: ControlSettings,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config
        self.settings = self._clamp(initial)
        self._clock = clock
        self._window_open = clock()
        self._latencies_us: list[float] = []
        self._weights: list[int] = []
        self._completed = 0
        self._shed = 0
        self._queue_peak = 0
        self.windows = 0
        self.breaches = 0
        self.grows = 0
        self.holds = 0
        self.last_window: Optional[WindowReport] = None
        #: Recent decisions, newest last (bounded so stats stay O(1)).
        self.history: deque[WindowReport] = deque(maxlen=32)

    # ------------------------------------------------------------ observation

    def observe_completion(self, latency_us: float, packets: int = 1) -> None:
        """Record one admitted completion (a request or a whole batch)."""
        if packets < 1:
            return
        self._latencies_us.append(float(latency_us))
        self._weights.append(int(packets))
        self._completed += packets

    def observe_shed(self, packets: int = 1) -> None:
        """Record admitted-refused work (packet-weighted)."""
        if packets < 1:
            return
        self._shed += packets

    def observe_queue(self, depth: int) -> None:
        """Record an occupancy sample of the shared admission budget."""
        if depth > self._queue_peak:
            self._queue_peak = depth

    # --------------------------------------------------------------- decision

    def due_in(self) -> float:
        """Seconds until the current window closes (0.0 when due now)."""
        elapsed = self._clock() - self._window_open
        return max(0.0, self.config.window_s - elapsed)

    def maybe_roll(self) -> Optional[ControlSettings]:
        """Close the window if due; returns the settings to apply, else None."""
        # Sub-nanosecond residue from float subtraction must not keep a due
        # window open (0.4 - 0.3 > 0.1 by one ulp, and so on).
        if self.due_in() > 1e-9:
            return None
        return self.roll_window()

    def roll_window(self) -> ControlSettings:
        """Force-close the current window and decide the next settings."""
        config = self.config
        report = WindowReport(
            completed_packets=self._completed,
            shed_packets=self._shed,
            queue_peak=self._queue_peak,
        )
        if self._latencies_us:
            # Weighted percentiles: a 512-row batch's latency is 512 packet
            # observations, matching how the SLO is stated (per packet of
            # admitted traffic), without keeping per-packet samples.
            samples = np.repeat(
                np.asarray(self._latencies_us), np.asarray(self._weights)
            )
            report.p50_us = float(np.percentile(samples, 50))
            report.p99_us = float(np.percentile(samples, 99))

        settings = self.settings
        if self._completed == 0 and self._shed == 0:
            report.decision = "hold"
            self.holds += 1
        elif (self._completed and report.p99_us > config.slo_p99_us) or (
            self._completed == 0 and self._shed > 0
        ):
            # SLO breach (or total shed, the degenerate breach): back off
            # multiplicatively on every dial.
            report.decision = "breach"
            self.breaches += 1
            settings = ControlSettings(
                max_batch=int(settings.max_batch * config.backoff),
                max_delay_us=settings.max_delay_us * config.backoff,
                max_queue=int(settings.max_queue * config.backoff),
            )
        elif report.p99_us < config.headroom * config.slo_p99_us:
            report.decision = "grow"
            self.grows += 1
            grown_queue = settings.max_queue
            if self._shed > 0:
                # Shedding while healthy: the budget is the bottleneck.
                grown_queue = int(settings.max_queue * config.queue_growth) + 1
            settings = ControlSettings(
                max_batch=settings.max_batch + config.batch_step,
                max_delay_us=settings.max_delay_us + config.delay_step_us,
                max_queue=grown_queue,
            )
        else:
            # Deadband between headroom and the SLO: the converged regime.
            report.decision = "hold"
            self.holds += 1

        self.settings = self._clamp(settings)
        self.windows += 1
        self.last_window = report
        self.history.append(report)
        self._latencies_us.clear()
        self._weights.clear()
        self._completed = 0
        self._shed = 0
        self._queue_peak = 0
        self._window_open = self._clock()
        return self.settings

    def _clamp(self, settings: ControlSettings) -> ControlSettings:
        config = self.config
        return ControlSettings(
            max_batch=min(max(settings.max_batch, config.min_batch),
                          config.max_batch),
            max_delay_us=min(max(settings.max_delay_us, config.min_delay_us),
                             config.max_delay_us),
            max_queue=min(max(settings.max_queue, config.min_queue),
                          config.max_queue),
        )

    # ----------------------------------------------------------- introspection

    def as_dict(self) -> dict[str, object]:
        return {
            "slo_p99_us": self.config.slo_p99_us,
            "window_s": self.config.window_s,
            "windows": self.windows,
            "breaches": self.breaches,
            "grows": self.grows,
            "holds": self.holds,
            "settings": self.settings.as_dict(),
            "last_window": (
                self.last_window.as_dict() if self.last_window else None
            ),
        }


# ---------------------------------------------------------------------------
# Cache capacity tuning


class CacheTuner:
    """Hill-climb a flow cache's capacity on marginal hit-rate value.

    Fed one ``(capacity, hits, misses)`` observation per control window,
    returns the capacity the cache *should* have next window.  The policy:

    * **probing** — double capacity as long as the previous doubling bought
      at least ``min_gain`` of hit rate; the first doubling that does not
      pay for itself is undone (capacity settles at the last one that did).
    * **settled** — hold, tracking the achieved hit rate.  When the observed
      rate falls more than ``min_gain`` below the settled baseline (the
      workload shifted), probing reopens from the current capacity.

    Windows with fewer than ``min_probes`` probes are ignored — a hit rate
    over a handful of packets is noise, not signal.
    """

    def __init__(
        self,
        min_capacity: int = 256,
        max_capacity: int = 1 << 20,
        min_gain: float = 0.02,
        min_probes: int = 256,
    ):
        if not 1 <= min_capacity <= max_capacity:
            raise ValueError("need 1 <= min_capacity <= max_capacity")
        if not 0.0 < min_gain < 1.0:
            raise ValueError("min_gain must be in (0, 1)")
        if min_probes < 1:
            raise ValueError("min_probes must be at least 1")
        self.min_capacity = min_capacity
        self.max_capacity = max_capacity
        self.min_gain = min_gain
        self.min_probes = min_probes
        self.resizes = 0
        self._mode = "probing"
        self._base_capacity: Optional[int] = None
        self._base_rate = 0.0
        self._settled_rate = 0.0

    def on_window(self, capacity: int, hits: int, misses: int) -> int:
        """One window's observation in, the next window's capacity out."""
        probes = hits + misses
        if probes < self.min_probes:
            return capacity
        rate = hits / probes

        if self._mode == "settled":
            if rate < self._settled_rate - self.min_gain:
                # Workload shifted under us: re-open the search.
                self._mode = "probing"
                self._base_capacity = None
            else:
                # Track drift so a slow natural improvement doesn't read as
                # a later "collapse".
                self._settled_rate = 0.5 * (self._settled_rate + rate)
                return capacity

        if self._base_capacity is not None and capacity > self._base_capacity:
            # Verdict on the previous doubling.
            if rate - self._base_rate < self.min_gain:
                revert_to = self._base_capacity
                self._settle(rate=self._base_rate)
                self.resizes += 1
                return revert_to
            if capacity >= self.max_capacity:
                self._settle(rate=rate)
                return capacity
        elif self._base_capacity is not None and capacity < self._base_capacity:
            # Someone resized the cache under us (operator action); restart.
            self._base_capacity = None

        grown = min(max(capacity * 2, self.min_capacity), self.max_capacity)
        if grown == capacity:
            self._settle(rate=rate)
            return capacity
        self._base_capacity = capacity
        self._base_rate = rate
        self.resizes += 1
        return grown

    def _settle(self, rate: float) -> None:
        self._mode = "settled"
        self._settled_rate = rate
        self._base_capacity = None

    def as_dict(self) -> dict[str, object]:
        return {
            "mode": self._mode,
            "settled_hit_rate": round(self._settled_rate, 4),
            "resizes": self.resizes,
            "min_gain": self.min_gain,
        }
