"""Multi-core sharded serving on top of the :class:`ClassificationEngine`.

This package scales the serving layer the way the paper's evaluation scales
NuevoMatch — by splitting the rule-set across cores::

    from repro.serving import ShardedEngine

    sharded = ShardedEngine.build(ruleset, shards=4, classifier="nm")
    results = sharded.classify_batch(packets)      # fan out + priority merge
    sharded.insert(rule)                           # immediate, overlay-based
    sharded.save("acl1.sharded.json.gz")           # all shards, one snapshot

    cached = CachedEngine(sharded, capacity=4096)  # exact-match hot path
    results = cached.classify_batch(packets)       # probe → miss → fill

See :mod:`repro.serving.sharded` for the engine,
:mod:`repro.serving.partitioning` for the iSet-aware rule split,
:mod:`repro.serving.updates` for the online-update / background-retraining
policy, :mod:`repro.serving.flowcache` for the exact-match flow cache that
exploits the skewed traffic of the paper's §5.1.1 evaluation, and
:mod:`repro.serving.server` for the asyncio TCP front-end that coalesces
concurrent network requests into micro-batches (``repro serve --listen``),
:mod:`repro.serving.workers` for the persistent shared-memory shard-worker
runtime behind ``executor="workers"``, and :mod:`repro.serving.wire` for the
binary wire protocol v2 the server and clients negotiate per connection.
"""

from repro.serving.control import (
    DEFAULT_SLO_P99_US,
    CacheTuner,
    ControllerConfig,
    ControlSettings,
    OverloadController,
    PacketBudget,
)
from repro.serving.flowcache import (
    DEFAULT_CACHE_CAPACITY,
    CachedEngine,
    CacheStats,
    FlowCache,
)
from repro.serving.partitioning import PARTITIONERS, partition_for_shards
from repro.serving.server import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY_US,
    DEFAULT_MAX_QUEUE,
    AsyncClient,
    AsyncServer,
    BatcherStats,
    QueueFullError,
    RequestBatcher,
    ServerError,
    run_server,
)
from repro.serving.sharded import EXECUTORS, ShardedEngine
from repro.serving.updates import DEFAULT_RETRAIN_THRESHOLD, UpdateQueue
from repro.serving.wire import WIRE_V2
from repro.serving.workers import ShardWorkerRuntime, WorkerCrashed

__all__ = [
    "ShardedEngine",
    "ShardWorkerRuntime",
    "WorkerCrashed",
    "WIRE_V2",
    "UpdateQueue",
    "FlowCache",
    "CachedEngine",
    "CacheStats",
    "AsyncServer",
    "AsyncClient",
    "RequestBatcher",
    "BatcherStats",
    "QueueFullError",
    "PacketBudget",
    "OverloadController",
    "ControllerConfig",
    "ControlSettings",
    "CacheTuner",
    "ServerError",
    "run_server",
    "partition_for_shards",
    "PARTITIONERS",
    "EXECUTORS",
    "DEFAULT_RETRAIN_THRESHOLD",
    "DEFAULT_CACHE_CAPACITY",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_DELAY_US",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_SLO_P99_US",
]
