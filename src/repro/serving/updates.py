"""Online updates for sharded serving: the :class:`UpdateQueue`.

The paper's update story (§3.9) routes rule additions and matching-set
changes to the remainder set, which grows until the structure is retrained in
the background and swapped in.  :class:`UpdateQueue` applies that policy per
shard:

* **insert / remove apply immediately** — the owning shard's *delta remainder*
  (a small priority-ordered overlay scanned after the shard's built
  classifier) absorbs inserted rules, and removed rule ids are masked.  The
  overlay works for every classifier kind, including ones that do not
  implement :class:`~repro.classifiers.base.UpdatableClassifier`.
* **background retraining** — when a shard's remainder fraction (built-in
  remainder plus overlay, over the live rules) crosses the threshold, its
  engine is rebuilt over a live snapshot in a worker thread and swapped in
  atomically; updates that arrive mid-retrain stay in the overlay until the
  next cycle.  The rebuild goes through the warm-start training pipeline by
  default (:mod:`repro.core.pipeline`): new RQ-RMI submodels are seeded from
  the engine being replaced and only submodels whose responsibility content
  changed retrain, shrinking the retrain-to-swap latency — the queue records
  it per retrain (``last_retrain_seconds`` / ``retrain_seconds_total``).
* **invalidation listeners** — downstream result caches (the
  :class:`~repro.serving.flowcache.FlowCache` hot path) register a listener
  with :meth:`UpdateQueue.add_listener`; it fires after the update is applied
  to the owning shard and **before the update call returns**.

Consistency contract: an ``insert``/``remove`` is *acknowledged* when the call
returns, and by that point (a) the owning shard's overlay serves the new
state, and (b) every registered listener has evicted whatever it cached for
the old state.  A ``classify`` issued after the ack therefore never observes
the removed rule or the pre-update matching set — not even through a result
cache.  Results obtained *before* the ack reflect the old state, exactly as a
lookup that raced the update would; callers needing a fence must order their
lookups after the update call returns.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, Sequence

from repro.rules.rule import Rule

__all__ = ["DEFAULT_RETRAIN_THRESHOLD", "UpdateQueue"]

#: Retrain once this fraction of a shard's live rules is served by the slow
#: path (built-in remainder plus the update overlay) — the paper's framing of
#: "retrain when the remainder absorbs too much" (§3.9; UpdatableNuevoMatch
#: uses the same default).
DEFAULT_RETRAIN_THRESHOLD = 0.5


class UpdateQueue:
    """Routes online inserts/removes to owning shards and manages retraining.

    Args:
        shards: The engine's shard objects
            (:class:`repro.serving.sharded._Shard`).
        rebuild: ``rebuild(shard)`` snapshots the shard's live rules and
            builds a fresh engine over them (same classifier and parameters);
            returns ``(engine, snapshot_seq)`` for the atomic swap.
        retrain_threshold: Remainder fraction that triggers a retrain.
        background: Retrain in a daemon thread (production mode) or inline
            during the triggering update (deterministic mode for tests and
            benchmarks).
    """

    def __init__(
        self,
        shards: Sequence,
        rebuild: Callable,
        retrain_threshold: float = DEFAULT_RETRAIN_THRESHOLD,
        background: bool = True,
    ):
        if not 0.0 < retrain_threshold <= 1.0:
            raise ValueError("retrain_threshold must be in (0, 1]")
        self._shards = list(shards)
        self._rebuild = rebuild
        self.retrain_threshold = retrain_threshold
        self.background = background
        self._lock = threading.RLock()
        self._threads: list[threading.Thread] = []
        self._listeners: list[Callable[[str, object], None]] = []
        #: rule_id -> index of the shard currently holding the rule.
        self._owner: dict[int, int] = {}
        self.inserts_applied = 0
        self.removes_applied = 0
        self.retrains_triggered = 0
        self.retrains_completed = 0
        #: Rebuild-to-swap wall time of the most recent / all completed
        #: retrains (the latency the paper's §3.9 update story is bounded by).
        self.last_retrain_seconds = 0.0
        self.retrain_seconds_total = 0.0
        self.reindex()

    def reindex(self) -> None:
        """Rebuild the rule-id ownership map from the shards' live rules."""
        with self._lock:
            self._owner = {
                rule_id: shard.index
                for shard in self._shards
                for rule_id in shard.live_ids()
            }

    # -------------------------------------------------------------- listeners

    def add_listener(self, listener: Callable[[str, object], None]) -> None:
        """Register ``listener(op, payload)`` for update notifications.

        ``op`` is ``"insert"`` (payload: the :class:`Rule`) or ``"remove"``
        (payload: the rule id).  Listeners run synchronously after the update
        is applied and before :meth:`insert`/:meth:`remove` return — the
        eviction-before-ack ordering result caches rely on.
        """
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[str, object], None]) -> None:
        """Unregister a listener previously added (no-op if absent)."""
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def _notify(self, op: str, payload) -> None:
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            listener(op, payload)

    # ------------------------------------------------------------- operations

    def owner_of(self, rule_id: int) -> Optional[int]:
        """Index of the shard holding ``rule_id`` (None if not live)."""
        with self._lock:
            return self._owner.get(rule_id)

    def insert(self, rule: Rule) -> None:
        """Apply an insert immediately to the owning shard's overlay.

        A fresh ``rule_id`` goes to the shard with the fewest live rules
        (keeping shards balanced); an existing id is a matching-set change —
        the stale copy is masked on its owning shard and the new version
        enters the same shard's overlay (the paper's type-(iii) update stays
        on one shard, so lookups never see both versions).
        """
        with self._lock:
            owner = self._owner.get(rule.rule_id)
            if owner is None:
                shard = min(self._shards, key=lambda s: s.live_size())
            else:
                shard = self._shards[owner]
            shard.engine.ruleset.schema.validate_ranges(rule.ranges)
            shard.apply_insert(rule, mask_old=owner is not None)
            self._owner[rule.rule_id] = shard.index
            self.inserts_applied += 1
        # Eviction before ack: stale cached results are gone before the caller
        # learns the insert completed.
        self._notify("insert", rule)
        self._maybe_retrain(shard)

    def remove(self, rule_id: int) -> bool:
        """Mask a rule immediately on its owning shard; True if it was live."""
        with self._lock:
            owner = self._owner.get(rule_id)
            if owner is None:
                return False
            shard = self._shards[owner]
            shard.apply_remove(rule_id)
            del self._owner[rule_id]
            self.removes_applied += 1
        # Eviction before ack: a classify issued after this call returns can
        # never be served the removed rule from a result cache.
        self._notify("remove", rule_id)
        self._maybe_retrain(shard)
        return True

    # ------------------------------------------------------------- retraining

    def _maybe_retrain(self, shard) -> None:
        with shard.lock:
            if shard.retraining:
                return
            if shard.remainder_fraction() < self.retrain_threshold:
                return
            shard.retraining = True
        with self._lock:
            self.retrains_triggered += 1
        if self.background:
            thread = threading.Thread(
                target=self._retrain,
                args=(shard,),
                daemon=True,
                name=f"shard{shard.index}-retrain",
            )
            with self._lock:
                self._threads = [t for t in self._threads if t.is_alive()]
                self._threads.append(thread)
            thread.start()
        else:
            self._retrain(shard)

    def _retrain(self, shard) -> None:
        start = time.perf_counter()
        try:
            new_engine, snapshot_seq = self._rebuild(shard)
        except Exception:
            with shard.lock:
                shard.retraining = False
            raise
        shard.complete_retrain(new_engine, snapshot_seq)
        elapsed = time.perf_counter() - start
        with self._lock:
            self.retrains_completed += 1
            self.last_retrain_seconds = elapsed
            self.retrain_seconds_total += elapsed

    def join(self, timeout: float | None = None) -> None:
        """Wait for in-flight background retrains (None blocks indefinitely)."""
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout)
        with self._lock:
            self._threads = [t for t in self._threads if t.is_alive()]

    # ------------------------------------------------------------- statistics

    def statistics(self) -> dict[str, object]:
        return {
            "inserts_applied": self.inserts_applied,
            "removes_applied": self.removes_applied,
            "retrains_triggered": self.retrains_triggered,
            "retrains_completed": self.retrains_completed,
            "last_retrain_seconds": self.last_retrain_seconds,
            "retrain_seconds_total": self.retrain_seconds_total,
            "retrain_threshold": self.retrain_threshold,
            "background": self.background,
            "pending_inserted": sum(len(s.inserted) for s in self._shards),
            "masked_removed": sum(len(s.removed) for s in self._shards),
        }
