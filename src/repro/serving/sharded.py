"""Multi-core sharded serving: the :class:`ShardedEngine`.

The paper's evaluation scales NuevoMatch by splitting the rule-set across
cores and merging per-core matches by priority (§5).  :class:`ShardedEngine`
reproduces that layer in software: the rule-set is partitioned across ``N``
per-shard :class:`~repro.engine.ClassificationEngine` instances (iSet-aware by
default, see :mod:`repro.serving.partitioning`), ``classify_batch`` fans out
over a worker pool, and the per-shard winners merge exactly like NuevoMatch's
selector merges its iSets — lowest numeric priority wins, ties broken by
``rule_id``.

Executors:

* ``"thread"`` (default) — one persistent :class:`ThreadPoolExecutor` worker
  per shard.  The numpy-heavy lookup paths release the GIL, so threads give
  real parallelism without pickling.
* ``"process"`` — a :class:`ProcessPoolExecutor` whose workers each restore
  the shard engines from their snapshot documents; useful when lookups are
  dominated by pure-Python classifier code.  The pool is resynced
  automatically after a shard retrain swaps an engine.
* ``"workers"`` — the persistent shard-worker runtime
  (:mod:`repro.serving.workers`): long-lived spawn processes fed through
  per-shard columnar shared-memory rings, no per-call pickling.  Engine swaps
  republish the shard's snapshot segment instead of tearing workers down.
  This is the executor that makes *measured* sharded throughput scale; the
  serving CLI defaults to it when ``shards > 1``.
* ``"serial"`` — in-process loop, for debugging and deterministic tests.

Online updates go through :class:`~repro.serving.updates.UpdateQueue`:
inserts/removes apply immediately to the owning shard's overlay ("delta
remainder") and background retraining folds the overlay back into the shard's
built structure once its remainder fraction crosses the threshold, swapping
the rebuilt engine in atomically.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.classifiers.base import (
    TRACE_FIELDS,
    ClassificationResult,
    LookupTrace,
    MemoryFootprint,
)
from repro.core.nuevomatch import NuevoMatch
from repro.core.pipeline import TrainingPipeline
from repro.engine.engine import (
    BatchReport,
    ClassificationEngine,
    serve_in_batches,
    validate_block,
)
from repro.engine.serialization import (
    SHARDED_FILE_VERSION,
    read_document,
    rule_from_state,
    rule_to_state,
    write_engine_file,
)
from repro.rules.rule import Packet, Rule, RuleSet
from repro.serving.partitioning import PARTITIONERS, partition_for_shards
from repro.serving.updates import DEFAULT_RETRAIN_THRESHOLD, UpdateQueue
from repro.serving.workers import ShardWorkerRuntime, WorkerCrashed

__all__ = ["EXECUTORS", "ShardedEngine"]

#: Accepted fan-out strategies.
EXECUTORS = ("thread", "process", "workers", "serial")

#: ``kind`` discriminator stored in sharded snapshot documents.
_SHARDED_KIND = "sharded-engine"


def _rules_to_arrays(
    rules: Sequence[Rule], num_fields: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(los, his, priorities, rule_ids)`` for ``rules``, best-first.

    Rows are sorted by ``(priority, rule_id)`` so a first-containment scan
    (``argmax`` over a boolean matrix) yields the best match directly — the
    columnar overlay/rescan paths lean on that ordering.
    """
    ordered = sorted(rules, key=lambda rule: (rule.priority, rule.rule_id))
    count = len(ordered)
    los = np.empty((count, num_fields), dtype=np.int64)
    his = np.empty((count, num_fields), dtype=np.int64)
    priorities = np.empty(count, dtype=np.int64)
    rule_ids = np.empty(count, dtype=np.int64)
    for row, rule in enumerate(ordered):
        for dim, (lo, hi) in enumerate(rule.ranges):
            los[row, dim] = lo
            his[row, dim] = hi
        priorities[row] = rule.priority
        rule_ids[row] = rule.rule_id
    return los, his, priorities, rule_ids


class _Shard:
    """One shard: its engine, the update overlay, and swap bookkeeping.

    The overlay is the shard's *delta remainder*: ``inserted`` holds rules
    added (or modified) since the engine was built, ``removed`` masks rule ids
    deleted from the built structure.  Both carry the update sequence number
    at which they were applied, so a retrain can fold in exactly the updates
    its snapshot covered and keep the rest pending.
    """

    def __init__(self, index: int, engine: ClassificationEngine):
        self.index = index
        self.engine = engine
        self.lock = threading.RLock()
        #: rule_id -> (update sequence, rule)
        self.inserted: dict[int, tuple[int, Rule]] = {}
        #: rule_id -> update sequence at which it was masked
        self.removed: dict[int, int] = {}
        self.update_seq = 0
        self.generation = 0
        self.retraining = False
        self.retrain_count = 0
        self._base_ids: set[int] = set()
        self._base_ids_generation = -1
        self._by_id: dict[int, Rule] = {}
        self._by_id_generation = -1
        self._rule_arrays: tuple | None = None
        self._rule_arrays_generation = -1

    # ------------------------------------------------------------- live view

    def base_ids(self) -> set[int]:
        """Ids of the rules in the built engine (cached per generation)."""
        with self.lock:
            if self._base_ids_generation != self.generation:
                self._base_ids = {rule.rule_id for rule in self.engine.ruleset}
                self._base_ids_generation = self.generation
            return self._base_ids

    def rules_by_id(self, engine: ClassificationEngine) -> dict[int, Rule]:
        """``rule_id -> Rule`` for ``engine``'s built rules.

        Cached per generation when ``engine`` is the shard's current engine
        (the worker-runtime result path resolves every returned id through
        this); built ad hoc for a stale snapshot engine (a retrain swapped
        mid-call — rare).
        """
        with self.lock:
            if engine is self.engine:
                if self._by_id_generation != self.generation:
                    self._by_id = {
                        rule.rule_id: rule for rule in self.engine.ruleset
                    }
                    self._by_id_generation = self.generation
                return self._by_id
        return {rule.rule_id: rule for rule in engine.ruleset}

    def rule_arrays(
        self, engine: ClassificationEngine
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Best-first ``(los, his, priorities, rule_ids)`` over ``engine``'s
        built rules, cached per generation (ad hoc for a stale snapshot
        engine, as in :meth:`rules_by_id`)."""
        num_fields = len(engine.ruleset.schema)
        with self.lock:
            if engine is self.engine:
                if self._rule_arrays_generation != self.generation:
                    self._rule_arrays = _rules_to_arrays(
                        list(self.engine.ruleset), num_fields
                    )
                    self._rule_arrays_generation = self.generation
                return self._rule_arrays
        return _rules_to_arrays(list(engine.ruleset), num_fields)

    def live_ids(self) -> set[int]:
        with self.lock:
            return (self.base_ids() - set(self.removed)) | set(self.inserted)

    def live_size(self) -> int:
        with self.lock:
            base_ids = self.base_ids()
            masked = sum(1 for rule_id in self.removed if rule_id in base_ids)
            return len(base_ids) - masked + len(self.inserted)

    def live_ruleset(self) -> RuleSet:
        """The shard's effective rules: base minus masks plus the overlay."""
        with self.lock:
            rules = [
                rule
                for rule in self.engine.ruleset
                if rule.rule_id not in self.removed
            ]
            rules.extend(rule for _seq, rule in self.inserted.values())
            return self.engine.ruleset.subset(rules)

    def remainder_fraction(self) -> float:
        """Fraction of live rules served by the slow path (§3.9).

        For a NuevoMatch shard that is the built-in remainder set plus the
        update overlay; for baseline shards only the overlay counts (the whole
        structure *is* the "remainder").
        """
        with self.lock:
            live = self.live_size()
            if live <= 0:
                return 1.0
            classifier = self.engine.classifier
            base_remainder = (
                len(classifier.partition.remainder)
                if isinstance(classifier, NuevoMatch)
                else 0
            )
            overlay = len(self.inserted) + len(self.removed)
            return min(1.0, (base_remainder + overlay) / live)

    # --------------------------------------------------------------- updates

    def apply_insert(self, rule: Rule, mask_old: bool) -> None:
        with self.lock:
            self.update_seq += 1
            if mask_old:
                self.removed[rule.rule_id] = self.update_seq
            self.inserted[rule.rule_id] = (self.update_seq, rule)

    def apply_remove(self, rule_id: int) -> None:
        with self.lock:
            self.update_seq += 1
            self.inserted.pop(rule_id, None)
            self.removed[rule_id] = self.update_seq

    # ------------------------------------------------------------ retraining

    def begin_retrain(self) -> tuple[RuleSet, int]:
        """Snapshot the live rules; returns (snapshot, snapshot sequence)."""
        with self.lock:
            snapshot_seq = self.update_seq
            return self.live_ruleset(), snapshot_seq

    def complete_retrain(self, new_engine: ClassificationEngine, snapshot_seq: int) -> None:
        """Swap the rebuilt engine in and fold the covered overlay entries."""
        with self.lock:
            new_ids = {rule.rule_id for rule in new_engine.ruleset}
            self.engine = new_engine
            self.inserted = {
                rule_id: (seq, rule)
                for rule_id, (seq, rule) in self.inserted.items()
                if seq > snapshot_seq
            }
            # Masks newer than the snapshot still apply (their base copy is in
            # the rebuilt structure); everything else was already excluded.
            self.removed = {
                rule_id: seq
                for rule_id, seq in self.removed.items()
                if seq > snapshot_seq and rule_id in new_ids
            }
            self.generation += 1
            self.retrain_count += 1
            self.retraining = False

    # -------------------------------------------------------------- serving

    def snapshot(self) -> tuple[ClassificationEngine, list[Rule], frozenset]:
        """Consistent (engine, overlay rules best-first, masked ids) triple."""
        with self.lock:
            overlay = sorted(
                (rule for _seq, rule in self.inserted.values()),
                key=lambda rule: (rule.priority, rule.rule_id),
            )
            return self.engine, overlay, frozenset(self.removed)

    def adjust(
        self,
        engine: ClassificationEngine,
        overlay: list[Rule],
        removed: frozenset,
        results: list[ClassificationResult],
        packets: Sequence,
    ) -> list[ClassificationResult]:
        """Apply the update overlay to the shard's base lookup results."""
        if not overlay and not removed:
            return results
        adjusted: list[ClassificationResult] = []
        num_fields = len(engine.ruleset.schema)
        for result, packet in zip(results, packets):
            winner = result.rule
            trace = result.trace
            values = packet.values if isinstance(packet, Packet) else tuple(packet)
            if winner is not None and winner.rule_id in removed:
                # The built structure returned a masked rule: rescan the live
                # base rules for the runner-up (rare path; masked rules vanish
                # for good at the next retraining, cf. UpdatableNuevoMatch).
                winner = None
                scanned = 0
                for rule in engine.ruleset:
                    if rule.rule_id in removed:
                        continue
                    scanned += 1
                    if rule.matches(values) and (
                        winner is None
                        or (rule.priority, rule.rule_id)
                        < (winner.priority, winner.rule_id)
                    ):
                        winner = rule
                trace = LookupTrace(
                    index_accesses=trace.index_accesses,
                    rule_accesses=trace.rule_accesses + scanned,
                    model_accesses=trace.model_accesses,
                    compute_ops=trace.compute_ops + scanned * num_fields,
                    hash_ops=trace.hash_ops,
                )
            for rule in overlay:  # best-first: first match wins
                if winner is not None and (winner.priority, winner.rule_id) < (
                    rule.priority,
                    rule.rule_id,
                ):
                    break
                trace = LookupTrace(
                    index_accesses=trace.index_accesses,
                    rule_accesses=trace.rule_accesses + 1,
                    model_accesses=trace.model_accesses,
                    compute_ops=trace.compute_ops + num_fields,
                    hash_ops=trace.hash_ops,
                )
                if rule.matches(values):
                    winner = rule
                    break
            adjusted.append(ClassificationResult(winner, trace))
        return adjusted

    def adjust_block(
        self,
        engine: ClassificationEngine,
        overlay: list[Rule],
        removed: frozenset,
        values: np.ndarray,
        rule_ids: np.ndarray,
        priorities: np.ndarray,
        traces: np.ndarray | None = None,
    ) -> None:
        """Columnar twin of :meth:`adjust`: apply the overlay in place.

        ``values`` is the int64 packet block; ``rule_ids``/``priorities`` are
        the shard's base columnar results and are rewritten in place.  The
        winner/trace semantics are bit-identical to :meth:`adjust` — the
        differential conformance tests hold the two paths together.
        """
        if not overlay and not removed:
            return
        num_fields = values.shape[1]
        if removed:
            removed_ids = np.fromiter(
                removed, dtype=np.int64, count=len(removed)
            )
            affected = np.flatnonzero(np.isin(rule_ids, removed_ids))
            if affected.size:
                # The built structure returned masked rules: rescan the live
                # base rules for the runner-up, vectorized over the (rare)
                # affected rows.  Trace cost mirrors the object path: every
                # live base rule is scanned.
                los, his, base_pris, base_ids = self.rule_arrays(engine)
                live = ~np.isin(base_ids, removed_ids)
                scanned = int(live.sum())
                rows = values[affected]
                contained = (
                    (rows[:, None, :] >= los[None, :, :])
                    & (rows[:, None, :] <= his[None, :, :])
                ).all(axis=2) & live[None, :]
                hit = contained.any(axis=1)
                first = np.where(hit, contained.argmax(axis=1), 0)
                rule_ids[affected] = np.where(hit, base_ids[first], -1)
                priorities[affected] = np.where(hit, base_pris[first], 0)
                if traces is not None:
                    traces[affected, 1] += scanned
                    traces[affected, 3] += scanned * num_fields
        if overlay:
            count = len(overlay)
            o_los, o_his, o_pris, o_ids = _rules_to_arrays(
                overlay, num_fields
            )
            # Object path probes overlay rules best-first until the current
            # winner strictly beats the next rule; with the overlay sorted
            # ascending that cutoff is the first "beaten" column.
            has_winner = rule_ids >= 0
            beaten = has_winner[:, None] & (
                (priorities[:, None] < o_pris[None, :])
                | (
                    (priorities[:, None] == o_pris[None, :])
                    & (rule_ids[:, None] < o_ids[None, :])
                )
            )
            stop = np.where(beaten.any(axis=1), beaten.argmax(axis=1), count)
            match = (
                (values[:, None, :] >= o_los[None, :, :])
                & (values[:, None, :] <= o_his[None, :, :])
            ).all(axis=2)
            eligible = match & (np.arange(count)[None, :] < stop[:, None])
            hit = eligible.any(axis=1)
            first = np.where(hit, eligible.argmax(axis=1), 0)
            if traces is not None:
                probed = np.where(hit, first + 1, stop)
                traces[:, 1] += probed
                traces[:, 3] += probed * num_fields
            rule_ids[hit] = o_ids[first[hit]]
            priorities[hit] = o_pris[first[hit]]

    def statistics(self) -> dict[str, object]:
        with self.lock:
            return {
                "shard": self.index,
                "classifier": self.engine.classifier_name,
                "live_rules": self.live_size(),
                "base_rules": len(self.engine.ruleset),
                "overlay_inserted": len(self.inserted),
                "overlay_removed": len(self.removed),
                "remainder_fraction": self.remainder_fraction(),
                "generation": self.generation,
                "retrain_count": self.retrain_count,
            }


def _rebuild_shard_engine(
    shard: _Shard,
    pipeline: "TrainingPipeline | None" = None,
    warm: bool = False,
) -> tuple[ClassificationEngine, int]:
    """Build a fresh engine over a shard's live rules (outside its lock).

    With ``warm`` (the default for sharded serving), a NuevoMatch shard's
    retrain is seeded from the engine being replaced: unchanged submodels are
    reused under their certified bounds and only submodels whose
    responsibility content changed retrain (see
    :mod:`repro.core.pipeline`) — the retrain-to-swap latency shrinks
    accordingly.  Baseline classifiers have no trained state and always
    rebuild from parameters.
    """
    live, snapshot_seq = shard.begin_retrain()
    old = shard.engine.classifier
    if isinstance(old, NuevoMatch):
        classifier = NuevoMatch.build(
            live,
            remainder_classifier=type(old.remainder),
            config=old.config,
            pipeline=pipeline,
            warm_from=old if warm else None,
            **old.remainder.build_params,
        )
    else:
        classifier = type(old).build(live, **old.build_params)
    return (
        ClassificationEngine(classifier, metadata=shard.engine.metadata),
        snapshot_seq,
    )


# --------------------------------------------------------------------------
# Process-pool plumbing.  Workers restore the shard engines once (from their
# snapshot documents, passed through the pool initializer) and then serve
# classify_batch requests addressed by shard index.

_WORKER_ENGINES: list[ClassificationEngine] | None = None


def _process_worker_init(documents: list[dict]) -> None:
    global _WORKER_ENGINES
    _WORKER_ENGINES = [
        ClassificationEngine.from_document(document) for document in documents
    ]


def _process_worker_classify(index: int, packets: list) -> list[ClassificationResult]:
    assert _WORKER_ENGINES is not None, "process pool initializer did not run"
    return _WORKER_ENGINES[index].classify_batch(packets)


def _process_worker_classify_block(
    index: int, block: np.ndarray, want_traces: bool
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    assert _WORKER_ENGINES is not None, "process pool initializer did not run"
    traces = (
        np.zeros((block.shape[0], len(TRACE_FIELDS)), dtype=np.int64)
        if want_traces
        else None
    )
    rule_ids, priorities = _WORKER_ENGINES[index].classify_block(
        block, traces=traces
    )
    return rule_ids, priorities, traces


class ShardedEngine:
    """N per-shard engines serving as one classifier, with online updates.

    Build with :meth:`build` (partitions the rule-set and builds one
    :class:`~repro.engine.ClassificationEngine` per shard) or restore with
    :meth:`load`.  ``classify_batch`` output is identical to an unsharded
    engine over the same rules: every shard classifies the batch against its
    subset and the per-packet winners merge by ``(priority, rule_id)``; the
    merged trace is the element-wise sum of the shard traces (the total work
    performed across cores).
    """

    def __init__(
        self,
        engines: Sequence[ClassificationEngine],
        partitioner: str = "auto",
        executor: str = "thread",
        retrain_threshold: float = DEFAULT_RETRAIN_THRESHOLD,
        background_retraining: bool = True,
        warm_retrain: bool = True,
        retrain_jobs: int = 1,
        metadata: dict | None = None,
    ):
        if not engines:
            raise ValueError("a ShardedEngine needs at least one shard")
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        schema = engines[0].ruleset.schema
        seen_ids: set[int] = set()
        for engine in engines:
            if engine.ruleset.schema != schema:
                raise ValueError("all shards must share one field schema")
            for rule in engine.ruleset:
                if rule.rule_id in seen_ids:
                    raise ValueError(
                        f"rule id {rule.rule_id} appears in more than one shard"
                    )
                seen_ids.add(rule.rule_id)
        self._schema = schema
        self._partitioner = partitioner
        self._executor_kind = executor
        self.metadata = dict(metadata or {})
        self._warm_retrain = warm_retrain
        self._retrain_jobs = retrain_jobs
        self._retrain_pipeline = (
            TrainingPipeline(jobs=retrain_jobs) if warm_retrain or retrain_jobs > 1
            else None
        )
        self._shards = [_Shard(index, engine) for index, engine in enumerate(engines)]
        self.updates = UpdateQueue(
            self._shards,
            rebuild=self._rebuild_shard,
            retrain_threshold=retrain_threshold,
            background=background_retraining,
        )
        self._thread_pool: ThreadPoolExecutor | None = None
        self._process_pool: ProcessPoolExecutor | None = None
        self._process_generations: list[int] | None = None
        self._worker_runtime: ShardWorkerRuntime | None = None
        self._worker_generations: list[int] | None = None
        self._pool_lock = threading.Lock()
        self._rules_map: dict[int, Rule] | None = None
        self._rules_map_key: tuple | None = None

    def _rebuild_shard(self, shard: _Shard) -> tuple[ClassificationEngine, int]:
        """The UpdateQueue rebuild hook: warm-start through the pipeline."""
        return _rebuild_shard_engine(
            shard, pipeline=self._retrain_pipeline, warm=self._warm_retrain
        )

    # ------------------------------------------------------------------ build

    @classmethod
    def build(
        cls,
        ruleset: RuleSet,
        shards: int = 2,
        classifier: str | type = "nm",
        partitioner: str = "auto",
        executor: str = "thread",
        retrain_threshold: float = DEFAULT_RETRAIN_THRESHOLD,
        background_retraining: bool = True,
        warm_retrain: bool = True,
        retrain_jobs: int = 1,
        pipeline=None,
        metadata: dict | None = None,
        **params,
    ) -> "ShardedEngine":
        """Partition ``ruleset`` and build one engine per shard.

        Args:
            ruleset: Input rules.
            shards: Shard count, ``1 <= shards <= len(ruleset)``.
            classifier: Registry name/alias or class, as in
                :meth:`ClassificationEngine.build`; every shard uses the same
                classifier and parameters.
            partitioner: One of :data:`~repro.serving.partitioning.PARTITIONERS`.
            executor: One of :data:`EXECUTORS`.
            retrain_threshold: Remainder fraction triggering a shard retrain.
            background_retraining: Retrain in a worker thread (default) or
                inline during the triggering update (deterministic).
            warm_retrain: Seed shard retrains from the engine being replaced
                (NuevoMatch shards; see :mod:`repro.core.pipeline`).
            retrain_jobs: Process-pool width for a retrain's iSet training.
            pipeline: Optional :class:`~repro.core.pipeline.TrainingPipeline`
                for the *initial* per-shard builds (NuevoMatch only).
            metadata: Free-form annotations persisted with :meth:`save`.
            **params: Forwarded to each shard's classifier ``build``.
        """
        shard_rulesets = partition_for_shards(ruleset, shards, partitioner)
        engines = [
            ClassificationEngine.build(
                shard_rules, classifier=classifier, pipeline=pipeline, **params
            )
            for shard_rules in shard_rulesets
        ]
        return cls(
            engines,
            partitioner=partitioner,
            executor=executor,
            retrain_threshold=retrain_threshold,
            background_retraining=background_retraining,
            warm_retrain=warm_retrain,
            retrain_jobs=retrain_jobs,
            metadata=metadata,
        )

    # ------------------------------------------------------------------ serve

    #: The columnar contract holds on every executor (see :meth:`classify_block`).
    supports_block = True

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def executor(self) -> str:
        return self._executor_kind

    @property
    def partitioner(self) -> str:
        return self._partitioner

    def shard_sizes(self) -> list[int]:
        """Live rule count per shard."""
        return [shard.live_size() for shard in self._shards]

    @property
    def ruleset(self) -> RuleSet:
        """The live rules across all shards, best-priority first."""
        rules: list[Rule] = []
        for shard in self._shards:
            rules.extend(shard.live_ruleset().rules)
        rules.sort(key=lambda rule: (rule.priority, rule.rule_id))
        return RuleSet(rules, self._schema, name="sharded")

    def classify_batch_per_shard(
        self, packets: Sequence[Packet | Sequence[int]]
    ) -> list[list[ClassificationResult]]:
        """Per-shard results for a batch (overlay applied), one list per shard.

        The building block of :meth:`classify_batch`; exposed so the
        simulation layer can price each shard's work separately (per-shard
        latency → parallel batch latency).
        """
        packet_list = (
            packets if isinstance(packets, np.ndarray) else list(packets)
        )
        if len(packet_list) == 0:
            return [[] for _ in self._shards]
        if self._executor_kind == "workers":
            # Sync the runtime before snapshotting so workers serve the same
            # generation the snapshots describe.
            self._ensure_worker_runtime()
        snapshots = [shard.snapshot() for shard in self._shards]
        base_results = self._fan_out(packet_list, snapshots)
        return [
            shard.adjust(engine, overlay, removed, results, packet_list)
            for shard, (engine, overlay, removed), results in zip(
                self._shards, snapshots, base_results
            )
        ]

    def classify_batch(
        self, packets: Sequence[Packet | Sequence[int]]
    ) -> list[ClassificationResult]:
        """Classify a batch; identical matches to an unsharded engine.

        Accepts a list of packets/tuples or a 2-d numpy block (rows are
        packets) — the latter skips per-packet conversion on the workers path.
        """
        packet_list = (
            packets if isinstance(packets, np.ndarray) else list(packets)
        )
        if len(packet_list) == 0:
            return []
        per_shard = self.classify_batch_per_shard(packet_list)
        merged: list[ClassificationResult] = []
        for row in range(len(packet_list)):
            winner: Rule | None = None
            traces: list[LookupTrace] = []
            for shard_results in per_shard:
                result = shard_results[row]
                traces.append(result.trace)
                rule = result.rule
                if rule is not None and (
                    winner is None
                    or (rule.priority, rule.rule_id)
                    < (winner.priority, winner.rule_id)
                ):
                    winner = rule
            merged.append(ClassificationResult(winner, LookupTrace.aggregate(traces)))
        return merged

    def classify_block(
        self, block: np.ndarray, traces: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Columnar fast path: ``(n, fields)`` block → ``(rule_ids, priorities)``.

        The block fans out columnar to every shard (shared-memory rings for
        ``executor="workers"``, per-shard ``classify_block`` otherwise), the
        update overlay applies vectorized (:meth:`_Shard.adjust_block`), and
        the per-shard winners merge rule-id-aware — no per-packet Python
        objects on any executor, with or without pending updates.  Misses
        carry ``rule_id == -1`` and ``priority == 0``; ``traces`` (optional
        ``(n, 5)`` int64, :data:`~repro.classifiers.base.TRACE_FIELDS` order)
        is overwritten with the element-wise sum of the shard traces, exactly
        like :meth:`classify_batch`'s aggregated trace.
        """
        block = validate_block(block)
        n = block.shape[0]
        rule_ids = np.full(n, -1, dtype=np.int64)
        priorities = np.zeros(n, dtype=np.int64)
        if traces is not None:
            traces[:n] = 0
        if n == 0:
            return rule_ids, priorities
        if self._executor_kind == "workers":
            # Sync the runtime before snapshotting so workers serve the same
            # generation the snapshots describe.
            self._ensure_worker_runtime()
        snapshots = [shard.snapshot() for shard in self._shards]
        outputs = self._fan_out_block(block, snapshots, traces is not None)
        values: np.ndarray | None = None
        if any(overlay or removed for _engine, overlay, removed in snapshots):
            values = block.astype(np.int64, copy=False)
        first = True
        for shard, (engine, overlay, removed), (ids, pris, shard_traces) in zip(
            self._shards, snapshots, outputs
        ):
            if values is not None:
                shard.adjust_block(
                    engine, overlay, removed, values, ids, pris,
                    traces=shard_traces,
                )
            if traces is not None:
                traces[:n] += shard_traces
            if first:
                rule_ids[:] = ids
                priorities[:] = pris
                first = False
            else:
                better = (ids >= 0) & (
                    (rule_ids < 0)
                    | (pris < priorities)
                    | ((pris == priorities) & (ids < rule_ids))
                )
                np.copyto(rule_ids, ids, where=better)
                np.copyto(priorities, pris, where=better)
        return rule_ids, priorities

    def _fan_out_block(
        self, block: np.ndarray, snapshots: list, want_traces: bool
    ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray | None]]:
        """Columnar fan-out: one ``(rule_ids, priorities, traces)`` per shard.

        ``traces`` is always populated on the workers path (the rings carry
        it); on the other executors it is ``None`` unless ``want_traces`` —
        skipping the per-shard trace arrays is what keeps the no-trace serve
        path allocation-free.
        """
        engines = [engine for engine, _overlay, _removed in snapshots]
        if self._executor_kind == "workers":
            return self._runtime_classify(block)
        if self._executor_kind == "serial" or len(engines) == 1:
            outputs = []
            for engine in engines:
                shard_traces = (
                    np.zeros((block.shape[0], len(TRACE_FIELDS)), dtype=np.int64)
                    if want_traces
                    else None
                )
                ids, pris = engine.classify_block(block, traces=shard_traces)
                outputs.append((ids, pris, shard_traces))
            return outputs
        if self._executor_kind == "thread":

            def run(engine: ClassificationEngine):
                shard_traces = (
                    np.zeros((block.shape[0], len(TRACE_FIELDS)), dtype=np.int64)
                    if want_traces
                    else None
                )
                ids, pris = engine.classify_block(block, traces=shard_traces)
                return ids, pris, shard_traces

            pool = self._ensure_thread_pool()
            futures = [pool.submit(run, engine) for engine in engines]
            return [future.result() for future in futures]
        pool = self._ensure_process_pool()
        futures = [
            pool.submit(_process_worker_classify_block, index, block, want_traces)
            for index in range(len(self._shards))
        ]
        return [future.result() for future in futures]

    def rules_by_id(self, refresh: bool = False) -> dict[int, Rule]:
        """``rule_id -> Rule`` over the live rules of every shard.

        Cached against each shard's ``(generation, update_seq)`` pair so
        object-materializing callers (``FlowCache`` fills, the engine-style
        batch wrapper) resolve columnar ids without rebuilding the map per
        batch.
        """
        key = tuple(
            (shard.generation, shard.update_seq) for shard in self._shards
        )
        if refresh or self._rules_map is None or self._rules_map_key != key:
            mapping: dict[int, Rule] = {}
            for shard in self._shards:
                # Original Rule objects, not live_ruleset(): RuleSet
                # normalization rewrites negative priorities, and the overlay
                # serves inserted rules exactly as given.
                with shard.lock:
                    removed = shard.removed
                    for rule in shard.engine.ruleset:
                        if rule.rule_id not in removed:
                            mapping[rule.rule_id] = rule
                    for _seq, rule in shard.inserted.values():
                        mapping[rule.rule_id] = rule
            self._rules_map = mapping
            self._rules_map_key = key
        return self._rules_map

    def classify_traced(self, packet: Packet | Sequence[int]) -> ClassificationResult:
        return self.classify_batch([packet])[0]

    def classify(self, packet: Packet | Sequence[int]) -> Optional[Rule]:
        return self.classify_traced(packet).rule

    def serve(
        self, packets: Iterable[Packet | Sequence[int]], batch_size: int = 128
    ) -> Iterable[BatchReport]:
        """Serve a packet stream in fixed-size batches, yielding batch reports."""
        return serve_in_batches(self.classify_batch, packets, batch_size)

    def verify(self, packets: Iterable[Packet]) -> int:
        """Check the sharded engine against linear search over the live rules."""
        oracle = self.ruleset
        count = 0
        for packet in packets:
            expected = oracle.match(packet)
            actual = self.classify(packet)
            expected_key = (
                None if expected is None else (expected.priority, expected.rule_id)
            )
            actual_key = None if actual is None else (actual.priority, actual.rule_id)
            if expected_key != actual_key:
                raise AssertionError(
                    f"sharded: mismatch for packet {tuple(packet)}: "
                    f"expected {expected_key}, got {actual_key}"
                )
            count += 1
        return count

    # ---------------------------------------------------------------- fan-out

    def _fan_out(
        self, packets, snapshots: list
    ) -> list[list[ClassificationResult]]:
        engines = [engine for engine, _overlay, _removed in snapshots]
        if self._executor_kind == "workers":
            return self._fan_out_workers(packets, engines)
        if self._executor_kind == "serial" or len(engines) == 1:
            return [engine.classify_batch(packets) for engine in engines]
        if self._executor_kind == "thread":
            pool = self._ensure_thread_pool()
            futures = [
                pool.submit(engine.classify_batch, packets) for engine in engines
            ]
            return [future.result() for future in futures]
        pool = self._ensure_process_pool()
        futures = [
            pool.submit(_process_worker_classify, index, packets)
            for index in range(len(self._shards))
        ]
        return [future.result() for future in futures]

    def _fan_out_workers(
        self, packets, engines: list[ClassificationEngine]
    ) -> list[list[ClassificationResult]]:
        """Classify through the shard-worker rings, rehydrating results.

        Workers return columnar ``(rule_id, priority, trace)`` arrays; each
        id resolves to its :class:`Rule` through the shard's per-generation
        map so the caller sees ordinary :class:`ClassificationResult` lists
        (the overlay adjustment and merge paths are shared with the other
        executors).
        """
        if isinstance(packets, np.ndarray):
            block = np.ascontiguousarray(packets, dtype=np.uint64)
        else:
            block = np.array(
                [
                    packet.values if isinstance(packet, Packet) else tuple(packet)
                    for packet in packets
                ],
                dtype=np.uint64,
            )
        outputs = self._runtime_classify(block)
        fan_out: list[list[ClassificationResult]] = []
        for shard, engine, (rule_ids, _priorities, traces) in zip(
            self._shards, engines, outputs
        ):
            by_id = shard.rules_by_id(engine)
            current = None
            results: list[ClassificationResult] = []
            for row in range(len(rule_ids)):
                rule_id = int(rule_ids[row])
                rule = None
                if rule_id >= 0:
                    rule = by_id.get(rule_id)
                    if rule is None:
                        # Retrain swapped engines mid-call: the worker served
                        # a different generation than the snapshot.  Resolve
                        # through the current engine's map.
                        if current is None:
                            current = shard.rules_by_id(shard.engine)
                        rule = current.get(rule_id)
                trace = LookupTrace(
                    index_accesses=int(traces[row, 0]),
                    rule_accesses=int(traces[row, 1]),
                    model_accesses=int(traces[row, 2]),
                    compute_ops=int(traces[row, 3]),
                    hash_ops=int(traces[row, 4]),
                )
                results.append(ClassificationResult(rule, trace))
            fan_out.append(results)
        return fan_out

    def _runtime_classify(
        self, block: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Run a block through the worker runtime, restarting it once if a
        worker died (fresh snapshots, same generations semantics)."""
        runtime = self._ensure_worker_runtime()
        try:
            return runtime.classify_block(block)
        except WorkerCrashed:
            with self._pool_lock:
                if self._worker_runtime is runtime:
                    runtime.close()
                    self._worker_runtime = None
                    self._worker_generations = None
            return self._ensure_worker_runtime().classify_block(block)

    def _ensure_thread_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._thread_pool is None:
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=len(self._shards),
                    thread_name_prefix="shard",
                )
            return self._thread_pool

    @staticmethod
    def _retire_process_pool(pool: ProcessPoolExecutor) -> None:
        """Shut a pool down without letting a dead worker leak the rest.

        ``shutdown`` on a broken pool (a worker killed mid-swap) can raise;
        the remaining workers must still be reaped, so fall back to a
        non-waiting shutdown with queued work cancelled.
        """
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - defensive
                pass

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        """The worker pool, resynced whenever a retrain swapped an engine."""
        with self._pool_lock:
            generations = [shard.generation for shard in self._shards]
            if self._process_pool is None or generations != self._process_generations:
                # Drop the reference before retiring: if the new pool's
                # construction fails, a later call must not touch the retired
                # pool again.
                stale, self._process_pool = self._process_pool, None
                self._process_generations = None
                if stale is not None:
                    self._retire_process_pool(stale)
                documents = [
                    shard.engine.to_document() for shard in self._shards
                ]
                self._process_pool = ProcessPoolExecutor(
                    max_workers=len(self._shards),
                    initializer=_process_worker_init,
                    initargs=(documents,),
                )
                self._process_generations = generations
            return self._process_pool

    def _ensure_worker_runtime(self) -> ShardWorkerRuntime:
        """The shard-worker runtime, started lazily; engine swaps republish
        the affected shard's snapshot instead of restarting anything."""
        with self._pool_lock:
            generations = [shard.generation for shard in self._shards]
            if self._worker_runtime is None:
                runtime = ShardWorkerRuntime()
                runtime.start([shard.engine for shard in self._shards])
                self._worker_runtime = runtime
                self._worker_generations = generations
            elif generations != self._worker_generations:
                for index, (seen, now) in enumerate(
                    zip(self._worker_generations, generations)
                ):
                    if seen != now:
                        self._worker_runtime.publish(
                            index, self._shards[index].engine
                        )
                self._worker_generations = generations
            return self._worker_runtime

    def close(self) -> None:
        """Shut down worker pools and wait for in-flight retrains."""
        self.updates.join()
        with self._pool_lock:
            if self._thread_pool is not None:
                self._thread_pool.shutdown(wait=True)
                self._thread_pool = None
            if self._process_pool is not None:
                stale, self._process_pool = self._process_pool, None
                self._process_generations = None
                self._retire_process_pool(stale)
            if self._worker_runtime is not None:
                runtime, self._worker_runtime = self._worker_runtime, None
                self._worker_generations = None
                runtime.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------------- update

    @property
    def supports_updates(self) -> bool:
        """Always True: the overlay absorbs updates for any classifier kind."""
        return True

    def insert(self, rule: Rule) -> None:
        """Insert a rule online; applied immediately to the owning shard."""
        self.updates.insert(rule)

    def remove(self, rule_id: int) -> bool:
        """Remove a rule online; returns True if it was present."""
        return self.updates.remove(rule_id)

    # ----------------------------------------------------------- introspection

    def memory_footprint(self) -> MemoryFootprint:
        footprint = MemoryFootprint()
        for shard in self._shards:
            footprint = footprint.merge(shard.engine.memory_footprint())
        return footprint

    def statistics(self) -> dict[str, object]:
        return {
            "name": "sharded",
            "num_shards": self.num_shards,
            "executor": self._executor_kind,
            "partitioner": self._partitioner,
            "warm_retrain": self._warm_retrain,
            "retrain_jobs": self._retrain_jobs,
            "num_rules": sum(self.shard_sizes()),
            "shards": [shard.statistics() for shard in self._shards],
            "updates": self.updates.statistics(),
            "engine_metadata": dict(self.metadata),
        }

    # ------------------------------------------------------------ persistence

    def save(self, path: str | Path) -> None:
        """Persist all shards — engines plus update overlays — to one file.

        The document embeds one versioned engine snapshot per shard, so a
        restored :class:`ShardedEngine` serves identically without retraining.
        Paths ending in ``.gz`` are compressed.
        """
        from repro import __version__

        shards_state = []
        for shard in self._shards:
            with shard.lock:
                shards_state.append(
                    {
                        "engine": shard.engine.to_document(),
                        "inserted": [
                            rule_to_state(rule)
                            for _seq, rule in sorted(shard.inserted.values())
                        ],
                        "removed": sorted(shard.removed),
                    }
                )
        write_engine_file(
            path,
            {
                "format": SHARDED_FILE_VERSION,
                "kind": _SHARDED_KIND,
                "repro_version": __version__,
                "partitioner": self._partitioner,
                "executor": self._executor_kind,
                "retrain_threshold": self.updates.retrain_threshold,
                "warm_retrain": self._warm_retrain,
                "retrain_jobs": self._retrain_jobs,
                "metadata": self.metadata,
                "shards": shards_state,
            },
        )

    @classmethod
    def load(
        cls,
        path: str | Path,
        executor: str | None = None,
        background_retraining: bool = True,
    ) -> "ShardedEngine":
        """Restore a sharded engine saved with :meth:`save`.

        ``executor`` overrides the persisted fan-out strategy (e.g. restore a
        thread-pool snapshot into a process pool).
        """
        document = read_document(path)
        kind = document.get("kind")
        if kind != _SHARDED_KIND:
            raise ValueError(
                f"not a sharded-engine snapshot (kind {kind!r}); "
                "single-engine files load with ClassificationEngine.load"
            )
        version = document.get("format")
        if version != SHARDED_FILE_VERSION:
            raise ValueError(
                f"unsupported sharded-engine file format {version!r} "
                f"(this build reads version {SHARDED_FILE_VERSION})"
            )
        engines = [
            ClassificationEngine.from_document(shard_state["engine"])
            for shard_state in document["shards"]
        ]
        sharded = cls(
            engines,
            partitioner=document.get("partitioner", "auto"),
            executor=executor or document.get("executor", "thread"),
            retrain_threshold=document.get(
                "retrain_threshold", DEFAULT_RETRAIN_THRESHOLD
            ),
            background_retraining=background_retraining,
            warm_retrain=document.get("warm_retrain", True),
            retrain_jobs=document.get("retrain_jobs", 1),
            metadata=document.get("metadata"),
        )
        for shard, shard_state in zip(sharded._shards, document["shards"]):
            for rule_id in shard_state.get("removed", []):
                shard.apply_remove(int(rule_id))
            for rule_state in shard_state.get("inserted", []):
                shard.apply_insert(rule_from_state(rule_state), mask_old=False)
        sharded.updates.reindex()
        return sharded

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedEngine({self.num_shards} shards, "
            f"{sum(self.shard_sizes())} rules, executor={self._executor_kind!r})"
        )
