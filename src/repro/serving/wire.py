"""Binary wire protocol v2: fixed-width classify-batch framing.

The v1 protocol (docs/PROTOCOL.md) spends most of a classify request's budget
on JSON: every packet is a JSON array, every response a JSON object, and the
server re-parses both per request.  Protocol v2 moves the *data plane* —
classify batches — to fixed-width binary frames that ``np.frombuffer`` maps
straight into the columnar block the serving engines (and the shard-worker
rings) consume.  The *control plane* (``insert``/``remove``/``stats``) and
error reporting stay on v1 JSON frames, which remain valid on an upgraded
connection.

Negotiation (backward compatible)
---------------------------------

A client that speaks v2 sends a v1 JSON request ``{"op": "hello",
"protocols": ["v2"]}`` after connecting.  A v2-capable server answers
``{"ok": true, "protocols": ["v2"]}`` and accepts binary frames on that
connection from then on; an older server rejects the unknown op with
``code: "bad-request"``, which the client treats as "JSON only" and silently
falls back.  Servers never send binary frames to clients that did not
negotiate.

Frame layout
------------

Both protocols share the 4-byte frame prefix.  v1 JSON payloads are capped at
4 MiB, so the first prefix byte of a v1 frame is always ``0x00``; a v2 binary
frame marks itself with the magic first byte ``0xB2``:

===========  ==============================================================
byte 0       ``0x00`` → v1: bytes 0–3 are a big-endian uint32 JSON length
``0xB2``     → v2: bytes 1–3 are a big-endian uint24 binary payload length
===========  ==============================================================

Binary payloads are little-endian (the columnar blocks are memory images,
and every deployment target is little-endian; the prefix stays big-endian
for v1 compatibility).  Classify-batch request (op ``0x01``)::

    u8 op | 3 reserved | u64 request_id | u32 count | u32 fields
    count × fields × u64 packet block (C order)

Classify-batch response (op ``0x81``)::

    u8 op | u8 status | 2 reserved | u64 request_id | u32 count
    count × (i64 rule_id, i64 priority)

``status`` is 0 (ok), 1 (overloaded), 2 (bad-request) or 3 (error); error
responses carry ``count == 0``.  A miss encodes as ``rule_id == -1`` with
``priority == 0``.  Binary responses carry no action strings — the data
plane's contract is ``(matched, rule_id, priority)``; actions stay a
control-plane (v1) concern.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "WIRE_V2",
    "FRAME_MAGIC",
    "MAX_JSON_FRAME",
    "MAX_BINARY_FRAME",
    "OP_CLASSIFY_BATCH",
    "OP_CLASSIFY_BATCH_RESPONSE",
    "STATUS_OK",
    "STATUS_OVERLOADED",
    "STATUS_BAD_REQUEST",
    "STATUS_ERROR",
    "STATUS_CODES",
    "WireError",
    "max_block_rows",
    "packet_block",
    "encode_classify_request",
    "decode_classify_request",
    "encode_classify_response",
    "encode_error_response",
    "decode_classify_response",
    "read_any_frame",
    "write_binary_frame",
    "write_json_frame",
]

#: Protocol token exchanged in ``hello`` negotiation.
WIRE_V2 = "v2"

#: First byte of a v2 binary frame (v1's JSON cap keeps its first byte 0x00).
FRAME_MAGIC = 0xB2

#: v1 JSON payload cap (mirrors the server's ``MAX_FRAME_BYTES``).
MAX_JSON_FRAME = 1 << 22

#: v2 binary payload cap (24-bit length field).
MAX_BINARY_FRAME = (1 << 24) - 1

OP_CLASSIFY_BATCH = 0x01
OP_CLASSIFY_BATCH_RESPONSE = 0x81

STATUS_OK = 0
STATUS_OVERLOADED = 1
STATUS_BAD_REQUEST = 2
STATUS_ERROR = 3

#: Binary status → v1 error-code string (what a JSON response would carry).
STATUS_CODES = {
    STATUS_OVERLOADED: "overloaded",
    STATUS_BAD_REQUEST: "bad-request",
    STATUS_ERROR: "error",
}

_JSON_LENGTH = struct.Struct(">I")
_REQ_HEADER = struct.Struct("<B3xQII")
_RES_HEADER = struct.Struct("<BB2xQI")

_PACKET_DTYPE = np.dtype("<u8")
_RESULT_DTYPE = np.dtype("<i8")


class WireError(ValueError):
    """A malformed v2 binary payload."""


# ---------------------------------------------------------------------------
# Payload codecs


def packet_block(packets: Sequence) -> np.ndarray:
    """Normalize packets (tuples / Packet / 2-d array) to a uint64 block."""
    if isinstance(packets, np.ndarray) and packets.ndim == 2:
        return np.ascontiguousarray(packets, dtype=_PACKET_DTYPE)
    rows = [
        packet.values if hasattr(packet, "values") else tuple(packet)
        for packet in packets
    ]
    if not rows:
        raise ValueError("classify batch must contain at least one packet")
    width = len(rows[0])
    if width == 0 or any(len(row) != width for row in rows):
        raise ValueError("all packets in a batch must have the same width")
    if any(value < 0 for row in rows for value in row):
        raise ValueError("packet field values must be non-negative")
    return np.array(rows, dtype=_PACKET_DTYPE)


def max_block_rows(fields: int) -> int:
    """Largest packet-block row count one v2 classify frame can carry.

    The 24-bit frame length bounds ``header + count * fields * 8``; clients
    chunk larger batches into several frames (response records are 16 bytes
    per row ≤ the request's ``fields * 8`` only when ``fields >= 2``, but the
    response header is smaller, so the request side is the binding cap for
    every schema with at least two fields — single-field schemas are bounded
    by the response and handled conservatively here).
    """
    if fields < 1:
        raise ValueError("packet block must have at least one field")
    request_rows = (MAX_BINARY_FRAME - _REQ_HEADER.size) // (
        fields * _PACKET_DTYPE.itemsize
    )
    response_rows = (MAX_BINARY_FRAME - _RES_HEADER.size) // (
        2 * _RESULT_DTYPE.itemsize
    )
    return min(request_rows, response_rows)


def encode_classify_request(request_id: int, block: np.ndarray) -> bytes:
    """Frame payload for a classify-batch request over ``block``."""
    block = np.ascontiguousarray(block, dtype=_PACKET_DTYPE)
    if block.ndim != 2:
        raise ValueError("packet block must be 2-dimensional")
    count, fields = block.shape
    header = _REQ_HEADER.pack(OP_CLASSIFY_BATCH, request_id, count, fields)
    return header + block.tobytes()


def decode_classify_request(payload: bytes) -> tuple[int, np.ndarray]:
    """Parse a classify-batch request payload → ``(request_id, block)``.

    The returned block is a zero-copy ``frombuffer`` view over the payload.
    """
    if len(payload) < _REQ_HEADER.size:
        raise WireError("binary request shorter than its header")
    op, request_id, count, fields = _REQ_HEADER.unpack_from(payload)
    if op != OP_CLASSIFY_BATCH:
        raise WireError(f"unknown binary request op 0x{op:02x}")
    if fields < 1:
        raise WireError("packet block must have at least one field")
    expected = _REQ_HEADER.size + count * fields * _PACKET_DTYPE.itemsize
    if len(payload) != expected:
        raise WireError(
            f"binary request length {len(payload)} != expected {expected} "
            f"for {count}x{fields} block"
        )
    block = np.frombuffer(
        payload, dtype=_PACKET_DTYPE, count=count * fields, offset=_REQ_HEADER.size
    ).reshape(count, fields)
    return request_id, block


def encode_classify_response(
    request_id: int, rule_ids: np.ndarray, priorities: np.ndarray
) -> bytes:
    """Frame payload for a successful classify-batch response."""
    if len(rule_ids) != len(priorities):
        raise ValueError("rule_ids and priorities must have equal length")
    records = np.empty((len(rule_ids), 2), dtype=_RESULT_DTYPE)
    records[:, 0] = rule_ids
    records[:, 1] = priorities
    header = _RES_HEADER.pack(
        OP_CLASSIFY_BATCH_RESPONSE, STATUS_OK, request_id, len(rule_ids)
    )
    return header + records.tobytes()


def encode_error_response(request_id: int, status: int) -> bytes:
    """Frame payload for a failed classify-batch response (no records)."""
    if status == STATUS_OK:
        raise ValueError("error responses need a non-OK status")
    return _RES_HEADER.pack(OP_CLASSIFY_BATCH_RESPONSE, status, request_id, 0)


def decode_classify_response(
    payload: bytes,
) -> tuple[int, int, np.ndarray, np.ndarray]:
    """Parse a response payload → ``(request_id, status, rule_ids, priorities)``."""
    if len(payload) < _RES_HEADER.size:
        raise WireError("binary response shorter than its header")
    op, status, request_id, count = _RES_HEADER.unpack_from(payload)
    if op != OP_CLASSIFY_BATCH_RESPONSE:
        raise WireError(f"unknown binary response op 0x{op:02x}")
    expected = _RES_HEADER.size + count * 2 * _RESULT_DTYPE.itemsize
    if len(payload) != expected:
        raise WireError(
            f"binary response length {len(payload)} != expected {expected}"
        )
    records = np.frombuffer(
        payload, dtype=_RESULT_DTYPE, count=count * 2, offset=_RES_HEADER.size
    ).reshape(count, 2)
    return request_id, status, records[:, 0], records[:, 1]


# ---------------------------------------------------------------------------
# Framing


async def read_any_frame(
    reader: asyncio.StreamReader,
) -> Optional[tuple[str, object]]:
    """Read one frame of either protocol.

    Returns ``("json", dict)`` for a v1 frame, ``("binary", bytes)`` for a v2
    frame, or ``None`` on a clean EOF.  Raises :class:`ValueError` (or
    ``json.JSONDecodeError``) on oversized or malformed frames, mirroring the
    v1-only reader.
    """
    try:
        header = await reader.readexactly(4)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    if header[0] == FRAME_MAGIC:
        length = int.from_bytes(header[1:], "big")
        try:
            payload = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        return ("binary", payload)
    (length,) = _JSON_LENGTH.unpack(header)
    if length > MAX_JSON_FRAME:
        raise ValueError(f"frame of {length} bytes exceeds {MAX_JSON_FRAME}")
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    return ("json", json.loads(payload.decode("utf-8")))


def write_binary_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    """Queue one v2 binary frame (caller drains)."""
    if len(payload) > MAX_BINARY_FRAME:
        raise ValueError(
            f"binary payload of {len(payload)} bytes exceeds {MAX_BINARY_FRAME}"
        )
    writer.write(bytes([FRAME_MAGIC]) + len(payload).to_bytes(3, "big") + payload)


def write_json_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Queue one v1 JSON frame (caller drains); shared with the v1 writer."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    writer.write(_JSON_LENGTH.pack(len(payload)) + payload)
