"""Persistent shard-worker runtime over ``multiprocessing.shared_memory``.

The ``"process"`` executor of :class:`~repro.serving.ShardedEngine` pays for
its :class:`~concurrent.futures.ProcessPoolExecutor` on every call: each
``classify_batch`` pickles the packet list per shard, and every engine swap
tears the whole pool down.  At serving rates those per-call costs dwarf the
lookups — sharding made measured throughput *worse* (the scaling inversion in
``benchmarks/results/sharded_scaling.json``).  This module replaces that
hand-off with a data plane that moves bytes, not objects:

* **Snapshot publication** — each shard's
  :class:`~repro.engine.ClassificationEngine` document is written once into a
  shared-memory segment; the long-lived worker process restores the engine
  from it at start-up.  An engine swap (background retrain) republishes the
  snapshot under a bumped *generation* counter in the shard's control block;
  the worker picks the new generation up between batches and acknowledges it,
  at which point the parent unlinks the superseded segment.
* **Columnar request rings** — packets travel as contiguous ``uint64`` blocks
  in per-shard shared-memory ring slots (sequence-numbered, fixed geometry).
  Submitting a batch is one vectorized copy per shard; no per-packet Python
  objects and no pickling cross the process boundary.
* **Columnar result rings** — workers answer with fixed-width records
  (``rule_id``, ``priority``, five :class:`~repro.classifiers.base.LookupTrace`
  counters) in a result ring; the parent merges winners by
  ``(priority, rule_id)`` exactly like the in-process executors.
* **Semaphore doorbells** — a request/result semaphore pair per shard wakes
  the other side without polling loops on the data path (the control loop —
  generation checks, shutdown — runs only between batches, keeping the data
  plane free of it).

Workers are started with the ``spawn`` context so the runtime is safe to
create from multi-threaded parents (the asyncio server's engine executor, a
background retrain thread); ``fork`` would duplicate those threads' locks.
"""

from __future__ import annotations

import atexit
import json
import os
import secrets
import threading
import time
from multiprocessing import get_context
from multiprocessing import resource_tracker as _resource_tracker
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from repro.classifiers.base import TRACE_FIELDS

__all__ = [
    "DEFAULT_SLOT_PACKETS",
    "DEFAULT_SLOTS",
    "PACKET_DTYPE",
    "TRACE_FIELDS",
    "WorkerCrashed",
    "RingGeometry",
    "ShardWorkerRuntime",
]

#: Packets per ring slot: one slot carries up to this many packets, larger
#: batches are pipelined across consecutive slots.
DEFAULT_SLOT_PACKETS = 512

#: Slots per ring; bounds how many batches may be in flight per shard.
DEFAULT_SLOTS = 4

#: Element type of the columnar packet block (covers 32-bit header fields
#: with headroom for wide synthetic schemas).
PACKET_DTYPE = np.uint64

# Control-block word indices (a small uint64 array per shard).
_CTRL_GENERATION = 0   # parent: currently published snapshot generation
_CTRL_SNAP_BYTES = 1   # parent: byte length of that snapshot document
_CTRL_ACK = 2          # worker: last generation it restored an engine from
_CTRL_SHUTDOWN = 3     # parent: non-zero asks the worker to exit
_CTRL_WORDS = 8

_META_SEQ = 0
_META_COUNT = 1
_META_STATUS = 2
_META_WORDS = 4

#: Result-ring status codes.
_STATUS_OK = 0
_STATUS_ERROR = 1


class WorkerCrashed(RuntimeError):
    """A shard worker process died (or timed out) mid-batch."""

    def __init__(self, shard: int, message: str):
        super().__init__(f"shard worker {shard}: {message}")
        self.shard = shard


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting unlink responsibility.

    On Python < 3.13 every attach is registered with the resource tracker,
    which would unlink the parent-owned segment when this process exits.
    Spawned children share the parent's tracker process, so calling
    ``unregister`` after the fact would remove the *parent's* registration
    too; instead, suppress registration for the duration of the attach.
    """
    original_register = _resource_tracker.register
    _resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        _resource_tracker.register = original_register


class RingGeometry:
    """Byte layout of one shard's request/result rings in a single segment."""

    def __init__(
        self,
        slots: int = DEFAULT_SLOTS,
        slot_packets: int = DEFAULT_SLOT_PACKETS,
        num_fields: int = 5,
    ):
        if slots < 1:
            raise ValueError("slots must be at least 1")
        if slot_packets < 1:
            raise ValueError("slot_packets must be at least 1")
        if num_fields < 1:
            raise ValueError("num_fields must be at least 1")
        self.slots = slots
        self.slot_packets = slot_packets
        self.num_fields = num_fields
        itemsize = np.dtype(np.uint64).itemsize
        self.req_meta_off = 0
        self.req_block_off = self.req_meta_off + slots * _META_WORDS * itemsize
        self.res_meta_off = (
            self.req_block_off + slots * slot_packets * num_fields * itemsize
        )
        self.res_rule_off = self.res_meta_off + slots * _META_WORDS * itemsize
        self.res_priority_off = self.res_rule_off + slots * slot_packets * itemsize
        self.res_trace_off = self.res_priority_off + slots * slot_packets * itemsize
        self.total_bytes = (
            self.res_trace_off + slots * slot_packets * len(TRACE_FIELDS) * itemsize
        )

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.slots, self.slot_packets, self.num_fields)


class _RingViews:
    """Numpy views over a ring segment's buffer, shared by both sides."""

    def __init__(self, buf, geometry: RingGeometry):
        g = geometry
        self.req_meta = np.ndarray(
            (g.slots, _META_WORDS), dtype=np.uint64, buffer=buf, offset=g.req_meta_off
        )
        self.req_block = np.ndarray(
            (g.slots, g.slot_packets, g.num_fields),
            dtype=PACKET_DTYPE,
            buffer=buf,
            offset=g.req_block_off,
        )
        self.res_meta = np.ndarray(
            (g.slots, _META_WORDS), dtype=np.uint64, buffer=buf, offset=g.res_meta_off
        )
        self.res_rule = np.ndarray(
            (g.slots, g.slot_packets),
            dtype=np.int64,
            buffer=buf,
            offset=g.res_rule_off,
        )
        self.res_priority = np.ndarray(
            (g.slots, g.slot_packets),
            dtype=np.int64,
            buffer=buf,
            offset=g.res_priority_off,
        )
        self.res_trace = np.ndarray(
            (g.slots, g.slot_packets, len(TRACE_FIELDS)),
            dtype=np.int64,
            buffer=buf,
            offset=g.res_trace_off,
        )


def _snapshot_name(prefix: str, shard: int, generation: int) -> str:
    return f"{prefix}s{shard}g{generation}"


def _worker_main(
    prefix: str,
    shard: int,
    geometry_tuple: tuple[int, int, int],
    request_sem,
    result_sem,
) -> None:
    """Shard worker entry point: restore engine, serve ring slots until told
    to shut down.  Runs in a spawned child process."""
    # Imported here (not at module top) only for clarity of what the child
    # needs; spawn re-imports this module either way.
    from repro.engine.engine import ClassificationEngine

    control = _attach(f"{prefix}c{shard}")
    ring = _attach(f"{prefix}r{shard}")
    geometry = RingGeometry(*geometry_tuple)
    views = _RingViews(ring.buf, geometry)
    ctrl = np.ndarray((_CTRL_WORDS,), dtype=np.uint64, buffer=control.buf)
    engine = None
    loaded_generation = -1
    seq = 0
    try:
        while not int(ctrl[_CTRL_SHUTDOWN]):
            generation = int(ctrl[_CTRL_GENERATION])
            if generation != loaded_generation:
                snapshot = _attach(_snapshot_name(prefix, shard, generation))
                nbytes = int(ctrl[_CTRL_SNAP_BYTES])
                document = json.loads(bytes(snapshot.buf[:nbytes]).decode("utf-8"))
                snapshot.close()
                engine = ClassificationEngine.from_document(document)
                loaded_generation = generation
                ctrl[_CTRL_ACK] = generation
                continue
            # Doorbell with a short timeout: the timeout is the *control*
            # loop (generation + shutdown checks), not the data path — a
            # posted semaphore wakes the worker immediately.
            if not request_sem.acquire(timeout=0.05):
                continue
            slot = seq % geometry.slots
            count = int(views.req_meta[slot, _META_COUNT])
            status = _STATUS_OK
            try:
                # Columnar end to end: the ring slot's block goes straight
                # into the engine's classify_block and the result arrays are
                # written in place into the result ring — no per-packet
                # objects on the worker side.  Misses come back per the
                # shared contract: rule_id == -1, priority == 0.
                block = views.req_block[slot, :count]
                trace_out = views.res_trace[slot]
                rule_ids, priorities = engine.classify_block(
                    block, traces=trace_out[:count]
                )
                views.res_rule[slot, :count] = rule_ids
                views.res_priority[slot, :count] = priorities
            except Exception:  # noqa: BLE001 - reported through the ring
                import traceback

                traceback.print_exc()
                status = _STATUS_ERROR
            views.res_meta[slot, _META_SEQ] = seq
            views.res_meta[slot, _META_COUNT] = count
            views.res_meta[slot, _META_STATUS] = status
            result_sem.release()
            seq += 1
    finally:
        # Views must be dropped before the buffers close.
        del views, ctrl
        control.close()
        ring.close()


class ShardWorkerRuntime:
    """N long-lived worker processes serving per-shard columnar rings.

    Built from one engine per shard (:meth:`start` publishes each engine's
    snapshot and spawns its worker).  :meth:`classify_block` fans a columnar
    packet block over every shard and returns per-shard result arrays;
    :meth:`publish` swaps one shard's engine after a retrain.  The runtime is
    oblivious to update overlays — it serves each shard's *built* engine,
    exactly like the process-pool executor it replaces; the parent applies
    overlays on the results.
    """

    def __init__(
        self,
        slots: int = DEFAULT_SLOTS,
        slot_packets: int = DEFAULT_SLOT_PACKETS,
    ):
        self._slots = slots
        self._slot_packets = slot_packets
        self._prefix = f"rqw{os.getpid():x}x{secrets.token_hex(3)}"
        self._lock = threading.Lock()
        self._ctx = get_context("spawn")
        self._geometry: RingGeometry | None = None
        self._controls: list[shared_memory.SharedMemory] = []
        self._rings: list[shared_memory.SharedMemory] = []
        self._snapshots: list[shared_memory.SharedMemory | None] = []
        self._ctrl_views: list[np.ndarray] = []
        self._ring_views: list[_RingViews] = []
        self._request_sems: list = []
        self._result_sems: list = []
        self._processes: list = []
        self._generations: list[int] = []
        self._seq = 0
        self._started = False
        self._closed = False
        self._atexit = None

    # ------------------------------------------------------------- lifecycle

    @property
    def num_shards(self) -> int:
        return len(self._processes)

    def start(self, engines: Sequence, timeout: float = 120.0) -> None:
        """Publish generation-0 snapshots and spawn one worker per shard.

        Blocks until every worker acknowledged its snapshot (i.e. restored
        its engine), so a classify issued right after ``start`` returns never
        races worker start-up.
        """
        if self._started:
            raise RuntimeError("runtime already started")
        if not engines:
            raise ValueError("at least one shard engine is required")
        num_fields = len(engines[0].ruleset.schema)
        self._geometry = RingGeometry(self._slots, self._slot_packets, num_fields)
        self._atexit = self.close
        atexit.register(self._atexit)
        for shard, engine in enumerate(engines):
            control = shared_memory.SharedMemory(
                name=f"{self._prefix}c{shard}", create=True,
                size=_CTRL_WORDS * 8,
            )
            ring = shared_memory.SharedMemory(
                name=f"{self._prefix}r{shard}", create=True,
                size=self._geometry.total_bytes,
            )
            ctrl = np.ndarray((_CTRL_WORDS,), dtype=np.uint64, buffer=control.buf)
            ctrl[:] = 0
            self._controls.append(control)
            self._rings.append(ring)
            self._ctrl_views.append(ctrl)
            self._ring_views.append(_RingViews(ring.buf, self._geometry))
            self._snapshots.append(None)
            self._generations.append(0)
            self._write_snapshot(shard, engine, generation=0)
            request_sem = self._ctx.Semaphore(0)
            result_sem = self._ctx.Semaphore(0)
            self._request_sems.append(request_sem)
            self._result_sems.append(result_sem)
            process = self._ctx.Process(
                target=_worker_main,
                args=(
                    self._prefix,
                    shard,
                    self._geometry.as_tuple(),
                    request_sem,
                    result_sem,
                ),
                daemon=True,
                name=f"shard-worker-{shard}",
            )
            process.start()
            self._processes.append(process)
        self._started = True
        deadline = time.monotonic() + timeout
        for shard in range(len(self._processes)):
            self._wait_ack(shard, 0, deadline)

    def _write_snapshot(self, shard: int, engine, generation: int) -> None:
        payload = json.dumps(
            engine.to_document(), separators=(",", ":")
        ).encode("utf-8")
        segment = shared_memory.SharedMemory(
            name=_snapshot_name(self._prefix, shard, generation),
            create=True,
            size=max(len(payload), 1),
        )
        segment.buf[: len(payload)] = payload
        old = self._snapshots[shard]
        self._snapshots[shard] = segment
        ctrl = self._ctrl_views[shard]
        # Size first, generation last: the worker reads the size only after it
        # observes the new generation.
        ctrl[_CTRL_SNAP_BYTES] = len(payload)
        ctrl[_CTRL_GENERATION] = generation
        self._generations[shard] = generation
        self._stale_snapshot = old

    def _wait_ack(self, shard: int, generation: int, deadline: float) -> None:
        ctrl = self._ctrl_views[shard]
        while int(ctrl[_CTRL_ACK]) != generation:
            if not self._processes[shard].is_alive():
                raise WorkerCrashed(shard, "died before acknowledging snapshot")
            if time.monotonic() > deadline:
                raise WorkerCrashed(
                    shard, f"no snapshot ack for generation {generation}"
                )
            time.sleep(0.002)

    def publish(self, shard: int, engine, timeout: float = 120.0) -> int:
        """Republish one shard's engine (after a swap); returns the generation.

        Blocks until the worker acknowledged the new snapshot, then unlinks
        the superseded segment — the worker never touches a snapshot older
        than its acknowledged generation.
        """
        with self._lock:
            self._check_open()
            generation = self._generations[shard] + 1
            self._write_snapshot(shard, engine, generation)
            stale = self._stale_snapshot
            self._stale_snapshot = None
            try:
                self._wait_ack(shard, generation, time.monotonic() + timeout)
            finally:
                if stale is not None:
                    stale.close()
                    try:
                        stale.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
            return generation

    def generations(self) -> list[int]:
        """Published snapshot generation per shard."""
        return list(self._generations)

    def _check_open(self) -> None:
        if not self._started or self._closed:
            raise RuntimeError("worker runtime is not running")

    # ------------------------------------------------------------- data plane

    def classify_block(
        self, block: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Classify a columnar packet block on every shard.

        Args:
            block: ``(n, num_fields)`` array (any integer dtype; copied into
                the rings as ``uint64``).

        Returns:
            One ``(rule_ids, priorities, traces)`` triple per shard:
            ``rule_ids`` int64 ``(n,)`` with ``-1`` for a miss, ``priorities``
            int64 ``(n,)`` with ``0`` for a miss (the one miss-encoding
            contract shared by every columnar path), ``traces`` int64
            ``(n, 5)`` in :data:`TRACE_FIELDS` order.
        """
        block = np.ascontiguousarray(np.asarray(block), dtype=PACKET_DTYPE)
        if block.ndim != 2:
            raise ValueError("packet block must be 2-dimensional")
        geometry = self._geometry
        if block.shape[1] != geometry.num_fields:
            raise ValueError(
                f"block has {block.shape[1]} fields, rings carry "
                f"{geometry.num_fields}"
            )
        n = block.shape[0]
        num_shards = len(self._processes)
        outputs = [
            (
                np.empty(n, dtype=np.int64),
                np.empty(n, dtype=np.int64),
                np.empty((n, len(TRACE_FIELDS)), dtype=np.int64),
            )
            for _ in range(num_shards)
        ]
        if n == 0:
            return outputs
        chunks = [
            (start, min(start + geometry.slot_packets, n))
            for start in range(0, n, geometry.slot_packets)
        ]
        with self._lock:
            self._check_open()
            base_seq = self._seq
            self._seq += len(chunks)
            submitted = 0
            collected = 0
            while collected < len(chunks):
                # Keep up to `slots` chunks in flight per shard, then drain in
                # order; submission is one vectorized copy per shard.
                while submitted < len(chunks) and submitted - collected < geometry.slots:
                    start, stop = chunks[submitted]
                    seq = base_seq + submitted
                    slot = seq % geometry.slots
                    for shard in range(num_shards):
                        views = self._ring_views[shard]
                        views.req_meta[slot, _META_SEQ] = seq
                        views.req_meta[slot, _META_COUNT] = stop - start
                        views.req_block[slot, : stop - start] = block[start:stop]
                        self._request_sems[shard].release()
                    submitted += 1
                start, stop = chunks[collected]
                seq = base_seq + collected
                slot = seq % geometry.slots
                for shard in range(num_shards):
                    self._acquire_result(shard)
                    views = self._ring_views[shard]
                    if int(views.res_meta[slot, _META_SEQ]) != seq:
                        raise WorkerCrashed(
                            shard,
                            f"result ring out of sequence (expected {seq}, "
                            f"got {int(views.res_meta[slot, _META_SEQ])})",
                        )
                    if int(views.res_meta[slot, _META_STATUS]) != _STATUS_OK:
                        raise WorkerCrashed(shard, "batch classification failed")
                    count = stop - start
                    rule_ids, priorities, traces = outputs[shard]
                    rule_ids[start:stop] = views.res_rule[slot, :count]
                    priorities[start:stop] = views.res_priority[slot, :count]
                    traces[start:stop] = views.res_trace[slot, :count]
                collected += 1
        return outputs

    def _acquire_result(self, shard: int, timeout: float = 120.0) -> None:
        deadline = time.monotonic() + timeout
        while not self._result_sems[shard].acquire(timeout=0.1):
            if not self._processes[shard].is_alive():
                raise WorkerCrashed(shard, "died mid-batch")
            if time.monotonic() > deadline:
                raise WorkerCrashed(shard, "timed out waiting for results")

    # --------------------------------------------------------------- shutdown

    def close(self) -> None:
        """Stop workers and release every shared-memory segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._atexit is not None:
            try:
                atexit.unregister(self._atexit)
            except Exception:  # pragma: no cover
                pass
        for shard, ctrl in enumerate(self._ctrl_views):
            ctrl[_CTRL_SHUTDOWN] = 1
        for sem in self._request_sems:
            sem.release()
        for process in self._processes:
            process.join(timeout=10.0)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5.0)
        # Views must be dropped before the buffers close.
        self._ring_views.clear()
        self._ctrl_views.clear()
        for segment in (
            self._controls
            + self._rings
            + [snap for snap in self._snapshots if snap is not None]
        ):
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self._controls.clear()
        self._rings.clear()
        self._snapshots.clear()

    def __del__(self):  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:
            pass
