"""Rule-set partitioning strategies for sharded serving.

The paper scales NuevoMatch's throughput by splitting the rule-set across
cores; :func:`partition_for_shards` reproduces that split.  Strategies
(:data:`PARTITIONERS`):

* ``"isets"`` — keep each iSet whole on one shard (via
  :func:`repro.core.isets.partition_shards`: large iSets are chunked, then
  groups are balanced LPT-style by rule count), preserving the non-overlap
  property each shard's RQ-RMIs rely on;
* ``"round-robin"`` — deal rules out cyclically, ignoring structure;
* ``"auto"`` (default) — compute the iSet partition once and use it both to
  choose the strategy and to feed the split, falling back to round-robin
  when the rule-set yields no usable iSets.

Every rule lands on exactly one shard, so a sharded engine queries all
shards and merges winners by ``(priority, rule_id)`` — exactly how
NuevoMatch's selector merges its iSets (see docs/ARCHITECTURE.md).
"""

from __future__ import annotations

from repro.core.isets import partition_isets, partition_shards
from repro.rules.rule import RuleSet

__all__ = ["PARTITIONERS", "partition_for_shards"]

#: Accepted strategy names: ``"auto"`` tries iSet-aware partitioning and falls
#: back to round-robin; the other two force one strategy.
PARTITIONERS = ("auto", "isets", "round-robin")


def _round_robin(ruleset: RuleSet, num_shards: int) -> list[list]:
    shards: list[list] = [[] for _ in range(num_shards)]
    for position, rule in enumerate(ruleset):
        shards[position % num_shards].append(rule)
    return shards


def partition_for_shards(
    ruleset: RuleSet, num_shards: int, strategy: str = "auto"
) -> list[RuleSet]:
    """Split ``ruleset`` into ``num_shards`` disjoint sub-rule-sets.

    Every rule lands in exactly one shard; a sharded engine therefore queries
    all shards and merges by priority, exactly like NuevoMatch's selector
    merges its iSets.

    Args:
        ruleset: The input rules.
        num_shards: Number of shards, ``1 <= num_shards <= len(ruleset)``.
        strategy: One of :data:`PARTITIONERS`.
    """
    if strategy not in PARTITIONERS:
        raise ValueError(
            f"unknown partitioner {strategy!r}; expected one of {PARTITIONERS}"
        )
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if num_shards > len(ruleset):
        raise ValueError(
            f"cannot split {len(ruleset)} rules into {num_shards} shards"
        )

    if strategy == "round-robin" or num_shards == 1:
        groups = (
            [list(ruleset.rules)]
            if num_shards == 1
            else _round_robin(ruleset, num_shards)
        )
    elif strategy == "isets":
        groups = partition_shards(ruleset, num_shards)
    else:  # auto
        # One iSet computation decides the strategy *and* feeds the split —
        # partition_isets is the expensive step on large rule-sets.
        partition = partition_isets(ruleset)
        if partition.isets:
            groups = partition_shards(ruleset, num_shards, partition=partition)
        else:
            groups = _round_robin(ruleset, num_shards)

    return [
        ruleset.subset(rules, name=f"{ruleset.name}-shard{index}")
        for index, rules in enumerate(groups)
    ]
