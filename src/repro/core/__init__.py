"""The paper's core contribution: RQ-RMI, iSet partitioning and NuevoMatch.

Public API:

* :class:`~repro.core.rqrmi.RQRMI` / :class:`~repro.core.rqrmi.RangeSet` —
  the learned range index (one dimension, disjoint ranges).
* :func:`~repro.core.isets.partition_isets` /
  :class:`~repro.core.isets.ISet` — independent-set partitioning.
* :class:`~repro.core.nuevomatch.NuevoMatch` — the end-to-end classifier.
* :class:`~repro.core.config.RQRMIConfig` /
  :class:`~repro.core.config.NuevoMatchConfig` — configuration (Table 4, §5.1).
* :class:`~repro.core.pipeline.TrainingPipeline` /
  :class:`~repro.core.pipeline.PipelineConfig` — the vectorized, parallel,
  warm-startable training pipeline (stacked batched Adam, process fan-out,
  submodel reuse under recomputed error bounds).
* :class:`~repro.core.updates.UpdatableNuevoMatch` and the §3.9 update model.
* :mod:`~repro.core.metrics` — diversity and centrality (§3.7).
"""

from repro.core.config import (
    NuevoMatchConfig,
    RQRMIConfig,
    TABLE4_CONFIGS,
    stage_widths_for_rules,
)
from repro.core.submodel import Submodel
from repro.core.training import TrainingDataset, sample_responsibility, train_submodel
from repro.core.rqrmi import RQRMI, RangeSet, RQRMILookup, TrainingReport
from repro.core.pipeline import (
    PipelineConfig,
    TrainingPipeline,
    train_rqrmi,
    train_submodels_stacked,
)
from repro.core.isets import (
    ISet,
    PartitionResult,
    max_independent_set,
    partition_isets,
    partition_shards,
)
from repro.core.metrics import (
    field_diversity,
    partition_quality,
    ruleset_centrality,
    ruleset_diversity,
)
from repro.core.nuevomatch import ISetIndex, LookupBreakdown, NuevoMatch
from repro.core.updates import (
    UpdatableNuevoMatch,
    expected_unmodified_rules,
    sustained_update_rate,
    throughput_over_time,
    throughput_with_updates,
)

__all__ = [
    "RQRMI",
    "RangeSet",
    "RQRMILookup",
    "TrainingReport",
    "RQRMIConfig",
    "NuevoMatchConfig",
    "TABLE4_CONFIGS",
    "stage_widths_for_rules",
    "Submodel",
    "TrainingDataset",
    "sample_responsibility",
    "train_submodel",
    "PipelineConfig",
    "TrainingPipeline",
    "train_rqrmi",
    "train_submodels_stacked",
    "ISet",
    "PartitionResult",
    "max_independent_set",
    "partition_isets",
    "partition_shards",
    "ISetIndex",
    "LookupBreakdown",
    "NuevoMatch",
    "UpdatableNuevoMatch",
    "expected_unmodified_rules",
    "throughput_with_updates",
    "throughput_over_time",
    "sustained_update_rate",
    "field_diversity",
    "ruleset_diversity",
    "ruleset_centrality",
    "partition_quality",
]
