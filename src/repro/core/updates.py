"""Rule updates (§3.9) and the update-rate / retraining analytical model.

NuevoMatch supports four update types: action changes and deletions are
in-place; matching-set changes and additions are routed to the remainder set
(which therefore grows over time), and the whole classifier is retrained
periodically.  This module implements:

* :class:`UpdatableNuevoMatch` — a thin manager around a built
  :class:`~repro.core.nuevomatch.NuevoMatch` that applies online updates and
  triggers retraining.
* The closed-form model of §3.9 — expected unmodified rules after ``u``
  uniform updates, throughput as a weighted average between NuevoMatch and the
  remainder classifier, and the throughput-over-time series of Figure 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.classifiers.base import ClassificationResult, Classifier, UpdatableClassifier
from repro.core.nuevomatch import NuevoMatch
from repro.rules.rule import Packet, Rule, RuleSet

__all__ = [
    "UpdatableNuevoMatch",
    "expected_unmodified_rules",
    "throughput_with_updates",
    "throughput_over_time",
    "sustained_update_rate",
]


class UpdatableNuevoMatch:
    """Online update manager for a NuevoMatch instance (§3.9).

    Updates that change a rule's matching set (or add a rule) move the rule to
    the remainder classifier, which must support insertion.  Deletions of
    RQ-RMI-indexed rules are masked in the value array (the paper's type-(ii)
    update).  ``retrain`` rebuilds the whole structure from the current rules.
    """

    def __init__(self, nuevomatch: NuevoMatch, retrain_threshold: float = 0.5):
        if not isinstance(nuevomatch.remainder, UpdatableClassifier):
            raise TypeError(
                "the remainder classifier must support updates (e.g. TupleMerge)"
            )
        self.nm = nuevomatch
        self.retrain_threshold = retrain_threshold
        self._deleted_ids: set[int] = set()
        self._added_rules: dict[int, Rule] = {}
        self._moved_to_remainder = 0
        self.retrain_count = 0

    # -- update operations ----------------------------------------------------

    def change_action(self, rule_id: int, action: str) -> bool:
        """Type (i): change the action of an existing rule, in place."""
        for holder in (self.nm.ruleset.rules, list(self._added_rules.values())):
            for index, rule in enumerate(holder):
                if rule.rule_id == rule_id and rule_id not in self._deleted_ids:
                    updated = Rule(rule.ranges, rule.priority, action, rule.rule_id)
                    holder[index] = updated
                    return True
        return False

    def delete(self, rule_id: int) -> bool:
        """Type (ii): delete a rule; no performance degradation."""
        if rule_id in self._added_rules:
            del self._added_rules[rule_id]
            self.nm.remainder.remove(rule_id)
            return True
        known = {rule.rule_id for rule in self.nm.ruleset.rules}
        if rule_id not in known or rule_id in self._deleted_ids:
            return False
        self._deleted_ids.add(rule_id)
        self.nm.remainder.remove(rule_id)
        return True

    def add(self, rule: Rule) -> None:
        """Type (iv): add a new rule; it goes to the remainder set."""
        self._added_rules[rule.rule_id] = rule
        self.nm.remainder.insert(rule)
        self._moved_to_remainder += 1

    def modify(self, rule: Rule) -> None:
        """Type (iii): change a rule's matching set (delete + re-add)."""
        self.delete(rule.rule_id)
        self._added_rules[rule.rule_id] = rule
        self.nm.remainder.insert(rule)
        self._moved_to_remainder += 1

    # -- lookup ------------------------------------------------------------------

    def classify(self, packet: Packet | Sequence[int]) -> Optional[Rule]:
        return self.classify_traced(packet).rule

    def classify_traced(self, packet: Packet | Sequence[int]) -> ClassificationResult:
        result = self.nm.classify_traced(packet)
        rule = result.rule
        if rule is not None and rule.rule_id in self._deleted_ids:
            # The RQ-RMI may still return a deleted rule: fall back to a scan of
            # the live rules for the correct answer (rare path; deleted rules
            # disappear for good at the next retraining).
            live = self.current_rules()
            rule = live.match(packet)
            result = ClassificationResult(rule, result.trace)
        return result

    # -- retraining ----------------------------------------------------------------

    @property
    def remainder_fraction(self) -> float:
        base_remainder = len(self.nm.partition.remainder)
        total = len(self.nm.ruleset) + len(self._added_rules) - len(self._deleted_ids)
        if total <= 0:
            return 1.0
        return (base_remainder + self._moved_to_remainder) / total

    def needs_retraining(self) -> bool:
        return self.remainder_fraction >= self.retrain_threshold

    def current_rules(self) -> RuleSet:
        """The live rule-set: original minus deletions plus additions."""
        rules = [
            rule
            for rule in self.nm.ruleset.rules
            if rule.rule_id not in self._deleted_ids and rule.rule_id not in self._added_rules
        ]
        rules.extend(self._added_rules.values())
        return RuleSet(rules, self.nm.ruleset.schema, name=self.nm.ruleset.name)

    def retrain(self, remainder_classifier=None, config=None) -> NuevoMatch:
        """Rebuild NuevoMatch from the current rules (periodic retraining)."""
        remainder_classifier = remainder_classifier or type(self.nm.remainder)
        config = config or self.nm.config
        rebuilt = NuevoMatch.build(
            self.current_rules(), remainder_classifier=remainder_classifier, config=config
        )
        self.nm = rebuilt
        self._deleted_ids.clear()
        self._added_rules.clear()
        self._moved_to_remainder = 0
        self.retrain_count += 1
        return rebuilt


# ----------------------------------------------------------------- analytic model


def expected_unmodified_rules(total_rules: int, updates: int) -> float:
    """Expected number of rules untouched after ``updates`` uniform updates.

    §3.9: each update hits a specific rule with probability ``1/r``; the
    expected number of unmodified rules after ``u`` updates is
    ``r * (1 - 1/r)**u ≈ r * exp(-u/r)``.
    """
    if total_rules <= 0:
        return 0.0
    return total_rules * math.exp(-updates / total_rules)


def throughput_with_updates(
    total_rules: int,
    updates: int,
    nuevomatch_throughput: float,
    remainder_throughput: float,
) -> float:
    """Throughput as a weighted average between NuevoMatch and the remainder.

    The fraction of rules still served by the RQ-RMIs is the expected
    unmodified fraction; updated rules are served at the remainder
    classifier's (slower) rate (§3.9).
    """
    unmodified = expected_unmodified_rules(total_rules, updates) / max(1, total_rules)
    return unmodified * nuevomatch_throughput + (1.0 - unmodified) * remainder_throughput


def throughput_over_time(
    total_rules: int,
    update_rate: float,
    retrain_period: float,
    training_time: float,
    nuevomatch_throughput: float,
    remainder_throughput: float,
    horizon: float,
    step: float = 1.0,
) -> list[tuple[float, float]]:
    """Throughput time series under a constant update rate (Figure 7).

    Retraining is started every ``retrain_period``; the refreshed model takes
    effect ``training_time`` later and clears the accumulated updates that had
    been moved to the remainder before the retraining snapshot.  A zero
    ``training_time`` yields the upper-bound curve shown in green in Figure 7.

    Returns ``(time, throughput)`` pairs sampled every ``step`` time units.
    """
    if retrain_period <= 0:
        raise ValueError("retrain_period must be positive")
    series: list[tuple[float, float]] = []
    pending_updates = 0.0          # updates accumulated since the live model was trained
    snapshot_updates = 0.0         # updates not covered by the retraining in flight
    retrain_started: float | None = None
    next_retrain = retrain_period

    steps = int(horizon / step) + 1
    for i in range(steps):
        now = i * step
        pending_updates += update_rate * step if i else 0.0
        # A retraining completes: updates accumulated before it started are absorbed.
        if retrain_started is not None and now >= retrain_started + training_time:
            pending_updates = max(0.0, pending_updates - snapshot_updates)
            retrain_started = None
        if now >= next_retrain and retrain_started is None:
            retrain_started = now
            snapshot_updates = pending_updates
            next_retrain += retrain_period
        series.append(
            (
                now,
                throughput_with_updates(
                    total_rules,
                    int(pending_updates),
                    nuevomatch_throughput,
                    remainder_throughput,
                ),
            )
        )
    return series


def sustained_update_rate(
    total_rules: int,
    training_time: float,
    nuevomatch_throughput: float,
    remainder_throughput: float,
    target_fraction: float = 0.5,
) -> float:
    """Largest update rate keeping at least ``target_fraction`` of the speedup.

    The paper estimates ~4K updates/second for 500K rules with a minute-long
    retraining, at which point about half of the update-free speedup remains
    (§3.9).  The target throughput is remainder + target_fraction × (nm −
    remainder); we solve for the update count ``u`` accumulated over one
    retraining period (≈ ``training_time``) that degrades to that level.
    """
    if nuevomatch_throughput <= remainder_throughput:
        return 0.0
    target = remainder_throughput + target_fraction * (
        nuevomatch_throughput - remainder_throughput
    )
    # unmodified fraction needed: target = f*nm + (1-f)*rem  =>  f = ...
    needed_fraction = (target - remainder_throughput) / (
        nuevomatch_throughput - remainder_throughput
    )
    if needed_fraction <= 0.0:
        return float("inf")
    updates = -total_rules * math.log(needed_fraction)
    return updates / max(training_time, 1e-9)
