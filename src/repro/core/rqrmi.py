"""Range-Query Recursive Model Index (RQ-RMI).

An RQ-RMI indexes a set of *disjoint* one-dimensional ranges: given a key it
returns the index of the range containing the key (or ``None``).  It is the
paper's core contribution (§3.3–§3.5): a small hierarchy of neural-net
submodels predicts the index; an analytically computed worst-case error bound
limits the secondary search around the prediction, and the correctness of that
bound does not require enumerating the keys inside the ranges — only the
submodels' transition inputs and the range boundaries are evaluated.

The model is trained stage by stage.  Responsibilities of stage ``i+1`` are
derived from the transition inputs of stage ``i`` (Theorem A.1); last-stage
submodels are retrained with doubled sample counts until the error bound meets
the configured threshold (Figure 5).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import RQRMIConfig
from repro.core.submodel import Submodel
from repro.core.training import sample_responsibility, train_submodel

__all__ = ["RangeSet", "RQRMI", "RQRMILookup", "TrainingReport"]

#: Intervals are (lo, hi) pairs of scaled floats.
Interval = tuple[float, float]


@dataclass
class RangeSet:
    """Disjoint, sorted ranges over an integer key domain, scaled into [0, 1].

    Attributes:
        lo: Scaled lower bounds, ascending.
        hi: Scaled upper bounds (inclusive).
        domain_size: Size of the integer key domain (e.g. ``2**32``).
    """

    lo: np.ndarray
    hi: np.ndarray
    domain_size: int

    @classmethod
    def from_integer_ranges(
        cls, ranges: list[tuple[int, int]], domain_size: int
    ) -> "RangeSet":
        """Build a RangeSet from inclusive integer ranges (must be disjoint)."""
        if not ranges:
            return cls(np.empty(0), np.empty(0), domain_size)
        ordered = sorted(ranges)
        lo = np.array([r[0] for r in ordered], dtype=np.float64) / domain_size
        hi = np.array([r[1] for r in ordered], dtype=np.float64) / domain_size
        for index in range(1, len(ordered)):
            if ordered[index][0] <= ordered[index - 1][1]:
                raise ValueError(
                    f"ranges overlap: {ordered[index - 1]} and {ordered[index]}"
                )
        return cls(lo, hi, domain_size)

    def __len__(self) -> int:
        return int(self.lo.shape[0])

    def scale_key(self, key: int) -> float:
        """Scale an integer key into the model's [0, 1] input domain."""
        return key / self.domain_size

    def locate(self, scaled_key: float) -> int | None:
        """Ground-truth range index for a scaled key (binary search)."""
        if len(self) == 0:
            return None
        position = int(np.searchsorted(self.lo, scaled_key, side="right")) - 1
        if position < 0:
            return None
        if self.lo[position] <= scaled_key <= self.hi[position]:
            return position
        return None

    def to_state(self) -> dict:
        """JSON-compatible dump (floats round-trip exactly through repr)."""
        return {
            "lo": self.lo.tolist(),
            "hi": self.hi.tolist(),
            "domain_size": self.domain_size,
        }

    @classmethod
    def from_state(cls, state: dict) -> "RangeSet":
        return cls(
            lo=np.asarray(state["lo"], dtype=np.float64),
            hi=np.asarray(state["hi"], dtype=np.float64),
            domain_size=int(state["domain_size"]),
        )


@dataclass
class RQRMILookup:
    """Result of a single RQ-RMI range query."""

    index: int | None
    predicted_index: int
    error_bound: int
    search_accesses: int
    model_accesses: int


@dataclass
class TrainingReport:
    """Statistics gathered while training one RQ-RMI model.

    The provenance fields (``trainer`` onward) record *how* the model was
    built: ``trainer`` is ``"loop"`` for the serial per-submodel path below or
    ``"stacked"`` for the vectorized :mod:`repro.core.pipeline` trainer;
    ``warm_started`` marks models seeded from a previous RQ-RMI, with
    ``submodels_reused`` / ``warm_trained`` / ``cold_fallbacks`` counting how
    each last-stage submodel was obtained (reused verbatim, refined from the
    old weights, or retrained cold after the warm bound regressed).
    """

    stage_widths: list[int] = field(default_factory=list)
    num_ranges: int = 0
    training_seconds: float = 0.0
    submodels_trained: int = 0
    retrain_attempts: int = 0
    max_error_bound: int = 0
    error_bounds: list[int] = field(default_factory=list)
    converged: bool = True
    trainer: str = "loop"
    warm_started: bool = False
    submodels_reused: int = 0
    warm_trained: int = 0
    cold_fallbacks: int = 0


class RQRMI:
    """A trained Range-Query RMI over one :class:`RangeSet`."""

    def __init__(
        self,
        stages: list[list[Submodel]],
        ranges: RangeSet,
        error_bounds: list[int],
        report: TrainingReport,
    ):
        self.stages = stages
        self.ranges = ranges
        self.error_bounds = error_bounds
        self.report = report

    # ------------------------------------------------------------------ training

    @classmethod
    def train(cls, ranges: RangeSet, config: RQRMIConfig | None = None) -> "RQRMI":
        """Train an RQ-RMI for ``ranges`` following §3.5 / Figure 5."""
        config = config or RQRMIConfig()
        start = time.perf_counter()
        num_ranges = len(ranges)
        widths = config.widths_for(max(1, num_ranges))
        if widths[0] != 1:
            raise ValueError("the first stage must have width 1")
        num_stages = len(widths)
        rng = np.random.default_rng(config.seed)
        report = TrainingReport(stage_widths=list(widths), num_ranges=num_ranges)

        stages: list[list[Submodel]] = []
        responsibilities: list[list[list[Interval]]] = [[[(0.0, 1.0)]]]
        for stage_index in range(1, num_stages):
            responsibilities.append([[] for _ in range(widths[stage_index])])

        error_bounds = [0] * widths[-1]

        for stage_index in range(num_stages):
            stage_models: list[Submodel] = []
            is_last = stage_index == num_stages - 1
            for slot in range(widths[stage_index]):
                intervals = responsibilities[stage_index][slot]
                if not intervals:
                    stage_models.append(Submodel.identity(config.hidden_units))
                    continue
                samples = config.initial_samples
                submodel: Submodel | None = None
                for attempt in range(config.max_retrain_attempts + 1):
                    dataset = sample_responsibility(
                        intervals,
                        ranges.lo,
                        ranges.hi,
                        samples,
                        max(1, num_ranges),
                        rng,
                    )
                    submodel = train_submodel(
                        dataset,
                        hidden_units=config.hidden_units,
                        epochs=config.adam_epochs,
                        learning_rate=config.learning_rate,
                        seed=config.seed + stage_index * 1009 + slot,
                    )
                    report.submodels_trained += 1
                    if not is_last:
                        break
                    bound = cls._error_bound_for(
                        stages, submodel, intervals, ranges, widths
                    )
                    if bound <= config.error_threshold:
                        error_bounds[slot] = bound
                        break
                    report.retrain_attempts += 1
                    samples *= 2
                    error_bounds[slot] = bound
                assert submodel is not None
                stage_models.append(submodel)
            stages.append(stage_models)

            if not is_last:
                cls._assign_responsibilities(
                    stages, responsibilities, widths, stage_index
                )

        report.training_seconds = time.perf_counter() - start
        report.error_bounds = list(error_bounds)
        report.max_error_bound = max(error_bounds) if error_bounds else 0
        report.converged = report.max_error_bound <= config.error_threshold
        return cls(stages, ranges, error_bounds, report)

    # ----------------------------------------------------------- responsibility

    @staticmethod
    def _route_partial(
        stages: list[list[Submodel]], widths: list[int], x: float
    ) -> tuple[int, float]:
        """Traverse the trained stages; return (next submodel slot, last output).

        Uses the stages trained so far: after stage ``i`` the returned slot is
        the stage ``i+1`` submodel index ``floor(M(x) * widths[i+1])``.
        """
        slot = 0
        output = 0.0
        for stage_index, stage in enumerate(stages):
            submodel = stage[slot]
            output = submodel(x)
            next_width = (
                widths[stage_index + 1] if stage_index + 1 < len(widths) else None
            )
            if next_width is not None:
                slot = min(int(output * next_width), next_width - 1)
        return slot, output

    @classmethod
    def _assign_responsibilities(
        cls,
        stages: list[list[Submodel]],
        responsibilities: list[list[list[Interval]]],
        widths: list[int],
        stage_index: int,
    ) -> None:
        """Compute stage ``stage_index + 1`` responsibilities (Theorem A.1)."""
        next_width = widths[stage_index + 1]
        transition_set: set[float] = {0.0, 1.0}
        for slot, submodel in enumerate(stages[stage_index]):
            intervals = responsibilities[stage_index][slot]
            if not intervals:
                continue
            transitions = submodel.transition_inputs(next_width)
            for a, b in intervals:
                transition_set.add(a)
                transition_set.add(b)
                for t in transitions:
                    if a <= t <= b:
                        transition_set.add(t)
        ordered = sorted(transition_set)
        buckets: list[list[Interval]] = [[] for _ in range(next_width)]
        for a, b in zip(ordered[:-1], ordered[1:]):
            if b <= a:
                continue
            midpoint = (a + b) / 2.0
            slot, _ = cls._route_partial(stages, widths, midpoint)
            bucket = buckets[slot]
            if bucket and bucket[-1][1] >= a:
                bucket[-1] = (bucket[-1][0], b)
            else:
                bucket.append((a, b))
        for slot in range(next_width):
            responsibilities[stage_index + 1][slot] = buckets[slot]

    # ----------------------------------------------------------------- error bound

    @classmethod
    def _error_bound_for(
        cls,
        trained_stages: list[list[Submodel]],
        candidate: Submodel,
        intervals: list[Interval],
        ranges: RangeSet,
        widths: list[int],
    ) -> int:
        """Worst-case |predicted - true| index error over the responsibility.

        Evaluates the *full* inference function (previous stages + the
        candidate submodel) at the analytically sufficient points: range
        boundaries clipped to the responsibility and the candidate's
        transition inputs (snapped to the adjacent integer keys to absorb
        floating-point jitter), per Theorem A.13.
        """
        num_ranges = len(ranges)
        if num_ranges == 0:
            return 0
        domain = ranges.domain_size
        pad = 1.0 / domain
        transitions = np.array(candidate.transition_inputs(num_ranges), dtype=np.float64)
        points_parts: list[np.ndarray] = []
        index_parts: list[np.ndarray] = []
        for a, b in intervals:
            a_pad, b_pad = a - pad, b + pad
            first = int(np.searchsorted(ranges.hi, a_pad, side="left"))
            last = int(np.searchsorted(ranges.lo, b_pad, side="right"))
            if first >= last:
                continue
            # Boundary evaluation points: every intersecting range's bounds,
            # clipped to the padded responsibility.
            lo_clip = np.maximum(ranges.lo[first:last], a_pad)
            hi_clip = np.minimum(ranges.hi[first:last], b_pad)
            valid = lo_clip <= hi_clip
            idx = np.arange(first, last, dtype=np.int64)[valid]
            points_parts += [lo_clip[valid], hi_clip[valid]]
            index_parts += [idx, idx]
            if len(transitions):
                mask = (transitions >= a_pad) & (transitions <= b_pad)
                ts = transitions[mask]
                if len(ts):
                    # Ranges are disjoint and sorted, so each transition
                    # belongs to at most the range searchsorted lands it in.
                    pos = np.searchsorted(ranges.lo, ts, side="right") - 1
                    safe = np.clip(pos, 0, num_ranges - 1)
                    inside = (pos >= first) & (pos < last) & (ts <= ranges.hi[safe])
                    ts, pos = ts[inside], pos[inside]
                if len(ts):
                    t_lo = np.maximum(ranges.lo[pos], a_pad)
                    t_hi = np.minimum(ranges.hi[pos], b_pad)
                    keys = np.floor(ts * domain)
                    for snapped in (keys / domain, (keys + 1.0) / domain):
                        good = (snapped >= t_lo) & (snapped <= t_hi)
                        points_parts.append(snapped[good])
                        index_parts.append(pos[good])
                    points_parts.append(ts)
                    index_parts.append(pos)
        if not points_parts:
            return 0
        points = np.concatenate(points_parts)
        if not len(points):
            return 0
        true_indices = np.concatenate(index_parts)
        predicted = cls._predict_index_static(
            trained_stages, candidate, widths, points, num_ranges
        )
        return int(np.max(np.abs(predicted - true_indices)))

    @staticmethod
    def _predict_index_static(
        trained_stages: list[list[Submodel]],
        candidate: Submodel,
        widths: list[int],
        xs: np.ndarray,
        num_ranges: int,
    ) -> np.ndarray:
        """Predicted indices for ``xs`` using trained stages + a candidate leaf."""
        slots = np.zeros(len(xs), dtype=np.int64)
        outputs = np.zeros(len(xs), dtype=np.float64)
        for stage_index, stage in enumerate(trained_stages):
            next_width = widths[stage_index + 1]
            new_outputs = np.zeros_like(outputs)
            for slot in np.unique(slots):
                mask = slots == slot
                new_outputs[mask] = stage[slot].predict_batch(xs[mask])
            outputs = new_outputs
            slots = np.minimum((outputs * next_width).astype(np.int64), next_width - 1)
        # The candidate leaf handles every point (they lie in its responsibility).
        leaf_outputs = candidate.predict_batch(xs)
        predicted = np.minimum(
            (leaf_outputs * num_ranges).astype(np.int64), num_ranges - 1
        )
        return predicted

    # ----------------------------------------------------------------------- lookup

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def stage_widths(self) -> list[int]:
        return [len(stage) for stage in self.stages]

    @property
    def max_error(self) -> int:
        return max(self.error_bounds) if self.error_bounds else 0

    def _route(self, x: float) -> tuple[int, float]:
        """Full traversal: returns (leaf slot, leaf output)."""
        slot = 0
        output = 0.0
        widths = self.stage_widths
        for stage_index, stage in enumerate(self.stages):
            submodel = stage[slot]
            output = submodel(x)
            if stage_index + 1 < len(widths):
                next_width = widths[stage_index + 1]
                slot = min(int(output * next_width), next_width - 1)
        return slot, output

    def predict(self, key: int) -> tuple[int, int]:
        """Predicted range index and the applicable error bound for ``key``."""
        x = self.ranges.scale_key(key)
        slot, output = self._route(x)
        num_ranges = max(1, len(self.ranges))
        predicted = min(int(output * num_ranges), num_ranges - 1)
        return predicted, self.error_bounds[slot] if self.error_bounds else 0

    def query(self, key: int) -> RQRMILookup:
        """Range query: find the range containing ``key`` (§3.8 lookup).

        Performs inference, then a bounded binary search within
        ``[predicted - error, predicted + error]`` over the sorted ranges.
        """
        num_ranges = len(self.ranges)
        if num_ranges == 0:
            return RQRMILookup(None, 0, 0, 0, len(self.stages))
        x = self.ranges.scale_key(key)
        slot, output = self._route(x)
        predicted = min(int(output * num_ranges), num_ranges - 1)
        bound = self.error_bounds[slot] if self.error_bounds else 0
        lo = max(0, predicted - bound)
        hi = min(num_ranges - 1, predicted + bound)
        window = hi - lo + 1
        search_accesses = max(1, int(math.ceil(math.log2(window + 1))))
        # Binary search for the candidate range within the window.
        position = int(np.searchsorted(self.ranges.lo[lo : hi + 1], x, side="right")) - 1
        index: int | None = None
        if position >= 0:
            candidate = lo + position
            if self.ranges.lo[candidate] <= x <= self.ranges.hi[candidate]:
                index = candidate
        return RQRMILookup(
            index=index,
            predicted_index=predicted,
            error_bound=bound,
            search_accesses=search_accesses,
            model_accesses=len(self.stages),
        )

    def _route_batch(self, xs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized stage traversal: (leaf slots, leaf outputs) for ``xs``."""
        slots = np.zeros(len(xs), dtype=np.int64)
        outputs = np.zeros(len(xs), dtype=np.float64)
        widths = self.stage_widths
        for stage_index, stage in enumerate(self.stages):
            new_outputs = np.zeros_like(outputs)
            for slot in np.unique(slots):
                mask = slots == slot
                new_outputs[mask] = stage[slot].predict_batch(xs[mask])
            outputs = new_outputs
            if stage_index + 1 < len(widths):
                next_width = widths[stage_index + 1]
                slots = np.minimum(
                    (outputs * next_width).astype(np.int64), next_width - 1
                )
        return slots, outputs

    def query_batch_detailed(
        self, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized equivalent of per-key :meth:`query` over many keys.

        The inference (the dominant cost, Table 1) runs batched across all
        keys; the bounded secondary search is evaluated with the same windowed
        semantics as the scalar path, so the returned indices are exactly what
        per-key ``query`` calls would produce.

        Returns:
            ``(indices, predicted, bounds)`` arrays — the matched range index
            (-1 where no range contains the key), the predicted index, and the
            applicable per-leaf error bound.
        """
        num_keys = len(keys)
        num_ranges = len(self.ranges)
        if num_ranges == 0 or num_keys == 0:
            empty = np.full(num_keys, -1, dtype=np.int64)
            zeros = np.zeros(num_keys, dtype=np.int64)
            return empty, zeros.copy(), zeros
        xs = np.asarray(keys, dtype=np.float64) / self.ranges.domain_size
        slots, outputs = self._route_batch(xs)
        predicted = np.minimum(
            (outputs * num_ranges).astype(np.int64), num_ranges - 1
        )
        if self.error_bounds:
            bounds = np.asarray(self.error_bounds, dtype=np.int64)[slots]
        else:
            bounds = np.zeros(num_keys, dtype=np.int64)
        window_lo = np.maximum(predicted - bounds, 0)
        window_hi = np.minimum(predicted + bounds, num_ranges - 1)
        # Windowed binary search, vectorized: the position the scalar path's
        # searchsorted over ranges.lo[window] finds equals the global position
        # clipped to the window top, valid only when it reaches the window.
        positions = np.searchsorted(self.ranges.lo, xs, side="right") - 1
        candidates = np.minimum(positions, window_hi)
        in_window = positions >= window_lo
        safe = np.clip(candidates, 0, num_ranges - 1)
        inside = (self.ranges.lo[safe] <= xs) & (xs <= self.ranges.hi[safe])
        indices = np.where(in_window & inside, candidates, -1).astype(np.int64)
        return indices, predicted, bounds

    def query_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised range queries; returns -1 where no range matches."""
        return self.query_batch_detailed(keys)[0]

    # --------------------------------------------------------------------- sizing

    def size_bytes(self, float_bytes: int = 4) -> int:
        """Model storage: submodel weights plus per-leaf error bounds (§5.2.1)."""
        total = sum(
            submodel.size_bytes(float_bytes)
            for stage in self.stages
            for submodel in stage
        )
        total += len(self.error_bounds) * 4
        return total

    def statistics(self) -> dict[str, object]:
        return {
            "num_ranges": len(self.ranges),
            "stage_widths": self.stage_widths,
            "max_error": self.max_error,
            "size_bytes": self.size_bytes(),
            "training_seconds": self.report.training_seconds,
            "submodels_trained": self.report.submodels_trained,
            "retrain_attempts": self.report.retrain_attempts,
            "converged": self.report.converged,
        }

    # ------------------------------------------------------------- persistence

    def to_state(self) -> dict:
        """Full trained state: submodel weights, ranges, bounds, report.

        Restoring with :meth:`from_state` skips training entirely, which is
        the point of engine persistence — the Figure-15 training cost is paid
        once per rule-set.
        """
        from dataclasses import asdict

        return {
            "stages": [
                [submodel.to_dict() for submodel in stage] for stage in self.stages
            ],
            "ranges": self.ranges.to_state(),
            "error_bounds": list(self.error_bounds),
            "report": asdict(self.report),
        }

    @classmethod
    def from_state(cls, state: dict) -> "RQRMI":
        stages = [
            [Submodel.from_dict(data) for data in stage] for stage in state["stages"]
        ]
        report = TrainingReport(**state["report"])
        return cls(
            stages=stages,
            ranges=RangeSet.from_state(state["ranges"]),
            error_bounds=[int(b) for b in state["error_bounds"]],
            report=report,
        )
