"""NuevoMatch: the end-to-end classifier (§3.8, Figure 1).

Construction:

1. Partition the rule-set into iSets and a remainder (§3.6).
2. Train one RQ-RMI per kept iSet.
3. Build an external classifier (CutSplit / NeuroCuts / TupleMerge / …) over
   the remainder.

Lookup:

1. Query every iSet: RQ-RMI inference → bounded secondary search → multi-field
   validation of the candidate rule.
2. Query the remainder classifier — with the *early termination* optimisation
   the remainder search is given the best priority found by the iSets as a
   floor and can stop early (§4).
3. The selector returns the highest-priority match.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Type

import numpy as np

from repro.classifiers.base import (
    STATE_FORMAT_VERSION,
    ClassificationResult,
    Classifier,
    LookupTrace,
    MemoryFootprint,
    RULE_ENTRY_BYTES,
    check_state_header,
)
from repro.classifiers.registry import register, resolve_classifier
from repro.core.config import NuevoMatchConfig, RQRMIConfig
from repro.core.isets import ISet, PartitionResult, partition_isets
from repro.core.rqrmi import RQRMI, RangeSet
from repro.rules.rule import Packet, Rule, RuleSet

__all__ = ["ISetIndex", "NuevoMatch", "LookupBreakdown"]


@dataclass
class LookupBreakdown:
    """Per-component cost of one NuevoMatch lookup (Figure 14's breakdown)."""

    inference_ops: int = 0
    search_accesses: int = 0
    validation_accesses: int = 0
    remainder_accesses: int = 0

    def merge(self, other: "LookupBreakdown") -> "LookupBreakdown":
        return LookupBreakdown(
            self.inference_ops + other.inference_ops,
            self.search_accesses + other.search_accesses,
            self.validation_accesses + other.validation_accesses,
            self.remainder_accesses + other.remainder_accesses,
        )


class ISetIndex:
    """One iSet together with its trained RQ-RMI index.

    The iSet's rules, sorted by their range in the iSet's field, form the
    value array; the RQ-RMI predicts positions in that array.
    """

    def __init__(self, iset: ISet, model: RQRMI):
        self.iset = iset
        self.dim = iset.dim
        self.rules = iset.rules  # already sorted by range lower bound
        self.model = model
        priorities = [rule.priority for rule in self.rules]
        self.best_priority = min(priorities) if priorities else None
        # Packed (lo, hi, priority, rule_id) arrays for the columnar block
        # path, built on first use (iSet rules are immutable after training).
        self._packed_rules: tuple[np.ndarray, ...] | None = None

    @classmethod
    def train(cls, iset: ISet, schema, rqrmi_config: RQRMIConfig) -> "ISetIndex":
        """Train an RQ-RMI over the iSet's ranges in its field."""
        domain_size = schema[iset.dim].domain_size
        range_set = RangeSet.from_integer_ranges(iset.ranges(), domain_size)
        return cls(iset, RQRMI.train(range_set, rqrmi_config))

    def __len__(self) -> int:
        return len(self.rules)

    @property
    def coverage(self) -> float:
        return self.iset.coverage

    def lookup(
        self, values: Sequence[int], trace: LookupTrace, breakdown: LookupBreakdown
    ) -> Optional[Rule]:
        """Query the RQ-RMI and validate the candidate rule across all fields."""
        result = self.model.query(values[self.dim])
        trace.model_accesses += result.model_accesses
        # One vectorised inference per stage (8-neuron hidden layer).
        inference_ops = result.model_accesses * self.model.stages[0][0].hidden_units
        trace.compute_ops += inference_ops
        breakdown.inference_ops += inference_ops
        # Secondary search over the packed value array (§4: multiple 4-byte
        # field values per cache line, 16 per 64-byte line), binary search over
        # the error window: the search touches index (not rule) storage.
        window = 2 * result.error_bound + 1
        search_lines = max(1, math.ceil(math.log2(window / 16 + 1)))
        trace.index_accesses += search_lines
        breakdown.search_accesses += search_lines
        if result.index is None:
            return None
        candidate = self.rules[result.index]
        trace.rule_accesses += 1
        trace.compute_ops += len(values)
        breakdown.validation_accesses += 1
        if candidate.matches(values):
            return candidate
        return None

    def lookup_batch(
        self,
        values: np.ndarray,
        traces: list[LookupTrace],
        breakdowns: list[LookupBreakdown],
    ) -> list[Optional[Rule]]:
        """Batched iSet lookup over a ``(packets, fields)`` value matrix.

        The RQ-RMI inference runs vectorized across all packets (the paper's
        Table-1 vectorization); candidate validation and trace accounting stay
        per packet and mirror :meth:`lookup` exactly.
        """
        keys = values[:, self.dim]
        indices, _predicted, bounds = self.model.query_batch_detailed(keys)
        model_accesses = len(self.model.stages)
        inference_ops = model_accesses * self.model.stages[0][0].hidden_units
        num_fields = values.shape[1]
        candidates: list[Optional[Rule]] = []
        for row in range(values.shape[0]):
            trace = traces[row]
            breakdown = breakdowns[row]
            trace.model_accesses += model_accesses
            trace.compute_ops += inference_ops
            breakdown.inference_ops += inference_ops
            window = 2 * int(bounds[row]) + 1
            search_lines = max(1, math.ceil(math.log2(window / 16 + 1)))
            trace.index_accesses += search_lines
            breakdown.search_accesses += search_lines
            if indices[row] < 0:
                candidates.append(None)
                continue
            candidate = self.rules[int(indices[row])]
            trace.rule_accesses += 1
            trace.compute_ops += num_fields
            breakdown.validation_accesses += 1
            candidates.append(candidate if candidate.matches(values[row]) else None)
        return candidates

    def _rule_arrays(self) -> tuple[np.ndarray, ...]:
        if self._packed_rules is None:
            ranges = np.array([rule.ranges for rule in self.rules], dtype=np.int64)
            self._packed_rules = (
                ranges[:, :, 0],
                ranges[:, :, 1],
                np.array([rule.priority for rule in self.rules], dtype=np.int64),
                np.array([rule.rule_id for rule in self.rules], dtype=np.int64),
            )
        return self._packed_rules

    def lookup_block(
        self,
        values: np.ndarray,
        rule_ids: np.ndarray,
        best_priorities: np.ndarray,
        traces: Optional[np.ndarray] = None,
    ) -> None:
        """Columnar iSet lookup: update per-row winners in place.

        The allocation-free counterpart of :meth:`lookup_batch`: inference and
        candidate validation run vectorized, winners (strictly better
        priority) are written into ``rule_ids``/``best_priorities``, and
        ``traces`` rows — ``(n, 5)`` int64, :data:`~repro.classifiers.base.
        TRACE_FIELDS` order — accumulate exactly the counters the per-packet
        path records.
        """
        keys = values[:, self.dim]
        indices, _predicted, bounds = self.model.query_batch_detailed(keys)
        if traces is not None:
            model_accesses = len(self.model.stages)
            inference_ops = model_accesses * self.model.stages[0][0].hidden_units
            window = 2 * bounds.astype(np.int64) + 1
            search_lines = np.maximum(
                1, np.ceil(np.log2(window / 16 + 1)).astype(np.int64)
            )
            traces[:, 0] += search_lines
            traces[:, 2] += model_accesses
            traces[:, 3] += inference_ops
        rows = np.flatnonzero(indices >= 0)
        if rows.size == 0:
            return
        lo, hi, priorities, ids = self._rule_arrays()
        candidates = indices[rows].astype(np.int64)
        if traces is not None:
            traces[rows, 1] += 1
            traces[rows, 3] += values.shape[1]
        sub = values[rows]
        matched = np.all(
            (sub >= lo[candidates]) & (sub <= hi[candidates]), axis=1
        )
        matched_rows = rows[matched]
        matched_candidates = candidates[matched]
        candidate_priorities = priorities[matched_candidates]
        better = candidate_priorities < best_priorities[matched_rows]
        updated = matched_rows[better]
        best_priorities[updated] = candidate_priorities[better]
        rule_ids[updated] = ids[matched_candidates[better]]

    def value_array_bytes(self) -> int:
        """Size of the packed per-field value array used by the secondary search."""
        return 4 * len(self.rules)

    def size_bytes(self) -> int:
        return self.model.size_bytes()

    def statistics(self) -> dict[str, object]:
        stats = self.model.statistics()
        stats.update(dim=self.dim, num_rules=len(self.rules), coverage=self.coverage)
        return stats

    def to_state(self) -> dict:
        """Trained iSet state: field, ordered member rules, model weights."""
        return {
            "dim": self.dim,
            "rule_ids": [rule.rule_id for rule in self.rules],
            "model": self.model.to_state(),
        }

    @classmethod
    def from_state(
        cls, state: dict, rules_by_id: dict[int, Rule], total_rules: int
    ) -> "ISetIndex":
        iset = ISet(
            dim=int(state["dim"]),
            rules=[rules_by_id[int(rule_id)] for rule_id in state["rule_ids"]],
            total_rules=total_rules,
        )
        return cls(iset, RQRMI.from_state(state["model"]))


@register("nm", aliases=("nuevomatch",))
class NuevoMatch(Classifier):
    """The NuevoMatch classifier: RQ-RMI-indexed iSets plus a remainder."""

    name = "nm"

    #: NuevoMatch builds accept the ``pipeline`` / ``warm_from`` keywords
    #: (checked by :meth:`repro.engine.ClassificationEngine.build`).
    supports_training_pipeline = True

    def __init__(
        self,
        ruleset: RuleSet,
        isets: list[ISetIndex],
        remainder: Classifier,
        partition: PartitionResult,
        config: NuevoMatchConfig,
        build_seconds: float,
    ):
        super().__init__(ruleset)
        self.isets = isets
        self.remainder = remainder
        self.partition = partition
        self.config = config
        self.build_seconds = build_seconds
        #: How this instance was trained: pipeline mode, job count, warm-start
        #: reuse counters.  JSON-safe; persisted by :meth:`to_state` and
        #: surfaced by :meth:`statistics`.
        self.training_provenance: dict[str, object] = {"mode": "serial"}

    # ------------------------------------------------------------------ build

    @staticmethod
    def _match_warm_isets(isets, warm_from: "NuevoMatch | None") -> list:
        """Pair each new iSet with a previous trained RQ-RMI to seed from.

        iSets are matched by field (``dim``) in order: the k-th new iSet on a
        field warms from the k-th old iSet on that field.  Unmatched iSets
        train cold; structural incompatibilities (stage widths, key domain)
        are detected downstream and also fall back to cold.
        """
        if warm_from is None:
            return [None] * len(isets)
        pool: dict[int, list[RQRMI]] = {}
        for old in warm_from.isets:
            pool.setdefault(old.dim, []).append(old.model)
        matched = []
        for iset in isets:
            candidates = pool.get(iset.dim)
            matched.append(candidates.pop(0) if candidates else None)
        return matched

    @classmethod
    def build(
        cls,
        ruleset: RuleSet,
        remainder_classifier: Type[Classifier] | str = "tm",
        config: NuevoMatchConfig | None = None,
        pipeline: "TrainingPipeline | None" = None,
        warm_from: "NuevoMatch | None" = None,
        **remainder_params,
    ) -> "NuevoMatch":
        """Construct NuevoMatch over ``ruleset``.

        Args:
            ruleset: Input rules.
            remainder_classifier: Classifier class, or any name/alias accepted
                by :func:`repro.classifiers.resolve_classifier` (``"tm"``,
                ``"cutsplit"``, …), indexing the remainder set.  The paper
                pairs NuevoMatch with the same algorithm it is compared
                against.
            config: NuevoMatch configuration; defaults follow the paper
                (error threshold 64, iSet coverage cut-off 25%).
            pipeline: A :class:`~repro.core.pipeline.TrainingPipeline` — iSet
                models train through the vectorized stacked trainer, fanned
                across ``pipeline.jobs`` processes.  ``None`` (with no
                ``warm_from``) keeps the serial per-submodel trainer.
            warm_from: A previously built NuevoMatch over an earlier version
                of the rules; matching iSets seed their RQ-RMI training from
                the old weights and submodels whose responsibility content is
                unchanged are reused outright (error bounds are recomputed or
                carried over analytically either way).  Implies the pipeline
                trainer.
            **remainder_params: Extra arguments passed to the remainder
                classifier's ``build`` (e.g. ``binth``).
        """
        config = config or NuevoMatchConfig()
        if isinstance(remainder_classifier, str):
            remainder_cls = resolve_classifier(remainder_classifier)
        else:
            remainder_cls = remainder_classifier
        if remainder_cls is cls:
            raise ValueError("NuevoMatch cannot index its own remainder set")

        start = time.perf_counter()
        partition = partition_isets(
            ruleset,
            max_isets=config.max_isets,
            min_coverage=config.min_iset_coverage,
        )
        if pipeline is None and warm_from is None:
            isets = [
                ISetIndex.train(iset, ruleset.schema, config.rqrmi)
                for iset in partition.isets
            ]
            provenance: dict[str, object] = {"mode": "serial"}
        else:
            from repro.core.pipeline import TrainingPipeline

            pipeline = pipeline or TrainingPipeline()
            warm_models = cls._match_warm_isets(partition.isets, warm_from)
            specs = [
                (
                    RangeSet.from_integer_ranges(
                        iset.ranges(), ruleset.schema[iset.dim].domain_size
                    ),
                    config.rqrmi,
                    warm_model,
                )
                for iset, warm_model in zip(partition.isets, warm_models)
            ]
            models = pipeline.train_many(specs)
            isets = [
                ISetIndex(iset, model)
                for iset, model in zip(partition.isets, models)
            ]
            provenance = {"mode": "pipeline", **pipeline.describe()}
            provenance.update(
                warm_started=any(m.report.warm_started for m in models),
                submodels_trained=sum(m.report.submodels_trained for m in models),
                submodels_reused=sum(m.report.submodels_reused for m in models),
                warm_trained=sum(m.report.warm_trained for m in models),
                cold_fallbacks=sum(m.report.cold_fallbacks for m in models),
            )
        params = dict(config.remainder_params)
        params.update(remainder_params)
        remainder_rules = ruleset.subset(partition.remainder, name=f"{ruleset.name}-remainder")
        remainder = remainder_cls.build(remainder_rules, **params)
        build_seconds = time.perf_counter() - start
        instance = cls(ruleset, isets, remainder, partition, config, build_seconds)
        provenance["training_seconds"] = sum(
            index.model.report.training_seconds for index in isets
        )
        instance.training_provenance = provenance
        return instance

    # ------------------------------------------------------------------ lookup

    def classify_traced(self, packet: Packet | Sequence[int]) -> ClassificationResult:
        result, _breakdown = self.classify_detailed(packet)
        return result

    def classify_detailed(
        self, packet: Packet | Sequence[int]
    ) -> tuple[ClassificationResult, LookupBreakdown]:
        """Traced lookup that also reports the per-component breakdown."""
        values = packet.values if isinstance(packet, Packet) else tuple(packet)
        trace = LookupTrace()
        breakdown = LookupBreakdown()
        best: Rule | None = None
        for iset in self.isets:
            candidate = iset.lookup(values, trace, breakdown)
            if candidate is not None and (best is None or candidate.priority < best.priority):
                best = candidate

        floor = best.priority if (best is not None and self.config.early_termination) else None
        remainder_result = self.remainder.classify_with_floor(values, floor)
        trace = trace.merge(remainder_result.trace)
        breakdown.remainder_accesses += (
            remainder_result.trace.index_accesses + remainder_result.trace.rule_accesses
        )
        if remainder_result.rule is not None and (
            best is None or remainder_result.rule.priority < best.priority
        ):
            best = remainder_result.rule
        return ClassificationResult(best, trace), breakdown

    def classify_batch(
        self, packets: Sequence[Packet | Sequence[int]]
    ) -> list[ClassificationResult]:
        """Batched lookup: vectorized RQ-RMI inference across all packets.

        The per-iSet neural inference — the dominant per-packet cost the paper
        vectorizes in Table 1 — runs as one numpy batch per iSet; candidate
        validation and the remainder query (with the same early-termination
        floor as the sequential path) remain per packet, so the returned
        matches are identical to per-packet :meth:`classify`.
        """
        packet_list = list(packets)
        if not packet_list:
            return []
        values = np.array([tuple(packet) for packet in packet_list], dtype=np.int64)
        traces = [LookupTrace() for _ in packet_list]
        breakdowns = [LookupBreakdown() for _ in packet_list]
        best: list[Rule | None] = [None] * len(packet_list)
        for iset in self.isets:
            candidates = iset.lookup_batch(values, traces, breakdowns)
            for row, candidate in enumerate(candidates):
                if candidate is not None and (
                    best[row] is None or candidate.priority < best[row].priority
                ):
                    best[row] = candidate

        results: list[ClassificationResult] = []
        for row in range(len(packet_list)):
            winner = best[row]
            floor = (
                winner.priority
                if (winner is not None and self.config.early_termination)
                else None
            )
            packet_values = tuple(int(v) for v in values[row])
            remainder_result = self.remainder.classify_with_floor(packet_values, floor)
            trace = traces[row].merge(remainder_result.trace)
            if remainder_result.rule is not None and (
                winner is None or remainder_result.rule.priority < winner.priority
            ):
                winner = remainder_result.rule
            results.append(ClassificationResult(winner, trace))
        return results

    @property
    def supports_block(self) -> bool:  # type: ignore[override]
        """Columnar lookups need a remainder with a floored block path."""
        return hasattr(self.remainder, "classify_block_with_floors")

    def classify_block(
        self,
        block: np.ndarray,
        traces: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Columnar lookup: vectorized iSet queries, floored remainder scan.

        Bit-identical to :meth:`classify_batch` (matches and traces) but
        allocation-free: iSet inference, candidate validation and winner
        selection run as array operations, and the remainder is queried
        through its ``classify_block_with_floors`` hook with the iSet winners
        as per-row early-termination floors (§4).  Falls back to the generic
        object-path wrapper when the remainder classifier lacks the hook.
        """
        if not self.supports_block:
            return super().classify_block(block, traces=traces)
        from repro.classifiers.tuplemerge import NO_FLOOR

        block = np.asarray(block)
        n = block.shape[0]
        values = block.astype(np.int64, copy=False)
        rule_ids = np.full(n, -1, dtype=np.int64)
        best_priorities = np.full(n, NO_FLOOR, dtype=np.int64)
        if traces is not None:
            traces[:n] = 0
        for iset in self.isets:
            iset.lookup_block(values, rule_ids, best_priorities, traces=traces)
        floors = best_priorities if self.config.early_termination else None
        remainder_ids, remainder_priorities = (
            self.remainder.classify_block_with_floors(values, floors, traces=traces)
        )
        # Strictly-better merge, mirroring the object path's `<` comparison
        # (with floors the remainder already guarantees it; without, not).
        wins = (remainder_ids >= 0) & (remainder_priorities < best_priorities)
        rule_ids[wins] = remainder_ids[wins]
        best_priorities[wins] = remainder_priorities[wins]
        return rule_ids, np.where(rule_ids >= 0, best_priorities, 0)

    def classify_isets_only(
        self, packet: Packet | Sequence[int]
    ) -> tuple[Optional[Rule], LookupTrace]:
        """Query only the iSets (used by the two-core execution model)."""
        values = packet.values if isinstance(packet, Packet) else tuple(packet)
        trace = LookupTrace()
        breakdown = LookupBreakdown()
        best: Rule | None = None
        for iset in self.isets:
            candidate = iset.lookup(values, trace, breakdown)
            if candidate is not None and (best is None or candidate.priority < best.priority):
                best = candidate
        return best, trace

    # --------------------------------------------------------------- statistics

    @property
    def coverage(self) -> float:
        """Fraction of rules indexed by the RQ-RMIs (not in the remainder)."""
        return self.partition.coverage

    @property
    def num_isets(self) -> int:
        return len(self.isets)

    @property
    def remainder_fraction(self) -> float:
        return len(self.partition.remainder) / max(1, len(self.ruleset))

    def rqrmi_size_bytes(self) -> int:
        return sum(iset.size_bytes() for iset in self.isets)

    def value_array_bytes(self) -> int:
        """Total size of the iSets' packed value arrays (secondary search data)."""
        return sum(iset.value_array_bytes() for iset in self.isets)

    def memory_footprint(self) -> MemoryFootprint:
        remainder_fp = self.remainder.memory_footprint()
        rqrmi_bytes = self.rqrmi_size_bytes()
        return MemoryFootprint(
            index_bytes=rqrmi_bytes + remainder_fp.index_bytes,
            rule_bytes=len(self.ruleset) * RULE_ENTRY_BYTES,
            breakdown={
                "rqrmi": rqrmi_bytes,
                "remainder_index": remainder_fp.index_bytes,
            },
        )

    def statistics(self) -> dict[str, object]:
        stats = super().statistics()
        stats.update(
            num_isets=self.num_isets,
            coverage=self.coverage,
            remainder_rules=len(self.partition.remainder),
            remainder_classifier=self.remainder.name,
            rqrmi_bytes=self.rqrmi_size_bytes(),
            remainder_index_bytes=self.remainder.memory_footprint().index_bytes,
            max_error=max((iset.model.max_error for iset in self.isets), default=0),
            build_seconds=self.build_seconds,
            training_seconds=sum(
                iset.model.report.training_seconds for iset in self.isets
            ),
            training=dict(self.training_provenance),
        )
        return stats

    # -------------------------------------------------------------- persistence

    def to_state(self) -> dict:
        """Full trained state: RQ-RMI submodels, iSet partition, remainder.

        Unlike the baselines' rebuild-from-parameters default, NuevoMatch
        serializes its trained submodel weights and the exact partition so
        :meth:`from_state` restores a bitwise-identical classifier without
        retraining.
        """
        from dataclasses import asdict

        config_state = asdict(self.config)
        return {
            "format": STATE_FORMAT_VERSION,
            "kind": self.name,
            "config": config_state,
            "build_seconds": self.build_seconds,
            "training": dict(self.training_provenance),
            "isets": [iset.to_state() for iset in self.isets],
            "remainder_rule_ids": [rule.rule_id for rule in self.partition.remainder],
            "remainder": self.remainder.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict, ruleset: RuleSet) -> "NuevoMatch":
        check_state_header(state, cls.name)
        config_state = dict(state["config"])
        config_state["rqrmi"] = RQRMIConfig(**config_state["rqrmi"])
        config = NuevoMatchConfig(**config_state)
        rules_by_id = ruleset.by_id()
        isets = [
            ISetIndex.from_state(iset_state, rules_by_id, len(ruleset))
            for iset_state in state["isets"]
        ]
        remainder_rules = [
            rules_by_id[int(rule_id)] for rule_id in state["remainder_rule_ids"]
        ]
        partition = PartitionResult(
            isets=[index.iset for index in isets],
            remainder=remainder_rules,
            total_rules=len(ruleset),
        )
        remainder_state = state["remainder"]
        remainder_cls = resolve_classifier(remainder_state["kind"])
        remainder_ruleset = ruleset.subset(
            remainder_rules, name=f"{ruleset.name}-remainder"
        )
        remainder = remainder_cls.from_state(remainder_state, remainder_ruleset)
        instance = cls(
            ruleset,
            isets,
            remainder,
            partition,
            config,
            build_seconds=float(state.get("build_seconds", 0.0)),
        )
        instance.training_provenance = dict(state.get("training", {"mode": "serial"}))
        return instance
