"""NuevoMatch: the end-to-end classifier (§3.8, Figure 1).

Construction:

1. Partition the rule-set into iSets and a remainder (§3.6).
2. Train one RQ-RMI per kept iSet.
3. Build an external classifier (CutSplit / NeuroCuts / TupleMerge / …) over
   the remainder.

Lookup:

1. Query every iSet: RQ-RMI inference → bounded secondary search → multi-field
   validation of the candidate rule.
2. Query the remainder classifier — with the *early termination* optimisation
   the remainder search is given the best priority found by the iSets as a
   floor and can stop early (§4).
3. The selector returns the highest-priority match.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Type

import numpy as np

from repro.classifiers.base import (
    ClassificationResult,
    Classifier,
    LookupTrace,
    MemoryFootprint,
    RULE_ENTRY_BYTES,
)
from repro.core.config import NuevoMatchConfig, RQRMIConfig
from repro.core.isets import ISet, PartitionResult, partition_isets
from repro.core.rqrmi import RQRMI, RangeSet
from repro.rules.rule import Packet, Rule, RuleSet

__all__ = ["ISetIndex", "NuevoMatch", "LookupBreakdown"]


@dataclass
class LookupBreakdown:
    """Per-component cost of one NuevoMatch lookup (Figure 14's breakdown)."""

    inference_ops: int = 0
    search_accesses: int = 0
    validation_accesses: int = 0
    remainder_accesses: int = 0

    def merge(self, other: "LookupBreakdown") -> "LookupBreakdown":
        return LookupBreakdown(
            self.inference_ops + other.inference_ops,
            self.search_accesses + other.search_accesses,
            self.validation_accesses + other.validation_accesses,
            self.remainder_accesses + other.remainder_accesses,
        )


class ISetIndex:
    """One iSet together with its trained RQ-RMI index.

    The iSet's rules, sorted by their range in the iSet's field, form the
    value array; the RQ-RMI predicts positions in that array.
    """

    def __init__(self, iset: ISet, schema, rqrmi_config: RQRMIConfig):
        self.iset = iset
        self.dim = iset.dim
        self.rules = iset.rules  # already sorted by range lower bound
        domain_size = schema[iset.dim].domain_size
        range_set = RangeSet.from_integer_ranges(iset.ranges(), domain_size)
        self.model = RQRMI.train(range_set, rqrmi_config)
        priorities = [rule.priority for rule in self.rules]
        self.best_priority = min(priorities) if priorities else None

    def __len__(self) -> int:
        return len(self.rules)

    @property
    def coverage(self) -> float:
        return self.iset.coverage

    def lookup(
        self, values: Sequence[int], trace: LookupTrace, breakdown: LookupBreakdown
    ) -> Optional[Rule]:
        """Query the RQ-RMI and validate the candidate rule across all fields."""
        result = self.model.query(values[self.dim])
        trace.model_accesses += result.model_accesses
        # One vectorised inference per stage (8-neuron hidden layer).
        inference_ops = result.model_accesses * self.model.stages[0][0].hidden_units
        trace.compute_ops += inference_ops
        breakdown.inference_ops += inference_ops
        # Secondary search over the packed value array (§4: multiple 4-byte
        # field values per cache line, 16 per 64-byte line), binary search over
        # the error window: the search touches index (not rule) storage.
        window = 2 * result.error_bound + 1
        search_lines = max(1, math.ceil(math.log2(window / 16 + 1)))
        trace.index_accesses += search_lines
        breakdown.search_accesses += search_lines
        if result.index is None:
            return None
        candidate = self.rules[result.index]
        trace.rule_accesses += 1
        trace.compute_ops += len(values)
        breakdown.validation_accesses += 1
        if candidate.matches(values):
            return candidate
        return None

    def value_array_bytes(self) -> int:
        """Size of the packed per-field value array used by the secondary search."""
        return 4 * len(self.rules)

    def size_bytes(self) -> int:
        return self.model.size_bytes()

    def statistics(self) -> dict[str, object]:
        stats = self.model.statistics()
        stats.update(dim=self.dim, num_rules=len(self.rules), coverage=self.coverage)
        return stats


class NuevoMatch(Classifier):
    """The NuevoMatch classifier: RQ-RMI-indexed iSets plus a remainder."""

    name = "nm"

    def __init__(
        self,
        ruleset: RuleSet,
        isets: list[ISetIndex],
        remainder: Classifier,
        partition: PartitionResult,
        config: NuevoMatchConfig,
        build_seconds: float,
    ):
        super().__init__(ruleset)
        self.isets = isets
        self.remainder = remainder
        self.partition = partition
        self.config = config
        self.build_seconds = build_seconds

    # ------------------------------------------------------------------ build

    @classmethod
    def build(
        cls,
        ruleset: RuleSet,
        remainder_classifier: Type[Classifier] | str = "tm",
        config: NuevoMatchConfig | None = None,
        **remainder_params,
    ) -> "NuevoMatch":
        """Construct NuevoMatch over ``ruleset``.

        Args:
            ruleset: Input rules.
            remainder_classifier: Classifier class (or registry name: ``"cs"``,
                ``"nc"``, ``"tm"``, ``"tss"``, ``"linear"``) indexing the
                remainder set.  The paper pairs NuevoMatch with the same
                algorithm it is compared against.
            config: NuevoMatch configuration; defaults follow the paper
                (error threshold 64, iSet coverage cut-off 25%).
            **remainder_params: Extra arguments passed to the remainder
                classifier's ``build`` (e.g. ``binth``).
        """
        from repro.classifiers import CLASSIFIER_REGISTRY

        config = config or NuevoMatchConfig()
        if isinstance(remainder_classifier, str):
            try:
                remainder_cls = CLASSIFIER_REGISTRY[remainder_classifier]
            except KeyError as exc:
                raise ValueError(
                    f"unknown remainder classifier {remainder_classifier!r}; "
                    f"expected one of {sorted(CLASSIFIER_REGISTRY)}"
                ) from exc
        else:
            remainder_cls = remainder_classifier

        start = time.perf_counter()
        partition = partition_isets(
            ruleset,
            max_isets=config.max_isets,
            min_coverage=config.min_iset_coverage,
        )
        isets = [
            ISetIndex(iset, ruleset.schema, config.rqrmi) for iset in partition.isets
        ]
        params = dict(config.remainder_params)
        params.update(remainder_params)
        remainder_rules = ruleset.subset(partition.remainder, name=f"{ruleset.name}-remainder")
        remainder = remainder_cls.build(remainder_rules, **params)
        build_seconds = time.perf_counter() - start
        return cls(ruleset, isets, remainder, partition, config, build_seconds)

    # ------------------------------------------------------------------ lookup

    def classify_traced(self, packet: Packet | Sequence[int]) -> ClassificationResult:
        result, _breakdown = self.classify_detailed(packet)
        return result

    def classify_detailed(
        self, packet: Packet | Sequence[int]
    ) -> tuple[ClassificationResult, LookupBreakdown]:
        """Traced lookup that also reports the per-component breakdown."""
        values = packet.values if isinstance(packet, Packet) else tuple(packet)
        trace = LookupTrace()
        breakdown = LookupBreakdown()
        best: Rule | None = None
        for iset in self.isets:
            candidate = iset.lookup(values, trace, breakdown)
            if candidate is not None and (best is None or candidate.priority < best.priority):
                best = candidate

        floor = best.priority if (best is not None and self.config.early_termination) else None
        remainder_result = self.remainder.classify_with_floor(values, floor)
        trace = trace.merge(remainder_result.trace)
        breakdown.remainder_accesses += (
            remainder_result.trace.index_accesses + remainder_result.trace.rule_accesses
        )
        if remainder_result.rule is not None and (
            best is None or remainder_result.rule.priority < best.priority
        ):
            best = remainder_result.rule
        return ClassificationResult(best, trace), breakdown

    def classify_isets_only(
        self, packet: Packet | Sequence[int]
    ) -> tuple[Optional[Rule], LookupTrace]:
        """Query only the iSets (used by the two-core execution model)."""
        values = packet.values if isinstance(packet, Packet) else tuple(packet)
        trace = LookupTrace()
        breakdown = LookupBreakdown()
        best: Rule | None = None
        for iset in self.isets:
            candidate = iset.lookup(values, trace, breakdown)
            if candidate is not None and (best is None or candidate.priority < best.priority):
                best = candidate
        return best, trace

    # --------------------------------------------------------------- statistics

    @property
    def coverage(self) -> float:
        """Fraction of rules indexed by the RQ-RMIs (not in the remainder)."""
        return self.partition.coverage

    @property
    def num_isets(self) -> int:
        return len(self.isets)

    @property
    def remainder_fraction(self) -> float:
        return len(self.partition.remainder) / max(1, len(self.ruleset))

    def rqrmi_size_bytes(self) -> int:
        return sum(iset.size_bytes() for iset in self.isets)

    def value_array_bytes(self) -> int:
        """Total size of the iSets' packed value arrays (secondary search data)."""
        return sum(iset.value_array_bytes() for iset in self.isets)

    def memory_footprint(self) -> MemoryFootprint:
        remainder_fp = self.remainder.memory_footprint()
        rqrmi_bytes = self.rqrmi_size_bytes()
        return MemoryFootprint(
            index_bytes=rqrmi_bytes + remainder_fp.index_bytes,
            rule_bytes=len(self.ruleset) * RULE_ENTRY_BYTES,
            breakdown={
                "rqrmi": rqrmi_bytes,
                "remainder_index": remainder_fp.index_bytes,
            },
        )

    def statistics(self) -> dict[str, object]:
        stats = super().statistics()
        stats.update(
            num_isets=self.num_isets,
            coverage=self.coverage,
            remainder_rules=len(self.partition.remainder),
            remainder_classifier=self.remainder.name,
            rqrmi_bytes=self.rqrmi_size_bytes(),
            remainder_index_bytes=self.remainder.memory_footprint().index_bytes,
            max_error=max((iset.model.max_error for iset in self.isets), default=0),
            build_seconds=self.build_seconds,
            training_seconds=sum(
                iset.model.report.training_seconds for iset in self.isets
            ),
        )
        return stats
