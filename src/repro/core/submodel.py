"""RQ-RMI submodel: a tiny neural network analysed as a piece-wise linear function.

Each submodel is the 3-layer fully-connected network of Definition 3.1:

    N(x) = ReLU(x * w1 + b1) @ w2 + b2          (scalar input, scalar output)
    M(x) = H(N(x))                              (output trimmed to [0, 1))

Because ReLU of an affine function of a scalar is piece-wise linear, ``M`` is
piece-wise linear (Corollary 3.2).  That is the property the whole paper rests
on: the *trigger inputs* (where the slope changes) and the *transition inputs*
(where the quantised output ``floor(M(x) * W)`` changes) can be found
analytically, which makes the responsibility computation and the worst-case
error bound computation exact without enumerating keys (Appendix A).

This module implements the submodel forward pass (scalar and vectorised), the
trigger/transition-input computations, and (de)serialisation of the weights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Submodel", "OUTPUT_EPSILON"]

#: M(x) is trimmed to [0, 1 - OUTPUT_EPSILON] so floor(M(x) * W) < W always.
OUTPUT_EPSILON = 1e-9


@dataclass
class Submodel:
    """One trained RQ-RMI submodel (Definition 3.1).

    Attributes:
        w1: Hidden-layer weights, shape ``(hidden,)``.
        b1: Hidden-layer biases, shape ``(hidden,)``.
        w2: Output-layer weights, shape ``(hidden,)``.
        b2: Output bias (scalar).
    """

    w1: np.ndarray
    b1: np.ndarray
    w2: np.ndarray
    b2: float

    def __post_init__(self) -> None:
        self.w1 = np.asarray(self.w1, dtype=np.float64).reshape(-1)
        self.b1 = np.asarray(self.b1, dtype=np.float64).reshape(-1)
        self.w2 = np.asarray(self.w2, dtype=np.float64).reshape(-1)
        self.b2 = float(self.b2)
        if not (self.w1.shape == self.b1.shape == self.w2.shape):
            raise ValueError("w1, b1 and w2 must have the same length")
        # Transition inputs are a pure function of the (frozen-by-convention)
        # weights; memoising them makes re-certifying a *reused* submodel
        # against changed ranges cheap — the hot step of warm-start retraining.
        self._transition_cache: dict = {}

    # -- forward pass ------------------------------------------------------------

    @property
    def hidden_units(self) -> int:
        return int(self.w1.shape[0])

    def raw(self, x: float) -> float:
        """The untrimmed network output N(x).

        The output sum uses multiply-then-``sum`` rather than ``@``: BLAS
        matvec accumulates in a shape-dependent order, so the same input could
        produce last-ulp-different outputs in scalar, single-row and batched
        evaluation — and the analytically computed error bound only covers the
        function it was evaluated on.  ``sum`` over the fixed-size last axis
        reduces in one deterministic order for every call shape.
        """
        hidden = np.maximum(self.w1 * x + self.b1, 0.0)
        return float((hidden * self.w2).sum() + self.b2)

    def raw_batch(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised N(x); bitwise-identical per element to :meth:`raw`."""
        xs = np.asarray(xs, dtype=np.float64).reshape(-1, 1)
        hidden = np.maximum(xs * self.w1 + self.b1, 0.0)
        return (hidden * self.w2).sum(axis=1) + self.b2

    def __call__(self, x: float) -> float:
        """The trimmed output M(x) in [0, 1)."""
        return min(max(self.raw(x), 0.0), 1.0 - OUTPUT_EPSILON)

    def predict_batch(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised M(x)."""
        return np.clip(self.raw_batch(xs), 0.0, 1.0 - OUTPUT_EPSILON)

    def bucket(self, x: float, width: int) -> int:
        """The quantised output ``floor(M(x) * width)`` in ``[0, width)``."""
        return min(int(self(x) * width), width - 1)

    def bucket_batch(self, xs: np.ndarray, width: int) -> np.ndarray:
        return np.minimum(
            (self.predict_batch(xs) * width).astype(np.int64), width - 1
        )

    # -- piece-wise linear analysis --------------------------------------------------

    def trigger_inputs(self, domain: tuple[float, float] = (0.0, 1.0)) -> list[float]:
        """Inputs where M changes slope, plus the domain boundaries (Def. A.5).

        Slope changes happen where a ReLU unit switches on/off
        (``w1[k] * x + b1[k] = 0``) and where the output trim H starts or stops
        clipping (``N(x) = 0`` or ``N(x) = 1``).
        """
        lo, hi = domain
        candidates: set[float] = {lo, hi}
        # ReLU kinks.
        with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
            for k in range(self.hidden_units):
                if self.w1[k] != 0.0:
                    kink = -self.b1[k] / self.w1[k]
                    if np.isfinite(kink) and lo < kink < hi:
                        candidates.add(float(kink))
        # Clipping kinks: solve N(x) = level on each linear piece of N.
        kinks = sorted(candidates)
        extra: set[float] = set()
        for a, b in zip(kinks[:-1], kinks[1:]):
            na, nb = self.raw(a), self.raw(b)
            if na == nb:
                continue
            for level in (0.0, 1.0 - OUTPUT_EPSILON):
                if (na - level) * (nb - level) < 0.0:
                    x = a + (level - na) * (b - a) / (nb - na)
                    if lo < x < hi:
                        extra.add(float(x))
        candidates |= extra
        return sorted(candidates)

    def transition_inputs(
        self, width: int, domain: tuple[float, float] = (0.0, 1.0)
    ) -> list[float]:
        """Inputs where ``floor(M(x) * width)`` changes value (Def. A.6).

        Computed per linear segment between adjacent trigger inputs by
        intersecting the segment with the quantisation levels ``y = k / width``
        (Lemma A.8).  Results are memoised per ``(width, domain)``; callers
        must treat the returned list as read-only.
        """
        if width < 1:
            raise ValueError("width must be at least 1")
        cache_key = (width, domain)
        cached = self._transition_cache.get(cache_key)
        if cached is not None:
            return cached
        triggers = self.trigger_inputs(domain)
        # Trigger inputs themselves may be transition inputs (slope change
        # with a bucket change across them); including them is harmless and
        # keeps the evaluation-point set conservative.
        parts: list[np.ndarray] = [np.asarray(triggers, dtype=np.float64)]
        for a, b in zip(triggers[:-1], triggers[1:]):
            ma, mb = self(a), self(b)
            qa, qb = int(ma * width), int(mb * width)
            if qa == qb:
                continue
            if ma == mb:
                continue
            lo_q, hi_q = min(qa, qb), max(qa, qb)
            # M is linear on [a, b]; solve M(x) = k / width for every crossed
            # quantisation level at once (same expression evaluation order as
            # a scalar loop, so the solutions are bitwise identical).
            levels = np.arange(lo_q + 1, hi_q + 1, dtype=np.float64) / width
            xs = a + (levels - ma) * (b - a) / (mb - ma)
            parts.append(xs[(xs >= domain[0]) & (xs <= domain[1])])
        result = [float(x) for x in np.unique(np.concatenate(parts))]
        self._transition_cache[cache_key] = result
        return result

    def max_error_on_points(
        self, points: np.ndarray, true_indices: np.ndarray, width: int
    ) -> int:
        """Largest |floor(M(p) * width) - true_index| over the given points."""
        if len(points) == 0:
            return 0
        predicted = self.bucket_batch(np.asarray(points, dtype=np.float64), width)
        return int(np.max(np.abs(predicted - np.asarray(true_indices, dtype=np.int64))))

    # -- weight export ---------------------------------------------------------------

    def weights(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        """The trained parameters as a ``(w1, b1, w2, b2)`` tuple.

        Used as the warm-start ``init`` of a retrained submodel (the training
        pipeline seeds new submodels from the engine being replaced).
        """
        return self.w1, self.b1, self.w2, self.b2

    def copy(self) -> "Submodel":
        """An independent copy (fresh weight arrays).

        The transition-input memo is shared: both copies hold the same
        weights, so their transition inputs are identical by construction.
        """
        duplicate = Submodel(self.w1.copy(), self.b1.copy(), self.w2.copy(), self.b2)
        duplicate._transition_cache = self._transition_cache
        return duplicate

    # -- serialisation / size --------------------------------------------------------

    def size_bytes(self, float_bytes: int = 4) -> int:
        """Storage size of the weights (single precision by default, as in §4)."""
        return (3 * self.hidden_units + 1) * float_bytes

    def to_dict(self) -> dict:
        return {
            "w1": self.w1.tolist(),
            "b1": self.b1.tolist(),
            "w2": self.w2.tolist(),
            "b2": self.b2,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Submodel":
        return cls(
            np.asarray(data["w1"], dtype=np.float64),
            np.asarray(data["b1"], dtype=np.float64),
            np.asarray(data["w2"], dtype=np.float64),
            float(data["b2"]),
        )

    @classmethod
    def identity(cls, hidden_units: int = 8) -> "Submodel":
        """A submodel approximating M(x) = x, used as a safe fallback."""
        knots = np.linspace(0.0, 1.0, hidden_units, endpoint=False)
        w1 = np.ones(hidden_units)
        b1 = -knots
        # Sum of ReLU(x - knot_k) * w2_k == x for x in [0, 1] when w2 chosen so
        # the cumulative slope is 1 over each segment: first unit slope 1, rest 0.
        w2 = np.zeros(hidden_units)
        w2[0] = 1.0
        return cls(w1, b1, w2, 0.0)
