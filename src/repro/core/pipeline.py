"""Parallel warm-start RQ-RMI training pipeline.

The serial trainer (:meth:`repro.core.rqrmi.RQRMI.train`) builds submodels one
at a time with a per-submodel numpy Adam loop — correct, but the slowest path
between "rules changed" and "new engine swapped in".  This module is the
build-path counterpart of the batched serving path, with three layers:

* :func:`train_submodels_stacked` — trains *all* submodels of a stage as one
  vectorized batched-Adam optimisation over stacked ``(N, H)`` weight tensors
  and a flat concatenated sample vector with per-row segment reductions,
  instead of a Python loop over submodels.  Per-submodel semantics
  (cold-start knot initialisation, closed-form output refits every 50 epochs,
  best-loss tracking) are preserved; only the loop over submodels disappears.
* :func:`train_rqrmi` — the staged RQ-RMI training procedure (§3.5, Figure 5)
  over the stacked trainer, including the last-stage retrain-with-doubled-
  samples loop, plus **warm-start retraining**: given the previously trained
  model, the internal stages are reused verbatim (their transition inputs —
  hence the last-stage responsibilities — are unchanged), and each last-stage
  submodel is (a) reused together with its certified error bound when the
  ranges inside its responsibility are identical, (b) reused with a freshly
  *recomputed* analytic bound when they changed but the old weights still
  meet the threshold, (c) refined with a short warm-started Adam run seeded
  from the old weights, or (d) retrained cold when the warm bound regresses
  past the threshold.  Every path ends in the same analytic error-bound
  computation, so the certified lookup contract is independent of how the
  weights were obtained.
* :class:`TrainingPipeline` — the build orchestrator: fans independent
  RQ-RMI training jobs (one per iSet) across a process pool with
  deterministic per-job seeding, so ``jobs=1`` and ``jobs=N`` produce
  identical engines.

Determinism: the pipeline seeds each (stage, slot, attempt) sampler from a
:class:`numpy.random.SeedSequence` derived from the config seed, so results do
not depend on training order or process placement.  The stacked trainer is a
different (vectorized) floating-point evaluation order than the serial loop,
so pipeline-built models are *not* bitwise-equal to serially built ones —
both are valid RQ-RMIs and both certify their own error bounds analytically.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.config import RQRMIConfig
from repro.core.rqrmi import RQRMI, RangeSet, TrainingReport
from repro.core.submodel import Submodel
from repro.core.training import (
    TrainingDataset,
    fit_output_layer,
    initial_submodel_params,
    sample_responsibility,
)

__all__ = [
    "PipelineConfig",
    "TrainingPipeline",
    "train_submodels_stacked",
    "train_rqrmi",
]

#: Intervals are (lo, hi) pairs of scaled floats (as in repro.core.rqrmi).
Interval = tuple[float, float]


@dataclass
class PipelineConfig:
    """Knobs of the training pipeline.

    Attributes:
        jobs: Process-pool width for independent RQ-RMI training jobs
            (one job per iSet); ``1`` trains inline.  Results are identical
            for any job count.
        warm_epochs: Adam epochs for warm-started submodels (seeded from the
            previous weights, they need far fewer steps than a cold start);
            ``None`` uses a third of the cold epoch budget, at least 20.
        vectorized: Train stages with :func:`train_submodels_stacked`
            (default).  ``False`` falls back to the serial per-submodel loop
            of :meth:`RQRMI.train` — useful for isolating the vectorization
            speedup in benchmarks; warm starting requires the stacked path.
        early_stop_tolerance: Per-submodel convergence cut-off — a submodel
            whose best loss improves by less than this fraction over a
            10-epoch window stops training (the closed-form initialisation
            already lands most submodels near their optimum).  ``0`` always
            runs the full epoch budget.  This is the pipeline's
            latency-vs-training-compute dial; the analytic error bound is
            computed on the final weights either way, so certification is
            unaffected.
        max_stacked_elements: Chunk budget for the stacked trainer's flat
            sample tensors, bounding peak memory.
    """

    jobs: int = 1
    warm_epochs: int | None = None
    vectorized: bool = True
    early_stop_tolerance: float = 1e-3
    max_stacked_elements: int = 2_000_000

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be at least 1")
        if self.warm_epochs is not None and self.warm_epochs < 1:
            raise ValueError("warm_epochs must be at least 1")
        if self.early_stop_tolerance < 0:
            raise ValueError("early_stop_tolerance must be non-negative")
        if self.max_stacked_elements < 1:
            raise ValueError("max_stacked_elements must be positive")

    def resolve_warm_epochs(self, adam_epochs: int) -> int:
        if self.warm_epochs is not None:
            return self.warm_epochs
        return max(20, adam_epochs // 3)


# ---------------------------------------------------------------------------
# Stacked batched-Adam trainer
# ---------------------------------------------------------------------------


#: Early-stop cadence: convergence is checked every this many epochs.
EARLY_STOP_CHECK_EPOCHS = 10

#: Closed-form output refit cadence (as in the serial trainer).
REFIT_EPOCHS = 50


def _train_stacked_chunk(
    xs_rows: list[np.ndarray],
    ys_rows: list[np.ndarray],
    inits: list[tuple[np.ndarray, np.ndarray, np.ndarray, float] | None],
    hidden_units: int,
    epochs: int,
    learning_rate: float,
    early_stop_tolerance: float,
) -> list[Submodel]:
    """One stacked optimisation over a group of submodels.

    Mirrors :func:`repro.core.training.train_submodel` per row: same
    initialisation, same Adam hyper-parameters (hidden layer at one tenth of
    the output learning rate), same closed-form output refit every 50 epochs,
    same best-loss parameter tracking — vectorized over the row axis.

    Two deliberate departures from the serial loop:

    * Layout — the rows' samples are concatenated into one flat vector (no
      padding); per-sample parameters come from a single row-index gather of
      one ``(N, 3H+1)`` parameter matrix, gradients from one fused
      :func:`numpy.add.reduceat` over the contiguous row segments.
    * Early stopping — every :data:`EARLY_STOP_CHECK_EPOCHS` epochs, rows
      whose best loss stopped improving (relative improvement below
      ``early_stop_tolerance``) freeze at their best parameters.  The
      closed-form initialisation already lands most submodels near their
      optimum, so this converts unneeded epochs directly into build-latency
      savings; the analytic error bound is computed on the final weights
      either way, so certification is unaffected.

    Every row's trajectory depends only on its own samples (segment
    reductions and element-wise parameter math), so results are independent
    of how submodels are grouped into chunks — the property behind
    ``jobs=1 == jobs=N`` builds.
    """
    num_rows = len(xs_rows)
    hidden = hidden_units
    # All parameters of one submodel live in a single row of ``params``:
    # [w1 | b1 | w2 | b2] — one gather per epoch, one fused gradient
    # reduction, one Adam update.
    width = 3 * hidden + 1
    s_w1, s_b1, s_w2, s_b2 = (
        slice(0, hidden),
        slice(hidden, 2 * hidden),
        slice(2 * hidden, 3 * hidden),
        3 * hidden,
    )
    params = np.empty((num_rows, width), dtype=np.float64)
    for row in range(num_rows):
        if inits[row] is not None:
            iw1, ib1, iw2, ib2 = inits[row]
        else:
            iw1, ib1, iw2, ib2 = initial_submodel_params(
                xs_rows[row], ys_rows[row], hidden
            )
        params[row, s_w1] = np.asarray(iw1, dtype=np.float64)
        params[row, s_b1] = np.asarray(ib1, dtype=np.float64)
        params[row, s_w2] = np.asarray(iw2, dtype=np.float64)
        params[row, s_b2] = float(ib2)

    def _models_from(array: np.ndarray) -> list[Submodel]:
        return [
            Submodel(
                array[row, s_w1], array[row, s_b1],
                array[row, s_w2], float(array[row, s_b2]),
            )
            for row in range(num_rows)
        ]

    if epochs <= 0:
        return _models_from(params)

    beta1, beta2, eps = 0.9, 0.999, 1e-8
    # Per-column learning rate: the hidden layer trains at one tenth of the
    # output learning rate (as in the serial trainer).
    lr_row = np.empty(width)
    lr_row[s_w1] = lr_row[s_b1] = learning_rate * 0.1
    lr_row[s_w2] = lr_row[s_b2] = learning_rate
    adam_m = np.zeros_like(params)
    adam_v = np.zeros_like(params)

    best_loss = np.full(num_rows, np.inf)
    best = params.copy()
    checked_best = best_loss.copy()
    active = np.arange(num_rows)
    t = 0

    while t < epochs and len(active):
        # Flat sample layout over the still-active rows.
        counts = np.array([len(xs_rows[row]) for row in active], dtype=np.int64)
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        xs_flat = np.concatenate([xs_rows[row] for row in active])
        ys_flat = np.concatenate([ys_rows[row] for row in active])
        local_of = np.repeat(np.arange(len(active)), counts)
        xs_col = xs_flat[:, None]
        inv_counts = 1.0 / counts.astype(np.float64)
        dpred_scale = (2.0 * inv_counts)[local_of]
        # Fused per-sample contributions: [w1 | b1 | w2 | b2 | loss].
        contrib = np.empty((len(xs_flat), width + 1), dtype=np.float64)

        p = params[active]
        a_m = adam_m[active]
        a_v = adam_v[active]
        block_end = min(epochs, t + EARLY_STOP_CHECK_EPOCHS)
        while t < block_end:
            t += 1
            gathered = p[local_of]
            pre = xs_col * gathered[:, s_w1] + gathered[:, s_b1]
            act = np.maximum(pre, 0.0)
            err = (act * gathered[:, s_w2]).sum(axis=1) + gathered[:, s_b2] - ys_flat

            dpred = dpred_scale * err
            dpred_col = dpred[:, None]
            dhidden = dpred_col * gathered[:, s_w2] * (pre > 0.0)
            contrib[:, s_w1] = xs_col * dhidden
            contrib[:, s_b1] = dhidden
            contrib[:, s_w2] = act * dpred_col
            contrib[:, s_b2] = dpred
            contrib[:, width] = err * err
            reduced = np.add.reduceat(contrib, starts, axis=0)
            grads = reduced[:, :width]
            loss = reduced[:, width] * inv_counts

            improved = loss < best_loss[active]
            if improved.any():
                rows = active[improved]
                best_loss[rows] = loss[improved]
                best[rows] = p[improved]

            a_m = beta1 * a_m + (1 - beta1) * grads
            a_v = beta2 * a_v + (1 - beta2) * (grads * grads)
            m_hat = a_m / (1 - beta1**t)
            v_hat = a_v / (1 - beta2**t)
            p = p - lr_row * m_hat / (np.sqrt(v_hat) + eps)

            # Periodic closed-form output refit, as in the serial trainer.
            if t % REFIT_EPOCHS == 0:
                for local, row in enumerate(active):
                    w2_fit, b2_fit = fit_output_layer(
                        xs_rows[row], ys_rows[row], p[local, s_w1], p[local, s_b1]
                    )
                    p[local, s_w2] = w2_fit
                    p[local, s_b2] = b2_fit

        params[active] = p
        adam_m[active] = a_m
        adam_v[active] = a_v

        if t >= epochs:
            # Final best-parameter revert needs the loss of the *current*
            # parameters (one extra forward pass, as in the serial trainer).
            gathered = p[local_of]
            pre = xs_col * gathered[:, s_w1] + gathered[:, s_b1]
            act = np.maximum(pre, 0.0)
            err = (act * gathered[:, s_w2]).sum(axis=1) + gathered[:, s_b2] - ys_flat
            final_loss = np.add.reduceat(err * err, starts) * inv_counts
            worse = final_loss > best_loss[active]
            rows = active[worse]
            params[rows] = best[rows]
            break

        if early_stop_tolerance > 0.0:
            # Freeze rows whose best loss stalled since the last check; a
            # frozen row keeps its best parameters.  The check uses only the
            # row's own loss trajectory, so freezing is chunk-independent.
            # The first window only records a baseline (checked_best is still
            # infinite there — comparing against it would freeze every row
            # after one window regardless of progress).
            reference = checked_best[active]
            current = best_loss[active]
            floor = np.maximum(reference, 1e-300)
            stalled = np.isfinite(reference) & (
                (reference - current) <= early_stop_tolerance * floor
            )
            if stalled.any():
                rows = active[stalled]
                params[rows] = best[rows]
                active = active[~stalled]
            checked_best[active] = best_loss[active]

    return _models_from(params)


def train_submodels_stacked(
    datasets: list[TrainingDataset | None],
    hidden_units: int = 8,
    epochs: int = 300,
    learning_rate: float = 0.05,
    inits: list[tuple | None] | None = None,
    max_stacked_elements: int = 2_000_000,
    early_stop_tolerance: float = 1e-3,
) -> list[Submodel]:
    """Train many submodels as one (chunked) vectorized batched-Adam run.

    Args:
        datasets: One :class:`TrainingDataset` per submodel; ``None`` or an
            empty dataset yields an identity submodel (its responsibility
            holds no rules).
        hidden_units / epochs / learning_rate: As in
            :func:`repro.core.training.train_submodel`.
        inits: Optional per-submodel warm-start weights ``(w1, b1, w2, b2)``.
        max_stacked_elements: Upper bound on ``total_samples * hidden`` per
            stacked chunk; larger stages are split into several runs.
        early_stop_tolerance: Per-submodel convergence cut-off (relative
            best-loss improvement per check window); ``0`` disables early
            stopping and always runs the full epoch budget.

    Returns:
        One trained :class:`Submodel` per input dataset, in order.
    """
    if inits is None:
        inits = [None] * len(datasets)
    if len(inits) != len(datasets):
        raise ValueError("inits must match datasets in length")

    models: list[Submodel | None] = [None] * len(datasets)
    trainable: list[int] = []
    for index, dataset in enumerate(datasets):
        if dataset is None or len(dataset) == 0:
            models[index] = Submodel.identity(hidden_units)
            continue
        xs = dataset.xs.astype(np.float64)
        ys = dataset.ys.astype(np.float64)
        if float(xs.max()) <= float(xs.min()):
            # A single distinct input: constant prediction (as in the serial
            # trainer); warm weights cannot improve on it.
            w1 = np.ones(hidden_units)
            b1 = -np.full(hidden_units, float(xs.min()))
            models[index] = Submodel(w1, b1, np.zeros(hidden_units), float(ys.mean()))
            continue
        trainable.append(index)

    # Chunk so one stacked run's (T, H) intermediates stay inside the element
    # budget (T = total samples across the chunk's rows).
    chunk: list[int] = []
    chunk_elements = 0
    for index in trainable:
        size = len(datasets[index]) * hidden_units
        if chunk and chunk_elements + size > max_stacked_elements:
            _run_chunk(chunk, datasets, inits, models, hidden_units, epochs,
                       learning_rate, early_stop_tolerance)
            chunk, chunk_elements = [], 0
        chunk.append(index)
        chunk_elements += size
    if chunk:
        _run_chunk(chunk, datasets, inits, models, hidden_units, epochs,
                   learning_rate, early_stop_tolerance)
    assert all(model is not None for model in models)
    return models  # type: ignore[return-value]


def _run_chunk(indices, datasets, inits, models, hidden_units, epochs,
               learning_rate, early_stop_tolerance):
    trained = _train_stacked_chunk(
        [datasets[i].xs.astype(np.float64) for i in indices],
        [datasets[i].ys.astype(np.float64) for i in indices],
        [inits[i] for i in indices],
        hidden_units,
        epochs,
        learning_rate,
        early_stop_tolerance,
    )
    for index, model in zip(indices, trained):
        models[index] = model


# ---------------------------------------------------------------------------
# Staged RQ-RMI training over the stacked trainer (+ warm start)
# ---------------------------------------------------------------------------


def _slot_rng(seed: int, stage_index: int, slot: int, attempt: int) -> np.random.Generator:
    """Deterministic per-(stage, slot, attempt) sampler.

    Unlike the serial trainer's single shared stream, each slot draws from its
    own :class:`~numpy.random.SeedSequence`, so sampling is independent of
    training order and process placement — the property that makes
    ``jobs=1`` and ``jobs=N`` builds identical.
    """
    return np.random.default_rng(
        np.random.SeedSequence([seed & 0xFFFFFFFF, stage_index, slot, attempt])
    )


def _sample_slot(
    intervals: list[Interval],
    ranges: RangeSet,
    num_samples: int,
    seed: int,
    stage_index: int,
    slot: int,
    attempt: int,
) -> TrainingDataset:
    return sample_responsibility(
        intervals,
        ranges.lo,
        ranges.hi,
        num_samples,
        max(1, len(ranges)),
        _slot_rng(seed, stage_index, slot, attempt),
    )


def _slot_signature(intervals: list[Interval], ranges: RangeSet) -> tuple:
    """Exact content of ``ranges`` inside a responsibility (padded as the
    error-bound computation pads it).

    Two RangeSets with equal signatures for a slot present *identical* inputs
    to that slot's training and error-bound computation: same intersecting
    range boundaries, same global indices (targets), same index scale and
    key-domain size.  A reused submodel therefore certifies the same bound.
    """
    domain = ranges.domain_size
    pad = 1.0 / domain if domain else 0.0
    parts: list[tuple] = []
    for a, b in intervals:
        a_pad, b_pad = a - pad, b + pad
        first = int(np.searchsorted(ranges.hi, a_pad, side="left"))
        last = int(np.searchsorted(ranges.lo, b_pad, side="right"))
        parts.append(
            (
                first,
                ranges.lo[first:last].tobytes(),
                ranges.hi[first:last].tobytes(),
            )
        )
    return (len(ranges), domain, tuple(parts))


def train_rqrmi(
    ranges: RangeSet,
    config: RQRMIConfig | None = None,
    warm_from: RQRMI | None = None,
    pipeline_config: PipelineConfig | None = None,
) -> RQRMI:
    """Train an RQ-RMI with the vectorized pipeline (§3.5 / Figure 5).

    With ``warm_from`` (a previously trained model over an older version of
    the ranges, same stage structure), internal stages are reused verbatim and
    only last-stage submodels whose responsibility content actually changed
    are re-certified / re-trained; see the module docstring for the four
    per-submodel outcomes.  Falls back to a cold start when the stage
    structure or key domain differs.
    """
    config = config or RQRMIConfig()
    pipeline_config = pipeline_config or PipelineConfig()
    if not pipeline_config.vectorized:
        # Serial fallback: the per-submodel loop (warm start needs the
        # stacked path; structure-incompatible warm models land here too).
        return RQRMI.train(ranges, config)

    start = time.perf_counter()
    num_ranges = len(ranges)
    widths = config.widths_for(max(1, num_ranges))
    if widths[0] != 1:
        raise ValueError("the first stage must have width 1")

    warm = warm_from
    if warm is not None and (
        warm.stage_widths != widths
        or warm.ranges.domain_size != ranges.domain_size
        or len(warm.stages) != len(widths)
        or not warm.error_bounds
    ):
        warm = None

    report = TrainingReport(
        stage_widths=list(widths),
        num_ranges=num_ranges,
        trainer="stacked",
        warm_started=warm is not None,
    )
    if warm is None:
        model = _train_cold(ranges, config, widths, report, pipeline_config)
    else:
        model = _train_warm(ranges, config, widths, report, pipeline_config, warm)
    model.report.training_seconds = time.perf_counter() - start
    return model


def _finalise(ranges, widths, stages, error_bounds, report, config) -> RQRMI:
    report.error_bounds = list(error_bounds)
    report.max_error_bound = max(error_bounds) if error_bounds else 0
    report.converged = report.max_error_bound <= config.error_threshold
    return RQRMI(stages, ranges, [int(b) for b in error_bounds], report)


def _initial_responsibilities(widths: list[int]) -> list[list[list[Interval]]]:
    responsibilities: list[list[list[Interval]]] = [[[(0.0, 1.0)]]]
    for width in widths[1:]:
        responsibilities.append([[] for _ in range(width)])
    return responsibilities


def _train_last_stage_with_retries(
    stages: list[list[Submodel]],
    responsibilities: list[list[Interval]],
    ranges: RangeSet,
    config: RQRMIConfig,
    widths: list[int],
    report: TrainingReport,
    pipeline_config: PipelineConfig,
    stage_index: int,
    slots: list[int],
    stage_models: list[Submodel | None],
    error_bounds: list[int],
    inits: dict[int, tuple] | None = None,
    first_epochs: int | None = None,
) -> None:
    """Train ``slots`` of the last stage, doubling samples while the analytic
    bound misses the threshold (Figure 5), all attempts stacked.

    ``inits`` warm-starts the first attempt (``first_epochs`` Adam epochs);
    retries are always cold with the full epoch budget, which is the
    "fallback to cold start when error bounds regress" path.
    """
    samples = {slot: config.initial_samples for slot in slots}
    current = list(slots)
    inits = inits or {}
    for attempt in range(config.max_retrain_attempts + 1):
        datasets = [
            _sample_slot(
                responsibilities[slot], ranges, samples[slot],
                config.seed, stage_index, slot, attempt,
            )
            for slot in current
        ]
        warm_attempt = attempt == 0 and bool(inits)
        trained = train_submodels_stacked(
            datasets,
            hidden_units=config.hidden_units,
            epochs=(first_epochs if warm_attempt and first_epochs is not None
                    else config.adam_epochs),
            learning_rate=config.learning_rate,
            inits=[inits.get(slot) for slot in current] if warm_attempt else None,
            max_stacked_elements=pipeline_config.max_stacked_elements,
            early_stop_tolerance=pipeline_config.early_stop_tolerance,
        )
        report.submodels_trained += len(current)
        failing: list[int] = []
        for slot, model in zip(current, trained):
            bound = RQRMI._error_bound_for(
                stages, model, responsibilities[slot], ranges, widths
            )
            # Keep the best attempt seen for the slot, as the serial trainer
            # keeps its last (the bound is re-checked either way).
            previous = stage_models[slot]
            if previous is None or bound <= error_bounds[slot]:
                stage_models[slot] = model
                error_bounds[slot] = bound
            if error_bounds[slot] > config.error_threshold:
                failing.append(slot)
        if not failing:
            return
        report.retrain_attempts += len(failing)
        if warm_attempt:
            report.cold_fallbacks += len(failing)
        for slot in failing:
            if not warm_attempt:
                samples[slot] *= 2
        current = failing


def _train_cold(
    ranges: RangeSet,
    config: RQRMIConfig,
    widths: list[int],
    report: TrainingReport,
    pipeline_config: PipelineConfig,
) -> RQRMI:
    num_stages = len(widths)
    responsibilities = _initial_responsibilities(widths)
    stages: list[list[Submodel]] = []
    error_bounds = [0] * widths[-1]

    for stage_index in range(num_stages):
        width = widths[stage_index]
        is_last = stage_index == num_stages - 1
        slot_intervals = responsibilities[stage_index]
        stage_models: list[Submodel | None] = [None] * width
        occupied = [slot for slot in range(width) if slot_intervals[slot]]
        for slot in range(width):
            if not slot_intervals[slot]:
                stage_models[slot] = Submodel.identity(config.hidden_units)

        if not is_last:
            datasets = [
                _sample_slot(
                    slot_intervals[slot], ranges, config.initial_samples,
                    config.seed, stage_index, slot, 0,
                )
                for slot in occupied
            ]
            trained = train_submodels_stacked(
                datasets,
                hidden_units=config.hidden_units,
                epochs=config.adam_epochs,
                learning_rate=config.learning_rate,
                max_stacked_elements=pipeline_config.max_stacked_elements,
                early_stop_tolerance=pipeline_config.early_stop_tolerance,
            )
            report.submodels_trained += len(occupied)
            for slot, model in zip(occupied, trained):
                stage_models[slot] = model
        else:
            # Sentinel bounds force the retry loop to adopt the first attempt.
            for slot in occupied:
                error_bounds[slot] = np.iinfo(np.int64).max
            _train_last_stage_with_retries(
                stages, slot_intervals, ranges, config, widths, report,
                pipeline_config, stage_index, occupied, stage_models, error_bounds,
            )
            for slot in range(width):
                if stage_models[slot] is None:
                    stage_models[slot] = Submodel.identity(config.hidden_units)
                if error_bounds[slot] == np.iinfo(np.int64).max:
                    error_bounds[slot] = 0

        stages.append([model for model in stage_models if model is not None])
        if not is_last:
            RQRMI._assign_responsibilities(stages, responsibilities, widths, stage_index)

    return _finalise(ranges, widths, stages, error_bounds, report, config)


def _train_warm(
    ranges: RangeSet,
    config: RQRMIConfig,
    widths: list[int],
    report: TrainingReport,
    pipeline_config: PipelineConfig,
    warm: RQRMI,
) -> RQRMI:
    num_stages = len(widths)
    # Internal stages are reused verbatim: their transition inputs — and
    # therefore the last-stage responsibilities derived from them — are
    # exactly the previous model's.
    stages: list[list[Submodel]] = [
        [submodel.copy() for submodel in stage] for stage in warm.stages[:-1]
    ]
    responsibilities = _initial_responsibilities(widths)
    for stage_index in range(num_stages - 1):
        # _assign_responsibilities routes through exactly the stages trained
        # so far, so pass the prefix (as the incremental cold loop does).
        RQRMI._assign_responsibilities(
            stages[: stage_index + 1], responsibilities, widths, stage_index
        )

    last = num_stages - 1
    width = widths[last]
    slot_intervals = responsibilities[last]
    old_leaves = warm.stages[last]
    stage_models: list[Submodel | None] = [None] * width
    error_bounds = [0] * width

    warm_slots: list[int] = []
    warm_bound_snapshot: dict[int, tuple[Submodel, int]] = {}
    for slot in range(width):
        intervals = slot_intervals[slot]
        if not intervals:
            stage_models[slot] = Submodel.identity(config.hidden_units)
            continue
        old_leaf = old_leaves[slot]
        if _slot_signature(intervals, warm.ranges) == _slot_signature(intervals, ranges):
            # Identical range content inside the responsibility: the old
            # weights *and* the old certified bound carry over unchanged.
            stage_models[slot] = old_leaf.copy()
            error_bounds[slot] = warm.error_bounds[slot]
            report.submodels_reused += 1
            continue
        bound = RQRMI._error_bound_for(stages, old_leaf, intervals, ranges, widths)
        if bound <= config.error_threshold:
            # Changed content, but the old weights still certify: reuse them
            # under the freshly computed bound — no training at all.
            stage_models[slot] = old_leaf.copy()
            error_bounds[slot] = bound
            report.submodels_reused += 1
            continue
        warm_bound_snapshot[slot] = (old_leaf.copy(), bound)
        warm_slots.append(slot)

    if warm_slots:
        # Seed the failing slots from the old weights; the first (short)
        # attempt is warm, retries fall back to cold full-budget training.
        for slot in warm_slots:
            error_bounds[slot] = warm_bound_snapshot[slot][1]
            stage_models[slot] = warm_bound_snapshot[slot][0]
        _train_last_stage_with_retries(
            stages, slot_intervals, ranges, config, widths, report,
            pipeline_config, last, warm_slots, stage_models, error_bounds,
            inits={slot: warm_bound_snapshot[slot][0].weights() for slot in warm_slots},
            first_epochs=pipeline_config.resolve_warm_epochs(config.adam_epochs),
        )
        report.warm_trained += len(warm_slots) - report.cold_fallbacks

    stages.append([model for model in stage_models if model is not None])
    return _finalise(ranges, widths, stages, error_bounds, report, config)


# ---------------------------------------------------------------------------
# Build orchestrator: per-iSet process fan-out
# ---------------------------------------------------------------------------


def _train_rqrmi_job(payload: dict) -> dict:
    """Process-pool worker: train one RQ-RMI from serialized inputs.

    Everything crosses the process boundary as JSON-compatible state dicts
    (exact float round-trips), so a pooled job returns bit-identical weights
    to the same job run inline.
    """
    ranges = RangeSet.from_state(payload["ranges"])
    config = RQRMIConfig(**payload["config"])
    warm = RQRMI.from_state(payload["warm"]) if payload.get("warm") else None
    pipeline_config = PipelineConfig(**payload["pipeline"])
    model = train_rqrmi(
        ranges, config, warm_from=warm, pipeline_config=pipeline_config
    )
    return model.to_state()


class TrainingPipeline:
    """Build orchestrator: trains many RQ-RMIs, optionally across processes.

    One pipeline instance carries the training policy (job count, warm-start
    epoch budget, stacked-trainer chunking) and is shared by everything that
    builds classifiers: :meth:`NuevoMatch.build
    <repro.core.nuevomatch.NuevoMatch.build>`,
    :meth:`ClassificationEngine.build
    <repro.engine.engine.ClassificationEngine.build>`, the sharded engine's
    background retrains, and the ``repro train`` CLI.
    """

    def __init__(self, config: PipelineConfig | None = None, **overrides):
        if config is not None and overrides:
            raise ValueError("pass either a PipelineConfig or keyword overrides")
        self.config = config or PipelineConfig(**overrides)

    @property
    def jobs(self) -> int:
        return self.config.jobs

    def train_rqrmi(
        self,
        ranges: RangeSet,
        config: RQRMIConfig | None = None,
        warm_from: RQRMI | None = None,
    ) -> RQRMI:
        """Train a single RQ-RMI inline (no process fan-out)."""
        return train_rqrmi(
            ranges, config, warm_from=warm_from, pipeline_config=self.config
        )

    def train_many(
        self,
        specs: list[tuple[RangeSet, RQRMIConfig, RQRMI | None]],
    ) -> list[RQRMI]:
        """Train one RQ-RMI per ``(ranges, config, warm_from)`` spec.

        Independent jobs fan out across a process pool when ``jobs > 1``;
        per-job seeding is deterministic, so the results do not depend on the
        pool width or scheduling order.
        """
        if not specs:
            return []
        # Forking a multithreaded process can deadlock the children (a worker
        # forked while another thread holds an allocator/BLAS lock hangs
        # forever) — exactly the situation when a sharded engine's background
        # retrain fans out while serving threads are live.  The alternative
        # start methods re-execute ``__main__`` in every worker, which is its
        # own foot-gun for unguarded scripts, so with other threads alive the
        # jobs simply run inline: the results are identical by construction
        # (deterministic per-job seeding), only the fan-out is skipped.
        if (
            self.config.jobs <= 1
            or len(specs) == 1
            or threading.active_count() > 1
        ):
            return [
                self.train_rqrmi(ranges, config, warm_from=warm)
                for ranges, config, warm in specs
            ]
        payloads = [
            {
                "ranges": ranges.to_state(),
                "config": asdict(config or RQRMIConfig()),
                "warm": warm.to_state() if warm is not None else None,
                "pipeline": asdict(self.config),
            }
            for ranges, config, warm in specs
        ]
        workers = min(self.config.jobs, len(specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            states = list(pool.map(_train_rqrmi_job, payloads))
        return [RQRMI.from_state(state) for state in states]

    def describe(self) -> dict:
        """JSON-safe provenance snapshot of the pipeline policy."""
        return {
            "jobs": self.config.jobs,
            "vectorized": self.config.vectorized,
            "warm_epochs": self.config.warm_epochs,
        }
