"""Rule-set structure metrics: diversity and centrality (§3.7).

These metrics predict how well a rule-set lends itself to iSet partitioning:

* **Diversity** of a field is the number of unique values/ranges in that field
  divided by the number of rules; it upper-bounds the fraction of rules the
  largest iSet over that field can cover.
* **Centrality** is the largest number of rules that pairwise overlap (all
  share a common point in the multi-dimensional space); it lower-bounds the
  number of iSets needed for full coverage.
"""

from __future__ import annotations

import random

from repro.rules.rule import Rule, RuleSet

__all__ = ["field_diversity", "ruleset_diversity", "ruleset_centrality", "partition_quality"]


def field_diversity(ruleset: RuleSet, dim: int) -> float:
    """Unique ranges in field ``dim`` divided by the number of rules."""
    return ruleset.field_diversity(dim)


def ruleset_diversity(ruleset: RuleSet) -> dict[str, float]:
    """Per-field diversity, keyed by field name."""
    return ruleset.diversity()


def _stabbing_count(ruleset: RuleSet, point: tuple[int, ...]) -> int:
    return sum(1 for rule in ruleset if rule.matches(point))


def ruleset_centrality(ruleset: RuleSet, sample_points: int = 256, seed: int = 0) -> int:
    """Estimate the rule-set centrality (a lower bound, §3.7).

    Rules that all contain one common point pairwise overlap, so the maximum
    *stabbing number* over a set of candidate points lower-bounds centrality.
    Candidate points are the lower corners of (a sample of) the rules — the
    stabbing number over a box arrangement is always attained at a corner —
    plus a few random packets.  Exact centrality is a maximum-clique problem;
    this estimator is what the analysis benchmarks report.
    """
    if len(ruleset) == 0:
        return 0
    rng = random.Random(seed)
    rules = list(ruleset.rules)
    if len(rules) > sample_points:
        rules = rng.sample(rules, sample_points)
    best = 0
    for rule in rules:
        corner = tuple(lo for lo, _hi in rule.ranges)
        best = max(best, _stabbing_count(ruleset, corner))
    for _ in range(min(sample_points, 64)):
        rule = rng.choice(list(ruleset.rules))
        best = max(best, _stabbing_count(ruleset, tuple(rule.sample_packet(rng))))
    return best


def partition_quality(ruleset: RuleSet, num_isets: int = 4) -> dict[str, object]:
    """Summary of how amenable ``ruleset`` is to iSet partitioning.

    Combines diversity, estimated centrality and the cumulative coverage of
    the first ``num_isets`` iSets into one report (used by the coverage
    analyses and Table 2 / Table 3 benchmarks).
    """
    from repro.core.isets import partition_isets

    partition = partition_isets(ruleset, max_isets=num_isets)
    return {
        "diversity": ruleset_diversity(ruleset),
        "max_diversity": max(ruleset_diversity(ruleset).values()) if len(ruleset) else 0.0,
        "centrality_lower_bound": ruleset_centrality(ruleset),
        "cumulative_coverage": partition.cumulative_coverage(),
        "remainder_fraction": 1.0 - partition.coverage,
    }
