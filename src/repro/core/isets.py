"""iSet partitioning (§3.6).

NuevoMatch handles multi-field classification with overlapping ranges by
splitting the rule-set into *independent sets* (iSets): each iSet is a group
of rules whose ranges do **not** overlap in one chosen field, so a single
one-dimensional RQ-RMI can index them.  The partitioning heuristic (§3.6.1)
repeatedly finds the largest iSet over any field — using the classical
interval-scheduling maximisation algorithm per field — removes its rules and
continues; iSets that remain too small are merged into the *remainder set*
handled by an external classifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rules.rule import Rule, RuleSet

__all__ = [
    "ISet",
    "PartitionResult",
    "max_independent_set",
    "partition_isets",
    "partition_shards",
]


@dataclass
class ISet:
    """One independent set: rules that do not overlap in field ``dim``.

    ``rules`` are sorted by their range lower bound in ``dim`` — the order of
    the value array the RQ-RMI predicts indices into.
    """

    dim: int
    rules: list[Rule]
    total_rules: int

    @property
    def coverage(self) -> float:
        """Fraction of the original rule-set this iSet holds."""
        return len(self.rules) / self.total_rules if self.total_rules else 0.0

    def __len__(self) -> int:
        return len(self.rules)

    def ranges(self) -> list[tuple[int, int]]:
        """The (disjoint) ranges of the rules in field ``dim``, sorted."""
        return [rule.ranges[self.dim] for rule in self.rules]


@dataclass
class PartitionResult:
    """Outcome of iSet partitioning."""

    isets: list[ISet]
    remainder: list[Rule]
    total_rules: int

    @property
    def coverage(self) -> float:
        """Fraction of the rule-set covered by the kept iSets."""
        covered = sum(len(iset) for iset in self.isets)
        return covered / self.total_rules if self.total_rules else 0.0

    def cumulative_coverage(self) -> list[float]:
        """Coverage after 1, 2, ... iSets (Table 2 rows)."""
        out: list[float] = []
        covered = 0
        for iset in self.isets:
            covered += len(iset)
            out.append(covered / self.total_rules if self.total_rules else 0.0)
        return out


def max_independent_set(rules: list[Rule], dim: int) -> list[Rule]:
    """Largest subset of ``rules`` with pairwise non-overlapping ranges in ``dim``.

    Classical interval-scheduling maximisation: sort by the range upper bound
    and greedily take every range that starts after the last accepted one ends.
    The greedy solution is optimal for this one-dimensional problem.
    """
    ordered = sorted(rules, key=lambda rule: rule.ranges[dim][1])
    chosen: list[Rule] = []
    last_hi = -1
    for rule in ordered:
        lo, hi = rule.ranges[dim]
        if lo > last_hi:
            chosen.append(rule)
            last_hi = hi
    chosen.sort(key=lambda rule: rule.ranges[dim][0])
    return chosen


def partition_isets(
    ruleset: RuleSet,
    max_isets: int | None = None,
    min_coverage: float = 0.0,
) -> PartitionResult:
    """Greedy iSet construction (§3.6.1).

    Repeatedly builds the largest iSet over every field, keeps the largest
    among them, removes its rules and continues until the input is exhausted,
    ``max_isets`` iSets have been produced, or the next iSet would fall below
    ``min_coverage`` (as a fraction of the *original* rule-set).  Rules not
    covered by the kept iSets form the remainder.

    Args:
        ruleset: The input rules.
        max_isets: Optional upper bound on the number of iSets returned.
        min_coverage: Minimum coverage fraction for an iSet to be kept
            (0.25 or 0.05 in the paper's experiments, depending on the
            remainder classifier).

    Returns:
        A :class:`PartitionResult` with iSets ordered largest-first.
    """
    total = len(ruleset)
    remaining: list[Rule] = list(ruleset.rules)
    isets: list[ISet] = []
    num_fields = len(ruleset.schema)

    while remaining:
        if max_isets is not None and len(isets) >= max_isets:
            break
        best: list[Rule] | None = None
        best_dim = -1
        for dim in range(num_fields):
            candidate = max_independent_set(remaining, dim)
            if best is None or len(candidate) > len(best):
                best = candidate
                best_dim = dim
        if not best:
            break
        if total and len(best) / total < min_coverage:
            break
        isets.append(ISet(dim=best_dim, rules=best, total_rules=total))
        chosen_ids = {rule.rule_id for rule in best}
        remaining = [rule for rule in remaining if rule.rule_id not in chosen_ids]

    return PartitionResult(isets=isets, remainder=remaining, total_rules=total)


def partition_shards(
    ruleset: RuleSet,
    num_shards: int,
    min_coverage: float = 0.0,
    partition: PartitionResult | None = None,
) -> list[list[Rule]]:
    """Split a rule-set into ``num_shards`` balanced, iSet-aware groups.

    The paper scales NuevoMatch by distributing iSets (and the remainder)
    across cores; this helper reproduces that split at the rule level so each
    shard can build its own classifier.  iSets from :func:`partition_isets`
    are cut into contiguous chunks no larger than the per-shard target size —
    any subset of an iSet is still an iSet (pairwise non-overlap is preserved),
    so chunking keeps the property each shard's RQ-RMI relies on while
    avoiding one giant shard.  Chunks are then assigned to the currently
    smallest shard (longest-processing-time greedy bin packing, largest chunk
    first) and remainder rules top up the smallest shards one by one.

    Every rule lands in exactly one shard; the union of the shards is the
    input rule-set.

    Args:
        ruleset: The input rules.
        num_shards: Number of groups, ``1 <= num_shards <= len(ruleset)``.
        min_coverage: Forwarded to :func:`partition_isets`.
        partition: A precomputed :func:`partition_isets` result over
            ``ruleset``; passing one skips the (expensive) recomputation when
            the caller already partitioned the rules, e.g. to choose a
            strategy.  ``min_coverage`` is ignored in that case.

    Returns:
        ``num_shards`` non-empty rule lists.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if num_shards > len(ruleset):
        raise ValueError(
            f"cannot split {len(ruleset)} rules into {num_shards} shards"
        )
    if num_shards == 1:
        return [list(ruleset.rules)]

    if partition is None:
        partition = partition_isets(ruleset, min_coverage=min_coverage)
    shards: list[list[Rule]] = [[] for _ in range(num_shards)]
    target = -(-len(ruleset) // num_shards)  # ceil division

    chunks: list[list[Rule]] = []
    for iset in partition.isets:
        num_chunks = -(-len(iset) // target)
        chunk_size = -(-len(iset) // num_chunks)
        for start in range(0, len(iset), chunk_size):
            chunks.append(iset.rules[start : start + chunk_size])

    def smallest() -> list[Rule]:
        return min(shards, key=len)

    for chunk in sorted(chunks, key=len, reverse=True):
        smallest().extend(chunk)
    for rule in partition.remainder:
        smallest().append(rule)

    # Tiny inputs can leave a shard empty (e.g. one giant iSet and no
    # remainder); rebalance by stealing single rules from the largest shard.
    for shard in shards:
        while not shard:
            donor = max(shards, key=len)
            if len(donor) <= 1:
                break
            shard.append(donor.pop())
    return shards
