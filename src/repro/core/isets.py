"""iSet partitioning (§3.6).

NuevoMatch handles multi-field classification with overlapping ranges by
splitting the rule-set into *independent sets* (iSets): each iSet is a group
of rules whose ranges do **not** overlap in one chosen field, so a single
one-dimensional RQ-RMI can index them.  The partitioning heuristic (§3.6.1)
repeatedly finds the largest iSet over any field — using the classical
interval-scheduling maximisation algorithm per field — removes its rules and
continues; iSets that remain too small are merged into the *remainder set*
handled by an external classifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rules.rule import Rule, RuleSet

__all__ = ["ISet", "PartitionResult", "max_independent_set", "partition_isets"]


@dataclass
class ISet:
    """One independent set: rules that do not overlap in field ``dim``.

    ``rules`` are sorted by their range lower bound in ``dim`` — the order of
    the value array the RQ-RMI predicts indices into.
    """

    dim: int
    rules: list[Rule]
    total_rules: int

    @property
    def coverage(self) -> float:
        """Fraction of the original rule-set this iSet holds."""
        return len(self.rules) / self.total_rules if self.total_rules else 0.0

    def __len__(self) -> int:
        return len(self.rules)

    def ranges(self) -> list[tuple[int, int]]:
        """The (disjoint) ranges of the rules in field ``dim``, sorted."""
        return [rule.ranges[self.dim] for rule in self.rules]


@dataclass
class PartitionResult:
    """Outcome of iSet partitioning."""

    isets: list[ISet]
    remainder: list[Rule]
    total_rules: int

    @property
    def coverage(self) -> float:
        """Fraction of the rule-set covered by the kept iSets."""
        covered = sum(len(iset) for iset in self.isets)
        return covered / self.total_rules if self.total_rules else 0.0

    def cumulative_coverage(self) -> list[float]:
        """Coverage after 1, 2, ... iSets (Table 2 rows)."""
        out: list[float] = []
        covered = 0
        for iset in self.isets:
            covered += len(iset)
            out.append(covered / self.total_rules if self.total_rules else 0.0)
        return out


def max_independent_set(rules: list[Rule], dim: int) -> list[Rule]:
    """Largest subset of ``rules`` with pairwise non-overlapping ranges in ``dim``.

    Classical interval-scheduling maximisation: sort by the range upper bound
    and greedily take every range that starts after the last accepted one ends.
    The greedy solution is optimal for this one-dimensional problem.
    """
    ordered = sorted(rules, key=lambda rule: rule.ranges[dim][1])
    chosen: list[Rule] = []
    last_hi = -1
    for rule in ordered:
        lo, hi = rule.ranges[dim]
        if lo > last_hi:
            chosen.append(rule)
            last_hi = hi
    chosen.sort(key=lambda rule: rule.ranges[dim][0])
    return chosen


def partition_isets(
    ruleset: RuleSet,
    max_isets: int | None = None,
    min_coverage: float = 0.0,
) -> PartitionResult:
    """Greedy iSet construction (§3.6.1).

    Repeatedly builds the largest iSet over every field, keeps the largest
    among them, removes its rules and continues until the input is exhausted,
    ``max_isets`` iSets have been produced, or the next iSet would fall below
    ``min_coverage`` (as a fraction of the *original* rule-set).  Rules not
    covered by the kept iSets form the remainder.

    Args:
        ruleset: The input rules.
        max_isets: Optional upper bound on the number of iSets returned.
        min_coverage: Minimum coverage fraction for an iSet to be kept
            (0.25 or 0.05 in the paper's experiments, depending on the
            remainder classifier).

    Returns:
        A :class:`PartitionResult` with iSets ordered largest-first.
    """
    total = len(ruleset)
    remaining: list[Rule] = list(ruleset.rules)
    isets: list[ISet] = []
    num_fields = len(ruleset.schema)

    while remaining:
        if max_isets is not None and len(isets) >= max_isets:
            break
        best: list[Rule] | None = None
        best_dim = -1
        for dim in range(num_fields):
            candidate = max_independent_set(remaining, dim)
            if best is None or len(candidate) > len(best):
                best = candidate
                best_dim = dim
        if not best:
            break
        if total and len(best) / total < min_coverage:
            break
        isets.append(ISet(dim=best_dim, rules=best, total_rules=total))
        chosen_ids = {rule.rule_id for rule in best}
        remaining = [rule for rule in remaining if rule.rule_id not in chosen_ids]

    return PartitionResult(isets=isets, remainder=remaining, total_rules=total)
