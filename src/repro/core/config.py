"""RQ-RMI and NuevoMatch configuration.

Table 4 of the paper gives the RQ-RMI structure (number of stages and stage
widths) as a function of the rule-set size; §4 and §5.1 give the remaining
operating parameters (8 hidden neurons per submodel, maximum error threshold
64, iSet coverage cut-offs of 25% / 5% depending on the remainder classifier).
This module centralises those knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "RQRMIConfig",
    "NuevoMatchConfig",
    "stage_widths_for_rules",
    "TABLE4_CONFIGS",
]

#: Table 4 — RQ-RMI configurations for different input rule-set sizes.
TABLE4_CONFIGS: list[tuple[int, int, list[int]]] = [
    # (max_rules_exclusive, num_stages, stage widths)
    (1_000, 2, [1, 4]),
    (10_000, 3, [1, 4, 16]),
    (100_000, 3, [1, 4, 128]),
    (500_000, 3, [1, 8, 256]),
    (10**12, 3, [1, 8, 512]),
]


def stage_widths_for_rules(num_rules: int) -> list[int]:
    """Stage widths recommended by Table 4 for an iSet of ``num_rules`` rules."""
    for max_rules, _stages, widths in TABLE4_CONFIGS:
        if num_rules < max_rules:
            return list(widths)
    return list(TABLE4_CONFIGS[-1][2])


@dataclass
class RQRMIConfig:
    """Configuration of one RQ-RMI model.

    Attributes:
        stage_widths: Number of submodels per stage; ``None`` selects the
            Table 4 configuration for the iSet size at training time.
        hidden_units: Hidden-layer width of every submodel (8 in the paper).
        error_threshold: Maximum allowed prediction-error bound (in array
            slots) for last-stage submodels; 64 in the paper's evaluation.
        max_retrain_attempts: How many times a failing submodel is retrained
            with a doubled sample count before the bound is accepted as-is.
        initial_samples: Initial number of training samples per submodel.
        adam_epochs: Full-batch Adam epochs per training attempt.
        learning_rate: Adam learning rate.
        seed: Base RNG seed for weight init and sampling.
    """

    stage_widths: list[int] | None = None
    hidden_units: int = 8
    error_threshold: int = 64
    max_retrain_attempts: int = 4
    initial_samples: int = 512
    adam_epochs: int = 300
    learning_rate: float = 0.05
    seed: int = 1

    def widths_for(self, num_rules: int) -> list[int]:
        if self.stage_widths is not None:
            return list(self.stage_widths)
        return stage_widths_for_rules(num_rules)


@dataclass
class NuevoMatchConfig:
    """Configuration of the end-to-end NuevoMatch classifier.

    Attributes:
        max_isets: Upper bound on the number of iSets kept (the rest is merged
            into the remainder).  ``None`` keeps every iSet above the coverage
            threshold.
        min_iset_coverage: Minimum fraction of the original rule-set an iSet
            must cover to be kept (0.25 when the remainder is a decision tree,
            0.05 for TupleMerge — §5.1).
        rqrmi: Configuration of the per-iSet RQ-RMI models.
        early_termination: Query the remainder with a priority floor taken
            from the iSet results (single-core mode, §4).
        remainder_params: Extra keyword arguments for the remainder
            classifier's ``build``.
    """

    max_isets: int | None = None
    min_iset_coverage: float = 0.25
    rqrmi: RQRMIConfig = field(default_factory=RQRMIConfig)
    early_termination: bool = True
    remainder_params: dict = field(default_factory=dict)
