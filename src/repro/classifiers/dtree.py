"""Shared decision-tree machinery for the cutting-based classifiers.

HiCuts, CutSplit and the NeuroCuts-style classifier all build trees over the
multi-dimensional rule space: internal nodes *cut* one dimension into equal
sub-ranges or *split* it at a chosen point, and leaves hold at most ``binth``
rules scanned linearly.  This module provides the node types, a generic
recursive builder parameterised by a per-node policy, traced lookups, the
early-termination bookkeeping (per-node best priority, §4 of the paper), and
memory-footprint accounting that reflects rule replication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.classifiers.base import (
    ClassificationResult,
    LookupTrace,
    MemoryFootprint,
    NODE_HEADER_BYTES,
    POINTER_BYTES,
    RULE_ENTRY_BYTES,
)
from repro.rules.rule import Packet, Rule

__all__ = [
    "Space",
    "CutAction",
    "SplitAction",
    "LeafAction",
    "TreeNode",
    "LeafNode",
    "CutNode",
    "SplitNode",
    "DecisionTree",
    "build_tree",
    "TreeStats",
]

#: A hyper-rectangle: one inclusive (lo, hi) per dimension.
Space = tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class CutAction:
    """Cut dimension ``dim`` of the node's space into ``num_cuts`` equal parts."""

    dim: int
    num_cuts: int


@dataclass(frozen=True)
class SplitAction:
    """Split dimension ``dim`` at ``threshold``: values <= threshold go left."""

    dim: int
    threshold: int


@dataclass(frozen=True)
class LeafAction:
    """Stop partitioning and store the node's rules in a leaf."""


#: A policy maps (space, rules, depth) to the action to take at that node.
Policy = Callable[[Space, list[Rule], int], CutAction | SplitAction | LeafAction]


class TreeNode:
    """Base class for tree nodes; tracks the best priority in the subtree."""

    __slots__ = ("best_priority",)

    def __init__(self) -> None:
        self.best_priority: Optional[int] = None


class LeafNode(TreeNode):
    __slots__ = ("rules",)

    def __init__(self, rules: list[Rule]):
        super().__init__()
        self.rules = sorted(rules, key=lambda rule: rule.priority)
        self.best_priority = self.rules[0].priority if self.rules else None


class CutNode(TreeNode):
    __slots__ = ("dim", "num_cuts", "lo", "hi", "children")

    def __init__(self, dim: int, num_cuts: int, lo: int, hi: int, children: list[TreeNode]):
        super().__init__()
        self.dim = dim
        self.num_cuts = num_cuts
        self.lo = lo
        self.hi = hi
        self.children = children
        priorities = [c.best_priority for c in children if c.best_priority is not None]
        self.best_priority = min(priorities) if priorities else None

    def child_index(self, value: int) -> int:
        span = self.hi - self.lo + 1
        index = (value - self.lo) * self.num_cuts // span
        return min(max(index, 0), self.num_cuts - 1)

    def child_space(self, index: int) -> tuple[int, int]:
        span = self.hi - self.lo + 1
        lo = self.lo + (span * index) // self.num_cuts
        hi = self.lo + (span * (index + 1)) // self.num_cuts - 1
        return lo, hi


class SplitNode(TreeNode):
    __slots__ = ("dim", "threshold", "left", "right")

    def __init__(self, dim: int, threshold: int, left: TreeNode, right: TreeNode):
        super().__init__()
        self.dim = dim
        self.threshold = threshold
        self.left = left
        self.right = right
        priorities = [
            child.best_priority
            for child in (left, right)
            if child.best_priority is not None
        ]
        self.best_priority = min(priorities) if priorities else None


@dataclass
class TreeStats:
    """Structural statistics of a built tree."""

    num_nodes: int = 0
    num_leaves: int = 0
    num_cut_nodes: int = 0
    num_split_nodes: int = 0
    max_depth: int = 0
    total_leaf_rule_slots: int = 0   # counts replication
    max_leaf_size: int = 0

    @property
    def replication_factor(self) -> float:
        """Stored rule slots divided by distinct rules (>= 1 when replication)."""
        return self.total_leaf_rule_slots


def _rules_intersecting(rules: list[Rule], dim: int, lo: int, hi: int) -> list[Rule]:
    out = []
    for rule in rules:
        rlo, rhi = rule.ranges[dim]
        if rhi >= lo and rlo <= hi:
            out.append(rule)
    return out


def build_tree(
    rules: list[Rule],
    space: Space,
    policy: Policy,
    binth: int = 8,
    max_depth: int = 32,
) -> TreeNode:
    """Recursively build a decision tree using ``policy`` at every node.

    The builder guards against non-progress: if a cut fails to reduce the rule
    count in every child (pure replication), it falls back to a median
    endpoint split on the most discriminating dimension, and only becomes a
    leaf if that split cannot separate the rules either.
    """

    def _fallback_split(node_space: Space, node_rules: list[Rule]):
        """Median endpoint split used when an equal cut makes no progress.

        Large nodes are evaluated on a sample of their rules: the split point
        only needs to be a reasonable median, and sampling keeps construction
        time linear in the rule count.
        """
        sample = node_rules if len(node_rules) <= 256 else node_rules[:: len(node_rules) // 256]
        best: SplitAction | None = None
        best_score: tuple[int, int] | None = None
        for dim, (lo, hi) in enumerate(node_space):
            if hi <= lo:
                continue
            endpoints = sorted(
                {
                    rule.ranges[dim][1]
                    for rule in sample
                    if lo <= rule.ranges[dim][1] < hi
                }
            )
            if not endpoints:
                continue
            threshold = endpoints[len(endpoints) // 2]
            left = sum(1 for rule in sample if rule.ranges[dim][0] <= threshold)
            right = sum(1 for rule in sample if rule.ranges[dim][1] > threshold)
            if max(left, right) >= len(sample):
                continue
            # Prefer the split that replicates the fewest rules, then balance.
            score = (left + right, max(left, right))
            if best_score is None or score < best_score:
                best = SplitAction(dim, threshold)
                best_score = score
        if best_score is not None and best_score[0] > 1.3 * len(sample):
            return None  # heavy replication: let the caller keep a leaf
        return best

    def _build(node_rules: list[Rule], node_space: Space, depth: int) -> TreeNode:
        if len(node_rules) <= binth or depth >= max_depth:
            return LeafNode(node_rules)
        action = policy(node_space, node_rules, depth)
        if isinstance(action, LeafAction):
            fallback = _fallback_split(node_space, node_rules)
            if fallback is None:
                return LeafNode(node_rules)
            action = fallback

        if isinstance(action, CutAction):
            dim, num_cuts = action.dim, action.num_cuts
            lo, hi = node_space[dim]
            span = hi - lo + 1
            num_cuts = max(2, min(num_cuts, span))
            probe = CutNode(dim, num_cuts, lo, hi, [])
            child_rule_lists: list[tuple[tuple[int, int], list[Rule]]] = []
            progress = False
            total_child_slots = 0
            for index in range(num_cuts):
                child_lo, child_hi = probe.child_space(index)
                child_rules = _rules_intersecting(node_rules, dim, child_lo, child_hi)
                child_rule_lists.append(((child_lo, child_hi), child_rules))
                total_child_slots += len(child_rules)
                if len(child_rules) < len(node_rules):
                    progress = True
            # A cut that replicates the node's rules more than 2x (wildcard-heavy
            # inputs) explodes both memory and build time: prefer a split.
            excessive_replication = total_child_slots > 2 * len(node_rules)
            if not progress or excessive_replication:
                # The cut only replicated the rules: try a split instead, and
                # keep a (larger) leaf when no split helps either.
                fallback = _fallback_split(node_space, node_rules)
                if fallback is None:
                    return LeafNode(node_rules)
                action = fallback
            if isinstance(action, CutAction):
                children = []
                for (child_lo, child_hi), child_rules in child_rule_lists:
                    child_space = tuple(
                        (child_lo, child_hi) if d == dim else node_space[d]
                        for d in range(len(node_space))
                    )
                    children.append(_build(child_rules, child_space, depth + 1))
                return CutNode(dim, num_cuts, lo, hi, children)

        if isinstance(action, SplitAction):
            dim, threshold = action.dim, action.threshold
            lo, hi = node_space[dim]
            threshold = min(max(threshold, lo), hi - 1)
            left_rules = _rules_intersecting(node_rules, dim, lo, threshold)
            right_rules = _rules_intersecting(node_rules, dim, threshold + 1, hi)
            if len(left_rules) == len(node_rules) and len(right_rules) == len(node_rules):
                return LeafNode(node_rules)
            left_space = tuple(
                (lo, threshold) if d == dim else node_space[d]
                for d in range(len(node_space))
            )
            right_space = tuple(
                (threshold + 1, hi) if d == dim else node_space[d]
                for d in range(len(node_space))
            )
            left = _build(left_rules, left_space, depth + 1)
            right = _build(right_rules, right_space, depth + 1)
            return SplitNode(dim, threshold, left, right)

        raise TypeError(f"unknown policy action: {action!r}")

    return _build(list(rules), space, 0)


class DecisionTree:
    """A built tree plus traced lookup, statistics and footprint accounting."""

    def __init__(self, root: TreeNode):
        self.root = root

    # -- lookup ------------------------------------------------------------------

    def lookup(
        self,
        values: Sequence[int],
        trace: LookupTrace,
        priority_floor: Optional[int] = None,
    ) -> Optional[Rule]:
        """Walk the tree for ``values``; returns the best matching rule.

        ``priority_floor`` enables the paper's early-termination optimisation:
        subtrees whose best priority cannot beat the floor are not entered.
        """
        node = self.root
        while True:
            trace.index_accesses += 1
            if (
                priority_floor is not None
                and node.best_priority is not None
                and node.best_priority >= priority_floor
            ):
                return None
            if isinstance(node, LeafNode):
                for rule in node.rules:
                    if priority_floor is not None and rule.priority >= priority_floor:
                        return None  # leaf rules are priority-sorted
                    trace.rule_accesses += 1
                    trace.compute_ops += len(values)
                    if rule.matches(values):
                        return rule
                return None
            if isinstance(node, CutNode):
                node = node.children[node.child_index(values[node.dim])]
            elif isinstance(node, SplitNode):
                node = node.left if values[node.dim] <= node.threshold else node.right
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown node type {type(node)!r}")

    def classify_traced(self, packet: Packet | Sequence[int]) -> ClassificationResult:
        values = packet.values if isinstance(packet, Packet) else tuple(packet)
        trace = LookupTrace()
        rule = self.lookup(values, trace)
        return ClassificationResult(rule, trace)

    # -- statistics -----------------------------------------------------------------

    def stats(self) -> TreeStats:
        stats = TreeStats()

        def _walk(node: TreeNode, depth: int) -> None:
            stats.num_nodes += 1
            stats.max_depth = max(stats.max_depth, depth)
            if isinstance(node, LeafNode):
                stats.num_leaves += 1
                stats.total_leaf_rule_slots += len(node.rules)
                stats.max_leaf_size = max(stats.max_leaf_size, len(node.rules))
            elif isinstance(node, CutNode):
                stats.num_cut_nodes += 1
                for child in node.children:
                    _walk(child, depth + 1)
            elif isinstance(node, SplitNode):
                stats.num_split_nodes += 1
                _walk(node.left, depth + 1)
                _walk(node.right, depth + 1)

        _walk(self.root, 0)
        return stats

    def footprint(self, num_distinct_rules: int) -> MemoryFootprint:
        stats = self.stats()
        index_bytes = 0
        index_bytes += stats.num_leaves * NODE_HEADER_BYTES
        index_bytes += stats.total_leaf_rule_slots * POINTER_BYTES

        def _walk(node: TreeNode) -> int:
            if isinstance(node, LeafNode):
                return 0
            if isinstance(node, CutNode):
                size = NODE_HEADER_BYTES + node.num_cuts * POINTER_BYTES
                return size + sum(_walk(child) for child in node.children)
            if isinstance(node, SplitNode):
                size = NODE_HEADER_BYTES + 2 * POINTER_BYTES
                return size + _walk(node.left) + _walk(node.right)
            return 0

        index_bytes += _walk(self.root)
        rule_bytes = num_distinct_rules * RULE_ENTRY_BYTES
        return MemoryFootprint(
            index_bytes=index_bytes,
            rule_bytes=rule_bytes,
            breakdown={
                "internal_nodes": index_bytes
                - stats.num_leaves * NODE_HEADER_BYTES
                - stats.total_leaf_rule_slots * POINTER_BYTES,
                "leaves": stats.num_leaves * NODE_HEADER_BYTES,
                "leaf_rule_pointers": stats.total_leaf_rule_slots * POINTER_BYTES,
            },
        )
