"""Linear-search classifier.

The simplest possible classifier: scan every rule in priority order and return
the first match.  It is used as the correctness oracle in tests and as the
degenerate baseline in benchmarks; its lookup cost grows linearly with the
rule-set, which is exactly why the paper's algorithms exist.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.classifiers.base import (
    ClassificationResult,
    Classifier,
    LookupTrace,
    MemoryFootprint,
    RULE_ENTRY_BYTES,
)
from repro.classifiers.registry import register
from repro.rules.rule import Packet, Rule, RuleSet

__all__ = ["LinearSearchClassifier"]

#: Packets per chunk in the vectorized batch path; bounds the (chunk × rules ×
#: fields) boolean intermediate to a few MB.
_BATCH_CHUNK = 512

#: Rules per chunk in the columnar block path: packets whose first match lands
#: in an early chunk drop out of the scan, so the common (skewed-traffic) case
#: never touches the tail of the rule array.
_RULE_CHUNK = 512


@register("linear", aliases=("linear-search",))
class LinearSearchClassifier(Classifier):
    """Priority-ordered linear scan over the rule array."""

    name = "linear"
    supports_block = True

    def __init__(self, ruleset: RuleSet):
        super().__init__(ruleset)
        self._ordered = sorted(ruleset.rules, key=lambda rule: rule.priority)
        if self._ordered:
            ranges = np.array([rule.ranges for rule in self._ordered], dtype=np.int64)
            self._lo = ranges[:, :, 0]
            self._hi = ranges[:, :, 1]
        else:
            num_fields = len(ruleset.schema)
            self._lo = np.empty((0, num_fields), dtype=np.int64)
            self._hi = np.empty((0, num_fields), dtype=np.int64)
        self._priorities = np.array(
            [rule.priority for rule in self._ordered], dtype=np.int64
        )
        self._rule_ids = np.array(
            [rule.rule_id for rule in self._ordered], dtype=np.int64
        )

    @classmethod
    def build(cls, ruleset: RuleSet, **params) -> "LinearSearchClassifier":
        return cls(ruleset)

    def classify_traced(self, packet: Packet | Sequence[int]) -> ClassificationResult:
        values = packet.values if isinstance(packet, Packet) else tuple(packet)
        trace = LookupTrace()
        for rule in self._ordered:
            trace.rule_accesses += 1
            trace.compute_ops += len(values)
            if rule.matches(values):
                return ClassificationResult(rule, trace)
        return ClassificationResult(None, trace)

    def classify_batch(
        self, packets: Sequence[Packet | Sequence[int]]
    ) -> list[ClassificationResult]:
        """Vectorized scan: one broadcasted range test per packet chunk.

        Returns exactly what the sequential path returns, traces included: the
        scan conceptually stops at the first (best-priority) matching rule, so
        ``rule_accesses`` is the 1-based position of that rule (or the full
        rule count on a miss).
        """
        packet_list = list(packets)
        num_rules = len(self._ordered)
        num_fields = self._lo.shape[1]
        results: list[ClassificationResult] = []
        for start in range(0, len(packet_list), _BATCH_CHUNK):
            chunk = packet_list[start : start + _BATCH_CHUNK]
            values = np.array([tuple(p) for p in chunk], dtype=np.int64)
            if num_rules == 0:
                results.extend(ClassificationResult(None, LookupTrace()) for _ in chunk)
                continue
            matched = np.all(
                (values[:, None, :] >= self._lo[None, :, :])
                & (values[:, None, :] <= self._hi[None, :, :]),
                axis=2,
            )
            any_match = matched.any(axis=1)
            first = np.argmax(matched, axis=1)
            for row in range(len(chunk)):
                if any_match[row]:
                    scanned = int(first[row]) + 1
                    rule: Optional[Rule] = self._ordered[int(first[row])]
                else:
                    scanned = num_rules
                    rule = None
                trace = LookupTrace(
                    rule_accesses=scanned, compute_ops=scanned * num_fields
                )
                results.append(ClassificationResult(rule, trace))
        return results

    def classify_block(
        self,
        block: np.ndarray,
        traces: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Columnar scan: allocation-free, bit-identical to :meth:`classify_batch`.

        Rules are scanned in :data:`_RULE_CHUNK` slices; packets resolved by an
        early chunk drop out of later ones, so trace semantics stay those of
        the sequential first-match scan (``rule_accesses`` is the 1-based
        position of the winning rule, or the full rule count on a miss).
        """
        block = np.asarray(block)
        n = block.shape[0]
        num_rules = len(self._ordered)
        num_fields = self._lo.shape[1]
        rule_ids = np.full(n, -1, dtype=np.int64)
        priorities = np.zeros(n, dtype=np.int64)
        if num_rules == 0 or n == 0:
            if traces is not None:
                traces[:n] = 0
            return rule_ids, priorities
        values = block.astype(np.int64, copy=False)
        for start in range(0, n, _BATCH_CHUNK):
            chunk = values[start : start + _BATCH_CHUNK]
            size = len(chunk)
            first = np.full(size, num_rules, dtype=np.int64)
            alive = np.arange(size)
            for rule_start in range(0, num_rules, _RULE_CHUNK):
                sub = chunk[alive]
                lo = self._lo[rule_start : rule_start + _RULE_CHUNK]
                hi = self._hi[rule_start : rule_start + _RULE_CHUNK]
                matched = np.all(
                    (sub[:, None, :] >= lo[None, :, :])
                    & (sub[:, None, :] <= hi[None, :, :]),
                    axis=2,
                )
                any_match = matched.any(axis=1)
                if any_match.any():
                    resolved = alive[any_match]
                    first[resolved] = rule_start + np.argmax(
                        matched[any_match], axis=1
                    )
                    alive = alive[~any_match]
                    if alive.size == 0:
                        break
            hits = first < num_rules
            winners = first[hits]
            out = slice(start, start + size)
            rule_ids[out][hits] = self._rule_ids[winners]
            priorities[out][hits] = self._priorities[winners]
            if traces is not None:
                scanned = np.where(hits, first + 1, np.int64(num_rules))
                trace_chunk = traces[out]
                trace_chunk[:, 0] = 0
                trace_chunk[:, 1] = scanned
                trace_chunk[:, 2] = 0
                trace_chunk[:, 3] = scanned * num_fields
                trace_chunk[:, 4] = 0
        return rule_ids, priorities

    def classify_with_floor(
        self, packet: Packet | Sequence[int], priority_floor: Optional[int]
    ) -> ClassificationResult:
        if priority_floor is None:
            return self.classify_traced(packet)
        values = packet.values if isinstance(packet, Packet) else tuple(packet)
        trace = LookupTrace()
        for rule in self._ordered:
            if rule.priority >= priority_floor:
                break  # rules are priority-ordered; nothing below can win
            trace.rule_accesses += 1
            trace.compute_ops += len(values)
            if rule.matches(values):
                return ClassificationResult(rule, trace)
        return ClassificationResult(None, trace)

    def memory_footprint(self) -> MemoryFootprint:
        rule_bytes = len(self._ordered) * RULE_ENTRY_BYTES
        return MemoryFootprint(
            index_bytes=0,
            rule_bytes=rule_bytes,
            breakdown={"rule_array": rule_bytes},
        )
