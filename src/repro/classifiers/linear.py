"""Linear-search classifier.

The simplest possible classifier: scan every rule in priority order and return
the first match.  It is used as the correctness oracle in tests and as the
degenerate baseline in benchmarks; its lookup cost grows linearly with the
rule-set, which is exactly why the paper's algorithms exist.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.classifiers.base import (
    ClassificationResult,
    Classifier,
    LookupTrace,
    MemoryFootprint,
    RULE_ENTRY_BYTES,
)
from repro.rules.rule import Packet, Rule, RuleSet

__all__ = ["LinearSearchClassifier"]


class LinearSearchClassifier(Classifier):
    """Priority-ordered linear scan over the rule array."""

    name = "linear"

    def __init__(self, ruleset: RuleSet):
        super().__init__(ruleset)
        self._ordered = sorted(ruleset.rules, key=lambda rule: rule.priority)

    @classmethod
    def build(cls, ruleset: RuleSet, **params) -> "LinearSearchClassifier":
        return cls(ruleset)

    def classify_traced(self, packet: Packet | Sequence[int]) -> ClassificationResult:
        values = packet.values if isinstance(packet, Packet) else tuple(packet)
        trace = LookupTrace()
        for rule in self._ordered:
            trace.rule_accesses += 1
            trace.compute_ops += len(values)
            if rule.matches(values):
                return ClassificationResult(rule, trace)
        return ClassificationResult(None, trace)

    def classify_with_floor(
        self, packet: Packet | Sequence[int], priority_floor: Optional[int]
    ) -> ClassificationResult:
        if priority_floor is None:
            return self.classify_traced(packet)
        values = packet.values if isinstance(packet, Packet) else tuple(packet)
        trace = LookupTrace()
        for rule in self._ordered:
            if rule.priority >= priority_floor:
                break  # rules are priority-ordered; nothing below can win
            trace.rule_accesses += 1
            trace.compute_ops += len(values)
            if rule.matches(values):
                return ClassificationResult(rule, trace)
        return ClassificationResult(None, trace)

    def memory_footprint(self) -> MemoryFootprint:
        rule_bytes = len(self._ordered) * RULE_ENTRY_BYTES
        return MemoryFootprint(
            index_bytes=0,
            rule_bytes=rule_bytes,
            breakdown={"rule_array": rule_bytes},
        )
