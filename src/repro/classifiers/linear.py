"""Linear-search classifier.

The simplest possible classifier: scan every rule in priority order and return
the first match.  It is used as the correctness oracle in tests and as the
degenerate baseline in benchmarks; its lookup cost grows linearly with the
rule-set, which is exactly why the paper's algorithms exist.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.classifiers.base import (
    ClassificationResult,
    Classifier,
    LookupTrace,
    MemoryFootprint,
    RULE_ENTRY_BYTES,
)
from repro.classifiers.registry import register
from repro.rules.rule import Packet, Rule, RuleSet

__all__ = ["LinearSearchClassifier"]

#: Packets per chunk in the vectorized batch path; bounds the (chunk × rules ×
#: fields) boolean intermediate to a few MB.
_BATCH_CHUNK = 512


@register("linear", aliases=("linear-search",))
class LinearSearchClassifier(Classifier):
    """Priority-ordered linear scan over the rule array."""

    name = "linear"

    def __init__(self, ruleset: RuleSet):
        super().__init__(ruleset)
        self._ordered = sorted(ruleset.rules, key=lambda rule: rule.priority)
        if self._ordered:
            ranges = np.array([rule.ranges for rule in self._ordered], dtype=np.int64)
            self._lo = ranges[:, :, 0]
            self._hi = ranges[:, :, 1]
        else:
            num_fields = len(ruleset.schema)
            self._lo = np.empty((0, num_fields), dtype=np.int64)
            self._hi = np.empty((0, num_fields), dtype=np.int64)

    @classmethod
    def build(cls, ruleset: RuleSet, **params) -> "LinearSearchClassifier":
        return cls(ruleset)

    def classify_traced(self, packet: Packet | Sequence[int]) -> ClassificationResult:
        values = packet.values if isinstance(packet, Packet) else tuple(packet)
        trace = LookupTrace()
        for rule in self._ordered:
            trace.rule_accesses += 1
            trace.compute_ops += len(values)
            if rule.matches(values):
                return ClassificationResult(rule, trace)
        return ClassificationResult(None, trace)

    def classify_batch(
        self, packets: Sequence[Packet | Sequence[int]]
    ) -> list[ClassificationResult]:
        """Vectorized scan: one broadcasted range test per packet chunk.

        Returns exactly what the sequential path returns, traces included: the
        scan conceptually stops at the first (best-priority) matching rule, so
        ``rule_accesses`` is the 1-based position of that rule (or the full
        rule count on a miss).
        """
        packet_list = list(packets)
        num_rules = len(self._ordered)
        num_fields = self._lo.shape[1]
        results: list[ClassificationResult] = []
        for start in range(0, len(packet_list), _BATCH_CHUNK):
            chunk = packet_list[start : start + _BATCH_CHUNK]
            values = np.array([tuple(p) for p in chunk], dtype=np.int64)
            if num_rules == 0:
                results.extend(ClassificationResult(None, LookupTrace()) for _ in chunk)
                continue
            matched = np.all(
                (values[:, None, :] >= self._lo[None, :, :])
                & (values[:, None, :] <= self._hi[None, :, :]),
                axis=2,
            )
            any_match = matched.any(axis=1)
            first = np.argmax(matched, axis=1)
            for row in range(len(chunk)):
                if any_match[row]:
                    scanned = int(first[row]) + 1
                    rule: Optional[Rule] = self._ordered[int(first[row])]
                else:
                    scanned = num_rules
                    rule = None
                trace = LookupTrace(
                    rule_accesses=scanned, compute_ops=scanned * num_fields
                )
                results.append(ClassificationResult(rule, trace))
        return results

    def classify_with_floor(
        self, packet: Packet | Sequence[int], priority_floor: Optional[int]
    ) -> ClassificationResult:
        if priority_floor is None:
            return self.classify_traced(packet)
        values = packet.values if isinstance(packet, Packet) else tuple(packet)
        trace = LookupTrace()
        for rule in self._ordered:
            if rule.priority >= priority_floor:
                break  # rules are priority-ordered; nothing below can win
            trace.rule_accesses += 1
            trace.compute_ops += len(values)
            if rule.matches(values):
                return ClassificationResult(rule, trace)
        return ClassificationResult(None, trace)

    def memory_footprint(self) -> MemoryFootprint:
        rule_bytes = len(self._ordered) * RULE_ENTRY_BYTES
        return MemoryFootprint(
            index_bytes=0,
            rule_bytes=rule_bytes,
            breakdown={"rule_array": rule_bytes},
        )
