"""HiCuts decision-tree classifier.

HiCuts [Gupta & McKeown 2000] recursively cuts the rule space with equal-sized
cuts along one dimension per node, chosen heuristically, until leaves hold at
most ``binth`` rules.  It is an early decision-tree classifier that suffers
from rule replication on large rule-sets — the very problem CutSplit and
NeuroCuts (and NuevoMatch) address — and serves here as a substrate baseline
and as the starting point of the tree family.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.classifiers.base import (
    ClassificationResult,
    Classifier,
    LookupTrace,
    MemoryFootprint,
)
from repro.classifiers.dtree import (
    CutAction,
    DecisionTree,
    LeafAction,
    Space,
    build_tree,
)
from repro.classifiers.registry import register
from repro.rules.rule import Packet, Rule, RuleSet

__all__ = ["HiCutsClassifier"]


def _distinct_projections(rules: list[Rule], dim: int) -> int:
    return len({rule.ranges[dim] for rule in rules})


def hicuts_policy(space_factor: float = 2.0, max_cuts: int = 16):
    """Return the HiCuts per-node policy.

    The dimension with the most distinct rule projections is cut; the number
    of cuts grows with the node's rule count but is capped by ``max_cuts`` and
    by the dimension's span (the ``spfac`` space-measure heuristic of the
    original paper, simplified).
    """

    def policy(space: Space, rules: list[Rule], depth: int):
        best_dim = None
        best_score = -1
        for dim, (lo, hi) in enumerate(space):
            if hi <= lo:
                continue
            score = _distinct_projections(rules, dim)
            if score > best_score:
                best_score = score
                best_dim = dim
        if best_dim is None or best_score <= 1:
            return LeafAction()
        desired = int(space_factor * math.sqrt(len(rules)))
        num_cuts = max(2, min(max_cuts, desired))
        # Round to a power of two, matching typical implementations.
        num_cuts = 1 << (num_cuts - 1).bit_length()
        num_cuts = min(num_cuts, max_cuts)
        return CutAction(best_dim, num_cuts)

    return policy


@register("hicuts")
class HiCutsClassifier(Classifier):
    """Single-tree HiCuts classifier."""

    name = "hicuts"

    def __init__(
        self,
        ruleset: RuleSet,
        binth: int = 8,
        space_factor: float = 2.0,
        max_cuts: int = 16,
        max_depth: int = 24,
    ):
        super().__init__(ruleset)
        self.binth = binth
        space = ruleset.schema.full_ranges()
        root = build_tree(
            list(ruleset.rules),
            space,
            hicuts_policy(space_factor, max_cuts),
            binth=binth,
            max_depth=max_depth,
        )
        self._tree = DecisionTree(root)

    @classmethod
    def build(cls, ruleset: RuleSet, binth: int = 8, **params) -> "HiCutsClassifier":
        classifier = cls(ruleset, binth=binth, **params)
        classifier.build_params = {"binth": binth, **params}
        return classifier

    def classify_traced(self, packet: Packet | Sequence[int]) -> ClassificationResult:
        return self._tree.classify_traced(packet)

    def classify_with_floor(
        self, packet: Packet | Sequence[int], priority_floor: Optional[int]
    ) -> ClassificationResult:
        values = packet.values if isinstance(packet, Packet) else tuple(packet)
        trace = LookupTrace()
        rule = self._tree.lookup(values, trace, priority_floor)
        return ClassificationResult(rule, trace)

    def memory_footprint(self) -> MemoryFootprint:
        return self._tree.footprint(len(self.ruleset))

    def statistics(self) -> dict[str, object]:
        stats = super().statistics()
        tree_stats = self._tree.stats()
        stats.update(
            num_nodes=tree_stats.num_nodes,
            num_leaves=tree_stats.num_leaves,
            max_depth=tree_stats.max_depth,
            leaf_rule_slots=tree_stats.total_leaf_rule_slots,
            replication=tree_stats.total_leaf_rule_slots / max(1, len(self.ruleset)),
        )
        return stats
