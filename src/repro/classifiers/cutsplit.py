"""CutSplit classifier.

CutSplit [Li et al., INFOCOM 2018] tames the rule-replication problem of
single-tree cutting algorithms with two ideas:

1. **Pre-partitioning**: rules are grouped by which of their IP fields are
   "small" (more specific than a threshold prefix length).  Rules with small
   source and destination prefixes, only a small source, only a small
   destination, or neither, go into separate groups; each group gets its own
   tree, so a wildcard field never forces replication in a tree that cuts it.
2. **Cut then split**: within a group the tree first applies equal-sized cuts
   (FiCuts) on the small fields — cheap, balanced, replication-free for that
   group — and switches to binary *splitting* at rule-range endpoints (in the
   spirit of HyperSplit) once the node is small enough, terminating with
   ``binth`` rules per leaf (8 in the paper and here).

A lookup queries every group tree and returns the best-priority match; the
trees are visited best-priority-first so the early-termination optimisation
can skip trees that cannot win.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.classifiers.base import (
    ClassificationResult,
    Classifier,
    LookupTrace,
    MemoryFootprint,
)
from repro.classifiers.dtree import (
    CutAction,
    DecisionTree,
    LeafAction,
    Space,
    SplitAction,
    build_tree,
)
from repro.classifiers.registry import register
from repro.rules.rule import Packet, Rule, RuleSet

__all__ = ["CutSplitClassifier"]

#: A field is "small" when the rule covers at most 2**(bits - threshold) values,
#: i.e. the rule's prefix is at least ``threshold`` bits long.
DEFAULT_SMALL_PREFIX_THRESHOLD = 16


def _is_small(rule: Rule, dim: int, bits: int, threshold: int) -> bool:
    span = rule.field_span(dim)
    return span <= (1 << (bits - threshold))


def _cutsplit_policy(cut_dims: list[int], ficuts_rule_threshold: int, num_cuts: int):
    """Per-node policy implementing the FiCuts-then-split strategy."""

    def _split_choice(space: Space, rules: list[Rule]):
        # Large nodes are evaluated on a rule sample: the median endpoint of a
        # sample is a good split point and keeps construction near-linear.
        sample = rules if len(rules) <= 256 else rules[:: len(rules) // 256]
        best_dim, best_threshold, best_score = None, None, None
        for dim, (lo, hi) in enumerate(space):
            if hi <= lo:
                continue
            endpoints = sorted(
                {
                    min(max(rule.ranges[dim][1], lo), hi - 1)
                    for rule in sample
                    if lo <= rule.ranges[dim][1] < hi
                }
            )
            if not endpoints:
                continue
            threshold = endpoints[len(endpoints) // 2]
            left = sum(1 for rule in sample if rule.ranges[dim][0] <= threshold)
            right = sum(1 for rule in sample if rule.ranges[dim][1] > threshold)
            if max(left, right) >= len(sample):
                continue  # no progress in this dimension
            # Prefer splits that replicate the fewest rules, then balance.
            score = (left + right, max(left, right))
            if best_score is None or score < best_score:
                best_dim, best_threshold, best_score = dim, threshold, score
        # Rules that overlap too heavily would be replicated down the whole
        # subtree; storing them in one (larger) leaf keeps both the footprint
        # and the build time bounded, mirroring CutSplit's tolerance for
        # oversized leaves on pathological subsets.
        if best_dim is None or best_score is None or best_score[0] > 1.3 * len(sample):
            return LeafAction()
        return SplitAction(best_dim, best_threshold)

    def policy(space: Space, rules: list[Rule], depth: int):
        # FiCuts phase: equal cuts on the group's small dimensions while the
        # node is still large.
        if len(rules) > ficuts_rule_threshold and cut_dims:
            dim = cut_dims[depth % len(cut_dims)]
            lo, hi = space[dim]
            if hi - lo + 1 >= num_cuts:
                return CutAction(dim, num_cuts)
        # Split phase.
        return _split_choice(space, rules)

    return policy


@register("cs", aliases=("cutsplit",))
class CutSplitClassifier(Classifier):
    """CutSplit: pre-partitioned FiCuts + HyperSplit-style trees, binth=8."""

    name = "cs"

    def __init__(
        self,
        ruleset: RuleSet,
        binth: int = 8,
        small_prefix_threshold: int = DEFAULT_SMALL_PREFIX_THRESHOLD,
        ficuts_rule_threshold: int = 64,
        num_cuts: int = 8,
        max_depth: int = 28,
    ):
        super().__init__(ruleset)
        self.binth = binth
        self.small_prefix_threshold = small_prefix_threshold
        schema = ruleset.schema
        # Identify the IP-like dimensions eligible for the small/large grouping.
        ip_dims = [dim for dim, spec in enumerate(schema) if spec.bits >= 32]
        if not ip_dims:
            ip_dims = [0]

        groups: dict[tuple[int, ...], list[Rule]] = {}
        for rule in ruleset:
            key = tuple(
                dim
                for dim in ip_dims
                if _is_small(rule, dim, schema[dim].bits, small_prefix_threshold)
            )
            groups.setdefault(key, []).append(rule)

        space = schema.full_ranges()
        self._trees: list[DecisionTree] = []
        self._group_keys: list[tuple[int, ...]] = []
        for key, rules in groups.items():
            cut_dims = list(key)
            policy = _cutsplit_policy(cut_dims, ficuts_rule_threshold, num_cuts)
            root = build_tree(rules, space, policy, binth=binth, max_depth=max_depth)
            self._trees.append(DecisionTree(root))
            self._group_keys.append(key)

    @classmethod
    def build(cls, ruleset: RuleSet, binth: int = 8, **params) -> "CutSplitClassifier":
        classifier = cls(ruleset, binth=binth, **params)
        classifier.build_params = {"binth": binth, **params}
        return classifier

    # -- lookup --------------------------------------------------------------------

    def _ordered_trees(self) -> list[DecisionTree]:
        return sorted(
            self._trees,
            key=lambda tree: tree.root.best_priority
            if tree.root.best_priority is not None
            else 1 << 60,
        )

    def classify_traced(self, packet: Packet | Sequence[int]) -> ClassificationResult:
        return self.classify_with_floor(packet, None)

    def classify_with_floor(
        self, packet: Packet | Sequence[int], priority_floor: Optional[int]
    ) -> ClassificationResult:
        values = packet.values if isinstance(packet, Packet) else tuple(packet)
        trace = LookupTrace()
        best: Rule | None = None
        best_priority = priority_floor
        for tree in self._ordered_trees():
            if (
                best_priority is not None
                and tree.root.best_priority is not None
                and tree.root.best_priority >= best_priority
            ):
                break
            rule = tree.lookup(values, trace, best_priority)
            if rule is not None and (best_priority is None or rule.priority < best_priority):
                best = rule
                best_priority = rule.priority
        return ClassificationResult(best, trace)

    # -- introspection -----------------------------------------------------------------

    def memory_footprint(self) -> MemoryFootprint:
        footprint = MemoryFootprint()
        for index, tree in enumerate(self._trees):
            tree_fp = tree.footprint(0)
            footprint = footprint.merge(
                MemoryFootprint(
                    index_bytes=tree_fp.index_bytes,
                    breakdown={f"tree_{index}": tree_fp.index_bytes},
                )
            )
        from repro.classifiers.base import RULE_ENTRY_BYTES

        footprint.rule_bytes = len(self.ruleset) * RULE_ENTRY_BYTES
        return footprint

    def statistics(self) -> dict[str, object]:
        stats = super().statistics()
        tree_stats = [tree.stats() for tree in self._trees]
        stats.update(
            num_trees=len(self._trees),
            group_keys=[list(key) for key in self._group_keys],
            max_depth=max((t.max_depth for t in tree_stats), default=0),
            num_nodes=sum(t.num_nodes for t in tree_stats),
            leaf_rule_slots=sum(t.total_leaf_rule_slots for t in tree_stats),
            replication=sum(t.total_leaf_rule_slots for t in tree_stats)
            / max(1, len(self.ruleset)),
        )
        return stats

    @property
    def num_trees(self) -> int:
        return len(self._trees)
