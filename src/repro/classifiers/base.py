"""Common classifier interface, lookup tracing and memory accounting.

Every packet classifier in the library (the baselines and NuevoMatch itself)
implements :class:`Classifier`.  Besides returning the matching rule, a
classifier can report a :class:`LookupTrace` describing the *memory behaviour*
of the lookup — how many dependent accesses it made to its index structure,
how many rule entries it touched, and how much pure compute it performed.
The :mod:`repro.simulation` cost model turns those traces plus the
:class:`MemoryFootprint` of the structure into latency/throughput estimates,
which is how the paper's performance-shaped experiments are reproduced
(see docs/ARCHITECTURE.md for where this sits in the stack).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.rules.rule import Packet, Rule, RuleSet

__all__ = [
    "LookupTrace",
    "MemoryFootprint",
    "ClassificationResult",
    "Classifier",
    "UpdatableClassifier",
    "STATE_FORMAT_VERSION",
    "TRACE_FIELDS",
    "check_state_header",
    "results_to_arrays",
]

#: Column order of the ``(n, 5)`` int64 trace blocks used by the columnar
#: serve path (``classify_block``'s optional ``traces`` out-array and the
#: shard-worker result rings).  One column per :class:`LookupTrace` counter.
TRACE_FIELDS = (
    "index_accesses",
    "rule_accesses",
    "model_accesses",
    "compute_ops",
    "hash_ops",
)

#: Version of the serializable classifier state produced by ``to_state`` and
#: consumed by ``from_state``.  Bump when the layout changes incompatibly.
STATE_FORMAT_VERSION = 1


def check_state_header(state: dict, expected_kind: str) -> None:
    """Validate the version/kind header of a ``to_state`` payload."""
    version = state.get("format")
    if version != STATE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported classifier state format {version!r} "
            f"(this build reads version {STATE_FORMAT_VERSION})"
        )
    kind = state.get("kind")
    if kind != expected_kind:
        raise ValueError(
            f"state is for classifier {kind!r}, expected {expected_kind!r}"
        )


@dataclass
class LookupTrace:
    """Memory/compute profile of a single lookup.

    Attributes:
        index_accesses: Dependent accesses to the classifier's index structure
            (tree nodes, hash buckets, model parameters already counted as
            resident — see ``model_accesses``).  These are the accesses whose
            latency depends on where the index lives in the cache hierarchy.
        rule_accesses: Accesses to stored rule entries (secondary search,
            validation, leaf scans).  Rules live in DRAM in the paper's design.
        model_accesses: Accesses to RQ-RMI model weights.  Held separately
            because the models are small enough to stay L1-resident.
        compute_ops: Arithmetic work in "vector-op" units (neural-net
            inference, comparisons), used by the vectorisation model.
        hash_ops: Number of hash computations performed.
    """

    index_accesses: int = 0
    rule_accesses: int = 0
    model_accesses: int = 0
    compute_ops: int = 0
    hash_ops: int = 0

    def merge(self, other: "LookupTrace") -> "LookupTrace":
        """Element-wise sum of two traces (e.g. iSets + remainder)."""
        return LookupTrace(
            index_accesses=self.index_accesses + other.index_accesses,
            rule_accesses=self.rule_accesses + other.rule_accesses,
            model_accesses=self.model_accesses + other.model_accesses,
            compute_ops=self.compute_ops + other.compute_ops,
            hash_ops=self.hash_ops + other.hash_ops,
        )

    @classmethod
    def aggregate(cls, traces: Iterable["LookupTrace"]) -> "LookupTrace":
        """Element-wise sum over many traces (the cost of a whole batch).

        The simulation layer uses the aggregate to price a batched lookup in
        one :meth:`~repro.simulation.cost_model.CostModel.lookup_latency` call
        instead of one call per packet.
        """
        total = cls()
        for trace in traces:
            total.index_accesses += trace.index_accesses
            total.rule_accesses += trace.rule_accesses
            total.model_accesses += trace.model_accesses
            total.compute_ops += trace.compute_ops
            total.hash_ops += trace.hash_ops
        return total

    @property
    def total_accesses(self) -> int:
        return self.index_accesses + self.rule_accesses + self.model_accesses


@dataclass
class MemoryFootprint:
    """Size of a classifier's data structures in bytes.

    Attributes:
        index_bytes: The lookup index itself (tree nodes, hash tables, model
            weights) — the quantity plotted in the paper's Figure 13.
        rule_bytes: Storage for the rules / value arrays (excluded from the
            paper's footprint comparison but tracked for completeness).
        breakdown: Optional per-component byte counts for reporting.
    """

    index_bytes: int = 0
    rule_bytes: int = 0
    breakdown: dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.index_bytes + self.rule_bytes

    def merge(self, other: "MemoryFootprint") -> "MemoryFootprint":
        combined = dict(self.breakdown)
        for key, value in other.breakdown.items():
            combined[key] = combined.get(key, 0) + value
        return MemoryFootprint(
            index_bytes=self.index_bytes + other.index_bytes,
            rule_bytes=self.rule_bytes + other.rule_bytes,
            breakdown=combined,
        )


@dataclass
class ClassificationResult:
    """Outcome of a traced lookup."""

    rule: Optional[Rule]
    trace: LookupTrace

    @property
    def matched(self) -> bool:
        return self.rule is not None

    @property
    def action(self) -> Optional[str]:
        return self.rule.action if self.rule else None


def results_to_arrays(
    results: Sequence[ClassificationResult],
) -> tuple[np.ndarray, np.ndarray]:
    """Collapse classification results to ``(rule_ids, priorities)`` arrays.

    The columnar serving contract (``classify_block``, wire protocol v2):
    ``rule_id == -1`` and ``priority == 0`` mark a miss.  Shared by every
    engine stack's generic ``classify_block`` fallback so the columnar and
    object paths cannot disagree on the encoding.
    """
    n = len(results)
    rule_ids = np.empty(n, dtype=np.int64)
    priorities = np.empty(n, dtype=np.int64)
    for row, result in enumerate(results):
        rule = result.rule
        if rule is None:
            rule_ids[row] = -1
            priorities[row] = 0
        else:
            rule_ids[row] = rule.rule_id
            priorities[row] = rule.priority
    return rule_ids, priorities


class Classifier(ABC):
    """Abstract multi-field packet classifier.

    Concrete classifiers are constructed from a :class:`RuleSet` via
    :meth:`build` and answer point queries with the highest-priority matching
    rule.  ``classify`` is the plain interface; ``classify_traced`` also
    reports the lookup's memory/compute profile.
    """

    #: Short name used in reports (e.g. ``"cs"`` for CutSplit).
    name: str = "classifier"

    #: True when :meth:`classify_block` is genuinely columnar — no per-packet
    #: :class:`ClassificationResult`/:class:`LookupTrace` objects anywhere on
    #: the path.  The engine wrappers key object materialization off it.
    supports_block: bool = False

    def __init__(self, ruleset: RuleSet):
        self.ruleset = ruleset
        #: Keyword arguments that reproduce this instance via ``build``;
        #: recorded by ``build`` and serialized by the default ``to_state``.
        self.build_params: dict[str, object] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    @abstractmethod
    def build(cls, ruleset: RuleSet, **params) -> "Classifier":
        """Construct the classifier's index structures from ``ruleset``."""

    # -- persistence ----------------------------------------------------------

    def to_state(self) -> dict:
        """Serializable (JSON-compatible) state of this classifier.

        The default captures only ``build_params``: every baseline classifier
        is constructed deterministically from its rule-set and parameters, so
        ``from_state`` can rebuild an identical structure.  Classifiers with
        expensive trained state (NuevoMatch's RQ-RMI submodels) override this
        with a full dump so the training cost is paid once per rule-set.
        """
        return {
            "format": STATE_FORMAT_VERSION,
            "kind": self.name,
            "params": dict(self.build_params),
        }

    @classmethod
    def from_state(cls, state: dict, ruleset: RuleSet) -> "Classifier":
        """Reconstruct a classifier from :meth:`to_state` output and its rules."""
        check_state_header(state, cls.name)
        return cls.build(ruleset, **state.get("params", {}))

    # -- lookup ---------------------------------------------------------------

    @abstractmethod
    def classify_traced(self, packet: Packet | Sequence[int]) -> ClassificationResult:
        """Return the best matching rule together with the lookup trace."""

    def classify(self, packet: Packet | Sequence[int]) -> Optional[Rule]:
        """Return the highest-priority rule matching ``packet`` (or ``None``)."""
        return self.classify_traced(packet).rule

    def classify_batch(
        self, packets: Sequence[Packet | Sequence[int]]
    ) -> list[ClassificationResult]:
        """Classify a batch of packets, one traced result per packet.

        The base implementation loops over :meth:`classify_traced`; classifiers
        with vectorizable lookups (NuevoMatch's RQ-RMI inference, linear
        search) override it with genuinely batched numpy paths.  Every override
        must return exactly the matches the per-packet interface returns.
        Aggregate the per-packet traces with :meth:`LookupTrace.aggregate` to
        cost the whole batch.
        """
        return [self.classify_traced(packet) for packet in packets]

    def classify_block(
        self,
        block: np.ndarray,
        traces: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Columnar lookup: ``(n, fields)`` block → ``(rule_ids, priorities)``.

        The serving data plane's native shape (shared-memory worker rings,
        wire protocol v2).  Misses encode as ``rule_id == -1`` with
        ``priority == 0``.  ``traces``, when given, is an ``(n,
        len(TRACE_FIELDS))`` int64 out-array whose rows are *overwritten* with
        the per-packet lookup counters in :data:`TRACE_FIELDS` order.

        Classifiers with vectorizable lookups override this with an
        allocation-free path and set :attr:`supports_block`; the generic
        implementation routes through :meth:`classify_batch` (block rows act
        as packet value sequences) and collapses the per-packet results.
        """
        results = self.classify_batch(block)
        if traces is not None:
            for row, result in enumerate(results):
                trace = result.trace
                traces[row, 0] = trace.index_accesses
                traces[row, 1] = trace.rule_accesses
                traces[row, 2] = trace.model_accesses
                traces[row, 3] = trace.compute_ops
                traces[row, 4] = trace.hash_ops
        return results_to_arrays(results)

    def classify_with_floor(
        self, packet: Packet | Sequence[int], priority_floor: Optional[int]
    ) -> ClassificationResult:
        """Lookup that may terminate early if no rule can beat ``priority_floor``.

        ``priority_floor`` is the numeric priority of the best match found so
        far elsewhere (lower is better); a classifier supporting the paper's
        *early termination* optimisation (§4) prunes work that cannot return a
        strictly better (numerically lower) priority.  The default simply
        performs a full lookup.
        """
        return self.classify_traced(packet)

    # -- introspection --------------------------------------------------------

    @abstractmethod
    def memory_footprint(self) -> MemoryFootprint:
        """Size of the classifier's data structures."""

    def statistics(self) -> dict[str, object]:
        """Structure statistics for reports; subclasses extend this."""
        footprint = self.memory_footprint()
        return {
            "name": self.name,
            "num_rules": len(self.ruleset),
            "index_bytes": footprint.index_bytes,
            "rule_bytes": footprint.rule_bytes,
        }

    # -- verification ----------------------------------------------------------

    def verify(self, packets: Iterable[Packet], oracle: RuleSet | None = None) -> int:
        """Check the classifier against linear search on ``packets``.

        Returns the number of packets checked; raises ``AssertionError`` on the
        first disagreement.  Used by tests and by the benchmark harness to
        ensure the structures being timed are actually correct.
        """
        oracle = oracle or self.ruleset
        count = 0
        for packet in packets:
            expected = oracle.match(packet)
            actual = self.classify(packet)
            expected_id = expected.rule_id if expected else None
            actual_id = actual.rule_id if actual else None
            if expected_id != actual_id:
                expected_priority = expected.priority if expected else None
                actual_priority = actual.priority if actual else None
                # Distinct rules with equal priority and identical match sets
                # are acceptable ties; anything else is a real bug.
                if expected_priority != actual_priority:
                    raise AssertionError(
                        f"{self.name}: mismatch for packet {tuple(packet)}: "
                        f"expected rule {expected_id} (prio {expected_priority}), "
                        f"got {actual_id} (prio {actual_priority})"
                    )
            count += 1
        return count


class UpdatableClassifier(Classifier):
    """A classifier that additionally supports online rule updates."""

    @abstractmethod
    def insert(self, rule: Rule) -> None:
        """Add ``rule`` to the classifier."""

    @abstractmethod
    def remove(self, rule_id: int) -> bool:
        """Remove the rule with ``rule_id``; returns True if it was present."""


# Byte-size constants shared by the concrete classifiers' footprint models.
# They follow the C/C++ layouts the original implementations use, so relative
# footprints between classifiers are meaningful.
POINTER_BYTES = 8
NODE_HEADER_BYTES = 16       # decision-tree node header (type, dim, bounds ptr)
RULE_ENTRY_BYTES = 48        # a stored 5-tuple rule: 5 ranges @ 8B + prio/action
HASH_ENTRY_BYTES = 16        # hash bucket entry: key hash + rule pointer
HASH_TABLE_OVERHEAD = 64     # per-table header
FLOAT_BYTES = 4
