"""Decorator-based classifier registry.

Classifiers register themselves under a canonical short name (the one the
paper's figures use, e.g. ``"tm"``) plus optional long-form aliases::

    @register("tm", aliases=("tuplemerge",))
    class TupleMergeClassifier(UpdatableClassifier):
        ...

Consumers resolve names — canonical or alias — through :func:`resolve_classifier`
and build instances with :func:`build_classifier`; :func:`available_classifiers`
enumerates the canonical names for CLI choice lists and error messages.  The
registry replaces the old static ``CLASSIFIER_REGISTRY`` dict (kept as a
deprecated shim in :mod:`repro.classifiers`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, TypeVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.classifiers.base import Classifier
    from repro.rules.rule import RuleSet

__all__ = [
    "register",
    "resolve_classifier",
    "build_classifier",
    "available_classifiers",
    "classifier_aliases",
    "format_available",
    "UnknownClassifierError",
]

C = TypeVar("C", bound="type")


@dataclass(frozen=True)
class RegistryEntry:
    """One registered classifier: its class, canonical name and aliases."""

    cls: type
    canonical: str
    aliases: tuple[str, ...]


#: Canonical name → entry.
_ENTRIES: dict[str, RegistryEntry] = {}
#: Any accepted name (canonical or alias) → canonical name.
_NAMES: dict[str, str] = {}


class UnknownClassifierError(ValueError):
    """Raised when a classifier name is not in the registry."""

    def __init__(self, name: str):
        super().__init__(
            f"unknown classifier {name!r}; available: {format_available()}"
        )
        self.name = name


def register(name: str, *, aliases: tuple[str, ...] = ()) -> Callable[[C], C]:
    """Class decorator registering a :class:`Classifier` under ``name``.

    Args:
        name: Canonical short name (also used in reports and CLI choices).
        aliases: Alternative names accepted by :func:`resolve_classifier`.
    """

    def decorator(cls: C) -> C:
        for key in (name, *aliases):
            owner = _NAMES.get(key)
            if owner is not None and _ENTRIES[owner].cls is not cls:
                raise ValueError(
                    f"classifier name {key!r} is already registered "
                    f"by {_ENTRIES[owner].cls.__name__}"
                )
        _ENTRIES[name] = RegistryEntry(cls=cls, canonical=name, aliases=tuple(aliases))
        for key in (name, *aliases):
            _NAMES[key] = name
        return cls

    return decorator


def _ensure_registered() -> None:
    """Import the modules that register classifiers (idempotent)."""
    import repro.classifiers  # noqa: F401  (registers the baselines)
    import repro.core.nuevomatch  # noqa: F401  (registers "nm")


def resolve_classifier(name: str) -> "type[Classifier]":
    """Return the classifier class registered under ``name`` (or an alias).

    Raises:
        UnknownClassifierError: If no classifier uses that name.
    """
    _ensure_registered()
    canonical = _NAMES.get(name)
    if canonical is None:
        raise UnknownClassifierError(name)
    return _ENTRIES[canonical].cls


def build_classifier(name: str, ruleset: "RuleSet", **params) -> "Classifier":
    """Build the classifier registered under ``name`` over ``ruleset``.

    ``params`` are forwarded to the class's ``build`` (e.g. ``binth`` for the
    tree classifiers, ``remainder_classifier`` for NuevoMatch).
    """
    return resolve_classifier(name).build(ruleset, **params)


def available_classifiers(include_aliases: bool = False) -> list[str]:
    """Sorted canonical classifier names (optionally with aliases appended)."""
    _ensure_registered()
    names = sorted(_ENTRIES)
    if include_aliases:
        for entry in _ENTRIES.values():
            names.extend(entry.aliases)
        names.sort()
    return names


def classifier_aliases() -> dict[str, tuple[str, ...]]:
    """Canonical name → aliases, for help texts and error messages."""
    _ensure_registered()
    return {name: _ENTRIES[name].aliases for name in sorted(_ENTRIES)}


def format_available() -> str:
    """Human-readable listing of canonical names and their aliases."""
    parts = []
    for name, aliases in classifier_aliases().items():
        parts.append(f"{name} (aka {', '.join(aliases)})" if aliases else name)
    return ", ".join(parts)
