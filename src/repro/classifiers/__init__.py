"""Baseline packet classifiers.

These are the algorithms NuevoMatch is compared against in the paper and the
candidates for indexing its *remainder set*:

* :class:`~repro.classifiers.linear.LinearSearchClassifier` — correctness oracle.
* :class:`~repro.classifiers.tuplespace.TupleSpaceSearchClassifier` — Tuple
  Space Search (hash-based, update-friendly).
* :class:`~repro.classifiers.tuplemerge.TupleMergeClassifier` — TupleMerge
  (``tm`` in the paper's figures).
* :class:`~repro.classifiers.hicuts.HiCutsClassifier` — HiCuts decision tree.
* :class:`~repro.classifiers.cutsplit.CutSplitClassifier` — CutSplit (``cs``).
* :class:`~repro.classifiers.neurocuts.NeuroCutsClassifier` — NeuroCuts-style
  search-optimised tree (``nc``).

All classifiers implement the :class:`~repro.classifiers.base.Classifier`
interface, including traced lookups used by the performance cost model and
the ``classify_with_floor`` early-termination hook.
"""

from repro.classifiers.base import (
    ClassificationResult,
    Classifier,
    LookupTrace,
    MemoryFootprint,
    UpdatableClassifier,
)
from repro.classifiers.linear import LinearSearchClassifier
from repro.classifiers.tuplespace import TupleSpaceSearchClassifier
from repro.classifiers.tuplemerge import TupleMergeClassifier
from repro.classifiers.hicuts import HiCutsClassifier
from repro.classifiers.cutsplit import CutSplitClassifier
from repro.classifiers.neurocuts import NeuroCutsClassifier

#: Registry mapping the paper's short classifier names to classes.
CLASSIFIER_REGISTRY: dict[str, type[Classifier]] = {
    "linear": LinearSearchClassifier,
    "tss": TupleSpaceSearchClassifier,
    "tm": TupleMergeClassifier,
    "hicuts": HiCutsClassifier,
    "cs": CutSplitClassifier,
    "nc": NeuroCutsClassifier,
}

__all__ = [
    "Classifier",
    "UpdatableClassifier",
    "ClassificationResult",
    "LookupTrace",
    "MemoryFootprint",
    "LinearSearchClassifier",
    "TupleSpaceSearchClassifier",
    "TupleMergeClassifier",
    "HiCutsClassifier",
    "CutSplitClassifier",
    "NeuroCutsClassifier",
    "CLASSIFIER_REGISTRY",
]
