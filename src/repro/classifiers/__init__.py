"""Baseline packet classifiers and the classifier registry.

These are the algorithms NuevoMatch is compared against in the paper and the
candidates for indexing its *remainder set*:

* :class:`~repro.classifiers.linear.LinearSearchClassifier` — correctness oracle.
* :class:`~repro.classifiers.tuplespace.TupleSpaceSearchClassifier` — Tuple
  Space Search (hash-based, update-friendly).
* :class:`~repro.classifiers.tuplemerge.TupleMergeClassifier` — TupleMerge
  (``tm`` in the paper's figures).
* :class:`~repro.classifiers.hicuts.HiCutsClassifier` — HiCuts decision tree.
* :class:`~repro.classifiers.cutsplit.CutSplitClassifier` — CutSplit (``cs``).
* :class:`~repro.classifiers.neurocuts.NeuroCutsClassifier` — NeuroCuts-style
  search-optimised tree (``nc``).

All classifiers implement the :class:`~repro.classifiers.base.Classifier`
interface: per-packet and batched traced lookups, the ``classify_with_floor``
early-termination hook, and the versioned ``to_state``/``from_state``
persistence protocol.  Each class registers itself with the decorator-based
registry (:mod:`repro.classifiers.registry`); resolve names with
:func:`build_classifier` / :func:`resolve_classifier` and enumerate them with
:func:`available_classifiers`.
"""

import warnings

from repro.classifiers.base import (
    STATE_FORMAT_VERSION,
    ClassificationResult,
    Classifier,
    LookupTrace,
    MemoryFootprint,
    UpdatableClassifier,
)
from repro.classifiers.registry import (
    UnknownClassifierError,
    available_classifiers,
    build_classifier,
    classifier_aliases,
    format_available,
    register,
    resolve_classifier,
)
from repro.classifiers.linear import LinearSearchClassifier
from repro.classifiers.tuplespace import TupleSpaceSearchClassifier
from repro.classifiers.tuplemerge import TupleMergeClassifier
from repro.classifiers.hicuts import HiCutsClassifier
from repro.classifiers.cutsplit import CutSplitClassifier
from repro.classifiers.neurocuts import NeuroCutsClassifier


class _DeprecatedRegistry(dict):
    """Read-only shim for the removed static ``CLASSIFIER_REGISTRY`` dict."""

    def __getitem__(self, key):
        warnings.warn(
            "CLASSIFIER_REGISTRY is deprecated; use "
            "repro.classifiers.build_classifier / resolve_classifier instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return super().__getitem__(key)


#: Deprecated: mapping of the baseline classifiers' short names to classes.
#: Use :func:`resolve_classifier` / :func:`available_classifiers` instead.
CLASSIFIER_REGISTRY: dict[str, type[Classifier]] = _DeprecatedRegistry(
    {
        "linear": LinearSearchClassifier,
        "tss": TupleSpaceSearchClassifier,
        "tm": TupleMergeClassifier,
        "hicuts": HiCutsClassifier,
        "cs": CutSplitClassifier,
        "nc": NeuroCutsClassifier,
    }
)

__all__ = [
    "Classifier",
    "UpdatableClassifier",
    "ClassificationResult",
    "LookupTrace",
    "MemoryFootprint",
    "STATE_FORMAT_VERSION",
    "LinearSearchClassifier",
    "TupleSpaceSearchClassifier",
    "TupleMergeClassifier",
    "HiCutsClassifier",
    "CutSplitClassifier",
    "NeuroCutsClassifier",
    "register",
    "resolve_classifier",
    "build_classifier",
    "available_classifiers",
    "classifier_aliases",
    "format_available",
    "UnknownClassifierError",
    "CLASSIFIER_REGISTRY",
]
