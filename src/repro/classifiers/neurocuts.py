"""NeuroCuts-style classifier: a decision tree with a search-optimised policy.

NeuroCuts [Liang et al., SIGCOMM 2019] uses deep reinforcement learning to
choose, node by node, which dimension to cut and into how many parts (plus an
optional top-level partitioning), optimising a global objective — tree depth
(classification time) or memory footprint.  Crucially, the RL is purely an
*offline construction* device: the artefact the paper's evaluation consumes is
the resulting decision tree, whose lookup behaviour is ordinary tree traversal.

Reproduction substitution: we keep the same action space
(top-level partitioning by wildcard pattern, then per-node ``(dimension,
number-of-cuts)`` choices) and the same objective, but optimise it with
randomised sampling / hill-climbing over candidate trees instead of RL.  The
best tree under the chosen objective is kept.  This produces trees of the same
family with comparable depth/footprint trade-offs at a tiny fraction of the
36-hour training cost, which is all the lookup-time experiments need.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.classifiers.base import (
    ClassificationResult,
    Classifier,
    LookupTrace,
    MemoryFootprint,
    RULE_ENTRY_BYTES,
)
from repro.classifiers.dtree import (
    CutAction,
    DecisionTree,
    LeafAction,
    Space,
    build_tree,
)
from repro.classifiers.registry import register
from repro.rules.rule import Packet, Rule, RuleSet

__all__ = ["NeuroCutsClassifier"]

_CUT_CHOICES = (2, 4, 8, 16, 32)


def _sampled_policy(rng: random.Random, depth_penalty: float):
    """A randomised cut policy: mostly greedy, sometimes exploratory.

    With high probability the node cuts the dimension with the most distinct
    projections (the action an RL agent converges to for balanced rule-sets);
    with some probability it explores another dimension / cut count, which is
    what lets the outer search find better global trees.
    """

    def policy(space: Space, rules: list[Rule], depth: int):
        candidates = []
        for dim, (lo, hi) in enumerate(space):
            if hi <= lo:
                continue
            distinct = len({rule.ranges[dim] for rule in rules})
            if distinct > 1:
                candidates.append((distinct, dim))
        if not candidates:
            return LeafAction()
        candidates.sort(reverse=True)
        if rng.random() < 0.8:
            _, dim = candidates[0]
        else:
            _, dim = candidates[rng.randrange(len(candidates))]
        # Deeper nodes get fewer cuts when optimising for memory.
        max_cuts = _CUT_CHOICES[-1]
        if depth_penalty > 0:
            max_cuts = max(2, int(max_cuts / (1 + depth_penalty * depth)))
        choices = [c for c in _CUT_CHOICES if c <= max_cuts] or [2]
        num_cuts = rng.choice(choices)
        return CutAction(dim, num_cuts)

    return policy


def _partition_by_wildcards(ruleset: RuleSet, threshold: float) -> list[list[Rule]]:
    """Top-level partitioning: group rules by their wildcard pattern.

    NeuroCuts' "top-mode" partitioning separates rules that wildcard a field
    from those that constrain it, so each subtree can cut its constrained
    dimensions freely.  ``threshold`` is the minimum fraction of the domain a
    range must cover to count as a wildcard.
    """
    groups: dict[tuple[bool, ...], list[Rule]] = {}
    schema = ruleset.schema
    for rule in ruleset:
        pattern = tuple(
            rule.field_span(dim) >= threshold * schema[dim].domain_size
            for dim in range(len(schema))
        )
        groups.setdefault(pattern, []).append(rule)
    return list(groups.values())


@register("nc", aliases=("neurocuts",))
class NeuroCutsClassifier(Classifier):
    """Search-optimised decision-tree classifier (NeuroCuts stand-in)."""

    name = "nc"

    def __init__(
        self,
        ruleset: RuleSet,
        binth: int = 8,
        num_candidates: int = 4,
        objective: str = "memory",
        top_partition: bool = True,
        wildcard_threshold: float = 0.5,
        max_depth: int = 24,
        seed: int = 0,
    ):
        super().__init__(ruleset)
        if objective not in ("memory", "depth"):
            raise ValueError("objective must be 'memory' or 'depth'")
        self.binth = binth
        self.objective = objective
        rng = random.Random(seed)
        space = ruleset.schema.full_ranges()

        if top_partition and len(ruleset.schema) > 1:
            groups = _partition_by_wildcards(ruleset, wildcard_threshold)
        else:
            groups = [list(ruleset.rules)]

        self._trees: list[DecisionTree] = []
        for group in groups:
            best_tree: DecisionTree | None = None
            best_score: float | None = None
            for attempt in range(max(1, num_candidates)):
                depth_penalty = rng.choice([0.0, 0.1, 0.25, 0.5])
                policy = _sampled_policy(
                    random.Random(rng.randrange(1 << 30)), depth_penalty
                )
                root = build_tree(group, space, policy, binth=binth, max_depth=max_depth)
                tree = DecisionTree(root)
                stats = tree.stats()
                if objective == "memory":
                    score = tree.footprint(0).index_bytes + stats.max_depth
                else:
                    score = stats.max_depth * 1_000_000 + tree.footprint(0).index_bytes
                if best_score is None or score < best_score:
                    best_score = score
                    best_tree = tree
            assert best_tree is not None
            self._trees.append(best_tree)

    @classmethod
    def build(cls, ruleset: RuleSet, binth: int = 8, **params) -> "NeuroCutsClassifier":
        classifier = cls(ruleset, binth=binth, **params)
        classifier.build_params = {"binth": binth, **params}
        return classifier

    # -- lookup ---------------------------------------------------------------------

    def _ordered_trees(self) -> list[DecisionTree]:
        return sorted(
            self._trees,
            key=lambda tree: tree.root.best_priority
            if tree.root.best_priority is not None
            else 1 << 60,
        )

    def classify_traced(self, packet: Packet | Sequence[int]) -> ClassificationResult:
        return self.classify_with_floor(packet, None)

    def classify_with_floor(
        self, packet: Packet | Sequence[int], priority_floor: Optional[int]
    ) -> ClassificationResult:
        values = packet.values if isinstance(packet, Packet) else tuple(packet)
        trace = LookupTrace()
        best: Rule | None = None
        best_priority = priority_floor
        for tree in self._ordered_trees():
            if (
                best_priority is not None
                and tree.root.best_priority is not None
                and tree.root.best_priority >= best_priority
            ):
                break
            rule = tree.lookup(values, trace, best_priority)
            if rule is not None and (best_priority is None or rule.priority < best_priority):
                best = rule
                best_priority = rule.priority
        return ClassificationResult(best, trace)

    # -- introspection -----------------------------------------------------------------

    def memory_footprint(self) -> MemoryFootprint:
        footprint = MemoryFootprint()
        for index, tree in enumerate(self._trees):
            tree_fp = tree.footprint(0)
            footprint = footprint.merge(
                MemoryFootprint(
                    index_bytes=tree_fp.index_bytes,
                    breakdown={f"tree_{index}": tree_fp.index_bytes},
                )
            )
        footprint.rule_bytes = len(self.ruleset) * RULE_ENTRY_BYTES
        return footprint

    def statistics(self) -> dict[str, object]:
        stats = super().statistics()
        tree_stats = [tree.stats() for tree in self._trees]
        stats.update(
            num_trees=len(self._trees),
            objective=self.objective,
            max_depth=max((t.max_depth for t in tree_stats), default=0),
            num_nodes=sum(t.num_nodes for t in tree_stats),
            leaf_rule_slots=sum(t.total_leaf_rule_slots for t in tree_stats),
            replication=sum(t.total_leaf_rule_slots for t in tree_stats)
            / max(1, len(self.ruleset)),
        )
        return stats

    @property
    def num_trees(self) -> int:
        return len(self._trees)
