"""TupleMerge classifier.

TupleMerge [Daly et al., ToN 2019] improves Tuple Space Search by *merging*
compatible tuples into a single hash table with relaxed masks: a rule whose
per-field prefix lengths are all at least the table's lengths can be hashed
under the table's (shorter) masks.  This reduces the number of tables probed
per lookup dramatically, at the cost of more false-positive candidates per
bucket; a per-bucket *collision limit* (40 in the paper and here) bounds that
cost, triggering the creation of a more specific table when exceeded.

TupleMerge keeps TSS's O(1)-ish update behaviour, which is why the paper uses
it as the update-capable remainder classifier for NuevoMatch.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional, Sequence

import numpy as np

from repro.classifiers.base import (
    ClassificationResult,
    HASH_ENTRY_BYTES,
    HASH_TABLE_OVERHEAD,
    LookupTrace,
    MemoryFootprint,
    RULE_ENTRY_BYTES,
    UpdatableClassifier,
)
from repro.classifiers.registry import register
from repro.classifiers.tuplespace import mask_value, rule_tuple
from repro.rules.rule import Packet, Rule, RuleSet

__all__ = ["TupleMergeClassifier", "NO_FLOOR"]

#: Default per-bucket collision limit, as recommended by the TupleMerge paper.
DEFAULT_COLLISION_LIMIT = 40

#: Per-row "no floor" sentinel for :meth:`TupleMergeClassifier.
#: classify_block_with_floors`.  Numerically above every real rule priority,
#: so the floor comparisons degenerate to the unfloored lookup.
NO_FLOOR = int(np.iinfo(np.int64).max)

#: Coarse IP prefix-length grids used when seeding new tables.  The first
#: (coarser) grid is tried first so that many tuples merge into few tables;
#: when the collision limit forces a more specific table, the finer grid and
#: finally the rule's own tuple are used.
_IP_GRIDS = ((0, 16), (0, 8, 16, 24, 32))


class _MergedTable:
    """A hash table with relaxed masks holding rules from several tuples."""

    def __init__(self, lengths: tuple[int, ...], field_bits: Sequence[int]):
        self.lengths = lengths
        self.field_bits = tuple(field_bits)
        self.buckets: dict[tuple[int, ...], list[Rule]] = defaultdict(list)
        self.max_priority: int | None = None

    def compatible(self, tuple_lengths: tuple[int, ...]) -> bool:
        """True if a rule with ``tuple_lengths`` can be stored in this table."""
        return all(
            rule_len >= table_len
            for rule_len, table_len in zip(tuple_lengths, self.lengths)
        )

    def key_for_values(self, values: Sequence[int]) -> tuple[int, ...]:
        return tuple(
            mask_value(value, length, bits)
            for value, length, bits in zip(values, self.lengths, self.field_bits)
        )

    def key_for_rule(self, rule: Rule) -> tuple[int, ...]:
        return tuple(
            mask_value(lo, length, bits)
            for (lo, _hi), length, bits in zip(rule.ranges, self.lengths, self.field_bits)
        )

    def bucket_size_after_insert(self, rule: Rule) -> int:
        return len(self.buckets[self.key_for_rule(rule)]) + 1

    def insert(self, rule: Rule) -> None:
        bucket = self.buckets[self.key_for_rule(rule)]
        bucket.append(rule)
        # Buckets are kept in priority order so a lookup can stop at the first
        # matching candidate.
        bucket.sort(key=lambda r: r.priority)
        if self.max_priority is None or rule.priority < self.max_priority:
            self.max_priority = rule.priority

    def remove(self, rule_id: int) -> bool:
        for key, bucket in list(self.buckets.items()):
            for index, rule in enumerate(bucket):
                if rule.rule_id == rule_id:
                    del bucket[index]
                    if not bucket:
                        del self.buckets[key]
                    self._recompute_max_priority()
                    return True
        return False

    def _recompute_max_priority(self) -> None:
        priorities = [rule.priority for bucket in self.buckets.values() for rule in bucket]
        self.max_priority = min(priorities) if priorities else None

    @property
    def num_rules(self) -> int:
        return sum(len(bucket) for bucket in self.buckets.values())

    def max_bucket_size(self) -> int:
        return max((len(bucket) for bucket in self.buckets.values()), default=0)


def _relaxed_lengths(
    tuple_lengths: tuple[int, ...], field_bits: Sequence[int], grid_index: int
) -> tuple[int, ...]:
    """Relax a rule's tuple to seed a new merged table.

    ``grid_index`` selects how coarse the relaxation is: 0 and 1 snap IP
    lengths down onto :data:`_IP_GRIDS`; anything larger returns the rule's
    own tuple (no relaxation).
    """
    if grid_index >= len(_IP_GRIDS):
        return tuple(tuple_lengths)
    grid = _IP_GRIDS[grid_index]
    relaxed = []
    for length, bits in zip(tuple_lengths, field_bits):
        if bits >= 32:  # IP-like field: snap down to the grid.
            snapped = max((g for g in grid if g <= length), default=0)
            relaxed.append(snapped)
        else:
            # Ports/protocol: either "exact" or "wildcard" hashing.
            relaxed.append(bits if length == bits else 0)
    return tuple(relaxed)


@register("tm", aliases=("tuplemerge",))
class TupleMergeClassifier(UpdatableClassifier):
    """TupleMerge: merged tuple-space hash tables with a collision limit."""

    name = "tm"
    supports_block = True

    def __init__(self, ruleset: RuleSet, collision_limit: int = DEFAULT_COLLISION_LIMIT):
        super().__init__(ruleset)
        if collision_limit < 1:
            raise ValueError("collision_limit must be at least 1")
        self.collision_limit = collision_limit
        self._field_bits = [spec.bits for spec in ruleset.schema]
        self._tables: list[_MergedTable] = []
        # Inserting more-specific rules first produces fewer, better tables;
        # the original implementation sorts by tuple specificity as well.
        for rule in sorted(
            ruleset.rules,
            key=lambda r: -sum(rule_tuple(r, self._field_bits)),
        ):
            self._insert_into_tables(rule)

    @classmethod
    def build(
        cls, ruleset: RuleSet, collision_limit: int = DEFAULT_COLLISION_LIMIT, **params
    ) -> "TupleMergeClassifier":
        classifier = cls(ruleset, collision_limit=collision_limit)
        classifier.build_params = {"collision_limit": collision_limit}
        return classifier

    # -- construction / updates -----------------------------------------------

    def _insert_into_tables(self, rule: Rule) -> None:
        lengths = rule_tuple(rule, self._field_bits)
        for table in self._tables:
            if table.compatible(lengths) and (
                table.bucket_size_after_insert(rule) <= self.collision_limit
            ):
                table.insert(rule)
                return
        # No compatible table with room: seed a new table, coarsest grid first;
        # if a table with those exact lengths already exists (it must have been
        # full), fall back to a finer grid and finally to the rule's own tuple.
        existing = {table.lengths for table in self._tables}
        for grid_index in range(len(_IP_GRIDS) + 1):
            relaxed = _relaxed_lengths(lengths, self._field_bits, grid_index)
            if relaxed not in existing:
                table = _MergedTable(relaxed, self._field_bits)
                table.insert(rule)
                self._tables.append(table)
                return
        # Every candidate tuple already has a (full) table: accept the
        # collision-limit overflow in the most specific one.
        for table in self._tables:
            if table.lengths == lengths:
                table.insert(rule)
                return
        table = _MergedTable(lengths, self._field_bits)
        table.insert(rule)
        self._tables.append(table)

    def insert(self, rule: Rule) -> None:
        self._insert_into_tables(rule)

    def remove(self, rule_id: int) -> bool:
        for index, table in enumerate(self._tables):
            if table.remove(rule_id):
                if table.num_rules == 0:
                    del self._tables[index]
                return True
        return False

    # -- lookup -----------------------------------------------------------------

    def _ordered_tables(self) -> list[_MergedTable]:
        return sorted(
            self._tables,
            key=lambda table: table.max_priority if table.max_priority is not None else 1 << 60,
        )

    def classify_traced(self, packet: Packet | Sequence[int]) -> ClassificationResult:
        return self.classify_with_floor(packet, None)

    def classify_with_floor(
        self, packet: Packet | Sequence[int], priority_floor: Optional[int]
    ) -> ClassificationResult:
        values = packet.values if isinstance(packet, Packet) else tuple(packet)
        trace = LookupTrace()
        best: Rule | None = None
        best_priority = priority_floor
        for table in self._ordered_tables():
            if (
                best_priority is not None
                and table.max_priority is not None
                and table.max_priority >= best_priority
            ):
                break
            trace.hash_ops += 1
            trace.index_accesses += 1
            bucket = table.buckets.get(table.key_for_values(values))
            if not bucket:
                continue
            for rule in bucket:
                if best_priority is not None and rule.priority >= best_priority:
                    break  # bucket is priority-sorted; nothing better remains
                trace.rule_accesses += 1
                trace.compute_ops += len(values)
                if rule.matches(values):
                    best = rule
                    best_priority = rule.priority
                    break
        return ClassificationResult(best, trace)

    def classify_block(
        self,
        block: np.ndarray,
        traces: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Columnar lookup writing straight into result arrays.

        Row-for-row identical to :meth:`classify_traced` (same table order,
        same early breaks, same counters) but allocation-free: no
        :class:`ClassificationResult`/:class:`LookupTrace` objects are built.
        """
        if traces is not None:
            traces[: len(block)] = 0
        return self.classify_block_with_floors(block, None, traces=traces)

    def classify_block_with_floors(
        self,
        block: np.ndarray,
        floors: Optional[np.ndarray],
        traces: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Floored columnar lookup — the remainder half of NuevoMatch's
        early-termination contract (§4), one floor per row.

        ``floors`` is an int64 array of per-row priority floors
        (:data:`NO_FLOOR` disables the floor for a row; ``None`` disables it
        everywhere); a row only reports a match strictly better (numerically
        lower) than its floor.  ``traces`` rows are *accumulated into*, not
        overwritten — callers owning the whole lookup zero them first, while
        NuevoMatch adds the remainder's counters on top of the iSet ones.
        """
        n = len(block)
        rule_ids = np.full(n, -1, dtype=np.int64)
        priorities = np.zeros(n, dtype=np.int64)
        tables = self._ordered_tables()
        for row in range(n):
            values = tuple(int(v) for v in block[row])
            best_priority = NO_FLOOR if floors is None else int(floors[row])
            best_id = -1
            index_accesses = rule_accesses = compute_ops = hash_ops = 0
            for table in tables:
                table_max = table.max_priority
                if table_max is not None and table_max >= best_priority:
                    break
                hash_ops += 1
                index_accesses += 1
                bucket = table.buckets.get(table.key_for_values(values))
                if not bucket:
                    continue
                for rule in bucket:
                    if rule.priority >= best_priority:
                        break  # bucket is priority-sorted; nothing better remains
                    rule_accesses += 1
                    compute_ops += len(values)
                    if rule.matches(values):
                        best_id = rule.rule_id
                        best_priority = rule.priority
                        break
            if best_id >= 0:
                rule_ids[row] = best_id
                priorities[row] = best_priority
            if traces is not None:
                traces[row, 0] += index_accesses
                traces[row, 1] += rule_accesses
                traces[row, 3] += compute_ops
                traces[row, 4] += hash_ops
        return rule_ids, priorities

    # -- introspection ------------------------------------------------------------

    def memory_footprint(self) -> MemoryFootprint:
        entries = sum(table.num_rules for table in self._tables)
        buckets = sum(len(table.buckets) for table in self._tables)
        index_bytes = (
            len(self._tables) * HASH_TABLE_OVERHEAD
            + buckets * HASH_ENTRY_BYTES
            + entries * HASH_ENTRY_BYTES
        )
        rule_bytes = len(self.ruleset) * RULE_ENTRY_BYTES
        return MemoryFootprint(
            index_bytes=index_bytes,
            rule_bytes=rule_bytes,
            breakdown={
                "tables": len(self._tables) * HASH_TABLE_OVERHEAD,
                "buckets": buckets * HASH_ENTRY_BYTES,
                "entries": entries * HASH_ENTRY_BYTES,
            },
        )

    def statistics(self) -> dict[str, object]:
        stats = super().statistics()
        stats.update(
            num_tables=len(self._tables),
            collision_limit=self.collision_limit,
            max_bucket=max((t.max_bucket_size() for t in self._tables), default=0),
        )
        return stats

    @property
    def num_tables(self) -> int:
        return len(self._tables)
