"""Tuple Space Search (TSS) classifier.

Srinivasan, Suri and Varghese's Tuple Space Search [SIGCOMM 1999] partitions
the rule-set by the *tuple* of prefix lengths used in each field; all rules of
one tuple can be stored in a single hash table keyed by the masked field
values.  A lookup masks the packet with every tuple's lengths and probes every
table; a secondary check eliminates false positives and priority decides among
the survivors.

Range handling: exact values and prefix ranges map to their natural prefix
length; arbitrary (non-prefix) ranges are treated as a wildcard in the tuple
(length 0) and verified during the secondary check.  This mirrors the common
"range-to-nesting-level" simplification used by software TSS implementations
(including Open vSwitch) and avoids rule replication.

TSS supports fast updates (insert/delete touch exactly one table), which is
why it — and its descendant TupleMerge — is the update-friendly baseline in
the paper.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional, Sequence

from repro.classifiers.base import (
    ClassificationResult,
    HASH_ENTRY_BYTES,
    HASH_TABLE_OVERHEAD,
    LookupTrace,
    MemoryFootprint,
    RULE_ENTRY_BYTES,
    UpdatableClassifier,
)
from repro.classifiers.registry import register
from repro.rules.fields import prefix_length_of_range
from repro.rules.rule import Packet, Rule, RuleSet

__all__ = ["TupleSpaceSearchClassifier", "rule_tuple", "mask_value"]


def rule_tuple(rule: Rule, field_bits: Sequence[int]) -> tuple[int, ...]:
    """The tuple of effective prefix lengths of ``rule``.

    Prefix-expressible ranges get their true prefix length; other ranges are
    treated as wildcards (length 0).
    """
    lengths = []
    for (lo, hi), bits in zip(rule.ranges, field_bits):
        length = prefix_length_of_range(lo, hi, bits)
        lengths.append(length if length is not None else 0)
    return tuple(lengths)


def mask_value(value: int, prefix_len: int, bits: int) -> int:
    """Keep the ``prefix_len`` most significant bits of ``value``."""
    if prefix_len <= 0:
        return 0
    if prefix_len >= bits:
        return value
    return value & (((1 << prefix_len) - 1) << (bits - prefix_len))


class _TupleTable:
    """One hash table holding all rules sharing a prefix-length tuple."""

    def __init__(self, lengths: tuple[int, ...], field_bits: Sequence[int]):
        self.lengths = lengths
        self.field_bits = tuple(field_bits)
        self.buckets: dict[tuple[int, ...], list[Rule]] = defaultdict(list)
        self.max_priority: int | None = None  # numerically smallest priority

    def key_for_values(self, values: Sequence[int]) -> tuple[int, ...]:
        return tuple(
            mask_value(value, length, bits)
            for value, length, bits in zip(values, self.lengths, self.field_bits)
        )

    def key_for_rule(self, rule: Rule) -> tuple[int, ...]:
        return tuple(
            mask_value(lo, length, bits)
            for (lo, _hi), length, bits in zip(rule.ranges, self.lengths, self.field_bits)
        )

    def insert(self, rule: Rule) -> None:
        bucket = self.buckets[self.key_for_rule(rule)]
        bucket.append(rule)
        # Priority-ordered buckets let a lookup stop at the first match.
        bucket.sort(key=lambda r: r.priority)
        if self.max_priority is None or rule.priority < self.max_priority:
            self.max_priority = rule.priority

    def remove(self, rule_id: int) -> bool:
        for key, bucket in list(self.buckets.items()):
            for index, rule in enumerate(bucket):
                if rule.rule_id == rule_id:
                    del bucket[index]
                    if not bucket:
                        del self.buckets[key]
                    self._recompute_max_priority()
                    return True
        return False

    def _recompute_max_priority(self) -> None:
        priorities = [rule.priority for bucket in self.buckets.values() for rule in bucket]
        self.max_priority = min(priorities) if priorities else None

    @property
    def num_rules(self) -> int:
        return sum(len(bucket) for bucket in self.buckets.values())

    def max_bucket_size(self) -> int:
        return max((len(bucket) for bucket in self.buckets.values()), default=0)


@register("tss", aliases=("tuplespace",))
class TupleSpaceSearchClassifier(UpdatableClassifier):
    """Classic Tuple Space Search over per-tuple hash tables."""

    name = "tss"

    def __init__(self, ruleset: RuleSet):
        super().__init__(ruleset)
        self._field_bits = [spec.bits for spec in ruleset.schema]
        self._tables: dict[tuple[int, ...], _TupleTable] = {}
        for rule in ruleset:
            self._insert_into_tables(rule)

    @classmethod
    def build(cls, ruleset: RuleSet, **params) -> "TupleSpaceSearchClassifier":
        return cls(ruleset)

    # -- construction / updates ------------------------------------------------

    def _insert_into_tables(self, rule: Rule) -> None:
        lengths = rule_tuple(rule, self._field_bits)
        table = self._tables.get(lengths)
        if table is None:
            table = _TupleTable(lengths, self._field_bits)
            self._tables[lengths] = table
        table.insert(rule)

    def insert(self, rule: Rule) -> None:
        self._insert_into_tables(rule)

    def remove(self, rule_id: int) -> bool:
        for lengths, table in list(self._tables.items()):
            if table.remove(rule_id):
                if table.num_rules == 0:
                    del self._tables[lengths]
                return True
        return False

    # -- lookup ------------------------------------------------------------------

    def _ordered_tables(self) -> list[_TupleTable]:
        return sorted(
            self._tables.values(),
            key=lambda table: table.max_priority if table.max_priority is not None else 1 << 60,
        )

    def classify_traced(self, packet: Packet | Sequence[int]) -> ClassificationResult:
        return self.classify_with_floor(packet, None)

    def classify_with_floor(
        self, packet: Packet | Sequence[int], priority_floor: Optional[int]
    ) -> ClassificationResult:
        values = packet.values if isinstance(packet, Packet) else tuple(packet)
        trace = LookupTrace()
        best: Rule | None = None
        best_priority = priority_floor
        for table in self._ordered_tables():
            if (
                best_priority is not None
                and table.max_priority is not None
                and table.max_priority >= best_priority
            ):
                # Tables are sorted by best priority; nothing further can win.
                break
            trace.hash_ops += 1
            trace.index_accesses += 1
            bucket = table.buckets.get(table.key_for_values(values))
            if not bucket:
                continue
            for rule in bucket:
                if best_priority is not None and rule.priority >= best_priority:
                    break  # bucket is priority-sorted; nothing better remains
                trace.rule_accesses += 1
                trace.compute_ops += len(values)
                if rule.matches(values):
                    best = rule
                    best_priority = rule.priority
                    break
        return ClassificationResult(best, trace)

    # -- introspection -------------------------------------------------------------

    def memory_footprint(self) -> MemoryFootprint:
        entries = sum(table.num_rules for table in self._tables.values())
        buckets = sum(len(table.buckets) for table in self._tables.values())
        index_bytes = (
            len(self._tables) * HASH_TABLE_OVERHEAD
            + buckets * HASH_ENTRY_BYTES
            + entries * HASH_ENTRY_BYTES
        )
        rule_bytes = len(self.ruleset) * RULE_ENTRY_BYTES
        return MemoryFootprint(
            index_bytes=index_bytes,
            rule_bytes=rule_bytes,
            breakdown={"tables": len(self._tables) * HASH_TABLE_OVERHEAD,
                       "buckets": buckets * HASH_ENTRY_BYTES,
                       "entries": entries * HASH_ENTRY_BYTES},
        )

    def statistics(self) -> dict[str, object]:
        stats = super().statistics()
        stats.update(
            num_tables=len(self._tables),
            max_bucket=max((t.max_bucket_size() for t in self._tables.values()), default=0),
        )
        return stats

    @property
    def num_tables(self) -> int:
        return len(self._tables)
