"""Table 2 — cumulative iSet coverage vs. number of iSets.

Paper values (mean ± std over 12 ClassBench rule-sets):

    size   1 iSet        2 iSets       3 iSets       4 iSets
    1K     20.2 ± 18.6   28.9 ± 22.3   34.6 ± 25.6   38.7 ± 27.2
    10K    45.1 ± 31.6   59.6 ± 38.9   62.6 ± 37.1   65.1 ± 35.7
    100K   80.0 ± 14.5   96.5 ±  8.3   98.1 ±  4.8   98.8 ±  2.7
    500K   84.2 ± 10.5   98.8 ±  1.5   99.4 ±  0.6   99.7 ±  0.2
    Stanford (183,376)   57.8   91.6   96.5   98.2

The key shape: coverage improves with rule-set size, 2–3 iSets give >90% for
large sets, and the single-field Stanford table needs more iSets than the
5-field ClassBench sets for the same coverage.
"""

import statistics

from repro.analysis import coverage_report, format_table
from repro.core.isets import partition_isets

from bench_helpers import (
    current_scale,
    report,
    report_json,
    rows_as_records,
    ruleset,
    stanford,
)

PAPER_TABLE2 = {
    "1K": [20.2, 28.9, 34.6, 38.7],
    "10K": [45.1, 59.6, 62.6, 65.1],
    "100K": [80.0, 96.5, 98.1, 98.8],
    "500K": [84.2, 98.8, 99.4, 99.7],
    "stanford": [57.8, 91.6, 96.5, 98.2],
}


def test_table2_iset_coverage(benchmark):
    scale = current_scale()
    rows = []
    measured_by_label = {}
    for label, size in scale["sizes"].items():
        per_iset: list[list[float]] = [[] for _ in range(4)]
        for application in scale["applications"]:
            rep = coverage_report(ruleset(application, size), max_isets=4)
            for count in range(1, 5):
                per_iset[count - 1].append(100.0 * rep.coverage_at(count))
        means = [statistics.mean(values) for values in per_iset]
        stds = [statistics.pstdev(values) for values in per_iset]
        measured_by_label[label] = means
        rows.append(
            [label, size]
            + [f"{m:.1f}±{s:.1f}" for m, s in zip(means, stds)]
            + ["/".join(f"{v:.1f}" for v in PAPER_TABLE2[label])]
        )

    stanford_set = stanford(scale["stanford_rules"])
    stanford_rep = coverage_report(stanford_set, max_isets=4)
    stanford_cov = [100.0 * stanford_rep.coverage_at(i) for i in range(1, 5)]
    rows.append(
        ["stanford", len(stanford_set)]
        + [f"{v:.1f}" for v in stanford_cov]
        + ["/".join(f"{v:.1f}" for v in PAPER_TABLE2["stanford"])]
    )

    headers = ["size", "rules", "1 iSet", "2 iSets", "3 iSets", "4 iSets",
               "paper (1/2/3/4)"]
    text = format_table(
        headers,
        rows,
        title="Table 2: cumulative iSet coverage (%)",
    )
    report("table2_coverage", text)
    report_json(
        "table2_coverage",
        config={"applications": scale["applications"],
                "stanford_rules": scale["stanford_rules"]},
        measured={"rows": rows_as_records(headers, rows)},
        summary={
            f"{label}_2iset_mean": round(means[1], 2)
            for label, means in measured_by_label.items()
        },
    )

    # Shape checks from the paper:
    # (1) coverage grows with rule-set size,
    ordered_labels = ["1K", "10K", "100K", "500K"]
    two_iset_coverage = [measured_by_label[label][1] for label in ordered_labels]
    assert two_iset_coverage[-1] > two_iset_coverage[0]
    # (2) the largest sets reach high coverage with few iSets (paper: 98.8%
    #     with two at 500K; at the reduced benchmark scale the trend is the
    #     same with a lower absolute ceiling),
    assert measured_by_label["500K"][1] > 85.0
    assert measured_by_label["500K"][3] > 88.0
    # (3) coverage is monotone in the number of iSets.
    for means in measured_by_label.values():
        assert all(a <= b + 1e-9 for a, b in zip(means[:-1], means[1:]))

    largest = ruleset(scale["applications"][0], scale["sizes"]["500K"])
    benchmark(lambda: partition_isets(largest, max_isets=2))
