"""Flow-cache locality — hit rate and latency across the paper's skew settings.

Figure 12 evaluates skewed traffic at four Zipf settings, parameterised by the
share of traffic the 3% most frequent flows carry (80/85/90/95%), plus a
CAIDA-like trace.  This benchmark replays each of those traces through the
same engine twice — uncached and fronted by a
:class:`~repro.serving.FlowCache` — and records what the exact-match hot path
buys in each regime: the cache hit rate tracks the trace's skew, and the
cache-aware modelled latency collapses toward the hit cost as the hot flows
absorb the traffic (the same mechanism that narrows the paper's speedups at
high skew).

Results land in the BENCH json format (``benchmarks/results/
flowcache_locality.json`` plus a ``BENCH {...}`` stdout line).
"""

from __future__ import annotations

from repro.traffic import ZIPF_ALPHAS
from repro.workloads import run_scenario

from bench_helpers import bench_cost_model, current_scale, report, report_json, ruleset
from repro.analysis import format_table

#: TupleMerge shards keep build time negligible: the sweep measures the cache.
CLASSIFIER = "tm"
CACHE_SIZE = 4096
SHARDS = 2


def _scenario_traces() -> list[tuple[str, str, int]]:
    """(label, trace kind, skew) — the four Zipf settings plus CAIDA-like."""
    cells = [(f"zipf-{share}", "zipf", share) for share in sorted(ZIPF_ALPHAS)]
    cells.append(("caida", "caida", 0))
    return cells


def test_flowcache_locality():
    scale = current_scale()
    application = scale["applications"][0]
    size = scale["sizes"]["10K"]
    rules = ruleset(application, size)
    num_packets = max(20 * scale["trace_packets"], 4000)
    cost_model = bench_cost_model()

    rows = []
    series = []
    hit_rates = []
    for label, kind, skew in _scenario_traces():
        cached = run_scenario(
            rules,
            trace_kind=kind,
            num_packets=num_packets,
            skew=skew or 95,
            shards=SHARDS,
            cache_size=CACHE_SIZE,
            classifier=CLASSIFIER,
            executor="thread",
            cost_model=cost_model,
            seed=41,
            columnar=True,
        )
        uncached = run_scenario(
            rules,
            trace_kind=kind,
            num_packets=num_packets,
            skew=skew or 95,
            shards=SHARDS,
            cache_size=0,
            classifier=CLASSIFIER,
            executor="thread",
            cost_model=cost_model,
            seed=41,
            columnar=True,
        )
        if kind == "zipf":
            hit_rates.append(cached.hit_rate)
        series.append(
            {
                "trace": label,
                "cached": cached.as_dict(),
                "uncached": uncached.as_dict(),
            }
        )
        rows.append(
            [
                label,
                f"{cached.hit_rate:.1%}",
                round(cached.modelled_latency_ns, 1),
                round(uncached.modelled_latency_ns, 1),
                round(cached.throughput_pps / 1e3, 1),
                round(uncached.throughput_pps / 1e3, 1),
            ]
        )

    text = format_table(
        ["trace", "hit rate", "cached ns (model)", "uncached ns (model)",
         "cached kpps", "uncached kpps"],
        rows,
        title=f"Flow-cache locality ({CLASSIFIER} × {SHARDS} shards, "
              f"{application} {size} rules, cache {CACHE_SIZE})",
    )
    report("flowcache_locality", text)
    report_json(
        "flowcache_locality",
        config={
            "classifier": CLASSIFIER,
            "application": application,
            "rules": size,
            "shards": SHARDS,
            "cache_size": CACHE_SIZE,
            "trace_packets": num_packets,
            "batch_size": 128,
            "columnar": True,
        },
        measured={"series": series},
        summary={
            "zipf95_hit_rate": next(
                (
                    s["cached"]["hit_rate"]
                    for s in series
                    if s["trace"] == "zipf-95"
                ),
                None,
            ),
        },
    )

    # Shape checks: hotter traces hit more, and by the highest skew setting
    # the cached modelled latency must beat the uncached slow path.
    assert hit_rates == sorted(hit_rates), "hit rate should rise with skew"
    zipf95_cached = next(s for s in series if s["trace"] == "zipf-95")
    assert (
        zipf95_cached["cached"]["modelled_latency_ns"]
        < zipf95_cached["uncached"]["modelled_latency_ns"]
    )
