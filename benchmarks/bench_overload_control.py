"""Overload control — adaptive admission holds the p99 SLO through a burst.

The serving stack's :class:`~repro.serving.control.OverloadController` exists
for one regime: offered load transiently exceeding engine capacity.  This
benchmark builds that regime deterministically — a paced engine whose
``classify_block`` costs ``PACKET_COST_US`` per packet fixes capacity at
``1e6 / PACKET_COST_US`` pps — and drives the same three open-loop phases at
a *static* server (a huge fixed admission budget, no controller) and an
*adaptive* one (packet-weighted budget + AIMD controller against
``SLO_P99_US``):

1. **steady** — 0.6x capacity; both servers must serve it without shedding.
2. **burst** — a square wave peaking at 2x capacity
   (:class:`~repro.workloads.loadgen.BurstProfile`).  The static server
   queues the excess, so its admitted p99 blows through the SLO by an order
   of magnitude; the adaptive server sheds at the budget and its admitted
   p99 stays at or under the SLO.
3. **recovery** — steady again; the adaptive server must return to
   SLO-compliant, (near-)shed-free service, proving backoff is not sticky.

Latency is measured from the *scheduled* arrival (coordinated-omission-safe)
and percentiles cover *admitted* traffic only — shedding is reported
separately, so a server cannot look fast by rejecting everything (an
all-shed window counts as a breach in the controller for the same reason).

CI floors (hardware-independent — both servers run the same paced engine):
the adaptive server's burst p99 ≤ SLO while the static server's burst p99
exceeds it; adaptive steady-state shedding stays ≈ 0.  Results land in the
shared BENCH schema (``benchmarks/results/overload_control.json`` plus the
``BENCH {...}`` stdout line).
"""

from __future__ import annotations

import asyncio
import time

from repro.engine import ClassificationEngine
from repro.serving import (
    AsyncServer,
    ControllerConfig,
    ControlSettings,
    OverloadController,
)
from repro.workloads import BurstProfile, open_loop_load

from bench_helpers import report, report_json, ruleset
from repro.analysis import format_table

CLASSIFIER = "tm"
RULES = 1000

#: Engine pacing: 200us of service time per packet -> 5000 pps capacity.
PACKET_COST_US = 200.0
CAPACITY_PPS = 1e6 / PACKET_COST_US

#: The objective the adaptive server defends.
SLO_P99_US = 50_000.0

#: Offered load: steady at 0.6x capacity, bursts at 2x capacity.
STEADY_PPS = 0.6 * CAPACITY_PPS
BURST_PPS = 2.0 * CAPACITY_PPS
BURST_PERIOD_S = 0.6
BURST_DUTY = 0.5
PHASE_SECONDS = 1.2

#: Client shape: pre-formed binary batches (the production data plane).
CONNECTIONS = 4
WINDOW = 32
BATCH = 8

#: Admission budgets (packets).  The static server's budget is effectively
#: unbounded -- the pre-PR behaviour of the binary path.  The adaptive
#: server starts at a budget whose worst-case backlog (96 x 200us ~ 19ms)
#: sits under the SLO and lets the controller walk it from there.
STATIC_QUEUE = 200_000
ADAPTIVE_QUEUE = 96
CONTROL_WINDOW_S = 0.1


class PacedEngine:
    """Delegating engine whose columnar path costs a fixed time per packet.

    Pinning service time makes capacity exact and the benchmark's floors
    hardware-independent: both servers saturate at the same offered rate on
    any machine.
    """

    def __init__(self, inner, packet_cost_us: float):
        self._inner = inner
        self._packet_cost_s = packet_cost_us * 1e-6

    def classify_block(self, block):
        time.sleep(len(block) * self._packet_cost_s)
        return self._inner.classify_block(block)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _phase_packets(rules, seconds: float, mean_pps: float, seed: int):
    count = int(seconds * mean_pps)
    return [tuple(p) for p in rules.sample_packets(count, seed=seed)]


async def _run_phases(server_factory, rules):
    """One server, three phases; returns {phase: LoadReport}."""
    steady = _phase_packets(rules, PHASE_SECONDS, STEADY_PPS, seed=101)
    burst_profile = BurstProfile(
        STEADY_PPS, BURST_PPS, period_s=BURST_PERIOD_S, duty=BURST_DUTY
    )
    burst_mean = STEADY_PPS * (1 - BURST_DUTY) + BURST_PPS * BURST_DUTY
    burst = _phase_packets(rules, PHASE_SECONDS, burst_mean, seed=103)
    recovery = _phase_packets(rules, PHASE_SECONDS, STEADY_PPS, seed=107)

    reports = {}
    async with server_factory() as server:
        await server.start("127.0.0.1", 0)

        async def drive(packets, rate_pps=None, profile=None):
            return await open_loop_load(
                server.host,
                server.port,
                packets,
                connections=CONNECTIONS,
                window=WINDOW,
                batch=BATCH,
                rate_pps=rate_pps,
                profile=profile,
            )

        reports["steady"] = await drive(steady, rate_pps=STEADY_PPS)
        reports["burst"] = await drive(burst, profile=burst_profile)
        reports["recovery"] = await drive(recovery, rate_pps=STEADY_PPS)
        reports["server"] = server.statistics()["server"]
    return reports


def _shed_fraction(load) -> float:
    return load.overloaded / load.packets if load.packets else 0.0


def test_overload_control():
    rules = ruleset("acl1", RULES)
    inner = ClassificationEngine.build(rules, classifier=CLASSIFIER)
    engine = PacedEngine(inner, PACKET_COST_US)

    def static_server():
        return AsyncServer(
            engine, max_batch=64, max_delay_us=200, max_queue=STATIC_QUEUE
        )

    def adaptive_server():
        controller = OverloadController(
            # headroom 0.5: the budget stops growing once admitted p99
            # passes half the SLO, so one more multiplicative grow step
            # still lands the deadband well under the objective.
            ControllerConfig(
                slo_p99_us=SLO_P99_US,
                window_s=CONTROL_WINDOW_S,
                headroom=0.5,
            ),
            ControlSettings(
                max_batch=64, max_delay_us=200.0, max_queue=ADAPTIVE_QUEUE
            ),
        )
        return AsyncServer(
            engine,
            max_batch=64,
            max_delay_us=200,
            max_queue=ADAPTIVE_QUEUE,
            controller=controller,
        )

    static = asyncio.run(_run_phases(static_server, rules))
    adaptive = asyncio.run(_run_phases(adaptive_server, rules))
    inner.close()

    rows = []
    series = {}
    for mode, reports in (("static", static), ("adaptive", adaptive)):
        series[mode] = {
            phase: reports[phase].as_dict()
            for phase in ("steady", "burst", "recovery")
        }
        series[mode]["server"] = reports["server"]
        for phase in ("steady", "burst", "recovery"):
            load = reports[phase]
            rows.append(
                [
                    mode,
                    phase,
                    load.packets,
                    load.completed,
                    load.overloaded,
                    f"{_shed_fraction(load):.1%}",
                    round(load.latency_p50_us / 1e3, 1),
                    round(load.latency_p99_us / 1e3, 1),
                ]
            )

    text = format_table(
        ["server", "phase", "offered", "admitted", "shed", "shed %",
         "p50 ms", "p99 ms"],
        rows,
        title=(
            f"Overload control (capacity {CAPACITY_PPS:.0f} pps, SLO p99 "
            f"{SLO_P99_US / 1e3:.0f} ms, burst {BURST_PPS / CAPACITY_PPS:.0f}x "
            f"capacity)"
        ),
    )
    report("overload_control", text)

    controller_stats = adaptive["server"]["controller"]
    summary = {
        "slo_p99_us": SLO_P99_US,
        "capacity_pps": CAPACITY_PPS,
        "static_burst_p99_us": round(static["burst"].latency_p99_us, 1),
        "adaptive_burst_p99_us": round(adaptive["burst"].latency_p99_us, 1),
        "adaptive_recovery_p99_us": round(
            adaptive["recovery"].latency_p99_us, 1
        ),
        "static_burst_shed_fraction": round(_shed_fraction(static["burst"]), 4),
        "adaptive_burst_shed_fraction": round(
            _shed_fraction(adaptive["burst"]), 4
        ),
        "adaptive_steady_shed_fraction": round(
            _shed_fraction(adaptive["steady"]), 4
        ),
        "control_windows": controller_stats["windows"],
        "slo_breach_windows": controller_stats["breaches"],
    }
    report_json(
        "overload_control",
        config={
            "classifier": CLASSIFIER,
            "rules": RULES,
            "packet_cost_us": PACKET_COST_US,
            "slo_p99_us": SLO_P99_US,
            "steady_pps": STEADY_PPS,
            "burst_pps": BURST_PPS,
            "burst_period_s": BURST_PERIOD_S,
            "burst_duty": BURST_DUTY,
            "phase_seconds": PHASE_SECONDS,
            "connections": CONNECTIONS,
            "window": WINDOW,
            "batch": BATCH,
            "static_queue": STATIC_QUEUE,
            "adaptive_queue": ADAPTIVE_QUEUE,
            "control_window_s": CONTROL_WINDOW_S,
        },
        measured=series,
        summary=summary,
    )

    # Sanity: nothing errored, every offered packet was admitted or shed.
    for mode, reports in (("static", static), ("adaptive", adaptive)):
        for phase in ("steady", "burst", "recovery"):
            load = reports[phase]
            assert load.errors == 0, f"{mode}/{phase} saw errors"
            assert load.completed + load.overloaded == load.packets

    # Steady state (0.6x capacity) is comfortable for both servers.
    assert _shed_fraction(static["steady"]) == 0.0
    assert _shed_fraction(adaptive["steady"]) <= 0.02, (
        "adaptive server shed steady-state load it had capacity for"
    )
    assert adaptive["steady"].latency_p99_us <= SLO_P99_US

    # The 2x burst: the static server queues its way far past the SLO...
    assert static["burst"].latency_p99_us > SLO_P99_US, (
        f"static burst p99 {static['burst'].latency_p99_us:.0f}us did not "
        f"violate the {SLO_P99_US:.0f}us SLO -- burst is not overloading"
    )
    # ...while the adaptive server sheds the excess and holds the SLO for
    # the traffic it admits.
    assert adaptive["burst"].latency_p99_us <= SLO_P99_US, (
        f"adaptive burst p99 {adaptive['burst'].latency_p99_us:.0f}us "
        f"breached the {SLO_P99_US:.0f}us SLO"
    )
    assert _shed_fraction(adaptive["burst"]) > 0.0, (
        "adaptive server never shed during a 2x-capacity burst"
    )
    # And it recovers: post-burst service is SLO-compliant again.
    assert adaptive["recovery"].latency_p99_us <= SLO_P99_US
    assert _shed_fraction(adaptive["recovery"]) <= 0.05
    assert controller_stats["windows"] >= 3
