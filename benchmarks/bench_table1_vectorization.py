"""Table 1 — submodel inference time vs. vector instruction width.

Paper values: Serial(1) 126 ns, SSE(4) 62 ns, AVX(8) 49 ns per submodel
inference.  We report (a) the calibrated analytic model for those widths and
(b) wall-clock numpy inference at the equivalent lane counts, which shows the
same monotone trend on the machine running the benchmarks.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core.submodel import Submodel
from repro.simulation import VECTOR_WIDTHS, inference_time_ns, measure_inference_ns

from bench_helpers import report, report_json, rows_as_records

PAPER_TABLE1 = {"Serial": 126.0, "SSE": 62.0, "AVX": 49.0}


def _random_submodel(seed: int = 0) -> Submodel:
    rng = np.random.default_rng(seed)
    return Submodel(rng.normal(size=8), rng.normal(size=8), rng.normal(size=8), 0.0)


def test_table1_vectorization(benchmark):
    rows = []
    for name, width in VECTOR_WIDTHS.items():
        modelled = inference_time_ns(width)
        measured = measure_inference_ns(_random_submodel(), lanes=width, iterations=500)
        rows.append([name, width, PAPER_TABLE1[name], round(modelled, 1), round(measured, 1)])
    headers = ["instruction set", "floats/insn", "paper ns", "model ns",
               "numpy ns/key"]
    text = format_table(
        headers,
        rows,
        title="Table 1: submodel inference time vs. vectorization",
    )
    report("table1_vectorization", text)
    report_json(
        "table1_vectorization",
        config={"widths": dict(VECTOR_WIDTHS)},
        measured={"rows": rows_as_records(headers, rows)},
    )

    # Shape checks: wider vectors are never slower.
    modelled = [inference_time_ns(w) for w in VECTOR_WIDTHS.values()]
    assert modelled == sorted(modelled, reverse=True)

    submodel = _random_submodel()
    keys = np.random.default_rng(1).random(8)
    benchmark(lambda: submodel.predict_batch(keys))
