"""Figure 14 — coverage and execution-time breakdown vs. number of iSets.

The paper varies the number of iSets (0–6) with CutSplit indexing the
remainder, on a single core, and reports the cumulative coverage together with
the per-lookup time split into remainder / secondary search / validation /
RQ-RMI inference.  Shape: coverage saturates after 2–3 iSets while the
inference and validation components keep growing with every added iSet, so one
or two iSets are the sweet spot; zero iSets is the stand-alone baseline.
"""

from repro.analysis import format_table
from repro.core.config import NuevoMatchConfig
from repro.core.nuevomatch import NuevoMatch
from repro.simulation import CostModel, evaluate_classifier, evaluate_nuevomatch
from repro.traffic import generate_uniform_trace

from bench_helpers import (
    bench_cost_model,
    bench_rqrmi_config,
    build_baseline,
    current_scale,
    report,
    report_json,
    rows_as_records,
    ruleset,
)


def test_fig14_iset_count_breakdown(benchmark):
    scale = current_scale()
    size = scale["sizes"]["500K"]
    application = scale["applications"][0]
    rules = ruleset(application, size)
    trace = generate_uniform_trace(rules, scale["trace_packets"], seed=51)
    cost_model = bench_cost_model()

    rows = []
    coverage_series = []
    latency_series = []
    for num_isets in range(0, 5):
        if num_isets == 0:
            baseline = build_baseline("cs", application, size)
            perf = evaluate_classifier(baseline, trace, cost_model, cores=1)
            rows.append([0, 0.0, round(perf.avg_latency_ns, 1), "-", "-", "-",
                         round(perf.avg_latency_ns, 1)])
            coverage_series.append(0.0)
            latency_series.append(perf.avg_latency_ns)
            continue
        nm = NuevoMatch.build(
            rules,
            remainder_classifier="cs",
            config=NuevoMatchConfig(
                max_isets=num_isets,
                min_iset_coverage=0.01,
                rqrmi=bench_rqrmi_config(),
            ),
        )
        perf = evaluate_nuevomatch(nm, trace, cost_model, mode="single")
        breakdown = perf.breakdown
        rows.append(
            [
                num_isets,
                round(nm.coverage * 100, 1),
                round(perf.avg_latency_ns, 1),
                round(breakdown.model_ns + breakdown.compute_ns, 1),
                round(breakdown.rule_ns, 1),
                round(breakdown.index_ns + breakdown.hash_ns, 1),
                round(perf.avg_latency_ns, 1),
            ]
        )
        coverage_series.append(nm.coverage * 100)
        latency_series.append(perf.avg_latency_ns)

    headers = ["iSets", "coverage %", "latency ns", "inference ns",
               "search+validation ns", "remainder ns", "total ns"]
    text = format_table(
        headers,
        rows,
        title="Figure 14: coverage and runtime breakdown vs. number of iSets (remainder: CutSplit)",
    )
    report("fig14_breakdown", text)
    report_json(
        "fig14_breakdown",
        config={"application": application, "rules": size, "remainder": "cs"},
        modelled={"rows": rows_as_records(headers, rows)},
        summary={
            "final_coverage_pct": round(coverage_series[-1], 2),
            "best_latency_ns": round(min(latency_series[1:]), 2),
        },
    )

    # Shape checks: coverage is monotone and saturates; adding iSets beyond
    # saturation does not keep improving latency (diminishing returns).
    assert all(a <= b + 1e-9 for a, b in zip(coverage_series[:-1], coverage_series[1:]))
    assert coverage_series[-1] > 80.0
    best_latency = min(latency_series[1:])
    assert latency_series[-1] >= best_latency * 0.9

    benchmark(lambda: evaluate_nuevomatch(
        NuevoMatch.build(
            rules, remainder_classifier="cs",
            config=NuevoMatchConfig(max_isets=1, min_iset_coverage=0.01,
                                    rqrmi=bench_rqrmi_config()),
        ),
        trace, cost_model, mode="single", max_packets=50,
    ))
