"""Figures 8 & 9 — NuevoMatch speedup over CutSplit, NeuroCuts and TupleMerge.

Figure 8 (two cores, 500K rule-sets): geometric-mean speedups of 2.7× / 4.4× /
2.6× in latency and 1.3× / 2.2× / 1.2× in throughput over cs / nc / tm; at
100K the gains are 2.0× / 3.6× / 2.6× (latency) and 1.0× / 1.7× / 1.2×
(throughput).

Figure 9 (single core, early termination, 500K): 2.4× / 2.6× / 1.6× higher
throughput over cs / nc / tm (latency speedup equals throughput speedup on a
single core).

The benchmark reproduces both: for every application and baseline it builds
the stand-alone baseline and NuevoMatch-with-that-baseline-as-remainder, runs
the uniform trace through the cost model, and prints per-application speedups
plus the geometric mean ("GM" in the paper's figures).
"""

from repro.analysis import format_table, geometric_mean
from repro.simulation import CostModel, evaluate_classifier, evaluate_nuevomatch, speedup
from repro.traffic import generate_uniform_trace

from bench_helpers import (
    bench_cost_model,
    build_baseline,
    build_nuevomatch,
    current_scale,
    report,
    report_json,
    ruleset,
)

PAPER_GM = {
    # (figure, size_label, baseline) -> (latency speedup, throughput speedup)
    ("fig8", "500K", "cs"): (2.7, 1.3),
    ("fig8", "500K", "nc"): (4.4, 2.2),
    ("fig8", "500K", "tm"): (2.6, 1.2),
    ("fig8", "100K", "cs"): (2.0, 1.0),
    ("fig8", "100K", "nc"): (3.6, 1.7),
    ("fig8", "100K", "tm"): (2.6, 1.2),
    ("fig9", "500K", "cs"): (2.4, 2.4),
    ("fig9", "500K", "nc"): (2.6, 2.6),
    ("fig9", "500K", "tm"): (1.6, 1.6),
}

BASELINES = ["cs", "nc", "tm"]


def _speedups_for(size_label: str, mode: str, cost_model: CostModel) -> dict:
    """Per-baseline lists of (application, latency speedup, throughput speedup)."""
    scale = current_scale()
    size = scale["sizes"][size_label]
    out: dict[str, list[tuple[str, float, float]]] = {name: [] for name in BASELINES}
    for application in scale["applications"]:
        trace = generate_uniform_trace(
            ruleset(application, size), scale["trace_packets"], seed=17
        )
        for name in BASELINES:
            baseline = build_baseline(name, application, size)
            nm = build_nuevomatch(name, application, size)
            baseline_report = evaluate_classifier(
                baseline, trace, cost_model, cores=2 if mode == "parallel" else 1
            )
            nm_report = evaluate_nuevomatch(nm, trace, cost_model, mode=mode)
            factors = speedup(nm_report, baseline_report)
            out[name].append((application, factors["latency"], factors["throughput"]))
    return out


def _render(figure: str, size_label: str, results: dict) -> str:
    rows = []
    for name in BASELINES:
        entries = results[name]
        for application, lat, thr in entries:
            rows.append([name, application, round(lat, 2), round(thr, 2), "", ""])
        gm_lat = geometric_mean([lat for _, lat, _ in entries])
        gm_thr = geometric_mean([thr for _, _, thr in entries])
        paper = PAPER_GM.get((figure, size_label, name), ("-", "-"))
        rows.append([name, "GM", round(gm_lat, 2), round(gm_thr, 2), paper[0], paper[1]])
    return format_table(
        ["baseline", "ruleset", "latency x", "throughput x", "paper GM lat", "paper GM thr"],
        rows,
        title=f"{figure}: NuevoMatch speedups, {size_label} rule-sets",
    )


def _records(size_label: str, results: dict) -> list[dict]:
    return [
        {"size": size_label, "baseline": name, "ruleset": application,
         "latency_x": round(lat, 3), "throughput_x": round(thr, 3)}
        for name, entries in results.items()
        for application, lat, thr in entries
    ]


def test_fig8_two_core_speedups(benchmark):
    cost_model = bench_cost_model()
    sections = []
    records = []
    gm_500k_thr = {}
    gm_500k_lat = {}
    for size_label in ("100K", "500K"):
        results = _speedups_for(size_label, "parallel", cost_model)
        sections.append(_render("fig8", size_label, results))
        records.extend(_records(size_label, results))
        if size_label == "500K":
            gm_500k_thr = {
                name: geometric_mean([thr for _, _, thr in entries])
                for name, entries in results.items()
            }
            gm_500k_lat = {
                name: geometric_mean([lat for _, lat, _ in entries])
                for name, entries in results.items()
            }
    report("fig8_two_core_speedup", "\n\n".join(sections))
    report_json(
        "fig8_two_core_speedup",
        config={"mode": "parallel", "cores": 2, "baselines": BASELINES},
        modelled={"rows": records},
        summary={
            **{f"gm_500k_throughput_{k}": round(v, 3) for k, v in gm_500k_thr.items()},
            **{f"gm_500k_latency_{k}": round(v, 3) for k, v in gm_500k_lat.items()},
        },
    )

    # Shape: NuevoMatch reduces latency against every baseline at the largest
    # scale and wins on throughput against at least one.  The paper's full
    # throughput claim (>= parity against all three baselines) depends on the
    # baselines' trees/tables being deep enough to be memory-bound, which only
    # happens at the full 500K scale — it is asserted only there.
    for name, value in gm_500k_lat.items():
        assert value > 1.0, f"nm should reduce latency vs {name} at the largest scale"
    assert max(gm_500k_thr.values()) > 1.0
    if current_scale()["cache_divisor"] == 1:
        for name, value in gm_500k_thr.items():
            assert value > 0.9, f"nm should at least match {name} at full scale"

    scale = current_scale()
    application = scale["applications"][0]
    size = scale["sizes"]["500K"]
    nm = build_nuevomatch("tm", application, size)
    packet = ruleset(application, size).sample_packets(1, seed=1)[0]
    benchmark(lambda: nm.classify(packet))


def test_fig9_single_core_speedups(benchmark):
    cost_model = bench_cost_model()
    results = _speedups_for("500K", "single", cost_model)
    report("fig9_single_core_speedup", _render("fig9", "500K", results))

    gm = {
        name: geometric_mean([thr for _, _, thr in entries])
        for name, entries in results.items()
    }
    report_json(
        "fig9_single_core_speedup",
        config={"mode": "single", "cores": 1, "baselines": BASELINES},
        modelled={"rows": _records("500K", results)},
        summary={f"gm_throughput_{k}": round(v, 3) for k, v in gm.items()},
    )
    # Shape: single-core NuevoMatch with early termination still improves
    # throughput at the largest scale (paper: 1.6x-2.6x).
    assert max(gm.values()) > 1.0

    scale = current_scale()
    application = scale["applications"][0]
    size = scale["sizes"]["500K"]
    baseline = build_baseline("tm", application, size)
    packet = ruleset(application, size).sample_packets(1, seed=2)[0]
    benchmark(lambda: baseline.classify(packet))
