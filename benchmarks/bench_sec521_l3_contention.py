"""§5.2.1 — performance under L3 cache contention.

The paper restricts the L3 cache to 1.5 MB with Intel CAT while running the
500K rule-set (1): CutSplit loses about half of its throughput while
NuevoMatch-with-CutSplit loses only ~30%, so restricting the shared cache
*increases* NuevoMatch's relative advantage.  We reproduce the experiment by
re-running the cost model with a 1.5 MB L3.
"""

from repro.analysis import format_table
from repro.simulation import (
    CacheHierarchy,
    CostModel,
    evaluate_classifier,
    evaluate_nuevomatch,
    speedup,
)
from repro.traffic import generate_uniform_trace

from bench_helpers import (
    bench_cost_model,
    build_baseline,
    build_nuevomatch,
    current_scale,
    report,
    report_json,
    rows_as_records,
    ruleset,
)

PAPER = {"cs_loss": 0.50, "nm_loss": 0.30}


def test_sec521_l3_contention(benchmark):
    scale = current_scale()
    size = scale["sizes"]["500K"]
    application = scale["applications"][0]
    rules = ruleset(application, size)
    trace = generate_uniform_trace(rules, scale["trace_packets"], seed=81)

    baseline = build_baseline("cs", application, size)
    nm = build_nuevomatch("cs", application, size)

    results = {}
    for label, l3_limit in (("full L3 (16MB)", None), ("restricted L3 (1.5MB)", 1_500_000)):
        cost_model = bench_cost_model(l3_limit_bytes=l3_limit)
        cs_report = evaluate_classifier(baseline, trace, cost_model, cores=2)
        nm_report = evaluate_nuevomatch(nm, trace, cost_model, mode="parallel")
        results[label] = (cs_report.throughput_pps, nm_report.throughput_pps,
                          speedup(nm_report, cs_report)["throughput"])

    full_cs, full_nm, full_speedup = results["full L3 (16MB)"]
    limited_cs, limited_nm, limited_speedup = results["restricted L3 (1.5MB)"]
    cs_loss = 1.0 - limited_cs / full_cs if full_cs else 0.0
    nm_loss = 1.0 - limited_nm / full_nm if full_nm else 0.0

    rows = [
        ["cs", round(full_cs / 1e6, 2), round(limited_cs / 1e6, 2),
         f"{cs_loss:.0%}", f"{PAPER['cs_loss']:.0%}"],
        ["nm w/ cs", round(full_nm / 1e6, 2), round(limited_nm / 1e6, 2),
         f"{nm_loss:.0%}", f"{PAPER['nm_loss']:.0%}"],
        ["nm speedup", round(full_speedup, 2), round(limited_speedup, 2), "-", "-"],
    ]
    headers = ["metric", "full L3 (Mpps / x)", "1.5MB L3 (Mpps / x)", "loss",
               "paper loss"]
    text = format_table(
        headers,
        rows,
        title="§5.2.1: L3 contention — CutSplit vs NuevoMatch w/ CutSplit",
    )
    report("sec521_l3_contention", text)
    report_json(
        "sec521_l3_contention",
        config={"application": application, "rules": size,
                "l3_limit_bytes": 1_500_000},
        modelled={"rows": rows_as_records(headers, rows)},
        summary={
            "cs_loss": round(cs_loss, 3),
            "nm_loss": round(nm_loss, 3),
            "full_speedup": round(full_speedup, 3),
            "limited_speedup": round(limited_speedup, 3),
        },
    )

    # Shape checks: the baseline suffers at least as much as NuevoMatch from
    # the restricted L3, so the speedup does not shrink.
    assert cs_loss >= nm_loss - 1e-9
    assert limited_speedup >= full_speedup - 1e-9

    cost_model = bench_cost_model(l3_limit_bytes=1_500_000)
    packet = rules.sample_packets(1, seed=6)[0]
    benchmark(lambda: baseline.classify_traced(packet))
