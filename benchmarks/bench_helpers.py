"""Shared infrastructure for the benchmark harness.

Lives in a plain helper module (imported as ``from bench_helpers import …``)
rather than ``conftest.py`` so the module name can never collide with the
test suite's conftest; ``benchmarks/conftest.py`` only declares fixtures.

Every file in this directory regenerates one table or figure of the paper
(docs/benchmarks.md holds the index of machine-readable experiments).  Benchmarks run at a reduced scale by
default so the whole suite finishes in minutes on a laptop; set the
``REPRO_SCALE`` environment variable to change that:

* ``REPRO_SCALE=ci``    (default) — "large" rule-sets are 20K rules, 4 apps.
* ``REPRO_SCALE=small``            — 50K rules, 6 apps.
* ``REPRO_SCALE=full``             — the paper's 500K rules and all 12 apps
  (hours of CPU time; intended for unattended runs).

The generated tables are printed to stdout (run pytest with ``-s`` to see
them live) and appended to ``benchmarks/results/<experiment>.txt`` so the
numbers can be copied into EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import subprocess
from functools import lru_cache
from pathlib import Path

from repro.core.config import NuevoMatchConfig, RQRMIConfig
from repro.core.nuevomatch import NuevoMatch
from repro.rules import generate_classbench, generate_stanford_backbone
from repro.traffic import generate_uniform_trace

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale presets: rule-set sizes standing in for the paper's 1K/10K/100K/500K,
#: the applications evaluated, trace length and packets evaluated per config.
#: ``cache_divisor`` scales the modelled L2/L3 sizes down together with the
#: rule counts so the paper's cache-level crossovers (which drive its speedups)
#: happen at the reduced scales as well; L1 is kept at 32 KB because the
#: RQ-RMI models are full-size regardless of scale.  At ``full`` scale the
#: unmodified Xeon Silver 4116 hierarchy is used.
SCALES = {
    "ci": {
        "sizes": {"1K": 1000, "10K": 2500, "100K": 8000, "500K": 20000},
        "applications": ["acl1", "acl5", "fw1", "ipc1"],
        "trace_packets": 200,
        "stanford_rules": 20000,
        "cache_divisor": 8,
    },
    "small": {
        "sizes": {"1K": 1000, "10K": 10000, "100K": 25000, "500K": 50000},
        "applications": ["acl1", "acl3", "acl5", "fw1", "fw3", "ipc1"],
        "trace_packets": 500,
        "stanford_rules": 50000,
        "cache_divisor": 4,
    },
    "full": {
        "sizes": {"1K": 1000, "10K": 10000, "100K": 100000, "500K": 500000},
        "applications": [
            "acl1", "acl2", "acl3", "acl4", "acl5",
            "fw1", "fw2", "fw3", "fw4", "fw5", "ipc1", "ipc2",
        ],
        "trace_packets": 2000,
        "stanford_rules": 180000,
        "cache_divisor": 1,
    },
}


def current_scale() -> dict:
    name = os.environ.get("REPRO_SCALE", "ci")
    if name not in SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(SCALES)}, got {name!r}")
    return SCALES[name]


def bench_cache(l3_limit_bytes: int | None = None):
    """The cache hierarchy used by the benchmarks, scaled per REPRO_SCALE.

    L2 and L3 shrink by the scale's ``cache_divisor`` so index structures
    cross cache-level boundaries at the same relative rule counts as in the
    paper; an explicit ``l3_limit_bytes`` (the CAT experiments) is scaled by
    the same factor.
    """
    from repro.simulation import CacheHierarchy
    from repro.simulation.cache import CacheLevel

    divisor = current_scale()["cache_divisor"]
    if divisor == 1:
        return CacheHierarchy.xeon_silver_4116(l3_limit_bytes=l3_limit_bytes)
    l3_bytes = 16 * 1024 * 1024 if l3_limit_bytes is None else l3_limit_bytes
    l3_bytes = max(l3_bytes // divisor, 96 * 1024)
    return CacheHierarchy(
        levels=[
            CacheLevel("L1", 32 * 1024, 4.0),
            CacheLevel("L2", max(1024 * 1024 // divisor, 64 * 1024), 14.0),
            CacheLevel("L3", l3_bytes, 68.0),
        ],
        dram_latency_cycles=220.0,
        frequency_ghz=2.1,
    )


def bench_cost_model(locality: float = 0.0, l3_limit_bytes: int | None = None):
    """A CostModel over :func:`bench_cache`."""
    from repro.simulation import CostModel

    return CostModel(cache=bench_cache(l3_limit_bytes), locality=locality)


# --------------------------------------------------------------------- caching
#
# Rule-sets, traces and built classifiers are shared across benchmark files via
# module-level caches keyed by their generation parameters.


@lru_cache(maxsize=64)
def ruleset(application: str, size: int, seed: int = 0):
    return generate_classbench(application, size, seed=seed)


@lru_cache(maxsize=8)
def stanford(size: int, seed: int = 0):
    return generate_stanford_backbone(size, seed=seed)


@lru_cache(maxsize=64)
def uniform_trace(application: str, size: int, packets: int, seed: int = 0):
    return generate_uniform_trace(ruleset(application, size), packets, seed=seed)


def bench_rqrmi_config(**overrides) -> RQRMIConfig:
    """RQ-RMI settings used by the benchmarks (paper defaults, fewer epochs)."""
    params = dict(adam_epochs=120, initial_samples=512, error_threshold=64)
    params.update(overrides)
    return RQRMIConfig(**params)


def bench_nm_config(remainder: str = "tm", **rqrmi_overrides) -> NuevoMatchConfig:
    """NuevoMatch settings per §5.1: coverage cut-off 5% for tm, 25% otherwise."""
    min_coverage = 0.05 if remainder == "tm" else 0.25
    return NuevoMatchConfig(
        max_isets=4 if remainder == "tm" else 2,
        min_iset_coverage=min_coverage,
        rqrmi=bench_rqrmi_config(**rqrmi_overrides),
    )


_classifier_cache: dict = {}


def build_baseline(name: str, application: str, size: int):
    """Build (and cache) a stand-alone baseline classifier."""
    from repro.classifiers import build_classifier

    key = ("base", name, application, size)
    if key not in _classifier_cache:
        _classifier_cache[key] = build_classifier(name, ruleset(application, size))
    return _classifier_cache[key]


def build_nuevomatch(remainder: str, application: str, size: int) -> NuevoMatch:
    """Build (and cache) NuevoMatch with the given remainder classifier."""
    key = ("nm", remainder, application, size)
    if key not in _classifier_cache:
        _classifier_cache[key] = NuevoMatch.build(
            ruleset(application, size),
            remainder_classifier=remainder,
            config=bench_nm_config(remainder),
        )
    return _classifier_cache[key]


# --------------------------------------------------------------------- reporting


def report(experiment: str, text: str) -> None:
    """Print a reproduced table/series and persist it under benchmarks/results/."""
    print(f"\n===== {experiment} =====")
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    with path.open("w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def shard_counts_for(num_rules: int, maximum: int = 8) -> list[int]:
    """Power-of-two shard counts (1, 2, 4, …) valid for ``num_rules``."""
    counts = []
    shards = 1
    while shards <= maximum and shards <= num_rules:
        counts.append(shards)
        shards *= 2
    return counts


@lru_cache(maxsize=1)
def git_rev() -> str:
    """Short revision of the repo the benchmark ran from (``unknown`` outside
    a checkout) — stamped into every BENCH payload so results are traceable."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).parent,
            timeout=10,
        )
    except OSError:
        return "unknown"
    return completed.stdout.strip() if completed.returncode == 0 else "unknown"


def rows_as_records(headers: list[str], rows: list[list]) -> list[dict]:
    """Zip a printed table's headers and rows into JSON-friendly records."""
    return [dict(zip(headers, row)) for row in rows]


def report_json(
    experiment: str,
    *,
    measured=None,
    modelled=None,
    config: dict | None = None,
    summary: dict | None = None,
) -> None:
    """Emit a machine-readable result in the shared BENCH schema.

    Every benchmark writes the same envelope — ``name``, ``scale``,
    ``git_rev``, ``config`` (the experiment's knobs), ``measured``
    (wall-clock observations), ``modelled`` (cost-model outputs) and an
    optional ``summary`` of headline scalars — as a ``BENCH <json>`` stdout
    line plus ``benchmarks/results/<experiment>.json`` for downstream tooling
    (``scripts/bench_table.py``, CI floors).
    """
    payload = {
        "name": experiment,
        "schema": 1,
        "scale": os.environ.get("REPRO_SCALE", "ci"),
        "git_rev": git_rev(),
        "config": config or {},
        "measured": measured,
        "modelled": modelled,
    }
    if summary is not None:
        payload["summary"] = summary
    print(f"\nBENCH {json.dumps(payload, sort_keys=True)}")
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.json"
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
