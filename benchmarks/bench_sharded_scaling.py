"""Sharded serving — throughput vs. shard count.

The paper scales NuevoMatch by splitting rule-sets across iSets and cores
(§5); this benchmark turns the same knob in the serving layer.  One rule-set
is served through :class:`~repro.serving.ShardedEngine` at increasing shard
counts and two throughput series are recorded:

* **modelled** — :func:`repro.simulation.evaluate_sharded` prices each
  shard's aggregated lookup trace against its (smaller) structures and takes
  the slowest shard per batch: the shards-as-cores model.
* **measured** — wall-clock ``classify_batch`` throughput through the thread
  pool, the end-to-end number an operator sees.

Results land in the BENCH json format (``benchmarks/results/
sharded_scaling.json`` plus a ``BENCH {...}`` stdout line).
"""

from __future__ import annotations

import time

from repro.serving import ShardedEngine
from repro.simulation import evaluate_sharded
from repro.traffic import generate_uniform_trace

from bench_helpers import (
    bench_cost_model,
    current_scale,
    report,
    report_json,
    ruleset,
    shard_counts_for,
)
from repro.analysis import format_table

#: Shards are served by one classifier kind; TupleMerge keeps per-shard build
#: time negligible so the sweep measures serving, not construction.
CLASSIFIER = "tm"


def _measure_wall_pps(sharded, packets, batch_size: int) -> float:
    start = time.perf_counter()
    for chunk_start in range(0, len(packets), batch_size):
        sharded.classify_batch(packets[chunk_start : chunk_start + batch_size])
    elapsed = time.perf_counter() - start
    return len(packets) / elapsed if elapsed > 0 else 0.0


def test_sharded_scaling():
    scale = current_scale()
    application = scale["applications"][0]
    size = scale["sizes"]["100K"]
    rules = ruleset(application, size)
    trace = list(generate_uniform_trace(rules, scale["trace_packets"], seed=41))
    cost_model = bench_cost_model()
    shard_counts = shard_counts_for(size)

    rows = []
    series = []
    modelled_pps = []
    for shards in shard_counts:
        engine = ShardedEngine.build(
            rules, shards=shards, classifier=CLASSIFIER, executor="thread"
        )
        with engine:
            modelled = evaluate_sharded(engine, trace, cost_model, batch_size=128)
            measured = _measure_wall_pps(engine, trace, batch_size=128)
            modelled_pps.append(modelled.throughput_pps)
            series.append(
                {
                    "shards": shards,
                    "shard_sizes": engine.shard_sizes(),
                    "modelled_throughput_pps": round(modelled.throughput_pps, 1),
                    "modelled_latency_ns": round(modelled.avg_latency_ns, 2),
                    "measured_throughput_pps": round(measured, 1),
                }
            )
            rows.append(
                [
                    shards,
                    "/".join(str(s) for s in engine.shard_sizes()),
                    round(modelled.avg_latency_ns, 1),
                    round(modelled.throughput_pps / 1e6, 3),
                    round(measured / 1e3, 1),
                ]
            )

    text = format_table(
        ["shards", "shard sizes", "latency ns", "modelled Mpps", "measured kpps"],
        rows,
        title=f"Sharded serving scaling ({CLASSIFIER} shards, "
              f"{application} {size} rules)",
    )
    report("sharded_scaling", text)
    report_json(
        "sharded_scaling",
        {
            "bench": "sharded_scaling",
            "classifier": CLASSIFIER,
            "application": application,
            "rules": size,
            "trace_packets": len(trace),
            "batch_size": 128,
            "series": series,
        },
    )

    assert len(series) >= 3, "need at least 3 shard counts for the scaling curve"
    # Shape check: splitting the structure across cores must help — the best
    # sharded configuration beats the single-shard baseline in the model.
    assert max(modelled_pps[1:]) > modelled_pps[0]
