"""Sharded serving — throughput vs. shard count and executor.

The paper scales NuevoMatch by splitting rule-sets across iSets and cores
(§5); this benchmark turns the same knob in the serving layer, in two parts:

* **Modelled scaling** — one rule-set served through
  :class:`~repro.serving.ShardedEngine` at increasing shard counts;
  :func:`repro.simulation.evaluate_sharded` prices each shard's aggregated
  lookup trace against its (smaller) structures and takes the slowest shard
  per batch: the shards-as-cores model.
* **Measured executor scaling** — wall-clock ``classify_block`` throughput
  through the ``"thread"`` executor and the shared-memory ``"workers"``
  runtime.  The linear classifier keeps per-shard lookup cost proportional
  to the shard's rule count, so this series isolates what the executors add:
  hand-off cost and (on multi-core hosts) parallelism.

Floors (the scaling-inversion regression guard): on hosts with at least
``FLOOR_CORES`` cores the workers series must improve monotonically from 1
to 8 shards and reach ≥ 2× the single-shard throughput at 8 shards; on
smaller hosts (where no executor can parallelize) the workers runtime must
stay within 2× of the thread executor at every shard count — the ring
hand-off must not re-introduce the process-pool pickling tax.

Results land in the shared BENCH schema (``benchmarks/results/
sharded_scaling.json`` plus a ``BENCH {...}`` stdout line).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.serving import CachedEngine, ShardedEngine
from repro.simulation import evaluate_sharded
from repro.traffic import generate_uniform_trace, generate_zipf_trace

from bench_helpers import (
    bench_cost_model,
    current_scale,
    report,
    report_json,
    ruleset,
    shard_counts_for,
)
from repro.analysis import format_table

#: Modelled shards are served by one classifier kind; TupleMerge keeps
#: per-shard build time negligible so the sweep measures serving, not
#: construction.
CLASSIFIER = "tm"

#: The measured executor sweep uses the (vectorized) linear classifier: its
#: per-shard cost shrinks proportionally with the shard's rule count, which
#: is the property the shards-as-cores argument needs.
MEASURED_CLASSIFIER = "linear"
MEASURED_EXECUTORS = ("thread", "workers")
MEASURED_BATCH = 512

#: Core count from which the full parallel-scaling floors apply.
FLOOR_CORES = 4

#: The measured cached-columnar stack must land within this factor of the
#: modelled single-shard throughput (the ROADMAP's "within 10x of modelled
#: 1.2M pps" target for the zero-copy serve path).
COLUMNAR_MODEL_GAP = 10.0


def _measure_wall_pps(sharded, block, batch_size: int) -> float:
    sharded.classify_block(block[:batch_size])  # warm executors and rings
    start = time.perf_counter()
    for chunk_start in range(0, len(block), batch_size):
        sharded.classify_block(block[chunk_start : chunk_start + batch_size])
    elapsed = time.perf_counter() - start
    return len(block) / elapsed if elapsed > 0 else 0.0


def test_sharded_scaling():
    scale = current_scale()
    application = scale["applications"][0]
    size = scale["sizes"]["100K"]
    rules = ruleset(application, size)
    trace = list(generate_uniform_trace(rules, scale["trace_packets"], seed=41))
    cost_model = bench_cost_model()
    shard_counts = shard_counts_for(size)
    cores = os.cpu_count() or 1

    modelled_rows = []
    modelled_series = []
    modelled_pps = []
    for shards in shard_counts:
        with ShardedEngine.build(
            rules, shards=shards, classifier=CLASSIFIER, executor="thread"
        ) as engine:
            modelled = evaluate_sharded(engine, trace, cost_model, batch_size=128)
            modelled_pps.append(modelled.throughput_pps)
            modelled_series.append(
                {
                    "shards": shards,
                    "shard_sizes": engine.shard_sizes(),
                    "throughput_pps": round(modelled.throughput_pps, 1),
                    "latency_ns": round(modelled.avg_latency_ns, 2),
                }
            )
            modelled_rows.append(
                [
                    shards,
                    "/".join(str(s) for s in engine.shard_sizes()),
                    round(modelled.avg_latency_ns, 1),
                    round(modelled.throughput_pps / 1e6, 3),
                ]
            )

    # Measured executor sweep: the same columnar block through every executor
    # at every shard count (4 × slot size so the workers path pipelines).
    measured_rules = ruleset(application, min(size, 4000))
    measured_packets = max(4 * MEASURED_BATCH, scale["trace_packets"])
    block = np.array(
        [
            tuple(p)
            for p in generate_uniform_trace(
                measured_rules, measured_packets, seed=43
            )
        ],
        dtype=np.uint64,
    )
    measured_series = []
    measured_rows = []
    measured_pps: dict[tuple[str, int], float] = {}
    for executor in MEASURED_EXECUTORS:
        for shards in shard_counts:
            with ShardedEngine.build(
                measured_rules,
                shards=shards,
                classifier=MEASURED_CLASSIFIER,
                executor=executor,
            ) as engine:
                pps = _measure_wall_pps(engine, block, MEASURED_BATCH)
            measured_pps[(executor, shards)] = pps
            measured_series.append(
                {
                    "executor": executor,
                    "shards": shards,
                    "throughput_pps": round(pps, 1),
                }
            )
            measured_rows.append([executor, shards, round(pps / 1e3, 2)])

    # Cached-columnar single shard: the full serve stack (flow cache over the
    # modelled engine), driven end to end through classify_block on a skewed
    # trace.  Pass 1 warms the cache; pass 2 is the measured steady state —
    # the number the ROADMAP compares against the modelled single-shard
    # throughput.
    skewed = np.array(
        [
            tuple(p)
            for p in generate_zipf_trace(
                rules, measured_packets, top3_share=95, seed=47
            )
        ],
        dtype=np.uint64,
    )
    cache_capacity = 1 << max(12, (len(skewed) - 1).bit_length())
    with ShardedEngine.build(
        rules, shards=shard_counts[0], classifier=CLASSIFIER, executor="thread"
    ) as single_shard:
        with CachedEngine(single_shard, capacity=cache_capacity) as cached:
            for chunk_start in range(0, len(skewed), MEASURED_BATCH):  # warm
                cached.classify_block(
                    skewed[chunk_start : chunk_start + MEASURED_BATCH]
                )
            columnar_pps = _measure_wall_pps(cached, skewed, MEASURED_BATCH)
            columnar_hit_rate = cached.cache.stats.hit_rate
    measured_series.append(
        {
            "executor": "cached-columnar",
            "shards": shard_counts[0],
            "throughput_pps": round(columnar_pps, 1),
            "hit_rate": round(columnar_hit_rate, 4),
        }
    )
    measured_rows.append(
        ["cached-columnar", shard_counts[0], round(columnar_pps / 1e3, 2)]
    )

    text = format_table(
        ["shards", "shard sizes", "latency ns", "modelled Mpps"],
        modelled_rows,
        title=f"Sharded serving scaling, modelled ({CLASSIFIER} shards, "
              f"{application} {size} rules)",
    ) + "\n" + format_table(
        ["executor", "shards", "measured kpps"],
        measured_rows,
        title=f"Executor scaling, measured ({MEASURED_CLASSIFIER} shards, "
              f"{application} {len(measured_rules)} rules, {cores} cores)",
    )
    report("sharded_scaling", text)

    base_workers = measured_pps[("workers", shard_counts[0])]
    top_workers = measured_pps[("workers", shard_counts[-1])]
    report_json(
        "sharded_scaling",
        config={
            "classifier": CLASSIFIER,
            "measured_classifier": MEASURED_CLASSIFIER,
            "application": application,
            "rules": size,
            "measured_rules": len(measured_rules),
            "trace_packets": len(trace),
            "measured_packets": int(len(block)),
            "batch_size": MEASURED_BATCH,
            "executors": list(MEASURED_EXECUTORS),
            "cores": cores,
        },
        measured={"series": measured_series},
        modelled={"series": modelled_series},
        summary={
            "modelled_best_pps": round(max(modelled_pps), 1),
            "modelled_speedup": round(
                max(modelled_pps) / max(modelled_pps[0], 1e-9), 3
            ),
            "workers_base_pps": round(base_workers, 1),
            "workers_top_pps": round(top_workers, 1),
            "workers_scaling": round(top_workers / max(base_workers, 1e-9), 3),
            "cached_columnar_pps": round(columnar_pps, 1),
            "cached_columnar_hit_rate": round(columnar_hit_rate, 4),
            "columnar_model_gap": round(
                modelled_pps[0] / max(columnar_pps, 1e-9), 3
            ),
        },
    )

    assert len(modelled_series) >= 3, "need at least 3 shard counts for the curve"
    # Shape check: splitting the structure across cores must help — the best
    # sharded configuration beats the single-shard baseline in the model.
    assert max(modelled_pps[1:]) > modelled_pps[0]

    if cores >= FLOOR_CORES:
        # The zero-copy serve-path floor: the measured cached-columnar stack
        # (flow cache over the modelled single-shard engine, warm, block in /
        # arrays out) must land within COLUMNAR_MODEL_GAP of the modelled
        # single-shard throughput.
        assert columnar_pps >= modelled_pps[0] / COLUMNAR_MODEL_GAP, (
            f"cached-columnar throughput {columnar_pps:.0f} pps is more than "
            f"{COLUMNAR_MODEL_GAP:.0f}x below the modelled single-shard "
            f"{modelled_pps[0]:.0f} pps"
        )
        # The scaling-inversion fix, asserted: monotonic improvement from 1
        # to 8 shards (10% noise tolerance per step) with a 2x floor at the
        # top of the sweep.
        previous = base_workers
        for shards in shard_counts[1:]:
            pps = measured_pps[("workers", shards)]
            assert pps >= 0.9 * previous, (
                f"workers throughput degraded at {shards} shards: "
                f"{pps:.0f} < {previous:.0f} pps"
            )
            previous = pps
        assert top_workers >= 2.0 * base_workers, (
            f"8-shard workers throughput {top_workers:.0f} pps is below 2x "
            f"the 1-shard baseline {base_workers:.0f} pps on {cores} cores"
        )
    else:
        # Single-core hosts cannot parallelize anything; the guard is that
        # the shared-memory hand-off stays within 2x of the in-process
        # thread executor — i.e. the rings never re-introduce the pickling
        # tax that caused the original inversion.
        for shards in shard_counts:
            workers = measured_pps[("workers", shards)]
            thread = measured_pps[("thread", shards)]
            assert workers >= 0.5 * thread, (
                f"workers executor at {shards} shards ({workers:.0f} pps) "
                f"fell below half the thread executor ({thread:.0f} pps)"
            )
