"""Pytest fixtures for the benchmark harness.

All shared logic lives in :mod:`bench_helpers`; only fixtures belong here.
Keeping ``conftest.py`` free of importable helpers means its module name can
never collide with the test suite's conftest (both directories are
non-packages, so both would otherwise import as the top-level ``conftest``).
"""

from __future__ import annotations

import pytest

from bench_helpers import current_scale


@pytest.fixture(scope="session")
def scale() -> dict:
    return current_scale()
