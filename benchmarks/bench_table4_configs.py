"""Table 4 — RQ-RMI structure (stages and widths) vs. rule-set size.

Paper configurations:

    #Rules            #Stages   widths
    < 10^3            2         [1, 4]
    10^3 – 10^4       3         [1, 4, 16]
    10^4 – 10^5       3         [1, 4, 128]
    > 10^5            3         [1, 8, 256] or [1, 8, 512]

Besides reproducing the table, this benchmark trains one RQ-RMI per row (at
the benchmark scale) and reports the resulting model size and error bound,
confirming that the configured structures keep models in the tens of KB that
fit the L1 cache (§5.2.1 reports 35 KB for 500K rules).
"""

import numpy as np

from repro.analysis import format_table
from repro.core.config import TABLE4_CONFIGS, stage_widths_for_rules
from repro.core.rqrmi import RQRMI, RangeSet

from bench_helpers import bench_rqrmi_config, report, report_json, rows_as_records


def _disjoint_ranges(count: int, domain_bits: int = 32, seed: int = 0):
    rng = np.random.default_rng(seed)
    domain = 1 << domain_bits
    points = np.sort(
        rng.choice(domain, size=2 * count, replace=False).astype(np.int64)
    )
    return [(int(points[2 * i]), int(points[2 * i + 1])) for i in range(count)]


def test_table4_rqrmi_configurations(benchmark):
    # The paper's table itself.
    rows = []
    for max_rules, stages, widths in TABLE4_CONFIGS:
        rows.append([f"< {max_rules:,}", stages, str(widths)])
    table_text = format_table(
        ["rules (up to)", "stages", "stage widths"],
        rows,
        title="Table 4: RQ-RMI configurations",
    )

    # Sanity-check the selector at the paper's boundaries.
    assert stage_widths_for_rules(999) == [1, 4]
    assert stage_widths_for_rules(9_999) == [1, 4, 16]
    assert stage_widths_for_rules(99_999) == [1, 4, 128]
    assert stage_widths_for_rules(499_999) == [1, 8, 256]

    # Train one model per configuration (scaled range counts) and report size.
    trained_rows = []
    for count, label in [(800, "1K-class"), (4000, "10K-class"), (12000, "100K-class")]:
        ranges = RangeSet.from_integer_ranges(_disjoint_ranges(count, seed=count), 1 << 32)
        widths = stage_widths_for_rules(count)
        model = RQRMI.train(ranges, bench_rqrmi_config(stage_widths=widths))
        trained_rows.append(
            [label, count, str(widths), model.size_bytes(), model.max_error,
             round(model.report.training_seconds, 2)]
        )
        assert model.size_bytes() < 64 * 1024  # must stay L1-resident

    trained_headers = ["class", "ranges", "widths", "model bytes", "max error",
                       "train s"]
    trained_text = format_table(
        trained_headers,
        trained_rows,
        title="Trained RQ-RMI size per configuration (scaled)",
    )
    report("table4_configs", table_text + "\n\n" + trained_text)
    report_json(
        "table4_configs",
        config={"table4": [
            {"max_rules": max_rules, "stages": stages, "widths": list(widths)}
            for max_rules, stages, widths in TABLE4_CONFIGS
        ]},
        measured={"rows": rows_as_records(trained_headers, trained_rows)},
    )

    small = RangeSet.from_integer_ranges(_disjoint_ranges(500, seed=1), 1 << 32)
    benchmark(lambda: RQRMI.train(small, bench_rqrmi_config(stage_widths=[1, 4])))
