"""Figure 13 — memory footprint of the index structures vs. rule-set size.

The paper plots, for 1K/10K/100K/500K ClassBench rule-sets, the index size of
CutSplit, NeuroCuts and TupleMerge stand-alone, next to the NuevoMatch
remainder index and the RQ-RMI models.  Headline: at 500K rules NuevoMatch
compresses the index by 4.9× (cs), 8× (nc) and 82× (tm) on average, bringing
it from L3/DRAM territory back under the L2 (and mostly L1) size.
"""

from repro.analysis import compare_footprints, format_table, geometric_mean
from repro.simulation import CacheHierarchy

from bench_helpers import (
    bench_cache,
    bench_nm_config,
    current_scale,
    report,
    report_json,
    rows_as_records,
    ruleset,
)

PAPER_COMPRESSION_500K = {"cs": 4.9, "nc": 8.0, "tm": 82.0}


def test_fig13_memory_footprint(benchmark):
    scale = current_scale()
    cache = bench_cache()
    rows = []
    compression_at_largest: dict[str, list[float]] = {"cs": [], "nc": [], "tm": []}

    for label in ("1K", "10K", "100K", "500K"):
        size = scale["sizes"][label]
        for application in scale["applications"][:2]:
            rules = ruleset(application, size)
            reports = compare_footprints(
                rules,
                baselines=["cs", "nc", "tm"],
                with_nuevomatch=True,
                nm_config=bench_nm_config("tm"),
                cache=cache,
            )
            by_name = {r.classifier: r for r in reports}
            for name in ("cs", "nc", "tm"):
                baseline = by_name[name]
                nm = by_name[f"nm({name})"]
                compression = (
                    baseline.index_bytes / nm.index_bytes if nm.index_bytes else 0.0
                )
                if label == "500K":
                    compression_at_largest[name].append(compression)
                rows.append(
                    [
                        label,
                        application,
                        name,
                        baseline.index_bytes,
                        baseline.cache_level,
                        nm.index_bytes,
                        nm.rqrmi_bytes,
                        nm.cache_level,
                        round(compression, 1),
                    ]
                )

    headers = ["size", "app", "baseline", "baseline index B", "baseline level",
               "nm index B", "rqrmi B", "nm level", "compression x"]
    text = format_table(
        headers,
        rows,
        title="Figure 13: index memory footprint, baselines vs NuevoMatch",
    )
    gm_lines = []
    for name, values in compression_at_largest.items():
        gm_lines.append(
            f"geomean compression at largest scale vs {name}: "
            f"{geometric_mean(values):.1f}x (paper at 500K: {PAPER_COMPRESSION_500K[name]}x)"
        )
    report("fig13_memory", text + "\n\n" + "\n".join(gm_lines))
    report_json(
        "fig13_memory",
        config={"applications": scale["applications"][:2]},
        modelled={"rows": rows_as_records(headers, rows)},
        summary={
            f"compression_{name}": round(geometric_mean(values), 2)
            for name, values in compression_at_largest.items()
        },
    )

    # Shape checks: NuevoMatch compresses every baseline at the largest scale,
    # and TupleMerge (the largest structure) is compressed the most.
    geomeans = {name: geometric_mean(values) for name, values in compression_at_largest.items()}
    assert all(value > 1.0 for value in geomeans.values())
    assert geomeans["tm"] >= geomeans["cs"]

    size = scale["sizes"]["100K"]
    rules = ruleset(scale["applications"][0], size)
    benchmark(lambda: compare_footprints(rules, baselines=["tm"], with_nuevomatch=False))
