"""Figure 12 — skewed traffic: Zipf 80–95%, CAIDA-like, and CAIDA* (1.5MB L3).

Paper throughput speedups of NuevoMatch (early-termination, single core pair)
over CutSplit and TupleMerge under skewed traffic:

    trace        nm w/ cs   nm w/ tm
    Zipf 80%     2.06x      1.14x
    Zipf 85%     1.95x      1.06x
    Zipf 90%     1.84x      0.99x
    Zipf 95%     1.62x      0.89x
    CAIDA        1.79x      1.05x
    CAIDA*       2.26x      1.16x

Shape: speedups shrink as skew grows (caches absorb the hot flows for every
classifier) and grow back when the available L3 is restricted (CAIDA*).
"""

from repro.analysis import format_table, geometric_mean
from repro.simulation import (
    CacheHierarchy,
    CostModel,
    evaluate_classifier,
    evaluate_nuevomatch,
    speedup,
)
from repro.traffic import generate_caida_like_trace, generate_zipf_trace

from bench_helpers import (
    bench_cost_model,
    build_baseline,
    build_nuevomatch,
    current_scale,
    report,
    report_json,
    rows_as_records,
    ruleset,
)

PAPER = {
    "zipf-80": (2.06, 1.14),
    "zipf-85": (1.95, 1.06),
    "zipf-90": (1.84, 0.99),
    "zipf-95": (1.62, 0.89),
    "caida": (1.79, 1.05),
    "caida*": (2.26, 1.16),
}

#: Trace skew → fraction of accesses served from the hot working set in the
#: cost model.  Higher skew, higher locality, smaller NuevoMatch advantage.
LOCALITY = {"zipf-80": 0.45, "zipf-85": 0.55, "zipf-90": 0.65, "zipf-95": 0.8,
            "caida": 0.6, "caida*": 0.6}


def _trace_for(name: str, rules, packets: int):
    if name.startswith("zipf"):
        share = int(name.split("-")[1])
        return generate_zipf_trace(rules, packets, top3_share=share, seed=41)
    return generate_caida_like_trace(rules, packets, seed=42)


def test_fig12_skewed_traffic(benchmark):
    scale = current_scale()
    size = scale["sizes"]["500K"]
    applications = scale["applications"][:2]

    rows = []
    measured = {}
    for trace_name in ("zipf-80", "zipf-85", "zipf-90", "zipf-95", "caida", "caida*"):
        l3_limit = 1_500_000 if trace_name == "caida*" else None
        cost_model = bench_cost_model(locality=LOCALITY[trace_name], l3_limit_bytes=l3_limit)
        per_baseline = {"cs": [], "tm": []}
        for application in applications:
            rules = ruleset(application, size)
            trace = _trace_for(trace_name, rules, scale["trace_packets"])
            for name in ("cs", "tm"):
                baseline = build_baseline(name, application, size)
                nm = build_nuevomatch(name, application, size)
                factors = speedup(
                    evaluate_nuevomatch(nm, trace, cost_model, mode="single"),
                    evaluate_classifier(baseline, trace, cost_model, cores=1),
                )
                per_baseline[name].append(factors["throughput"])
        cs_gm = geometric_mean(per_baseline["cs"])
        tm_gm = geometric_mean(per_baseline["tm"])
        measured[trace_name] = (cs_gm, tm_gm)
        rows.append(
            [trace_name, round(cs_gm, 2), round(tm_gm, 2),
             PAPER[trace_name][0], PAPER[trace_name][1]]
        )

    headers = ["trace", "nm w/ cs (x)", "nm w/ tm (x)", "paper cs", "paper tm"]
    text = format_table(
        headers,
        rows,
        title="Figure 12: throughput speedup under skewed traffic",
    )
    report("fig12_skew", text)
    report_json(
        "fig12_skew",
        config={"rules": size, "applications": list(applications)},
        modelled={"rows": rows_as_records(headers, rows)},
        summary={
            "zipf80_cs_speedup": round(measured["zipf-80"][0], 3),
            "zipf95_cs_speedup": round(measured["zipf-95"][0], 3),
        },
    )

    # Shape checks: the cs speedup shrinks with skew, and restricting L3
    # (CAIDA*) increases the speedup relative to unrestricted CAIDA.
    assert measured["zipf-80"][0] >= measured["zipf-95"][0]
    assert measured["caida*"][0] >= measured["caida"][0]

    rules = ruleset(applications[0], size)
    benchmark(lambda: generate_zipf_trace(rules, 200, top3_share=90, seed=1))
