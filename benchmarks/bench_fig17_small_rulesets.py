"""Figure 17 (appendix) and §5.2 "Small rule-sets" — 1K / 10K behaviour.

For small rule-sets the baselines already fit in L1/L2, so NuevoMatch adds
compute without removing memory stalls: the paper reports equal-or-lower
throughput but still ~2.2× / 1.9× better latency than CutSplit / TupleMerge on
average (two cores), and notes that some rule-sets produce no usable iSets at
all (NuevoMatch then falls back to the stand-alone classifier).
"""

from repro.analysis import format_table, geometric_mean
from repro.simulation import CostModel, evaluate_classifier, evaluate_nuevomatch, speedup
from repro.traffic import generate_uniform_trace

from bench_helpers import (
    bench_cost_model,
    build_baseline,
    build_nuevomatch,
    current_scale,
    report,
    report_json,
    rows_as_records,
    ruleset,
)


def test_fig17_small_rulesets(benchmark):
    scale = current_scale()
    cost_model = bench_cost_model()
    rows = []
    throughput_small = []
    throughput_large = []

    for label in ("1K", "10K"):
        size = scale["sizes"][label]
        for application in scale["applications"]:
            rules = ruleset(application, size)
            trace = generate_uniform_trace(rules, scale["trace_packets"], seed=71)
            for name in ("cs", "tm"):
                baseline = build_baseline(name, application, size)
                nm = build_nuevomatch(name, application, size)
                factors = speedup(
                    evaluate_nuevomatch(nm, trace, cost_model, mode="parallel"),
                    evaluate_classifier(baseline, trace, cost_model, cores=2),
                )
                rows.append(
                    [label, application, name, nm.num_isets,
                     round(nm.coverage * 100, 1),
                     round(factors["latency"], 2), round(factors["throughput"], 2)]
                )
                throughput_small.append(factors["throughput"])

    # Contrast with the largest scale (computed in fig8; recomputed cheaply here
    # for one application) to show the size-dependence of the benefit.
    big = scale["sizes"]["500K"]
    application = scale["applications"][0]
    trace = generate_uniform_trace(ruleset(application, big), scale["trace_packets"], seed=72)
    for name in ("cs", "tm"):
        factors = speedup(
            evaluate_nuevomatch(build_nuevomatch(name, application, big), trace,
                                cost_model, mode="parallel"),
            evaluate_classifier(build_baseline(name, application, big), trace,
                                cost_model, cores=2),
        )
        throughput_large.append(factors["throughput"])

    headers = ["size", "app", "baseline", "iSets", "coverage %", "latency x",
               "throughput x"]
    text = format_table(
        headers,
        rows,
        title="Figure 17: small rule-sets (1K/10K), NuevoMatch vs CutSplit/TupleMerge",
    )
    text += (
        f"\n\nGM throughput speedup small sets: {geometric_mean(throughput_small):.2f}x"
        f" | largest sets: {geometric_mean(throughput_large):.2f}x"
        " (paper: small sets show same-or-lower throughput; gains appear at scale)"
    )
    report("fig17_small_rulesets", text)
    report_json(
        "fig17_small_rulesets",
        config={"applications": scale["applications"]},
        modelled={"rows": rows_as_records(headers, rows)},
        summary={
            "gm_throughput_small": round(geometric_mean(throughput_small), 3),
            "gm_throughput_large": round(geometric_mean(throughput_large), 3),
        },
    )

    # Shape check: the throughput advantage at the largest scale exceeds the
    # small-rule-set advantage.
    assert geometric_mean(throughput_large) >= geometric_mean(throughput_small) * 0.9

    size = scale["sizes"]["1K"]
    baseline = build_baseline("cs", scale["applications"][0], size)
    packet = ruleset(scale["applications"][0], size).sample_packets(1, seed=4)[0]
    benchmark(lambda: baseline.classify(packet))
