"""Figure 7 and §3.9 — throughput over time under rule updates.

Figure 7 sketches throughput as a function of time for a stream of updates
with periodic retraining: the slower the retraining, the deeper and longer the
throughput dips; instantaneous retraining (the green curve) is the upper
bound.  §3.9 also estimates that a 500K rule-set with minute-long retraining
sustains ~4K updates/second at about half the update-free speedup.

This benchmark reproduces the curve with the analytical model of
:mod:`repro.core.updates` (parameterised by measured NuevoMatch / remainder
throughputs) and exercises the online-update manager on a real classifier.
"""

from repro.analysis import format_table
from repro.core.nuevomatch import NuevoMatch
from repro.core.updates import (
    UpdatableNuevoMatch,
    sustained_update_rate,
    throughput_over_time,
)
from repro.rules.rule import Rule
from repro.simulation import CostModel, evaluate_classifier, evaluate_nuevomatch
from repro.traffic import generate_uniform_trace

from bench_helpers import (
    bench_cost_model,
    bench_nm_config,
    build_baseline,
    build_nuevomatch,
    current_scale,
    report,
    report_json,
    rows_as_records,
    ruleset,
)


def test_fig7_throughput_under_updates(benchmark):
    scale = current_scale()
    size = scale["sizes"]["500K"]
    application = scale["applications"][0]
    rules = ruleset(application, size)
    trace = generate_uniform_trace(rules, scale["trace_packets"], seed=61)
    cost_model = bench_cost_model()

    nm = build_nuevomatch("tm", application, size)
    baseline = build_baseline("tm", application, size)
    nm_tp = evaluate_nuevomatch(nm, trace, cost_model, mode="parallel").throughput_pps
    rem_tp = evaluate_classifier(baseline, trace, cost_model, cores=2).throughput_pps

    update_rate = size * 0.004          # ~0.4% of the rules change per second
    horizon = 400.0
    rows = []
    series_by_training = {}
    for training_time in (0.0, 30.0, 90.0):
        series = throughput_over_time(
            total_rules=size,
            update_rate=update_rate,
            retrain_period=120.0,
            training_time=training_time,
            nuevomatch_throughput=nm_tp,
            remainder_throughput=rem_tp,
            horizon=horizon,
            step=10.0,
        )
        series_by_training[training_time] = [value for _, value in series]
        for t, value in series:
            rows.append([training_time, t, round(value / 1e6, 3)])

    sustained = sustained_update_rate(
        total_rules=size, training_time=60.0,
        nuevomatch_throughput=nm_tp, remainder_throughput=rem_tp,
    )

    headers = ["training time s", "time s", "throughput Mpps"]
    text = format_table(
        headers,
        rows,
        title="Figure 7: throughput over time under updates (retrain every 120s)",
    )
    text += (
        f"\n\nsustained update rate at half speedup, 60s training: "
        f"{sustained:,.0f} updates/s (paper: ~4,000/s at 500K rules)"
    )
    report("fig7_updates", text)
    report_json(
        "fig7_updates",
        config={
            "application": application,
            "rules": size,
            "update_rate": update_rate,
            "retrain_period_s": 120.0,
            "horizon_s": horizon,
        },
        modelled={"rows": rows_as_records(headers, rows)},
        summary={"sustained_updates_per_s": round(sustained, 1)},
    )

    # Shape checks: zero training time dominates slower retraining, and the
    # degraded curve stays between the remainder and NuevoMatch throughputs.
    assert sum(series_by_training[0.0]) >= sum(series_by_training[90.0])
    assert min(series_by_training[90.0]) >= rem_tp * 0.99
    assert max(series_by_training[90.0]) <= nm_tp * 1.01

    # Exercise the real update path: additions land in the remainder and are
    # still found; the benchmark times single-rule insertion.
    small_rules = ruleset(application, scale["sizes"]["10K"])
    updatable = UpdatableNuevoMatch(
        NuevoMatch.build(small_rules, remainder_classifier="tm",
                         config=bench_nm_config("tm"))
    )
    counter = [1_000_000]

    def add_one():
        rule_id = counter[0]
        counter[0] += 1
        updatable.add(
            Rule(((7, 7), (9, 9), (80, 80), (443, 443), (6, 6)),
                 priority=-1, rule_id=rule_id)
        )

    benchmark(add_one)
    assert updatable.classify((7, 9, 80, 443, 6)) is not None
