"""Figure 11 — throughput vs. number of rules (TupleMerge with and without NM).

The paper plots TupleMerge and NuevoMatch-accelerated TupleMerge on ACL
rule-sets from 1K to 500K rules.  TupleMerge's throughput collapses as its
hash tables spill from L1 to L2 to L3/DRAM; NuevoMatch compresses the index so
the remainder stays in fast caches and the large-rule-set throughput returns
to the small-rule-set level.  Annotations give coverage and index sizes
(remainder : total), e.g. 99% coverage and 7.9 KB : 46.1 KB at 500K.
"""

from repro.analysis import format_table
from repro.simulation import CacheHierarchy, CostModel, evaluate_classifier, evaluate_nuevomatch
from repro.traffic import generate_uniform_trace

from bench_helpers import (
    bench_cache,
    bench_cost_model,
    build_baseline,
    build_nuevomatch,
    current_scale,
    report,
    report_json,
    rows_as_records,
    ruleset,
)


def test_fig11_throughput_vs_rules(benchmark):
    scale = current_scale()
    application = scale["applications"][0]  # an ACL application, as in the paper
    cache = bench_cache()
    cost_model = bench_cost_model()

    rows = []
    tm_series = []
    nm_series = []
    for label in ("1K", "10K", "100K", "500K"):
        size = scale["sizes"][label]
        rules = ruleset(application, size)
        trace = generate_uniform_trace(rules, scale["trace_packets"], seed=31)
        baseline = build_baseline("tm", application, size)
        nm = build_nuevomatch("tm", application, size)

        baseline_report = evaluate_classifier(baseline, trace, cost_model, cores=2)
        nm_report = evaluate_nuevomatch(nm, trace, cost_model, mode="parallel")
        tm_series.append(baseline_report.throughput_pps)
        nm_series.append(nm_report.throughput_pps)

        baseline_index = baseline.memory_footprint().index_bytes
        remainder_index = nm.remainder.memory_footprint().index_bytes
        total_nm_index = nm.memory_footprint().index_bytes
        rows.append(
            [
                label,
                size,
                round(baseline_report.throughput_pps / 1e6, 2),
                round(nm_report.throughput_pps / 1e6, 2),
                round(nm.coverage * 100, 1),
                f"{remainder_index / 1024:.1f}:{total_nm_index / 1024:.1f}",
                f"{baseline_index / 1024:.1f}",
                cache.placement_level(baseline_index),
                cache.placement_level(total_nm_index),
            ]
        )

    headers = ["size", "rules", "tm Mpps", "nm Mpps", "coverage %",
               "nm index KB (rem:total)", "tm index KB", "tm level", "nm level"]
    text = format_table(
        headers,
        rows,
        title="Figure 11: throughput vs. number of rules (TupleMerge vs NuevoMatch w/ TupleMerge)",
    )
    report("fig11_scaling", text)
    report_json(
        "fig11_scaling",
        config={"application": application, "trace_packets": scale["trace_packets"]},
        modelled={"rows": rows_as_records(headers, rows)},
        summary={
            "tm_drop": round(tm_series[0] / tm_series[-1], 3),
            "nm_drop": round(nm_series[0] / nm_series[-1], 3),
        },
    )

    # Shape checks: TupleMerge degrades with scale; NuevoMatch degrades less
    # and wins at the largest scale.
    assert tm_series[-1] < tm_series[0]
    assert nm_series[-1] > tm_series[-1]
    tm_drop = tm_series[0] / tm_series[-1]
    nm_drop = nm_series[0] / nm_series[-1]
    assert nm_drop < tm_drop

    size = scale["sizes"]["500K"]
    baseline = build_baseline("tm", application, size)
    packet = ruleset(application, size).sample_packets(1, seed=3)[0]
    benchmark(lambda: baseline.classify(packet))
