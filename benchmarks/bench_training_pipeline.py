"""Training-pipeline benchmark — cold vs. parallel vs. warm-start build times.

The paper's Figure 15 measures absolute RQ-RMI training cost; this benchmark
measures what the :mod:`repro.core.pipeline` subsystem buys back on the build
path:

* **cold serial** — the legacy per-submodel trainer
  (:meth:`RQRMI.train <repro.core.rqrmi.RQRMI.train>` loop), the baseline
  every earlier PR built with;
* **cold pipeline** — the vectorized stacked-Adam trainer at ``jobs=1`` and
  fanned across a process pool at ``jobs=4``;
* **warm retrain** — rebuilding after an update workload (rule modifications,
  removals and insertions) with submodels seeded/reused from the previous
  engine, against the same rebuild done cold;
* **retrain-to-swap latency** — the ``UpdateQueue`` path end to end: the wall
  time from the update that crosses the retrain threshold to the rebuilt
  engine being swapped in, warm vs. cold.

Every timed engine is verified against linear-search ground truth before its
number is reported, so the speedups never come at the cost of the certified
error-bound contract.

Emits the BENCH json line / ``benchmarks/results/training_pipeline.json``
consumed by ``scripts/bench_table.py``.
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.core.nuevomatch import NuevoMatch
from repro.core.pipeline import TrainingPipeline
from repro.rules.rule import Rule
from repro.serving import ShardedEngine

from bench_helpers import bench_nm_config, current_scale, report, report_json, ruleset

#: Modification fraction of the update workload (§3.9-style churn).
UPDATE_FRACTION = 0.02


def _timed(fn, repeats: int = 1):
    """Run ``fn`` ``repeats`` times; report the fastest wall time (noise-robust)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _update_workload(rules, fraction: float, seed: int = 7):
    """Apply matching-set changes, removals and insertions to ``rules``."""
    rng = np.random.default_rng(seed)
    all_rules = list(rules)
    budget = max(3, int(len(all_rules) * fraction))
    victims = sorted(rng.choice(len(all_rules), size=budget, replace=False).tolist())
    third = max(1, budget // 3)
    modified = set(victims[:third])
    removed = set(victims[third: 2 * third])
    max_id = max(rule.rule_id for rule in all_rules)

    new_rules = []
    for position, rule in enumerate(all_rules):
        if position in removed:
            continue
        if position in modified:
            ranges = list(rule.ranges)
            lo, hi = ranges[0]
            ranges[0] = (lo, min(0xFFFFFFFF, hi + 1))
            new_rules.append(Rule(tuple(ranges), priority=rule.priority,
                                  action=rule.action, rule_id=rule.rule_id))
        else:
            new_rules.append(rule)
    # Insertions: near-duplicates of existing rules at fresh ids.
    for offset, position in enumerate(victims[2 * third:]):
        donor = all_rules[position]
        new_rules.append(Rule(donor.ranges, priority=donor.priority + 100_000,
                              action=donor.action, rule_id=max_id + offset + 1))
    return rules.subset(new_rules, name=f"{rules.name}-updated")


def _verify(classifier, rules, seed: int) -> None:
    classifier.verify(rules.sample_packets(200, seed=seed))


def _retrain_to_swap_seconds(rules, config, warm_retrain: bool) -> float:
    """Insert until the threshold trips; report the rebuild-to-swap latency."""
    engine = ShardedEngine.build(
        rules, shards=1, classifier="nm", remainder_classifier="tm",
        config=config, background_retraining=False, retrain_threshold=0.2,
        warm_retrain=warm_retrain,
    )
    try:
        donor = rules.rules[0]
        max_id = max(rule.rule_id for rule in rules)
        for index in range(1, len(rules)):
            engine.insert(Rule(donor.ranges, priority=200_000 + index,
                               action=donor.action, rule_id=max_id + index))
            if engine.updates.retrains_completed:
                return engine.updates.last_retrain_seconds
        raise AssertionError("retrain threshold never tripped")
    finally:
        engine.close()


def test_training_pipeline(benchmark):
    scale = current_scale()
    size = scale["sizes"]["100K"]
    rules = ruleset("acl1", size)
    config = bench_nm_config("tm")

    build_serial = lambda: NuevoMatch.build(
        rules, remainder_classifier="tm", config=config
    )
    build_jobs = lambda jobs: NuevoMatch.build(
        rules, remainder_classifier="tm", config=config,
        pipeline=TrainingPipeline(jobs=jobs),
    )

    nm_serial, cold_serial_s = _timed(build_serial)
    nm_pipe1, cold_pipe1_s = _timed(lambda: build_jobs(1))
    nm_pipe4, cold_pipe4_s = _timed(lambda: build_jobs(4))
    _verify(nm_serial, rules, seed=11)
    _verify(nm_pipe1, rules, seed=11)
    _verify(nm_pipe4, rules, seed=11)

    updated = _update_workload(rules, UPDATE_FRACTION)
    retrain_cold = lambda: NuevoMatch.build(
        updated, remainder_classifier="tm", config=config,
        pipeline=TrainingPipeline(jobs=1),
    )
    retrain_warm = lambda: NuevoMatch.build(
        updated, remainder_classifier="tm", config=config,
        pipeline=TrainingPipeline(jobs=1), warm_from=nm_pipe1,
    )
    nm_cold, cold_retrain_s = _timed(retrain_cold, repeats=2)
    nm_warm, warm_retrain_s = _timed(retrain_warm, repeats=2)
    _verify(nm_cold, updated, seed=13)
    _verify(nm_warm, updated, seed=13)

    swap_rules = ruleset("acl1", max(400, size // 8))
    swap_cold_s = _retrain_to_swap_seconds(swap_rules, config, warm_retrain=False)
    swap_warm_s = _retrain_to_swap_seconds(swap_rules, config, warm_retrain=True)

    parallel_speedup = cold_serial_s / cold_pipe4_s
    warm_speedup = cold_retrain_s / warm_retrain_s
    swap_speedup = swap_cold_s / swap_warm_s

    rows = [
        ["cold build (serial loop)", round(cold_serial_s, 3), "1.00x"],
        ["cold build (pipeline, jobs=1)", round(cold_pipe1_s, 3),
         f"{cold_serial_s / cold_pipe1_s:.2f}x"],
        ["cold build (pipeline, jobs=4)", round(cold_pipe4_s, 3),
         f"{parallel_speedup:.2f}x"],
        ["retrain after updates (cold)", round(cold_retrain_s, 3), "1.00x"],
        ["retrain after updates (warm)", round(warm_retrain_s, 3),
         f"{warm_speedup:.2f}x"],
        ["retrain-to-swap (cold)", round(swap_cold_s, 3), "1.00x"],
        ["retrain-to-swap (warm)", round(swap_warm_s, 3),
         f"{swap_speedup:.2f}x"],
    ]
    report(
        "training_pipeline",
        format_table(
            ["path", "seconds", "speedup"], rows,
            title=f"training pipeline on acl1/{size} "
                  f"(update churn {UPDATE_FRACTION:.0%})",
        ),
    )
    warm_prov = nm_warm.training_provenance
    report_json(
        "training_pipeline",
        config={
            "ruleset": f"acl1/{size}",
            "update_fraction": UPDATE_FRACTION,
        },
        measured={
            "cold_serial_s": cold_serial_s,
            "cold_pipeline_jobs1_s": cold_pipe1_s,
            "cold_pipeline_jobs4_s": cold_pipe4_s,
            "cold_retrain_s": cold_retrain_s,
            "warm_retrain_s": warm_retrain_s,
            "retrain_to_swap_cold_s": swap_cold_s,
            "retrain_to_swap_warm_s": swap_warm_s,
            "warm_submodels_reused": warm_prov.get("submodels_reused", 0),
            "warm_submodels_trained": warm_prov.get("submodels_trained", 0),
            "warm_cold_fallbacks": warm_prov.get("cold_fallbacks", 0),
        },
        summary={
            "parallel_speedup": parallel_speedup,
            "warm_speedup": warm_speedup,
            "retrain_to_swap_speedup": swap_speedup,
            "retrain_to_swap_warm_s": swap_warm_s,
        },
    )

    # The headline claims of the pipeline PR, asserted loosely enough for CI
    # noise: parallel build at least 2x over the serial loop, warm retrain at
    # least 3x over a cold retrain of the same rules.
    assert parallel_speedup >= 2.0, f"parallel build only {parallel_speedup:.2f}x"
    assert warm_speedup >= 3.0, f"warm retrain only {warm_speedup:.2f}x"
