"""§5.3.5 — validation time vs. number of fields.

Adding match fields does not hurt iSet coverage (an existing non-overlapping
field stays non-overlapping) but makes the per-candidate validation linearly
more expensive: the paper measures ~25 ns for one field growing almost
linearly to ~180 ns for 40 fields.  We reproduce the microbenchmark with
synthetic wide rules: coverage of the first iSet is unchanged as fields are
added, and both the modelled and the wall-clock validation cost grow linearly.
"""

import random
import time

from repro.analysis import format_table
from repro.core.isets import partition_isets
from repro.rules.fields import FieldSchema, FieldSpec
from repro.rules.rule import Rule, RuleSet
from repro.simulation import CostModel
from repro.classifiers.base import LookupTrace

from bench_helpers import report, report_json, rows_as_records

FIELD_COUNTS = [1, 5, 10, 20, 40]
PAPER = {1: 25, 40: 180}


def _wide_ruleset(num_rules: int, num_fields: int, seed: int = 0) -> RuleSet:
    """Rules whose first field is a unique exact value; extra fields are ranges."""
    rng = random.Random(seed)
    schema = FieldSchema([FieldSpec(f"f{i}", 32) for i in range(num_fields)])
    rules = []
    for index in range(num_rules):
        first = (index * 1000, index * 1000 + 500)
        extra = []
        for _ in range(num_fields - 1):
            lo = rng.randrange(0, 1 << 31)
            extra.append((lo, lo + rng.randrange(1, 1 << 20)))
        rules.append(Rule((first, *extra), priority=index, rule_id=index))
    return RuleSet(rules, schema)


def test_sec535_validation_vs_fields(benchmark):
    cost_model = CostModel()
    rows = []
    modelled = {}
    measured = {}
    for num_fields in FIELD_COUNTS:
        rules = _wide_ruleset(400, num_fields, seed=num_fields)
        coverage = partition_isets(rules, max_isets=1).coverage

        # Modelled validation cost: the candidate rule spans one cache line per
        # eight 64-bit field ranges, plus one comparison per field.
        cache_lines = max(1, (num_fields * 8 + 63) // 64)
        trace = LookupTrace(rule_accesses=cache_lines, compute_ops=num_fields)
        validation_ns = cost_model.lookup_latency(trace, 0, 16_000_000).total_ns
        modelled[num_fields] = validation_ns

        # Wall-clock validation of one candidate rule.
        rule = rules[0]
        packet = rule.sample_packet(random.Random(1))
        iterations = 3000
        start = time.perf_counter()
        for _ in range(iterations):
            rule.matches(packet)
        wall_ns = (time.perf_counter() - start) / iterations * 1e9
        measured[num_fields] = wall_ns

        rows.append(
            [num_fields, round(coverage * 100, 1), round(validation_ns, 1),
             round(wall_ns, 1), PAPER.get(num_fields, "-")]
        )

    headers = ["fields", "1-iSet coverage %", "modelled validation ns",
               "python validation ns", "paper ns"]
    text = format_table(
        headers,
        rows,
        title="§5.3.5: validation cost vs. number of fields",
    )
    report("sec535_many_fields", text)
    report_json(
        "sec535_many_fields",
        config={"field_counts": FIELD_COUNTS, "rules": 400},
        measured={"rows": rows_as_records(headers, rows)},
        summary={
            "modelled_growth_x": round(modelled[40] / modelled[1], 3),
            "measured_growth_x": round(measured[40] / measured[1], 3),
        },
    )

    # Shape checks: validation grows with the field count (roughly linearly),
    # while single-iSet coverage does not degrade.
    assert modelled[40] > modelled[1]
    assert measured[40] > measured[1]
    coverages = [row[1] for row in rows]
    assert max(coverages) - min(coverages) < 10.0

    rule = _wide_ruleset(10, 40)[0]
    packet = rule.sample_packet(random.Random(2))
    benchmark(lambda: rule.matches(packet))
