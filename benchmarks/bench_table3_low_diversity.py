"""Table 3 — coverage and speedup vs. fraction of low-diversity rules.

The paper blends a Cartesian-product (low-diversity, exact-match) rule-set
into a 500K ClassBench rule-set and reports, for each blend:

    % low-diversity rules   % coverage (1 iSet)   throughput speedup vs tm
    70%                     25%                   1.07×
    50%                     50%                   1.14×
    30%                     70%                   1.60×

Shape: the partitioning algorithm segregates the low-diversity rules into the
remainder, so single-iSet coverage tracks the high-diversity fraction, and the
speedup grows with coverage (NuevoMatch becomes effective above ~25%).
"""

from repro.analysis import format_table
from repro.classifiers import TupleMergeClassifier
from repro.core.config import NuevoMatchConfig
from repro.core.isets import partition_isets
from repro.core.nuevomatch import NuevoMatch
from repro.rules import blend_rulesets, generate_low_diversity
from repro.simulation import CostModel, evaluate_classifier, evaluate_nuevomatch, speedup
from repro.traffic import generate_uniform_trace

from bench_helpers import (
    bench_cost_model,
    bench_rqrmi_config,
    current_scale,
    report,
    report_json,
    rows_as_records,
    ruleset,
)

PAPER_TABLE3 = {70: (25, 1.07), 50: (50, 1.14), 30: (70, 1.60)}


def test_table3_low_diversity(benchmark):
    scale = current_scale()
    size = scale["sizes"]["500K"]
    base = ruleset(scale["applications"][0], size)
    low = generate_low_diversity(size, values_per_field=16, seed=3)
    cost_model = bench_cost_model()

    rows = []
    measured_speedups = {}
    measured_coverage = {}
    for fraction_percent in (70, 50, 30):
        blended = blend_rulesets(base, low, fraction_percent / 100.0, seed=1)
        coverage = partition_isets(blended, max_isets=1).coverage * 100.0

        nm = NuevoMatch.build(
            blended,
            remainder_classifier="tm",
            config=NuevoMatchConfig(
                max_isets=1, min_iset_coverage=0.05, rqrmi=bench_rqrmi_config()
            ),
        )
        baseline = TupleMergeClassifier.build(blended)
        trace = generate_uniform_trace(blended, scale["trace_packets"], seed=7)
        nm_report = evaluate_nuevomatch(nm, trace, cost_model, mode="parallel")
        tm_report = evaluate_classifier(baseline, trace, cost_model, cores=2)
        factor = speedup(nm_report, tm_report)["throughput"]
        measured_speedups[fraction_percent] = factor
        measured_coverage[fraction_percent] = coverage
        paper_cov, paper_speedup = PAPER_TABLE3[fraction_percent]
        rows.append(
            [f"{fraction_percent}%", round(coverage, 1), round(factor, 2),
             paper_cov, paper_speedup]
        )

    headers = ["low-diversity rules", "coverage %", "speedup (tm)",
               "paper cov %", "paper speedup"]
    text = format_table(
        headers,
        rows,
        title="Table 3: low-diversity blends — coverage and throughput speedup vs. TupleMerge",
    )
    report("table3_low_diversity", text)
    report_json(
        "table3_low_diversity",
        config={"rules": size, "values_per_field": 16},
        modelled={"rows": rows_as_records(headers, rows)},
        summary={
            f"coverage_{pct}pct": round(cov, 2)
            for pct, cov in measured_coverage.items()
        },
    )

    # Shape checks: the partitioner segregates the low-diversity rules, so
    # single-iSet coverage tracks the high-diversity fraction.  The speedup
    # trend (§5.3.3: growing with coverage, crossing 1x above ~25% coverage)
    # additionally needs TupleMerge to be memory-bound, which requires the
    # full 500K-scale tables — it is asserted only at full scale.
    assert measured_coverage[30] > measured_coverage[50] > measured_coverage[70]
    if current_scale()["cache_divisor"] == 1:
        assert measured_speedups[30] >= measured_speedups[70]

    benchmark(lambda: partition_isets(blend_rulesets(base, low, 0.5, seed=2), max_isets=1))
