"""Network-serving throughput — the adaptive-coalescing sweep.

The paper's throughput comes from batched RQ-RMI inference; the
:class:`~repro.serving.server.AsyncServer` recovers that batching from
*network* traffic by coalescing concurrent requests into micro-batches under
a ``(max_batch, max_delay_us)`` policy.  This benchmark quantifies what the
coalescing buys: a zipf-95 trace (§5.1.1) is offered open-loop to an
in-process server across a {client concurrency} × {max_delay_us} sweep, plus
a *one-request-per-call* baseline (``max_batch=1`` — every request is its own
``classify_batch`` call, the dispatch regime a naive RPC server would use).

Reported per cell: client-observed throughput and p50/p99 latency, plus the
server's mean coalesced batch size.  Shape assertions: concurrency must
actually coalesce (mean batch size > 1), and coalesced dispatch must beat the
one-request-per-call baseline at the same concurrency.

A second sweep prices the wire protocol: the production serving stack (the
flow-cached engine ``repro serve`` runs) is driven with pre-formed batches
over pinned JSON (v1) and over negotiated binary v2, identical in every
other respect.  The floor — binary v2 must reach at least
``WIRE_V2_FLOOR`` × the JSON throughput — is hardware-independent: JSON
spends its budget on per-request encode/parse that v2 simply does not do.

Results land in the shared BENCH schema (``benchmarks/results/
server_throughput.json`` plus a ``BENCH {...}`` stdout line).
"""

from __future__ import annotations

import asyncio

from repro.engine import ClassificationEngine
from repro.serving import AsyncServer, CachedEngine
from repro.workloads import make_trace, open_loop_load

from bench_helpers import current_scale, report, report_json, ruleset
from repro.analysis import format_table

CLASSIFIER = "tm"
CONNECTIONS = 4
#: Per-connection in-flight windows: 1 ≈ closed-loop ping-pong, 32 ≈ heavy
#: concurrent load.
WINDOWS = (1, 8, 32)
#: Coalescing delay bounds (us); 0 batches only what queued behind the
#: previous dispatch.
DELAYS_US = (0.0, 200.0, 1000.0)
MAX_BATCH = 64

#: Wire-protocol comparison: pre-formed batch size, per-connection window,
#: flow-cache capacity for the serving stack, and the v2-vs-JSON floor.
WIRE_BATCH = 64
WIRE_WINDOW = 8
WIRE_CACHE = 4096
WIRE_V2_FLOOR = 3.0


async def _measure(
    engine, packets, max_batch, max_delay_us, window, batch=1, protocol="json"
):
    async with AsyncServer(
        engine, max_batch=max_batch, max_delay_us=max_delay_us
    ) as server:
        await server.start("127.0.0.1", 0)
        return await open_loop_load(
            server.host,
            server.port,
            packets,
            connections=CONNECTIONS,
            window=window,
            batch=batch,
            protocol=protocol,
        )


def _cell(engine, packets, max_batch, max_delay_us, window, **kwargs):
    load = asyncio.run(
        _measure(engine, packets, max_batch, max_delay_us, window, **kwargs)
    )
    assert load.completed == len(packets)
    assert load.errors == 0 and load.overloaded == 0
    return load


def test_server_throughput():
    scale = current_scale()
    application = scale["applications"][0]
    size = scale["sizes"]["10K"]
    rules = ruleset(application, size)
    num_packets = max(10 * scale["trace_packets"], 2000)
    trace = make_trace("zipf", rules, num_packets, seed=59, skew=95)
    packets = [tuple(p) for p in trace]
    engine = ClassificationEngine.build(rules, classifier=CLASSIFIER)

    rows = []
    series = []
    coalesced_by_window: dict[int, float] = {}
    for window in WINDOWS:
        for delay_us in DELAYS_US:
            load = _cell(engine, packets, MAX_BATCH, delay_us, window)
            concurrency = CONNECTIONS * window
            coalesced_by_window[window] = max(
                coalesced_by_window.get(window, 0.0), load.throughput_rps
            )
            series.append(
                {
                    "mode": "coalesced",
                    "max_batch": MAX_BATCH,
                    "max_delay_us": delay_us,
                    "connections": CONNECTIONS,
                    "window": window,
                    "concurrency": concurrency,
                    "load": load.as_dict(),
                }
            )
            rows.append(
                [
                    f"coalesced({MAX_BATCH})",
                    int(delay_us),
                    concurrency,
                    round(load.throughput_rps / 1e3, 2),
                    round(load.mean_batch_size, 2),
                    round(load.latency_p50_us, 1),
                    round(load.latency_p99_us, 1),
                ]
            )

    # One-request-per-call dispatch at the heaviest concurrency: the regime
    # coalescing must beat.
    heaviest = max(WINDOWS)
    baseline = _cell(engine, packets, 1, 0.0, heaviest)
    series.append(
        {
            "mode": "per-request",
            "max_batch": 1,
            "max_delay_us": 0.0,
            "connections": CONNECTIONS,
            "window": heaviest,
            "concurrency": CONNECTIONS * heaviest,
            "load": baseline.as_dict(),
        }
    )
    rows.append(
        [
            "per-request(1)",
            0,
            CONNECTIONS * heaviest,
            round(baseline.throughput_rps / 1e3, 2),
            round(baseline.mean_batch_size, 2),
            round(baseline.latency_p50_us, 1),
            round(baseline.latency_p99_us, 1),
        ]
    )

    # Wire-protocol comparison over the production stack: the flow-cached
    # engine, pre-formed batches, one sweep pinned to JSON and one on the
    # negotiated binary v2 protocol.
    cached = CachedEngine(engine, capacity=WIRE_CACHE)
    wire_series = []
    wire_loads = {}
    for protocol in ("json", "auto"):
        load = _cell(
            cached, packets, MAX_BATCH, 200.0, WIRE_WINDOW,
            batch=WIRE_BATCH, protocol=protocol,
        )
        wire_loads[load.protocol] = load
        wire_series.append(
            {
                "pinned": protocol,
                "protocol": load.protocol,
                "batch": WIRE_BATCH,
                "window": WIRE_WINDOW,
                "load": load.as_dict(),
            }
        )
        rows.append(
            [
                f"wire-{load.protocol}({WIRE_BATCH})",
                200,
                CONNECTIONS * WIRE_WINDOW,
                round(load.throughput_rps / 1e3, 2),
                round(load.mean_batch_size, 2),
                round(load.latency_p50_us, 1),
                round(load.latency_p99_us, 1),
            ]
        )

    text = format_table(
        ["dispatch", "delay us", "concurrency", "krps", "mean batch",
         "p50 us", "p99 us"],
        rows,
        title=f"Server throughput (zipf-95, {CLASSIFIER}, {application} "
              f"{size} rules, {num_packets} requests)",
    )
    report("server_throughput", text)

    best_coalesced = coalesced_by_window[heaviest]
    speedup = (
        best_coalesced / baseline.throughput_rps
        if baseline.throughput_rps > 0
        else 0.0
    )
    json_rps = wire_loads["json"].throughput_rps
    v2_rps = wire_loads["v2"].throughput_rps
    wire_speedup = v2_rps / json_rps if json_rps > 0 else 0.0
    report_json(
        "server_throughput",
        config={
            "classifier": CLASSIFIER,
            "application": application,
            "rules": size,
            "trace": "zipf-95",
            "requests": num_packets,
            "connections": CONNECTIONS,
            "max_batch": MAX_BATCH,
            "wire_batch": WIRE_BATCH,
            "wire_window": WIRE_WINDOW,
            "wire_cache": WIRE_CACHE,
        },
        measured={"coalescing": series, "wire": wire_series},
        summary={
            "coalesced_best_rps": round(best_coalesced, 1),
            "per_request_rps": round(baseline.throughput_rps, 1),
            "coalescing_speedup": round(speedup, 3),
            "wire_json_rps": round(json_rps, 1),
            "wire_v2_rps": round(v2_rps, 1),
            "wire_v2_speedup": round(wire_speedup, 3),
        },
    )

    # Shape checks: concurrency must coalesce, and coalesced dispatch must
    # out-run one-request-per-call dispatch at the same offered concurrency.
    heavy_cells = [
        cell
        for cell in series
        if cell["mode"] == "coalesced" and cell["window"] == heaviest
    ]
    assert any(
        cell["load"]["mean_batch_size"] > 1.0 for cell in heavy_cells
    ), "concurrent load never coalesced"
    assert baseline.mean_batch_size <= 1.0 + 1e-9
    assert best_coalesced > baseline.throughput_rps, (
        f"coalesced dispatch ({best_coalesced:.0f} rps) did not beat "
        f"per-request dispatch ({baseline.throughput_rps:.0f} rps)"
    )
    # The wire-v2 floor: the binary data plane must beat pinned JSON by the
    # documented factor on the same workload.
    assert wire_speedup >= WIRE_V2_FLOOR, (
        f"wire v2 ({v2_rps:.0f} rps) is only {wire_speedup:.2f}x the JSON "
        f"baseline ({json_rps:.0f} rps); floor is {WIRE_V2_FLOOR}x"
    )
