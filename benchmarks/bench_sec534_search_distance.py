"""§5.3.4 — secondary-search distance: bound vs. actual distance distribution.

The paper measures ~40 ns to retrieve a rule with an exact prediction and
75–80 ns for search distances of 64–256 (binary search), and observes that the
*actual* distance is usually far below the trained worst-case bound: with a
bound of 128, 80% of lookups stay within distance 64 and 60% within 32.  This
benchmark reproduces both observations on trained models: the modelled search
cost as a function of the bound, and the distribution of actual prediction
errors relative to the configured bound.
"""

import numpy as np

from repro.analysis import format_table
from repro.core.rqrmi import RQRMI, RangeSet
from repro.simulation import CostModel

from bench_helpers import (
    bench_rqrmi_config,
    current_scale,
    report,
    report_json,
    rows_as_records,
    ruleset,
)
from repro.core.isets import partition_isets


def test_sec534_search_distance(benchmark):
    scale = current_scale()
    size = scale["sizes"]["500K"]
    application = scale["applications"][0]
    rules = ruleset(application, size)

    # Train an RQ-RMI over the largest iSet with a loose bound (128) and look
    # at the distribution of actual prediction errors for matching keys.
    partition = partition_isets(rules, max_isets=1)
    iset = partition.isets[0]
    domain = rules.schema[iset.dim].domain_size
    range_set = RangeSet.from_integer_ranges(iset.ranges(), domain)
    model = RQRMI.train(range_set, bench_rqrmi_config(error_threshold=128))

    rng = np.random.default_rng(3)
    distances = []
    ranges = iset.ranges()
    for index in rng.choice(len(ranges), size=min(2000, len(ranges)), replace=False):
        lo, hi = ranges[int(index)]
        key = int(rng.integers(lo, hi + 1))
        lookup = model.query(key)
        assert lookup.index == int(index)
        distances.append(abs(lookup.predicted_index - int(index)))
    distances = np.array(distances)

    fraction_rows = []
    for limit in (8, 16, 32, 64, 128):
        fraction_rows.append([limit, round(100.0 * float(np.mean(distances <= limit)), 1)])
    fraction_text = format_table(
        ["distance <=", "% of lookups"],
        fraction_rows,
        title="Actual prediction-error distribution (bound trained at 128)",
    )

    # Modelled secondary-search cost vs. bound: log2(window) dependent accesses
    # into the (DRAM-resident) value array.
    cost_model = CostModel()
    cost_rows = []
    for bound in (0, 64, 128, 256, 512, 1024):
        window = 2 * bound + 1
        accesses = max(1, int(np.ceil(np.log2(window + 1))))
        rule_latency = cost_model.cache.access_latency_ns(16_000_000) + cost_model.access_overhead_ns
        cost_rows.append([bound, accesses, round(accesses * rule_latency, 1)])
    cost_text = format_table(
        ["search bound", "binary-search accesses", "modelled search ns"],
        cost_rows,
        title="Secondary-search cost vs. bound (paper: 40ns exact, 75-80ns for 64-256)",
    )
    report("sec534_search_distance", fraction_text + "\n\n" + cost_text)
    report_json(
        "sec534_search_distance",
        config={"application": application, "rules": size, "trained_bound": 128},
        measured={
            "distances": rows_as_records(["distance <=", "% of lookups"],
                                         fraction_rows),
        },
        modelled={
            "search_cost": rows_as_records(
                ["search bound", "binary-search accesses", "modelled search ns"],
                cost_rows,
            ),
        },
        summary={
            "fraction_within_64": round(float(np.mean(distances <= 64)), 3),
        },
    )

    # Shape checks: most lookups are far below the worst-case bound, and the
    # modelled cost grows only logarithmically with the bound.
    assert float(np.mean(distances <= 64)) > 0.6
    assert cost_rows[-1][2] < cost_rows[1][2] * 3

    key = int(rng.integers(0, domain))
    benchmark(lambda: model.query(key))
