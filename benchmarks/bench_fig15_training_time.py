"""Figure 15 — RQ-RMI training time vs. maximum search-distance bound.

The paper trains 500 models and plots average end-to-end training time (in
minutes) against the error-bound threshold (64, 128, 256, 512, 1024) for 10K,
100K and 500K rule-sets: tighter bounds and larger rule-sets are slower, with
the 64-bound / 500K point costing tens of minutes under TensorFlow.  Our
pure-numpy trainer is far faster in absolute terms; the reproduced shape is
the monotone growth of training time as the bound tightens and as the
rule-set grows (driven by retraining with doubled samples).
"""

import numpy as np

from repro.analysis import format_table
from repro.core.rqrmi import RQRMI, RangeSet

from bench_helpers import (
    bench_rqrmi_config,
    current_scale,
    report,
    report_json,
    rows_as_records,
)

BOUNDS = [64, 128, 256, 512, 1024]


def _disjoint_ranges(count: int, seed: int):
    rng = np.random.default_rng(seed)
    points = np.sort(rng.choice(1 << 32, size=2 * count, replace=False).astype(np.int64))
    return [(int(points[2 * i]), int(points[2 * i + 1])) for i in range(count)]


def test_fig15_training_time_vs_bound(benchmark):
    scale = current_scale()
    sizes = {
        "10K": max(scale["sizes"]["10K"] // 2, 1000),
        "100K": max(scale["sizes"]["100K"] // 2, 2000),
        "500K": max(scale["sizes"]["500K"] // 2, 4000),
    }

    rows = []
    times: dict[str, dict[int, float]] = {}
    for label, count in sizes.items():
        ranges = RangeSet.from_integer_ranges(_disjoint_ranges(count, seed=count), 1 << 32)
        times[label] = {}
        for bound in BOUNDS:
            model = RQRMI.train(ranges, bench_rqrmi_config(error_threshold=bound))
            times[label][bound] = model.report.training_seconds
            rows.append(
                [label, count, bound,
                 round(model.report.training_seconds, 2),
                 model.report.retrain_attempts,
                 model.max_error]
            )

    headers = ["size class", "ranges", "error bound", "train s", "retrains",
               "achieved max error"]
    text = format_table(
        headers,
        rows,
        title="Figure 15: RQ-RMI training time vs. maximum search-distance bound",
    )
    report("fig15_training_time", text)
    report_json(
        "fig15_training_time",
        config={"bounds": BOUNDS, "sizes": sizes},
        measured={"rows": rows_as_records(headers, rows)},
        summary={
            "tightest_bound_500k_s": round(times["500K"][64], 3),
            "loosest_bound_500k_s": round(times["500K"][1024], 3),
        },
    )

    # Shape checks: for every size class, the tightest bound is at least as
    # expensive as the loosest one; larger inputs take longer at the same bound.
    for label in times:
        assert times[label][64] >= times[label][1024] * 0.8
    assert times["500K"][64] >= times["10K"][64] * 0.8

    small = RangeSet.from_integer_ranges(_disjoint_ranges(500, seed=9), 1 << 32)
    benchmark(lambda: RQRMI.train(small, bench_rqrmi_config(error_threshold=64)))
