"""Figure 10 — end-to-end performance on the Stanford backbone rule-sets.

The paper evaluates four real forwarding tables (~180K single-field rules
each) against TupleMerge: NuevoMatch achieves ~3.5× higher throughput and
~7.5× lower latency on every one of them.  We generate four backbone-like
tables (repro.rules.stanford) and reproduce the comparison.
"""

from repro.analysis import format_table, geometric_mean
from repro.classifiers import TupleMergeClassifier
from repro.core.config import NuevoMatchConfig
from repro.core.nuevomatch import NuevoMatch
from repro.simulation import CostModel, evaluate_classifier, evaluate_nuevomatch, speedup
from repro.traffic import generate_uniform_trace

from bench_helpers import (
    bench_cost_model,
    bench_rqrmi_config,
    current_scale,
    report,
    report_json,
    rows_as_records,
    stanford,
)

PAPER = {"throughput": 3.5, "latency": 7.5}


def test_fig10_stanford_backbone(benchmark):
    scale = current_scale()
    size = scale["stanford_rules"]
    cost_model = bench_cost_model()
    rows = []
    throughput_factors = []
    latency_factors = []
    for router in range(4):
        table = stanford(size, seed=router)
        trace = generate_uniform_trace(table, scale["trace_packets"], seed=23 + router)
        baseline = TupleMergeClassifier.build(table)
        nm = NuevoMatch.build(
            table,
            remainder_classifier="tm",
            config=NuevoMatchConfig(
                max_isets=4, min_iset_coverage=0.05, rqrmi=bench_rqrmi_config()
            ),
        )
        baseline_report = evaluate_classifier(baseline, trace, cost_model, cores=2)
        nm_report = evaluate_nuevomatch(nm, trace, cost_model, mode="parallel")
        factors = speedup(nm_report, baseline_report)
        throughput_factors.append(factors["throughput"])
        latency_factors.append(factors["latency"])
        rows.append(
            [
                f"router {router + 1}",
                len(table),
                round(nm.coverage * 100, 1),
                round(baseline_report.throughput_pps / 1e6, 2),
                round(nm_report.throughput_pps / 1e6, 2),
                round(factors["throughput"], 2),
                round(factors["latency"], 2),
            ]
        )
    rows.append(
        ["GM", "-", "-", "-", "-",
         round(geometric_mean(throughput_factors), 2),
         round(geometric_mean(latency_factors), 2)]
    )
    headers = ["rule-set", "rules", "coverage %", "tm Mpps", "nm Mpps",
               "thr x (paper 3.5)", "lat x (paper 7.5)"]
    text = format_table(
        headers,
        rows,
        title="Figure 10: Stanford-backbone-like forwarding tables, NuevoMatch vs TupleMerge",
    )
    report("fig10_stanford", text)
    report_json(
        "fig10_stanford",
        config={"stanford_rules": size, "trace_packets": scale["trace_packets"]},
        modelled={"rows": rows_as_records(headers, rows)},
        summary={
            "gm_throughput_x": round(geometric_mean(throughput_factors), 3),
            "gm_latency_x": round(geometric_mean(latency_factors), 3),
        },
    )

    # Shape checks.  The paper's 3.5x/7.5x factors rely on the full 180K-rule
    # tables, whose hash tables overflow the collision limit and spill to
    # DRAM; at reduced scale TupleMerge's single-field tables remain small and
    # fast, so the performance win is only required at full scale.  The
    # structural claims — high coverage from 2-4 iSets and a much smaller
    # index than TupleMerge — must hold at every scale.
    assert all(float(row[2]) > 85.0 for row in rows[:-1])  # per-router coverage
    # `nm` / `baseline` still refer to the last router built in the loop above.
    assert nm.memory_footprint().index_bytes < baseline.memory_footprint().index_bytes
    if current_scale()["cache_divisor"] == 1:
        assert geometric_mean(latency_factors) > 1.0
        assert geometric_mean(throughput_factors) > 1.0

    table = stanford(size, seed=0)
    packet = table.sample_packets(1, seed=5)[0]
    nm = NuevoMatch.build(
        table,
        remainder_classifier="tm",
        config=NuevoMatchConfig(max_isets=4, min_iset_coverage=0.05,
                                rqrmi=bench_rqrmi_config()),
    )
    benchmark(lambda: nm.classify(packet))
