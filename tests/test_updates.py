"""Tests for online updates (§3.9) and the update-rate analytical model."""

import math

import pytest

from repro.core.nuevomatch import NuevoMatch
from repro.core.updates import (
    UpdatableNuevoMatch,
    expected_unmodified_rules,
    sustained_update_rate,
    throughput_over_time,
    throughput_with_updates,
)
from repro.rules.rule import Rule
from _helpers import fast_nm_config


@pytest.fixture()
def updatable(acl_small):
    nm = NuevoMatch.build(acl_small, remainder_classifier="tm", config=fast_nm_config())
    return UpdatableNuevoMatch(nm, retrain_threshold=0.5)


def fresh_rule(rule_id, value=12345):
    return Rule(
        ((value, value), (value, value), (80, 80), (443, 443), (6, 6)),
        priority=-1,
        action="new",
        rule_id=rule_id,
    )


class TestUpdatableNuevoMatch:
    def test_requires_updatable_remainder(self, acl_small):
        nm = NuevoMatch.build(acl_small, remainder_classifier="cs", config=fast_nm_config())
        with pytest.raises(TypeError):
            UpdatableNuevoMatch(nm)

    def test_add_rule_goes_to_remainder(self, updatable):
        rule = fresh_rule(50_000)
        updatable.add(rule)
        found = updatable.classify((12345, 12345, 80, 443, 6))
        assert found is not None and found.rule_id == 50_000

    def test_delete_rule(self, updatable, acl_small):
        victim = acl_small[0]
        packet = victim.sample_packet()
        assert updatable.delete(victim.rule_id)
        result = updatable.classify(packet)
        assert result is None or result.rule_id != victim.rule_id

    def test_delete_unknown_returns_false(self, updatable):
        assert not updatable.delete(10**9)

    def test_change_action(self, updatable, acl_small):
        victim = acl_small[3]
        assert updatable.change_action(victim.rule_id, "drop")
        live = updatable.current_rules().by_id()[victim.rule_id]
        assert live.action == "drop"

    def test_modify_moves_rule_to_remainder(self, updatable):
        updated = fresh_rule(1, value=999)
        before = updatable.remainder_fraction
        updatable.modify(updated)
        assert updatable.remainder_fraction >= before
        found = updatable.classify((999, 999, 80, 443, 6))
        assert found is not None and found.rule_id == 1

    def test_remainder_growth_triggers_retraining_flag(self, updatable, acl_small):
        assert not updatable.needs_retraining()
        # Adding 1.5x the original rule count pushes the remainder fraction
        # ((base_remainder + added) / (original + added)) past the 0.5 threshold.
        for index in range(int(len(acl_small) * 1.5)):
            updatable.add(fresh_rule(100_000 + index, value=index + 1))
        assert updatable.needs_retraining()

    def test_retrain_resets_state(self, updatable):
        for index in range(20):
            updatable.add(fresh_rule(200_000 + index, value=index + 7))
        rebuilt = updatable.retrain()
        assert updatable.retrain_count == 1
        assert updatable.remainder_fraction <= 1.0
        assert len(rebuilt.ruleset) == len(updatable.current_rules())
        found = updatable.classify((8, 8, 80, 443, 6))
        assert found is not None

    def test_current_rules_reflects_adds_and_deletes(self, updatable, acl_small):
        original = len(acl_small)
        updatable.add(fresh_rule(300_000))
        updatable.delete(acl_small[0].rule_id)
        assert len(updatable.current_rules()) == original


class TestAnalyticModel:
    def test_expected_unmodified_matches_formula(self):
        assert expected_unmodified_rules(1000, 0) == pytest.approx(1000)
        assert expected_unmodified_rules(1000, 1000) == pytest.approx(1000 * math.exp(-1))
        assert expected_unmodified_rules(0, 10) == 0.0

    def test_throughput_interpolates_between_extremes(self):
        nm_tp, rem_tp = 5e6, 1e6
        none = throughput_with_updates(1000, 0, nm_tp, rem_tp)
        many = throughput_with_updates(1000, 100_000, nm_tp, rem_tp)
        assert none == pytest.approx(nm_tp)
        assert many == pytest.approx(rem_tp, rel=0.01)
        mid = throughput_with_updates(1000, 500, nm_tp, rem_tp)
        assert rem_tp < mid < nm_tp

    def test_throughput_over_time_shape(self):
        series = throughput_over_time(
            total_rules=10_000,
            update_rate=100.0,
            retrain_period=60.0,
            training_time=30.0,
            nuevomatch_throughput=5e6,
            remainder_throughput=1e6,
            horizon=300.0,
            step=1.0,
        )
        assert len(series) == 301
        times, values = zip(*series)
        assert times[0] == 0.0 and times[-1] == 300.0
        # Throughput degrades within a period and recovers after retraining.
        assert min(values) < values[0]
        assert max(values[150:]) > min(values[:150])

    def test_zero_training_time_is_upper_bound(self):
        common = dict(
            total_rules=10_000,
            update_rate=200.0,
            retrain_period=60.0,
            nuevomatch_throughput=5e6,
            remainder_throughput=1e6,
            horizon=240.0,
        )
        instant = throughput_over_time(training_time=0.0, **common)
        slow = throughput_over_time(training_time=50.0, **common)
        assert sum(v for _, v in instant) >= sum(v for _, v in slow)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            throughput_over_time(1000, 1.0, 0.0, 1.0, 2e6, 1e6, 10.0)

    def test_sustained_update_rate_paper_scale(self):
        # §3.9: ~4K updates/s for 500K rules, minute-long training, half speedup.
        rate = sustained_update_rate(
            total_rules=500_000,
            training_time=60.0,
            nuevomatch_throughput=2.4e6,
            remainder_throughput=1.0e6,
            target_fraction=0.5,
        )
        assert 1_000 < rate < 20_000

    def test_sustained_rate_zero_when_no_speedup(self):
        assert sustained_update_rate(1000, 60, 1e6, 1e6) == 0.0
