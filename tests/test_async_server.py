"""End-to-end tests for the asyncio serving front-end.

Extends the ``tests/test_replay_scenarios.py`` pattern over the wire: an
:class:`~repro.serving.server.AsyncServer` on an ephemeral port, concurrent
clients firing interleaved classify/insert/remove ops, and every response
checked against :class:`LinearSearchClassifier`-style ground truth over the
rules live at that instant.  Every asyncio scenario is wrapped in a hard
``asyncio.wait_for`` deadline so a hung event loop fails the test instead of
stalling the whole run (CI additionally applies pytest-timeout).
"""

from __future__ import annotations

import asyncio
import itertools

import pytest

from repro.engine import ClassificationEngine
from repro.rules import generate_classbench
from repro.rules.rule import Rule
from repro.serving import (
    AsyncClient,
    AsyncServer,
    CachedEngine,
    ControllerConfig,
    ControlSettings,
    OverloadController,
    ServerError,
    ShardedEngine,
)
from repro.workloads import build_scenario_engine, make_trace, open_loop_load

SCENARIO_DEADLINE = 120.0

pytestmark = pytest.mark.timeout(180)


def run_scenario_coro(coro):
    """Run an async test body under a hard deadline."""
    async def _guarded():
        await asyncio.wait_for(coro, timeout=SCENARIO_DEADLINE)

    asyncio.run(_guarded())


def ground_truth(rules, packet):
    """Linear search with the serving stack's total order (priority, rule_id)."""
    best = None
    for rule in rules:
        if rule.matches(packet) and (
            best is None
            or (rule.priority, rule.rule_id) < (best.priority, best.rule_id)
        ):
            best = rule
    return best


def result_key(rule):
    return None if rule is None else (rule.priority, rule.rule_id)


def response_key(response):
    return (response["priority"], response["rule_id"]) if response["matched"] else None


@pytest.fixture(scope="module")
def server_rules():
    return generate_classbench("acl1", 300, seed=17)


#: {plain, sharded} × {uncached, cached} engine stacks behind the server.
STACKS = list(itertools.product([1, 2], [0, 256]))


def build_stack(ruleset, shards, cache_size):
    return build_scenario_engine(
        ruleset,
        shards=shards,
        cache_size=cache_size,
        classifier="tm",
        executor="serial",
        background_retraining=False,
    )


class TestConcurrentClients:
    @pytest.mark.parametrize("shards,cache_size", STACKS)
    def test_concurrent_clients_with_interleaved_updates(
        self, server_rules, shards, cache_size
    ):
        """N clients classify zipf traffic in concurrent bursts while rules are
        inserted and removed between bursts; every response must equal linear
        search over the rules live at that moment."""

        async def scenario():
            engine = build_stack(server_rules, shards, cache_size)
            try:
                async with AsyncServer(
                    engine, max_batch=32, max_delay_us=500
                ) as server:
                    await server.start("127.0.0.1", 0)
                    clients = [
                        await AsyncClient.connect(server.host, server.port)
                        for _ in range(4)
                    ]
                    updater = clients[0]
                    live = {rule.rule_id: rule for rule in server_rules}
                    trace = make_trace(
                        "zipf", server_rules, 360, seed=29, skew=95
                    )
                    packets = [tuple(p) for p in trace]
                    next_id = 500_000
                    for step, start in enumerate(range(0, len(packets), 60)):
                        burst = packets[start : start + 60]
                        # All clients fire their shares concurrently: these
                        # requests coalesce into shared micro-batches.
                        responses = await asyncio.gather(
                            *(
                                clients[i % len(clients)].classify(packet)
                                for i, packet in enumerate(burst)
                            )
                        )
                        rules_now = list(live.values())
                        for packet, response in zip(burst, responses):
                            assert response_key(response) == result_key(
                                ground_truth(rules_now, packet)
                            ), f"stale/wrong match for {packet} at step {step}"
                        if step % 2 == 0:
                            # Pin this burst's first packet with a new winner.
                            rule = Rule(
                                tuple((v, v) for v in burst[0]),
                                priority=0,
                                rule_id=next_id,
                            )
                            await updater.insert(rule)
                            live[rule.rule_id] = rule
                            next_id += 1
                        else:
                            winner = next(
                                (r for r in responses if r["matched"]), None
                            )
                            if winner is not None:
                                assert await updater.remove(winner["rule_id"])
                                del live[winner["rule_id"]]
                    stats = await updater.stats()
                    assert stats["server"]["batcher"]["mean_batch_size"] > 1.0
                    for client in clients:
                        await client.close()
            finally:
                engine.close()

        run_scenario_coro(scenario())

    def test_responses_bit_identical_to_direct_classify_batch(self, server_rules):
        """The served path returns exactly what engine.classify_batch returns
        for the same packets (same rule identity per packet)."""

        async def scenario():
            engine = ClassificationEngine.build(server_rules, classifier="tm")
            direct = engine.classify_batch(
                server_rules.sample_packets(80, seed=31)
            )
            packets = [tuple(p) for p in server_rules.sample_packets(80, seed=31)]
            async with AsyncServer(engine, max_batch=16) as server:
                await server.start("127.0.0.1", 0)
                async with await AsyncClient.connect(
                    server.host, server.port
                ) as client:
                    served = await asyncio.gather(
                        *(client.classify(packet) for packet in packets)
                    )
            assert [response_key(r) for r in served] == [
                result_key(result.rule) for result in direct
            ]

        run_scenario_coro(scenario())


class TestBackpressure:
    def test_overload_rejects_with_code_and_recovers(self, server_rules):
        async def scenario():
            engine = ClassificationEngine.build(server_rules, classifier="tm")
            # A queue of 1 and a delay far longer than the burst: exactly one
            # request is accepted per dispatch cycle, the rest bounce.
            async with AsyncServer(
                engine, max_batch=64, max_delay_us=200_000, max_queue=1
            ) as server:
                await server.start("127.0.0.1", 0)
                packets = [tuple(p) for p in server_rules.sample_packets(20, seed=37)]
                async with await AsyncClient.connect(
                    server.host, server.port
                ) as client:
                    outcomes = await asyncio.gather(
                        *(client.classify(packet) for packet in packets),
                        return_exceptions=True,
                    )
                    rejected = [
                        exc
                        for exc in outcomes
                        if isinstance(exc, ServerError) and exc.code == "overloaded"
                    ]
                    served = [o for o in outcomes if isinstance(o, dict)]
                    unexpected = [
                        o
                        for o in outcomes
                        if not isinstance(o, dict)
                        and not (
                            isinstance(o, ServerError) and o.code == "overloaded"
                        )
                    ]
                    assert unexpected == []
                    assert rejected, "bounded queue never pushed back"
                    assert served, "backpressure starved every request"
                    for packet, response in zip(packets, outcomes):
                        if isinstance(response, dict):
                            assert response_key(response) == result_key(
                                ground_truth(server_rules.rules, packet)
                            )
                    assert server.batcher.stats.rejected == len(rejected)
                    # The server keeps serving correctly after shedding load.
                    again = await client.classify(packets[0])
                    assert response_key(again) == result_key(
                        ground_truth(server_rules.rules, packets[0])
                    )
                    # Rejected requests are not counted as served work.
                    assert server._requests_served == len(served) + 1

        run_scenario_coro(scenario())


class _SlowBlockEngine:
    """Delegating engine wrapper whose classify_block takes ``delay_s``.

    Slowing only the columnar path keeps control traffic (stats, updates)
    fast while binary classify batches pile up against the packet budget.
    """

    def __init__(self, inner, delay_s: float):
        self._inner = inner
        self.delay_s = delay_s

    def classify_block(self, block):
        import time

        time.sleep(self.delay_s)
        return self._inner.classify_block(block)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestBinaryAdmission:
    def test_binary_flood_sheds_with_overloaded_status(self, server_rules):
        """Binary classify batches charge the shared packet budget: a flood
        wider than the budget gets STATUS_OVERLOADED (surfaced as a
        ServerError with code 'overloaded') instead of queueing without
        bound — the admission hole the fast path used to have."""

        async def scenario():
            inner = ClassificationEngine.build(server_rules, classifier="tm")
            engine = _SlowBlockEngine(inner, delay_s=0.05)
            async with AsyncServer(
                engine, max_batch=64, max_delay_us=100, max_queue=48
            ) as server:
                await server.start("127.0.0.1", 0)
                packets = [
                    tuple(p) for p in server_rules.sample_packets(32, seed=71)
                ]
                async with await AsyncClient.connect(
                    server.host, server.port
                ) as client:
                    assert client.wire_v2, "flood must ride the binary path"
                    outcomes = await asyncio.gather(
                        *(client.classify_batch(packets) for _ in range(8)),
                        return_exceptions=True,
                    )
                    served = [o for o in outcomes if isinstance(o, list)]
                    shed = [
                        o
                        for o in outcomes
                        if isinstance(o, ServerError) and o.code == "overloaded"
                    ]
                    unexpected = [
                        o
                        for o in outcomes
                        if o not in served and o not in shed
                    ]
                    assert unexpected == []
                    assert served, "admission starved every binary batch"
                    assert shed, "binary flood never hit the packet budget"
                    for responses in served:
                        assert len(responses) == len(packets)
                        for packet, response in zip(packets, responses):
                            assert response_key(response) == result_key(
                                ground_truth(server_rules.rules, packet)
                            )
                    # Sheds are packet-weighted in the shared budget's stats.
                    assert server.budget.stats.rejected == len(shed)
                    assert (
                        server.budget.stats.rejected_packets
                        == len(shed) * len(packets)
                    )
                    # The server recovers once the flood drains.
                    again = await client.classify_batch(packets[:4])
                    assert len(again) == 4
                    stats = server.statistics()["server"]
                    assert stats["adaptive"] is False
                    assert stats["controller"] is None
                    assert (
                        stats["budget"]["rejected_packets"]
                        == server.budget.stats.rejected_packets
                    )
            inner.close()

        run_scenario_coro(scenario())


class TestAdaptiveServer:
    def test_ramp_adapts_dials_without_stale_matches(self, server_rules):
        """Under a ramp of growing bursts with interleaved updates, the
        controller (given an unmeetable SLO so every window breaches) shrinks
        the batching dials — and every admitted response still matches
        linear-search ground truth over the rules live at that instant."""

        async def scenario():
            engine = ClassificationEngine.build(server_rules, classifier="tm")
            controller = OverloadController(
                ControllerConfig(slo_p99_us=1.0, window_s=0.05),
                ControlSettings(
                    max_batch=128, max_delay_us=400.0, max_queue=4096
                ),
            )
            async with AsyncServer(
                engine,
                max_batch=128,
                max_delay_us=400,
                max_queue=4096,
                controller=controller,
            ) as server:
                await server.start("127.0.0.1", 0)
                trace = make_trace("zipf", server_rules, 360, seed=73, skew=90)
                packets = [tuple(p) for p in trace]
                live = {rule.rule_id: rule for rule in server_rules}
                next_id = 700_000
                async with await AsyncClient.connect(
                    server.host, server.port
                ) as client:
                    cursor = 0
                    for step, burst_size in enumerate(
                        [10, 20, 30, 40, 60, 80, 120]
                    ):
                        burst = packets[cursor : cursor + burst_size]
                        cursor += burst_size
                        outcomes = await asyncio.gather(
                            *(client.classify(packet) for packet in burst),
                            return_exceptions=True,
                        )
                        rules_now = list(live.values())
                        for packet, outcome in zip(burst, outcomes):
                            if isinstance(outcome, ServerError):
                                assert outcome.code == "overloaded"
                                continue
                            assert response_key(outcome) == result_key(
                                ground_truth(rules_now, packet)
                            ), f"stale/wrong match for {packet} at step {step}"
                        # Mutate the ruleset while the dials are moving.
                        rule = Rule(
                            tuple((v, v) for v in burst[0]),
                            priority=0,
                            rule_id=next_id,
                        )
                        await client.insert(rule)
                        live[rule.rule_id] = rule
                        next_id += 1
                        # Let at least one control window close per step.
                        await asyncio.sleep(0.06)
                    stats = await client.stats()
                server_stats = stats["server"]
                assert server_stats["adaptive"] is True
                control = server_stats["controller"]
                assert control["windows"] >= 3
                assert control["breaches"] >= 1
                # Every completed window breached the 1us SLO, so the dials
                # must have walked down from their initial settings.
                assert server.batcher.max_batch < 128
                assert server.batcher.max_delay_us < 400.0
                assert server_stats["max_batch"] == server.batcher.max_batch
                assert control["settings"]["max_batch"] == server.batcher.max_batch
            engine.close()

        run_scenario_coro(scenario())


class TestProtocol:
    def test_error_responses_and_stats_op(self, server_rules):
        async def scenario():
            engine = ClassificationEngine.build(server_rules, classifier="tm")
            async with AsyncServer(engine) as server:
                await server.start("127.0.0.1", 0)
                async with await AsyncClient.connect(
                    server.host, server.port
                ) as client:
                    with pytest.raises(ServerError) as excinfo:
                        await client.request("frobnicate")
                    assert excinfo.value.code == "bad-request"
                    with pytest.raises(ServerError):
                        await client.request("classify")  # missing packet
                    # tm supports updates; removing an unknown id is ok=False?
                    # No: remove of a missing rule is a successful op that
                    # reports removed=False.
                    assert await client.remove(10_000_000) is False
                    stats = await client.stats()
                    assert stats["server"]["supports_updates"] is True
                    assert stats["server"]["max_batch"] == server.batcher.max_batch
                    assert stats["engine"]["name"] == "tm"

        run_scenario_coro(scenario())

    def test_stop_completes_with_idle_client_still_connected(self, server_rules):
        """An idle but connected client must not wedge shutdown (Python 3.12+
        makes Server.wait_closed wait for handlers, which only finish on
        client EOF — the server closes lingering connections itself), and a
        request against the stopped server fails fast instead of hanging."""

        async def scenario():
            engine = ClassificationEngine.build(server_rules, classifier="tm")
            server = AsyncServer(engine)
            await server.start("127.0.0.1", 0)
            client = await AsyncClient.connect(server.host, server.port)
            packet = tuple(server_rules.sample_packets(1, seed=61)[0])
            await client.classify(packet)
            await asyncio.wait_for(server.stop(), timeout=10)
            with pytest.raises((ConnectionError, ServerError, RuntimeError)):
                await asyncio.wait_for(client.classify(packet), timeout=10)
            await client.close()

        run_scenario_coro(scenario())

    def test_sharded_cached_stack_reports_its_stats(self, server_rules):
        async def scenario():
            sharded = ShardedEngine.build(
                server_rules,
                shards=2,
                classifier="tm",
                executor="serial",
                background_retraining=False,
            )
            engine = CachedEngine(sharded, capacity=128)
            try:
                async with AsyncServer(engine) as server:
                    await server.start("127.0.0.1", 0)
                    async with await AsyncClient.connect(
                        server.host, server.port
                    ) as client:
                        packet = tuple(server_rules.sample_packets(1, seed=41)[0])
                        await client.classify(packet)
                        await client.classify(packet)  # second hits the cache
                        stats = await client.stats()
                        assert stats["engine"]["name"] == "cached"
                        assert stats["engine"]["cache"]["hits"] >= 1
                        assert stats["engine"]["engine"]["num_shards"] == 2
            finally:
                engine.close()

        run_scenario_coro(scenario())


class TestRunServer:
    def test_blocking_front_end_serves_until_shutdown(self, server_rules):
        """The CLI's engine room: run_server blocks a worker thread, serves
        real clients, and returns final statistics on shutdown."""
        import threading

        engine = ClassificationEngine.build(server_rules, classifier="tm")
        holder: dict = {}
        ready_event = threading.Event()
        shutdown = asyncio.Event()  # binds to the server's loop when awaited

        def on_ready(server):
            holder["address"] = (server.host, server.port)
            holder["loop"] = asyncio.get_running_loop()
            ready_event.set()

        from repro.serving import run_server
        from repro.workloads import run_load

        thread = threading.Thread(
            target=lambda: holder.__setitem__(
                "stats",
                run_server(
                    engine,
                    "127.0.0.1",
                    0,
                    max_batch=32,
                    max_delay_us=200,
                    ready=on_ready,
                    shutdown=shutdown,
                ),
            ),
            daemon=True,
        )
        thread.start()
        assert ready_event.wait(timeout=15), "server never became ready"
        host, port = holder["address"]
        packets = [tuple(p) for p in server_rules.sample_packets(120, seed=53)]
        report = run_load(host, port, packets, connections=2, window=16)
        holder["loop"].call_soon_threadsafe(shutdown.set)
        thread.join(timeout=30)
        assert not thread.is_alive(), "run_server did not shut down"
        assert report.completed == 120 and report.errors == 0
        stats = holder["stats"]["server"]
        assert stats["requests_served"] >= 120
        assert stats["batcher"]["batches"] >= 1
        engine.close()


class TestOpenLoopLoadGenerator:
    def test_open_loop_load_reports_and_coalesces(self, server_rules):
        async def scenario():
            engine = ClassificationEngine.build(server_rules, classifier="tm")
            trace = make_trace("zipf", server_rules, 600, seed=43, skew=95)
            async with AsyncServer(
                engine, max_batch=64, max_delay_us=200
            ) as server:
                await server.start("127.0.0.1", 0)
                report = await open_loop_load(
                    server.host,
                    server.port,
                    list(trace),
                    connections=3,
                    window=16,
                )
            assert report.packets == 600
            assert report.completed == 600
            assert report.errors == 0 and report.overloaded == 0
            assert report.throughput_rps > 0
            assert report.latency_p99_us >= report.latency_p50_us > 0
            # Concurrent connections must actually coalesce.
            assert report.mean_batch_size > 1.0
            payload = report.as_dict()
            assert payload["mean_batch_size"] == pytest.approx(
                report.mean_batch_size, abs=1e-3
            )

        run_scenario_coro(scenario())

    def test_batched_load_rides_wire_v2_with_json_pin(self, server_rules):
        async def scenario():
            engine = ClassificationEngine.build(server_rules, classifier="tm")
            async with AsyncServer(engine) as server:
                await server.start("127.0.0.1", 0)
                packets = [
                    tuple(p) for p in server_rules.sample_packets(96, seed=48)
                ]
                batched = await open_loop_load(
                    server.host, server.port, packets, connections=2, batch=8
                )
                pinned = await open_loop_load(
                    server.host,
                    server.port,
                    packets,
                    connections=2,
                    batch=8,
                    protocol="json",
                )
            assert batched.protocol == "v2" and batched.batch == 8
            assert pinned.protocol == "json"
            for report in (batched, pinned):
                assert report.completed == 96
                assert report.errors == 0
                assert report.matched == batched.matched
            assert batched.server["server"]["binary_batches"] >= 96 // 8
            with pytest.raises(ValueError, match="batch"):
                await open_loop_load(server.host, server.port, packets, batch=0)
            with pytest.raises(ValueError, match="protocol"):
                await open_loop_load(
                    server.host, server.port, packets, protocol="v3"
                )

        run_scenario_coro(scenario())

    def test_rate_limited_load_respects_offered_rate(self, server_rules):
        async def scenario():
            engine = ClassificationEngine.build(server_rules, classifier="tm")
            async with AsyncServer(engine) as server:
                await server.start("127.0.0.1", 0)
                packets = [
                    tuple(p) for p in server_rules.sample_packets(200, seed=47)
                ]
                report = await open_loop_load(
                    server.host,
                    server.port,
                    packets,
                    connections=2,
                    window=8,
                    rate_pps=4000,
                )
            assert report.completed == 200
            # Open-loop pacing: the run cannot finish faster than the offered
            # rate allows (allowing generous scheduler slack).
            assert report.throughput_rps <= 4000 * 1.5

        run_scenario_coro(scenario())
