"""Tests for the cache model, cost model, vectorisation model and perf harness."""

import pytest

from repro.classifiers import CutSplitClassifier, TupleMergeClassifier
from repro.classifiers.base import LookupTrace
from repro.core.nuevomatch import NuevoMatch
from repro.simulation import (
    CacheHierarchy,
    CostModel,
    evaluate_classifier,
    evaluate_classifier_batched,
    evaluate_nuevomatch,
    inference_time_ns,
    measure_inference_ns,
    speedup,
    table1_model,
)
from repro.traffic import generate_uniform_trace, generate_zipf_trace
from _helpers import fast_nm_config


class TestCacheHierarchy:
    def test_placement_levels(self):
        cache = CacheHierarchy.xeon_silver_4116()
        assert cache.placement_level(10 * 1024) == "L1"
        assert cache.placement_level(500 * 1024) == "L2"
        assert cache.placement_level(8 * 1024 * 1024) == "L3"
        assert cache.placement_level(64 * 1024 * 1024) == "DRAM"

    def test_latency_monotone_in_footprint(self):
        cache = CacheHierarchy.xeon_silver_4116()
        sizes = [1024, 100 * 1024, 4 * 1024 * 1024, 100 * 1024 * 1024]
        latencies = [cache.placement_latency_ns(s) for s in sizes]
        assert all(a < b for a, b in zip(latencies[:-1], latencies[1:]))

    def test_l3_limit_pushes_structures_to_dram(self):
        full = CacheHierarchy.xeon_silver_4116()
        limited = CacheHierarchy.xeon_silver_4116(l3_limit_bytes=1_500_000)
        footprint = 8 * 1024 * 1024
        assert limited.placement_latency_ns(footprint) > full.placement_latency_ns(footprint)

    def test_locality_reduces_latency(self):
        cache = CacheHierarchy.xeon_silver_4116()
        big = 8 * 1024 * 1024
        assert cache.access_latency_ns(big, locality=0.9) < cache.access_latency_ns(big, 0.0)

    def test_contention_slows_l3_only(self):
        normal = CacheHierarchy.xeon_silver_4116()
        contended = CacheHierarchy.xeon_silver_4116()
        contended.l3_contention = 2.0
        l3_size = 8 * 1024 * 1024
        l1_size = 10 * 1024
        assert contended.placement_latency_ns(l3_size) > normal.placement_latency_ns(l3_size)
        assert contended.placement_latency_ns(l1_size) == normal.placement_latency_ns(l1_size)

    def test_describe(self):
        info = CacheHierarchy.xeon_silver_4116().describe()
        assert [lvl["name"] for lvl in info["levels"]] == ["L1", "L2", "L3"]


class TestCostModel:
    def test_lookup_latency_components(self):
        model = CostModel()
        trace = LookupTrace(index_accesses=3, rule_accesses=2, model_accesses=3,
                            compute_ops=64, hash_ops=1)
        breakdown = model.lookup_latency(trace, index_bytes=500_000, rule_bytes=10_000_000,
                                         model_bytes=20_000)
        assert breakdown.total_ns == pytest.approx(
            breakdown.model_ns + breakdown.index_ns + breakdown.rule_ns
            + breakdown.compute_ns + breakdown.hash_ns
        )
        assert breakdown.rule_ns > breakdown.index_ns > 0
        assert breakdown.model_ns < breakdown.index_ns

    def test_wider_vectors_cut_compute(self):
        narrow = CostModel(vector_width=1)
        wide = CostModel(vector_width=8)
        trace = LookupTrace(compute_ops=64)
        assert (
            wide.lookup_latency(trace, 0, 0).compute_ns
            < narrow.lookup_latency(trace, 0, 0).compute_ns
        )

    def test_with_locality_copies(self):
        base = CostModel()
        skewed = base.with_locality(0.8)
        assert skewed.locality == 0.8
        assert base.locality == 0.0

    def test_classifier_lookup_latency(self, acl_small):
        tm = TupleMergeClassifier.build(acl_small)
        packet = acl_small.sample_packets(1, seed=1)[0]
        trace = tm.classify_traced(packet).trace
        breakdown = CostModel().classifier_lookup_latency(tm, trace)
        assert breakdown.total_ns > 0


class TestVectorizationModel:
    def test_table1_trend(self):
        times = table1_model()
        assert times["Serial"] > times["SSE"] > times["AVX"]
        # Calibration should land near the paper's numbers.
        assert times["Serial"] == pytest.approx(126, rel=0.05)
        assert times["SSE"] == pytest.approx(62, rel=0.10)
        assert times["AVX"] == pytest.approx(49, rel=0.10)

    def test_inference_time_validation(self):
        with pytest.raises(ValueError):
            inference_time_ns(0)

    def test_measured_inference_positive(self):
        assert measure_inference_ns(lanes=4, iterations=50) > 0


class TestPerfHarness:
    def test_baseline_report_fields(self, acl_medium):
        tm = TupleMergeClassifier.build(acl_medium)
        trace = generate_uniform_trace(acl_medium, 50, seed=1)
        report = evaluate_classifier(tm, trace, CostModel(), cores=2)
        assert report.cores == 2
        assert report.packets == 50
        assert report.avg_latency_ns > 0
        assert report.throughput_pps > 0
        assert report.as_row()["classifier"] == "tm"

    def test_batched_report_matches_per_packet_costs(self, acl_medium):
        # The per-batch latency of an aggregated trace equals the sum of the
        # per-packet latencies (the cost model is linear in the trace counts),
        # so batch-mode and per-packet evaluation agree on the average.
        tm = TupleMergeClassifier.build(acl_medium)
        trace = generate_uniform_trace(acl_medium, 60, seed=4)
        per_packet = evaluate_classifier(tm, trace, CostModel())
        batched = evaluate_classifier_batched(tm, trace, CostModel(), batch_size=16)
        assert batched.packets == 60
        assert batched.extra["num_batches"] == 4
        assert batched.avg_latency_ns == pytest.approx(
            per_packet.avg_latency_ns, rel=1e-9
        )

    def test_batched_rejects_bad_batch_size(self, acl_medium):
        tm = TupleMergeClassifier.build(acl_medium)
        with pytest.raises(ValueError):
            evaluate_classifier_batched(tm, [], batch_size=0)

    def test_two_cores_double_throughput(self, acl_medium):
        tm = TupleMergeClassifier.build(acl_medium)
        trace = generate_uniform_trace(acl_medium, 50, seed=2)
        one = evaluate_classifier(tm, trace, CostModel(), cores=1)
        two = evaluate_classifier(tm, trace, CostModel(), cores=2)
        assert two.throughput_pps == pytest.approx(2 * one.throughput_pps, rel=1e-6)
        assert two.avg_latency_ns == pytest.approx(one.avg_latency_ns, rel=1e-6)

    def test_nuevomatch_modes(self, nm_acl_medium, acl_medium):
        trace = generate_uniform_trace(acl_medium, 50, seed=3)
        parallel = evaluate_nuevomatch(nm_acl_medium, trace, CostModel(), mode="parallel")
        single = evaluate_nuevomatch(nm_acl_medium, trace, CostModel(), mode="single")
        assert parallel.cores == 2 and single.cores == 1
        assert parallel.avg_latency_ns > 0 and single.avg_latency_ns > 0
        assert "avg_breakdown" in single.extra
        with pytest.raises(ValueError):
            evaluate_nuevomatch(nm_acl_medium, trace, CostModel(), mode="triple")

    def test_speedup_helper(self, nm_acl_medium, acl_medium):
        trace = generate_uniform_trace(acl_medium, 40, seed=4)
        tm = TupleMergeClassifier.build(acl_medium)
        base = evaluate_classifier(tm, trace, CostModel(), cores=2)
        nm = evaluate_nuevomatch(nm_acl_medium, trace, CostModel(), mode="parallel")
        factors = speedup(nm, base)
        assert factors["latency"] > 0 and factors["throughput"] > 0

    def test_skewed_traffic_reduces_gap(self, acl_medium, nm_acl_medium):
        tm = TupleMergeClassifier.build(acl_medium)
        uniform = generate_uniform_trace(acl_medium, 60, seed=5)
        skewed = generate_zipf_trace(acl_medium, 60, top3_share=95, seed=5)
        plain_model = CostModel()
        skew_model = CostModel().with_locality(0.8)
        uniform_speedup = speedup(
            evaluate_nuevomatch(nm_acl_medium, uniform, plain_model),
            evaluate_classifier(tm, uniform, plain_model, cores=2),
        )["throughput"]
        skew_speedup = speedup(
            evaluate_nuevomatch(nm_acl_medium, skewed, skew_model),
            evaluate_classifier(tm, skewed, skew_model, cores=2),
        )["throughput"]
        # Figure 12: locality narrows NuevoMatch's advantage.
        assert skew_speedup <= uniform_speedup + 0.15
