"""Tests for the parallel warm-start training pipeline (repro.core.pipeline).

The pipeline's three contracts, in test form:

* **determinism** — ``jobs=1`` and ``jobs=4`` builds produce identical
  engines; warm-starting from the same source twice produces identical
  weights;
* **certification** — however a submodel was obtained (stacked cold training,
  verbatim reuse, warm refinement, cold fallback), the per-leaf error bound
  holds analytically over sampled keys and the end-to-end classifier matches
  linear-search ground truth;
* **fallback** — a warm source whose weights cannot certify the new ranges
  falls back to cold training instead of shipping a regressed bound.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import NuevoMatchConfig, RQRMIConfig
from repro.core.nuevomatch import NuevoMatch
from repro.core.pipeline import (
    PipelineConfig,
    TrainingPipeline,
    train_rqrmi,
    train_submodels_stacked,
)
from repro.core.rqrmi import RQRMI, RangeSet
from repro.core.submodel import Submodel
from repro.core.training import sample_responsibility, train_submodel
from repro.engine import ClassificationEngine
from repro.rules import generate_classbench
from repro.rules.rule import Rule
from repro.serving import ShardedEngine

from _helpers import fast_nm_config


def _disjoint_ranges(count: int, seed: int, domain: int = 1 << 32):
    rng = np.random.default_rng(seed)
    points = np.sort(
        rng.choice(domain, size=2 * count, replace=False).astype(np.int64)
    )
    return [(int(points[2 * i]), int(points[2 * i + 1])) for i in range(count)]


def _model_states_sans_timing(nm: NuevoMatch) -> str:
    """Canonical weights+bounds serialization, ignoring wall-clock fields."""
    state = nm.to_state()
    for iset_state in state["isets"]:
        iset_state["model"]["report"] = None
    state["training"] = None
    state["build_seconds"] = None
    return json.dumps(state, sort_keys=True)


def _modify_rules(rules, count: int, seed: int = 7):
    """An update workload: widen ``count`` rules' first field by one."""
    rng = np.random.default_rng(seed)
    positions = set(rng.choice(len(rules.rules), size=count, replace=False).tolist())
    changed = []
    for position, rule in enumerate(rules.rules):
        if position in positions:
            ranges = list(rule.ranges)
            lo, hi = ranges[0]
            ranges[0] = (lo, min(0xFFFFFFFF, hi + 1))
            changed.append(Rule(tuple(ranges), priority=rule.priority,
                                action=rule.action, rule_id=rule.rule_id))
        else:
            changed.append(rule)
    return rules.subset(changed, name=f"{rules.name}-modified")


@pytest.fixture(scope="module")
def acl_rules():
    return generate_classbench("acl1", 1500, seed=3)


@pytest.fixture(scope="module")
def nm_config():
    return fast_nm_config()


@pytest.fixture(scope="module")
def base_engine(acl_rules, nm_config):
    return NuevoMatch.build(
        acl_rules, remainder_classifier="tm", config=nm_config,
        pipeline=TrainingPipeline(jobs=1),
    )


class TestStackedTrainer:
    def test_matches_serial_quality(self):
        domain = 1 << 24
        ranges = _disjoint_ranges(200, seed=1, domain=domain)
        rset = RangeSet.from_integer_ranges(ranges, domain)
        rng = np.random.default_rng(2)
        datasets = [
            sample_responsibility(
                [(i / 4, (i + 1) / 4)], rset.lo, rset.hi, 400, len(rset), rng
            )
            for i in range(4)
        ]
        stacked = train_submodels_stacked(datasets, epochs=80)
        for dataset, model in zip(datasets, stacked):
            serial = train_submodel(dataset, epochs=80)
            stacked_mse = float(np.mean((model.predict_batch(dataset.xs) - dataset.ys) ** 2))
            serial_mse = float(np.mean((serial.predict_batch(dataset.xs) - dataset.ys) ** 2))
            # The stacked trainer may early-stop; it must stay in the same
            # quality regime as the full serial run.
            assert stacked_mse <= max(serial_mse * 5, 1e-4)

    def test_empty_and_degenerate_datasets(self):
        from repro.core.training import TrainingDataset

        constant = TrainingDataset(np.array([0.5, 0.5]), np.array([0.25, 0.25]))
        models = train_submodels_stacked([None, constant])
        assert isinstance(models[0], Submodel)
        assert models[1](0.5) == pytest.approx(0.25, abs=1e-6)

    def test_chunking_is_transparent(self):
        domain = 1 << 24
        rset = RangeSet.from_integer_ranges(_disjoint_ranges(64, seed=4, domain=domain), domain)
        rng = np.random.default_rng(5)
        datasets = [
            sample_responsibility(
                [(i / 8, (i + 1) / 8)], rset.lo, rset.hi, 200, len(rset), rng
            )
            for i in range(8)
        ]
        whole = train_submodels_stacked(datasets, epochs=40)
        chunked = train_submodels_stacked(
            datasets, epochs=40, max_stacked_elements=200 * 8 * 2
        )
        for a, b in zip(whole, chunked):
            assert np.array_equal(a.w1, b.w1)
            assert np.array_equal(a.w2, b.w2)
            assert a.b2 == b.b2

    def test_early_stop_disabled_matches_full_budget(self):
        domain = 1 << 24
        rset = RangeSet.from_integer_ranges(_disjoint_ranges(32, seed=6, domain=domain), domain)
        rng = np.random.default_rng(7)
        dataset = sample_responsibility(
            [(0.0, 1.0)], rset.lo, rset.hi, 300, len(rset), rng
        )
        full = train_submodels_stacked([dataset], epochs=60, early_stop_tolerance=0.0)
        again = train_submodels_stacked([dataset], epochs=60, early_stop_tolerance=0.0)
        assert np.array_equal(full[0].w1, again[0].w1)


class TestPipelineConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(jobs=0)
        with pytest.raises(ValueError):
            PipelineConfig(warm_epochs=0)
        with pytest.raises(ValueError):
            PipelineConfig(early_stop_tolerance=-1.0)
        with pytest.raises(ValueError):
            TrainingPipeline(PipelineConfig(), jobs=2)

    def test_warm_epoch_resolution(self):
        assert PipelineConfig(warm_epochs=17).resolve_warm_epochs(300) == 17
        assert PipelineConfig().resolve_warm_epochs(300) == 100
        assert PipelineConfig().resolve_warm_epochs(30) == 20


class TestParallelEquivalence:
    def test_jobs_produce_identical_engines(self, acl_rules, nm_config):
        one = NuevoMatch.build(
            acl_rules, remainder_classifier="tm", config=nm_config,
            pipeline=TrainingPipeline(jobs=1),
        )
        four = NuevoMatch.build(
            acl_rules, remainder_classifier="tm", config=nm_config,
            pipeline=TrainingPipeline(jobs=4),
        )
        assert _model_states_sans_timing(one) == _model_states_sans_timing(four)

    def test_pipeline_engine_is_conformant(self, base_engine, acl_rules):
        base_engine.verify(acl_rules.sample_packets(300, seed=21))

    def test_error_bounds_certify_lookups(self, base_engine):
        for iset in base_engine.isets:
            model = iset.model
            rset = model.ranges
            rng = np.random.default_rng(31)
            keys = (rng.random(500) * rset.domain_size).astype(np.int64)
            # Add keys inside ranges so true indices exist.
            inside = (rset.lo * rset.domain_size).astype(np.int64)
            keys = np.concatenate([keys, inside])
            indices, predicted, bounds = model.query_batch_detailed(keys)
            for key, index, pred, bound in zip(keys, indices, predicted, bounds):
                true = rset.locate(key / rset.domain_size)
                if true is None:
                    continue
                assert index == true, "indexed key must be found"
                assert abs(pred - true) <= bound, (
                    "certified error bound violated"
                )


class TestWarmStart:
    def test_warm_is_deterministic(self, acl_rules, nm_config, base_engine):
        updated = _modify_rules(acl_rules, count=30)
        pipe = TrainingPipeline(jobs=1)
        a = NuevoMatch.build(updated, remainder_classifier="tm", config=nm_config,
                             pipeline=pipe, warm_from=base_engine)
        b = NuevoMatch.build(updated, remainder_classifier="tm", config=nm_config,
                             pipeline=pipe, warm_from=base_engine)
        assert a.training_provenance["warm_started"] is True
        assert _model_states_sans_timing(a) == _model_states_sans_timing(b)

    def test_warm_engine_is_conformant_and_certified(
        self, acl_rules, nm_config, base_engine
    ):
        updated = _modify_rules(acl_rules, count=30)
        warm = NuevoMatch.build(updated, remainder_classifier="tm", config=nm_config,
                                pipeline=TrainingPipeline(jobs=1), warm_from=base_engine)
        warm.verify(updated.sample_packets(300, seed=23))
        threshold = nm_config.rqrmi.error_threshold
        for iset in warm.isets:
            assert iset.model.max_error <= threshold

    def test_unchanged_rules_reuse_everything(self, acl_rules, nm_config, base_engine):
        rebuilt = NuevoMatch.build(
            acl_rules, remainder_classifier="tm", config=nm_config,
            pipeline=TrainingPipeline(jobs=1), warm_from=base_engine,
        )
        provenance = rebuilt.training_provenance
        assert provenance["submodels_trained"] == 0
        assert provenance["submodels_reused"] > 0
        # Reused submodels carry their previous certified bounds verbatim.
        for old, new in zip(base_engine.isets, rebuilt.isets):
            assert old.model.error_bounds == new.model.error_bounds

    def test_structure_mismatch_falls_back_to_cold(self):
        domain = 1 << 24
        small = RangeSet.from_integer_ranges(_disjoint_ranges(40, 8, domain), domain)
        big = RangeSet.from_integer_ranges(_disjoint_ranges(1200, 9, domain), domain)
        config = RQRMIConfig(adam_epochs=40)
        warm_source = train_rqrmi(small, config)          # widths [1, 4, 16]
        model = train_rqrmi(big, RQRMIConfig(adam_epochs=40, stage_widths=[1, 8]),
                            warm_from=warm_source)
        assert model.report.warm_started is False

    def test_regressed_warm_weights_fall_back_to_cold(self):
        domain = 1 << 24
        config = RQRMIConfig(adam_epochs=60, error_threshold=16)
        old_ranges = RangeSet.from_integer_ranges(_disjoint_ranges(600, 10, domain), domain)
        new_ranges = RangeSet.from_integer_ranges(_disjoint_ranges(600, 11, domain), domain)
        trained = train_rqrmi(old_ranges, config)
        # Corrupt every leaf: constant-zero predictions cannot certify any
        # non-trivial range set.
        hidden = trained.stages[-1][0].hidden_units
        corrupted = RQRMI(
            stages=trained.stages[:-1]
            + [[Submodel(np.zeros(hidden), np.zeros(hidden), np.zeros(hidden), 0.0)
                for _ in trained.stages[-1]]],
            ranges=old_ranges,
            error_bounds=[0] * len(trained.error_bounds),
            report=trained.report,
        )
        # warm_epochs below the closed-form refit cadence: the corrupted
        # weights cannot recover in the warm attempt, forcing the cold path.
        model = train_rqrmi(
            new_ranges, config, warm_from=corrupted,
            pipeline_config=PipelineConfig(warm_epochs=5),
        )
        assert model.report.warm_started is True
        assert model.report.cold_fallbacks > 0
        assert model.max_error <= config.error_threshold
        # The certified contract must hold on the final model regardless.
        rng = np.random.default_rng(12)
        keys = (rng.random(400) * domain).astype(np.int64)
        indices, predicted, bounds = model.query_batch_detailed(keys)
        for key, index, pred, bound in zip(keys, indices, predicted, bounds):
            true = new_ranges.locate(key / domain)
            if true is not None:
                assert index == true
                assert abs(pred - true) <= bound


class TestEngineIntegration:
    def test_engine_build_records_provenance(self, acl_rules, nm_config, tmp_path):
        engine = ClassificationEngine.build(
            acl_rules, classifier="nm", remainder_classifier="tm",
            config=nm_config, pipeline=TrainingPipeline(jobs=1),
        )
        assert engine.metadata["training"]["mode"] == "pipeline"
        path = tmp_path / "engine.json.gz"
        engine.save(path)
        restored = ClassificationEngine.load(path)
        assert restored.metadata["training"]["mode"] == "pipeline"
        assert restored.classifier.training_provenance["mode"] == "pipeline"

    def test_engine_warm_from_engine_snapshot(
        self, acl_rules, nm_config, base_engine, tmp_path
    ):
        first = ClassificationEngine(base_engine)
        updated = _modify_rules(acl_rules, count=20)
        warm = ClassificationEngine.build(
            updated, classifier="nm", remainder_classifier="tm",
            config=nm_config, warm_from=first,
        )
        assert warm.metadata["training"]["warm_started"] is True

    def test_pipeline_rejected_for_stateless_classifiers(self, acl_rules):
        with pytest.raises(ValueError, match="no trained state"):
            ClassificationEngine.build(
                acl_rules, classifier="tm", pipeline=TrainingPipeline(jobs=2)
            )


class TestShardedWarmRetrain:
    def test_background_retrain_warm_starts(self, acl_rules, nm_config):
        engine = ShardedEngine.build(
            acl_rules, shards=2, classifier="nm", remainder_classifier="tm",
            config=nm_config, background_retraining=False, retrain_threshold=0.25,
        )
        try:
            donor = acl_rules.rules[0]
            max_id = max(rule.rule_id for rule in acl_rules)
            for index in range(1, len(acl_rules)):
                engine.insert(Rule(donor.ranges, priority=100_000 + index,
                                   action=donor.action, rule_id=max_id + index))
                if engine.updates.retrains_completed:
                    break
            assert engine.updates.retrains_completed >= 1
            assert engine.updates.last_retrain_seconds > 0.0
            retrained = [
                shard for shard in engine._shards if shard.retrain_count
            ]
            assert retrained
            for shard in retrained:
                provenance = shard.engine.classifier.training_provenance
                assert provenance["mode"] == "pipeline"
                assert provenance["warm_started"] is True
            engine.verify(engine.ruleset.sample_packets(200, seed=41))
        finally:
            engine.close()

    def test_cold_retrain_opt_out(self, acl_rules, nm_config):
        engine = ShardedEngine.build(
            acl_rules, shards=1, classifier="nm", remainder_classifier="tm",
            config=nm_config, background_retraining=False,
            retrain_threshold=0.25, warm_retrain=False,
        )
        try:
            donor = acl_rules.rules[0]
            max_id = max(rule.rule_id for rule in acl_rules)
            for index in range(1, len(acl_rules)):
                engine.insert(Rule(donor.ranges, priority=100_000 + index,
                                   action=donor.action, rule_id=max_id + index))
                if engine.updates.retrains_completed:
                    break
            provenance = engine._shards[0].engine.classifier.training_provenance
            assert provenance.get("warm_started") is not True
        finally:
            engine.close()

    def test_save_load_round_trips_retrain_policy(self, acl_rules, nm_config, tmp_path):
        engine = ShardedEngine.build(
            acl_rules, shards=2, classifier="nm", remainder_classifier="tm",
            config=nm_config, warm_retrain=False, retrain_jobs=3,
        )
        path = tmp_path / "sharded.json.gz"
        try:
            engine.save(path)
        finally:
            engine.close()
        restored = ShardedEngine.load(path)
        try:
            stats = restored.statistics()
            assert stats["warm_retrain"] is False
            assert stats["retrain_jobs"] == 3
        finally:
            restored.close()
