"""Property-based tests (hypothesis) for the core data structures and invariants."""

import io

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import RQRMIConfig
from repro.core.isets import max_independent_set, partition_isets, partition_shards
from repro.core.rqrmi import RQRMI, RangeSet
from repro.core.submodel import Submodel
from repro.rules.fields import (
    FIVE_TUPLE,
    int_to_ip,
    ip_to_int,
    merge_ranges,
    prefix_length_of_range,
    prefix_to_range,
    range_is_prefix,
    range_to_prefixes,
)
from repro.rules.parser import parse_classbench_lines, write_classbench_file
from repro.rules.rule import Rule, RuleSet

# ----------------------------------------------------------------- strategies

ranges_16bit = st.lists(
    st.tuples(st.integers(0, 65535), st.integers(0, 65535)).map(
        lambda pair: (min(pair), max(pair))
    ),
    min_size=1,
    max_size=40,
)


@st.composite
def disjoint_ranges(draw, max_count=30, domain_bits=16):
    """Sorted, pairwise-disjoint inclusive integer ranges."""
    domain = 1 << domain_bits
    count = draw(st.integers(1, max_count))
    points = draw(
        st.lists(
            st.integers(0, domain - 1), min_size=2 * count, max_size=2 * count, unique=True
        )
    )
    points.sort()
    return [(points[2 * i], points[2 * i + 1]) for i in range(count)]


@st.composite
def random_rule(draw, rule_id=0):
    ranges = []
    for spec in FIVE_TUPLE:
        lo = draw(st.integers(0, spec.max_value))
        hi = draw(st.integers(lo, spec.max_value))
        ranges.append((lo, hi))
    return Rule(tuple(ranges), priority=rule_id, rule_id=rule_id)


@st.composite
def random_ruleset(draw, max_rules=25):
    count = draw(st.integers(1, max_rules))
    rules = [draw(random_rule(rule_id=i)) for i in range(count)]
    return RuleSet(rules, FIVE_TUPLE)


@st.composite
def classbench_rule(draw, index=0):
    """A rule expressible in the ClassBench text format: prefix IPs, arbitrary
    port ranges, exact-or-wildcard protocol."""
    ranges = []
    for _ in range(2):
        ranges.append(
            prefix_to_range(draw(st.integers(0, 0xFFFFFFFF)), draw(st.integers(0, 32)))
        )
    for _ in range(2):
        lo = draw(st.integers(0, 65535))
        ranges.append((lo, draw(st.integers(lo, 65535))))
    ranges.append(
        draw(
            st.one_of(
                st.just((0, 255)),
                st.integers(0, 255).map(lambda value: (value, value)),
            )
        )
    )
    return Rule(tuple(ranges), priority=index, action=f"a{index}", rule_id=index)


@st.composite
def classbench_ruleset(draw, max_rules=15):
    count = draw(st.integers(1, max_rules))
    rules = [draw(classbench_rule(index=i)) for i in range(count)]
    return RuleSet(rules, FIVE_TUPLE)


# ----------------------------------------------------------------- field properties


class TestPrefixProperties:
    @given(st.integers(0, 0xFFFFFFFF), st.integers(0, 32))
    def test_prefix_range_contains_value_and_is_prefix(self, value, length):
        lo, hi = prefix_to_range(value, length)
        masked = lo
        assert lo <= masked <= hi
        assert range_is_prefix(lo, hi)
        span = hi - lo + 1
        assert span == 1 << (32 - length)

    @given(st.integers(0, 1 << 20), st.integers(0, 1 << 20))
    def test_range_to_prefixes_partitions_range(self, a, b):
        lo, hi = min(a, b), max(a, b)
        pieces = [prefix_to_range(v, l) for v, l in range_to_prefixes(lo, hi)]
        pieces.sort()
        assert pieces[0][0] == lo and pieces[-1][1] == hi
        for (alo, ahi), (blo, bhi) in zip(pieces[:-1], pieces[1:]):
            assert blo == ahi + 1

    @given(st.integers(0, 0xFFFFFFFF), st.integers(0, 32))
    def test_prefix_length_round_trip(self, value, length):
        lo, hi = prefix_to_range(value, length)
        assert prefix_length_of_range(lo, hi) == length

    @given(st.integers(0, 0xFFFFFFFF))
    def test_ip_text_round_trip(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @given(ranges_16bit)
    def test_merge_ranges_preserves_membership(self, ranges):
        merged = merge_ranges(ranges)
        # Sorted, disjoint and non-adjacent...
        for (alo, ahi), (blo, bhi) in zip(merged[:-1], merged[1:]):
            assert blo > ahi + 1
        # ...and the union of values is unchanged (spot-check the endpoints
        # and midpoints of every input range).
        def covered(value, intervals):
            return any(lo <= value <= hi for lo, hi in intervals)

        for lo, hi in ranges:
            for value in (lo, hi, (lo + hi) // 2):
                assert covered(value, merged)
        for lo, hi in merged:
            assert covered(lo, ranges) and covered(hi, ranges)


# ----------------------------------------------------------------- parser properties


class TestParserProperties:
    """Round-trip identities for the ClassBench text format."""

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(classbench_ruleset())
    def test_serialize_parse_identity(self, ruleset):
        buffer = io.StringIO()
        write_classbench_file(ruleset, buffer)
        parsed = parse_classbench_lines(buffer.getvalue().splitlines())
        assert len(parsed) == len(ruleset)
        # write_classbench_file emits priority order; our priorities are the
        # positions, so rule i round-trips to rule i with identical ranges.
        for original, restored in zip(ruleset, parsed):
            assert restored.ranges == original.ranges
            assert restored.priority == original.priority

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(classbench_ruleset())
    def test_parse_serialize_parse_is_stable(self, ruleset):
        first_buffer = io.StringIO()
        write_classbench_file(ruleset, first_buffer)
        first = parse_classbench_lines(first_buffer.getvalue().splitlines())
        second_buffer = io.StringIO()
        write_classbench_file(first, second_buffer)
        assert second_buffer.getvalue() == first_buffer.getvalue()
        second = parse_classbench_lines(second_buffer.getvalue().splitlines())
        assert [rule.ranges for rule in second] == [rule.ranges for rule in first]
        assert [rule.priority for rule in second] == [rule.priority for rule in first]

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(classbench_ruleset())
    def test_round_trip_preserves_match_semantics(self, ruleset):
        buffer = io.StringIO()
        write_classbench_file(ruleset, buffer)
        parsed = parse_classbench_lines(buffer.getvalue().splitlines())
        packet = ruleset.sample_packets(1, seed=9)[0]
        original = ruleset.match(packet)
        restored = parsed.match(packet)
        assert (original is None) == (restored is None)
        if original is not None:
            assert restored.priority == original.priority
            assert restored.ranges == original.ranges


# ----------------------------------------------------------------- rule-set properties


class TestRuleSetProperties:
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(random_ruleset())
    def test_match_agrees_with_all_matches(self, ruleset):
        packet = ruleset.sample_packets(1, seed=0)[0]
        best = ruleset.match(packet)
        hits = ruleset.all_matches(packet)
        assert (best is None) == (not hits)
        if best is not None:
            assert hits[0].priority == best.priority

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(random_ruleset())
    def test_sampled_packet_matches_its_rule(self, ruleset):
        for rule in list(ruleset)[:5]:
            packet = rule.sample_packet()
            assert rule.matches(packet)

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(random_ruleset())
    def test_diversity_bounded(self, ruleset):
        for value in ruleset.diversity().values():
            assert 0.0 < value <= 1.0


# ----------------------------------------------------------------- iSet properties


class TestISetProperties:
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(random_ruleset())
    def test_max_independent_set_is_independent(self, ruleset):
        for dim in range(len(FIVE_TUPLE)):
            chosen = max_independent_set(list(ruleset.rules), dim)
            ranges = sorted(rule.ranges[dim] for rule in chosen)
            for (alo, ahi), (blo, bhi) in zip(ranges[:-1], ranges[1:]):
                assert ahi < blo

    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(random_ruleset(), st.integers(1, 4))
    def test_partition_shards_is_disjoint_cover(self, ruleset, num_shards):
        num_shards = min(num_shards, len(ruleset))
        shards = partition_shards(ruleset, num_shards)
        assert len(shards) == num_shards
        ids = sorted(rule.rule_id for shard in shards for rule in shard)
        assert ids == sorted(rule.rule_id for rule in ruleset)
        assert all(shard for shard in shards)

    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(random_ruleset())
    def test_partition_conserves_rules(self, ruleset):
        result = partition_isets(ruleset)
        total = sum(len(iset) for iset in result.isets) + len(result.remainder)
        assert total == len(ruleset)
        ids = set()
        for iset in result.isets:
            ids |= {rule.rule_id for rule in iset.rules}
        ids |= {rule.rule_id for rule in result.remainder}
        assert ids == {rule.rule_id for rule in ruleset}


# ----------------------------------------------------------------- submodel properties


class TestSubmodelProperties:
    @settings(max_examples=40)
    @given(st.lists(st.floats(-3, 3), min_size=25, max_size=25), st.floats(-1, 1))
    def test_output_always_in_unit_interval(self, params, bias):
        w1 = np.array(params[:8])
        b1 = np.array(params[8:16])
        w2 = np.array(params[16:24])
        model = Submodel(w1, b1, w2, bias)
        xs = np.linspace(0, 1, 50)
        ys = model.predict_batch(xs)
        assert np.all(ys >= 0.0) and np.all(ys < 1.0)

    @settings(max_examples=25)
    @given(st.lists(st.floats(-3, 3), min_size=25, max_size=25), st.integers(2, 64))
    def test_bucket_constant_between_transitions(self, params, width):
        w1 = np.array(params[:8])
        b1 = np.array(params[8:16])
        w2 = np.array(params[16:24])
        model = Submodel(w1, b1, w2, params[24] if len(params) > 24 else 0.0)
        transitions = model.transition_inputs(width)
        points = [0.0] + transitions + [1.0]
        for a, b in zip(points[:-1], points[1:]):
            if b - a < 1e-7:
                continue
            mid_buckets = {
                model.bucket(a + (b - a) * frac, width) for frac in (0.25, 0.5, 0.75)
            }
            assert len(mid_buckets) == 1


# ----------------------------------------------------------------- RQ-RMI properties


class TestRQRMIProperties:
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(disjoint_ranges(max_count=25, domain_bits=16))
    def test_trained_model_always_finds_indexed_keys(self, ranges):
        domain = 1 << 16
        range_set = RangeSet.from_integer_ranges(ranges, domain)
        model = RQRMI.train(
            range_set,
            RQRMIConfig(stage_widths=[1, 4], adam_epochs=40, initial_samples=128),
        )
        for idx, (lo, hi) in enumerate(sorted(ranges)):
            for key in {lo, hi, (lo + hi) // 2}:
                assert model.query(key).index == idx

    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(disjoint_ranges(max_count=25, domain_bits=16), st.integers(0, (1 << 16) - 1))
    def test_query_never_returns_wrong_range(self, ranges, key):
        domain = 1 << 16
        range_set = RangeSet.from_integer_ranges(ranges, domain)
        model = RQRMI.train(
            range_set,
            RQRMIConfig(stage_widths=[1, 4], adam_epochs=40, initial_samples=128),
        )
        result = model.query(key).index
        expected = range_set.locate(range_set.scale_key(key))
        assert result == expected
