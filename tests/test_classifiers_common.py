"""Cross-classifier behaviour tests.

Every classifier must agree with the linear-search oracle on packets sampled
from the rule-set, report a sensible memory footprint, and honour the
early-termination contract of ``classify_with_floor``.
"""

import pytest

from repro.classifiers import (
    CLASSIFIER_REGISTRY,
    CutSplitClassifier,
    HiCutsClassifier,
    LinearSearchClassifier,
    NeuroCutsClassifier,
    TupleMergeClassifier,
    TupleSpaceSearchClassifier,
    UnknownClassifierError,
    available_classifiers,
    build_classifier,
    classifier_aliases,
    resolve_classifier,
)

ALL_CLASSIFIERS = [
    LinearSearchClassifier,
    TupleSpaceSearchClassifier,
    TupleMergeClassifier,
    HiCutsClassifier,
    CutSplitClassifier,
    NeuroCutsClassifier,
]


@pytest.fixture(scope="module", params=ALL_CLASSIFIERS, ids=lambda cls: cls.name)
def built_classifier(request, acl_small):
    return request.param.build(acl_small)


class TestRegistry:
    def test_registry_names(self):
        assert {"linear", "tss", "tm", "hicuts", "cs", "nc", "nm"} <= set(
            available_classifiers()
        )

    def test_registry_classes_match_names(self):
        for name in available_classifiers():
            assert resolve_classifier(name).name == name

    def test_aliases_resolve_to_same_class(self):
        for name, aliases in classifier_aliases().items():
            for alias in aliases:
                assert resolve_classifier(alias) is resolve_classifier(name)

    def test_unknown_name_lists_available(self):
        with pytest.raises(UnknownClassifierError, match="tm \\(aka tuplemerge\\)"):
            resolve_classifier("bogus")

    def test_build_classifier_forwards_params(self, acl_small):
        clf = build_classifier("tuplemerge", acl_small, collision_limit=10)
        assert clf.name == "tm"
        assert clf.collision_limit == 10

    def test_deprecated_static_registry_warns(self):
        with pytest.warns(DeprecationWarning):
            assert CLASSIFIER_REGISTRY["tm"] is TupleMergeClassifier


class TestAgainstOracle:
    def test_matches_linear_search_on_matching_packets(self, built_classifier, acl_small):
        packets = acl_small.sample_packets(200, seed=2)
        assert built_classifier.verify(packets) == 200

    def test_matches_linear_search_on_random_packets(self, built_classifier, acl_small):
        import random

        rng = random.Random(3)
        packets = [
            tuple(rng.randint(0, spec.max_value) for spec in acl_small.schema)
            for _ in range(100)
        ]
        for packet in packets:
            expected = acl_small.match(packet)
            actual = built_classifier.classify(packet)
            assert (expected is None) == (actual is None)
            if expected is not None:
                assert actual.priority == expected.priority

    @pytest.mark.parametrize("cls", ALL_CLASSIFIERS, ids=lambda c: c.name)
    def test_firewall_ruleset(self, cls, fw_small):
        classifier = cls.build(fw_small)
        classifier.verify(fw_small.sample_packets(150, seed=4))

    @pytest.mark.parametrize("cls", ALL_CLASSIFIERS, ids=lambda c: c.name)
    def test_single_field_ruleset(self, cls, forwarding_small):
        classifier = cls.build(forwarding_small)
        classifier.verify(forwarding_small.sample_packets(150, seed=5))


class TestTraces:
    def test_traced_lookup_counts_accesses(self, built_classifier, acl_small):
        packet = acl_small.sample_packets(1, seed=7)[0]
        result = built_classifier.classify_traced(packet)
        assert result.trace.total_accesses >= 0
        if built_classifier.name != "nm":
            # Every non-trivial classifier touches at least one structure or rule.
            assert result.trace.total_accesses + result.trace.compute_ops > 0

    def test_classification_result_fields(self, built_classifier, acl_small):
        packet = acl_small.sample_packets(1, seed=8)[0]
        result = built_classifier.classify_traced(packet)
        assert result.matched == (result.rule is not None)
        if result.matched:
            assert result.action == result.rule.action


class TestEarlyTermination:
    def test_floor_none_equals_plain_lookup(self, built_classifier, acl_small):
        for packet in acl_small.sample_packets(50, seed=9):
            plain = built_classifier.classify(packet)
            floored = built_classifier.classify_with_floor(packet, None).rule
            assert (plain is None) == (floored is None)
            if plain is not None:
                assert plain.priority == floored.priority

    def test_floor_prunes_but_never_returns_worse(self, built_classifier, acl_small):
        for packet in acl_small.sample_packets(50, seed=10):
            best = acl_small.match(packet)
            if best is None:
                continue
            floor = best.priority  # nothing strictly better exists
            result = built_classifier.classify_with_floor(packet, floor)
            if result.rule is not None:
                assert result.rule.priority < floor

    def test_floor_allows_finding_better_rules(self, built_classifier, acl_small):
        for packet in acl_small.sample_packets(50, seed=11):
            best = acl_small.match(packet)
            if best is None:
                continue
            result = built_classifier.classify_with_floor(packet, best.priority + 1)
            assert result.rule is not None
            assert result.rule.priority <= best.priority


class TestFootprint:
    def test_footprint_nonnegative_and_consistent(self, built_classifier):
        footprint = built_classifier.memory_footprint()
        assert footprint.index_bytes >= 0
        assert footprint.rule_bytes >= 0
        assert footprint.total_bytes == footprint.index_bytes + footprint.rule_bytes

    def test_statistics_contain_basics(self, built_classifier, acl_small):
        stats = built_classifier.statistics()
        assert stats["num_rules"] == len(acl_small)
        assert stats["index_bytes"] == built_classifier.memory_footprint().index_bytes

    def test_footprint_grows_with_rules(self, acl_small, acl_medium):
        for cls in (TupleMergeClassifier, CutSplitClassifier):
            small = cls.build(acl_small).memory_footprint().index_bytes
            big = cls.build(acl_medium).memory_footprint().index_bytes
            assert big > small
