"""Tests specific to the hash-based classifiers (TSS and TupleMerge)."""

import pytest

from repro.classifiers.tuplemerge import TupleMergeClassifier
from repro.classifiers.tuplespace import (
    TupleSpaceSearchClassifier,
    mask_value,
    rule_tuple,
)
from repro.rules.fields import FIVE_TUPLE
from repro.rules.rule import Rule, RuleSet


def make_exact_rule(src, dst, sport, dport, proto, priority, rule_id):
    return Rule(
        ((src, src), (dst, dst), (sport, sport), (dport, dport), (proto, proto)),
        priority=priority,
        rule_id=rule_id,
    )


class TestTupleHelpers:
    def test_mask_value(self):
        assert mask_value(0xDEADBEEF, 0, 32) == 0
        assert mask_value(0xDEADBEEF, 32, 32) == 0xDEADBEEF
        assert mask_value(0xFFFFFFFF, 16, 32) == 0xFFFF0000
        assert mask_value(0xFF, 4, 8) == 0xF0

    def test_rule_tuple_prefix_and_wildcard(self):
        rule = Rule(
            ((0, 0xFF), (0, 0xFFFFFFFF), (80, 80), (10, 20), (6, 6)),
            priority=0,
            rule_id=0,
        )
        bits = [spec.bits for spec in FIVE_TUPLE]
        lengths = rule_tuple(rule, bits)
        assert lengths[0] == 24          # a /24 prefix
        assert lengths[1] == 0           # full wildcard
        assert lengths[2] == 16          # exact port
        assert lengths[3] == 0           # arbitrary range treated as wildcard
        assert lengths[4] == 8           # exact protocol


class TestTupleSpaceSearch:
    def test_one_table_per_tuple(self, acl_small):
        tss = TupleSpaceSearchClassifier.build(acl_small)
        bits = [spec.bits for spec in acl_small.schema]
        distinct_tuples = {rule_tuple(rule, bits) for rule in acl_small}
        assert tss.num_tables == len(distinct_tuples)

    def test_insert_and_remove(self, acl_small):
        tss = TupleSpaceSearchClassifier.build(acl_small)
        new_rule = make_exact_rule(1, 2, 3, 4, 6, priority=-1, rule_id=10_000)
        tss.insert(new_rule)
        assert tss.classify((1, 2, 3, 4, 6)).rule_id == 10_000
        assert tss.remove(10_000)
        found = tss.classify((1, 2, 3, 4, 6))
        assert found is None or found.rule_id != 10_000

    def test_remove_missing_returns_false(self, acl_small):
        tss = TupleSpaceSearchClassifier.build(acl_small)
        assert not tss.remove(999_999)


class TestTupleMerge:
    def test_fewer_tables_than_tss(self, acl_medium):
        tss = TupleSpaceSearchClassifier.build(acl_medium)
        tm = TupleMergeClassifier.build(acl_medium)
        assert tm.num_tables < tss.num_tables

    def test_collision_limit_respected_for_mergeable_tables(self, acl_medium):
        tm = TupleMergeClassifier.build(acl_medium, collision_limit=8)
        stats = tm.statistics()
        # The limit is a soft bound (the most specific table may overflow as a
        # last resort), but typical buckets must stay near it.
        assert stats["max_bucket"] <= 8 * 4

    def test_collision_limit_validation(self, acl_small):
        with pytest.raises(ValueError):
            TupleMergeClassifier(acl_small, collision_limit=0)

    def test_lower_collision_limit_creates_more_tables(self, acl_medium):
        loose = TupleMergeClassifier.build(acl_medium, collision_limit=40)
        tight = TupleMergeClassifier.build(acl_medium, collision_limit=2)
        assert tight.num_tables >= loose.num_tables

    def test_insert_and_remove(self, acl_small):
        tm = TupleMergeClassifier.build(acl_small)
        new_rule = make_exact_rule(9, 8, 7, 6, 17, priority=-1, rule_id=20_000)
        tm.insert(new_rule)
        assert tm.classify((9, 8, 7, 6, 17)).rule_id == 20_000
        assert tm.remove(20_000)
        found = tm.classify((9, 8, 7, 6, 17))
        assert found is None or found.rule_id != 20_000

    def test_updates_preserve_correctness(self, acl_small):
        tm = TupleMergeClassifier.build(acl_small)
        # Remove 50 rules, verify against the reduced oracle.
        removed = [rule.rule_id for rule in list(acl_small)[:50]]
        for rule_id in removed:
            assert tm.remove(rule_id)
        reduced = acl_small.without(removed)
        for packet in reduced.sample_packets(100, seed=3):
            expected = reduced.match(packet)
            actual = tm.classify(packet)
            assert (expected is None) == (actual is None)
            if expected is not None:
                assert actual.priority == expected.priority

    def test_empty_ruleset(self):
        empty = RuleSet([], FIVE_TUPLE)
        tm = TupleMergeClassifier.build(empty)
        assert tm.classify((1, 2, 3, 4, 5)) is None
        assert tm.memory_footprint().index_bytes >= 0
