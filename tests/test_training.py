"""Unit tests for submodel training: sampling, least squares, Adam."""

import numpy as np
import pytest

from repro.core.submodel import Submodel
from repro.core.training import (
    TrainingDataset,
    fit_output_layer,
    sample_responsibility,
    train_submodel,
)


def scaled_ranges(int_ranges, domain):
    lo = np.array([r[0] for r in int_ranges], dtype=np.float64) / domain
    hi = np.array([r[1] for r in int_ranges], dtype=np.float64) / domain
    return lo, hi


class TestSampling:
    def test_samples_fall_inside_ranges(self):
        domain = 1 << 16
        ranges = [(0, 999), (2000, 2999), (10_000, 19_999)]
        lo, hi = scaled_ranges(ranges, domain)
        rng = np.random.default_rng(0)
        ds = sample_responsibility([(0.0, 1.0)], lo, hi, 500, len(ranges), rng)
        assert len(ds) > 0
        for x, y in zip(ds.xs, ds.ys):
            idx = int(round(y * len(ranges)))
            assert lo[idx] <= x <= hi[idx]

    def test_targets_are_scaled_indices(self):
        domain = 1 << 16
        ranges = [(0, 99), (200, 299)]
        lo, hi = scaled_ranges(ranges, domain)
        rng = np.random.default_rng(1)
        ds = sample_responsibility([(0.0, 1.0)], lo, hi, 200, 2, rng)
        assert set(np.round(ds.ys * 2).astype(int)) <= {0, 1}

    def test_respects_responsibility(self):
        domain = 1 << 16
        ranges = [(0, 999), (30_000, 39_999)]
        lo, hi = scaled_ranges(ranges, domain)
        rng = np.random.default_rng(2)
        # Responsibility only covers the first range.
        ds = sample_responsibility([(0.0, 0.1)], lo, hi, 300, 2, rng)
        assert np.all(ds.xs <= 0.1 + 1e-9)

    def test_boundary_points_included_for_sparse_sampling(self):
        domain = 1 << 24
        ranges = [(5_000_000, 5_000_001)]  # tiny range, unlikely to be hit
        lo, hi = scaled_ranges(ranges, domain)
        rng = np.random.default_rng(3)
        ds = sample_responsibility([(0.0, 1.0)], lo, hi, 10, 1, rng, include_boundaries=True)
        assert len(ds) >= 2  # the two boundary points

    def test_empty_when_no_ranges(self):
        rng = np.random.default_rng(4)
        ds = sample_responsibility([(0.0, 1.0)], np.empty(0), np.empty(0), 100, 1, rng)
        assert len(ds) == 0

    def test_xs_sorted(self):
        domain = 1 << 16
        ranges = [(i * 1000, i * 1000 + 500) for i in range(20)]
        lo, hi = scaled_ranges(ranges, domain)
        rng = np.random.default_rng(5)
        ds = sample_responsibility([(0.0, 1.0)], lo, hi, 400, 20, rng)
        assert np.all(np.diff(ds.xs) >= 0)


class TestLeastSquares:
    def test_fits_linear_function_exactly(self):
        xs = np.linspace(0, 1, 100)
        ys = 0.5 * xs + 0.1
        w1 = np.ones(8)
        b1 = -np.linspace(0, 1, 8, endpoint=False)
        w2, b2 = fit_output_layer(xs, ys, w1, b1)
        model = Submodel(w1, b1, w2, b2)
        preds = model.raw_batch(xs)
        assert np.max(np.abs(preds - ys)) < 1e-8


class TestTrainSubmodel:
    def test_learns_step_mapping(self):
        # Ten ranges evenly spread: target is a staircase the model must follow
        # closely enough for floor(M(x) * 10) to be near the true index.
        domain = 1 << 16
        ranges = [(i * 6000, i * 6000 + 3000) for i in range(10)]
        lo, hi = scaled_ranges(ranges, domain)
        rng = np.random.default_rng(6)
        ds = sample_responsibility([(0.0, 1.0)], lo, hi, 2000, 10, rng)
        model = train_submodel(ds, epochs=200, seed=1)
        predicted = np.minimum((model.predict_batch(ds.xs) * 10).astype(int), 9)
        true = np.round(ds.ys * 10).astype(int)
        assert np.mean(np.abs(predicted - true) <= 1) > 0.95

    def test_empty_dataset_returns_identity_like_model(self):
        model = train_submodel(TrainingDataset(np.empty(0), np.empty(0)))
        assert isinstance(model, Submodel)

    def test_single_point_dataset(self):
        ds = TrainingDataset(np.array([0.5]), np.array([0.25]))
        model = train_submodel(ds, epochs=10)
        assert model(0.5) == pytest.approx(0.25, abs=1e-6)

    def test_zero_epochs_uses_least_squares_only(self):
        domain = 1 << 16
        ranges = [(i * 6000, i * 6000 + 3000) for i in range(10)]
        lo, hi = scaled_ranges(ranges, domain)
        rng = np.random.default_rng(7)
        ds = sample_responsibility([(0.0, 1.0)], lo, hi, 1000, 10, rng)
        model = train_submodel(ds, epochs=0)
        predicted = model.predict_batch(ds.xs)
        assert float(np.mean((predicted - ds.ys) ** 2)) < 0.01

    def test_training_is_deterministic_given_seed(self):
        domain = 1 << 16
        ranges = [(i * 3000, i * 3000 + 1000) for i in range(5)]
        lo, hi = scaled_ranges(ranges, domain)
        ds = sample_responsibility(
            [(0.0, 1.0)], lo, hi, 500, 5, np.random.default_rng(8)
        )
        a = train_submodel(ds, epochs=50, seed=3)
        b = train_submodel(ds, epochs=50, seed=3)
        assert np.allclose(a.w1, b.w1) and np.allclose(a.w2, b.w2)
