"""Tests for the trace generators (uniform, Zipf, CAIDA-like)."""

import pytest

from repro.traffic import (
    ZIPF_ALPHAS,
    generate_caida_like_trace,
    generate_uniform_trace,
    generate_zipf_trace,
    zipf_alpha_for_top3_share,
)


class TestUniformTrace:
    def test_every_packet_matches_a_rule(self, acl_small):
        trace = generate_uniform_trace(acl_small, 300, seed=1)
        assert len(trace) == 300
        for packet in trace:
            assert acl_small.match(packet) is not None

    def test_deterministic(self, acl_small):
        a = generate_uniform_trace(acl_small, 100, seed=5)
        b = generate_uniform_trace(acl_small, 100, seed=5)
        assert [p.values for p in a] == [p.values for p in b]

    def test_metadata(self, acl_small):
        trace = generate_uniform_trace(acl_small, 10, seed=2)
        assert trace.metadata["distribution"] == "uniform"
        assert trace.metadata["ruleset"] == acl_small.name

    def test_low_locality(self, acl_small):
        trace = generate_uniform_trace(acl_small, 400, seed=3)
        # Fresh random packets per rule: most packets should be distinct.
        assert trace.unique_fraction() > 0.8


class TestZipfTrace:
    def test_alpha_mapping(self):
        assert zipf_alpha_for_top3_share(80) == ZIPF_ALPHAS[80]
        with pytest.raises(ValueError):
            zipf_alpha_for_top3_share(50)

    def test_every_packet_matches(self, acl_small):
        trace = generate_zipf_trace(acl_small, 300, top3_share=90, seed=1)
        for packet in trace:
            assert acl_small.match(packet) is not None

    def test_higher_skew_more_concentrated(self, acl_small):
        low = generate_zipf_trace(acl_small, 2000, top3_share=80, seed=2)
        high = generate_zipf_trace(acl_small, 2000, top3_share=95, seed=2)
        assert high.top_flow_share(0.03) > low.top_flow_share(0.03)

    def test_skewed_trace_has_repeats(self, acl_small):
        trace = generate_zipf_trace(acl_small, 1000, top3_share=95, seed=3)
        assert trace.unique_fraction() < 0.9


class TestCaidaLikeTrace:
    def test_every_packet_matches(self, acl_small):
        trace = generate_caida_like_trace(acl_small, 300, seed=1)
        for packet in trace:
            assert acl_small.match(packet) is not None

    def test_flow_consistency(self, acl_small):
        trace = generate_caida_like_trace(acl_small, 500, num_flows=32, seed=2)
        # With only 32 flows, at most 32 distinct five-tuples can appear.
        assert len({p.values for p in trace}) <= 32

    def test_burstiness_increases_locality(self, acl_small):
        smooth = generate_caida_like_trace(acl_small, 1000, seed=3, burstiness=0.0)
        bursty = generate_caida_like_trace(acl_small, 1000, seed=3, burstiness=0.95)

        def repeat_fraction(trace):
            repeats = sum(
                1
                for a, b in zip(trace.packets[:-1], trace.packets[1:])
                if a.values == b.values
            )
            return repeats / (len(trace) - 1)

        assert repeat_fraction(bursty) > repeat_fraction(smooth)

    def test_top_flow_share_reported(self, acl_small):
        trace = generate_caida_like_trace(acl_small, 500, seed=4)
        assert 0.0 < trace.top_flow_share(0.03) <= 1.0
