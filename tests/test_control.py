"""Deterministic unit tests for the overload-control policy.

Everything in :mod:`repro.serving.control` is a pure state machine over an
injectable clock (the same design — and the same fake-clock idiom — as
``tests/test_request_batcher.py``), so every decision here is exact: budgets
reject at *exactly* the packet boundary, windows roll at *exactly*
``window_s``, an SLO breach shrinks every dial by *exactly* ``backoff``, and
a steady in-deadband load produces *zero* settings changes (no oscillation).
The asyncio loop that applies these decisions is covered end-to-end in
``tests/test_async_server.py``.
"""

from __future__ import annotations

import pytest

from repro.serving.control import (
    CacheTuner,
    ControllerConfig,
    ControlSettings,
    OverloadController,
    PacketBudget,
    QueueFullError,
)


class FakeClock:
    """A manually advanced monotonic clock (seconds, like time.monotonic)."""

    def __init__(self):
        self.us = 0.0

    def __call__(self) -> float:
        return self.us / 1e6

    def advance_us(self, us: float) -> None:
        self.us += us


# ---------------------------------------------------------------------------
# PacketBudget


class TestPacketBudget:
    def test_rejects_at_exactly_the_packet_boundary(self):
        budget = PacketBudget(10)
        budget.try_acquire(6)
        budget.try_acquire(4)  # exactly at capacity: admitted
        assert budget.in_flight == 10
        with pytest.raises(QueueFullError):
            budget.try_acquire(1)
        assert budget.stats.admitted == 2
        assert budget.stats.admitted_packets == 10
        assert budget.stats.rejected == 1
        assert budget.stats.rejected_packets == 1

    def test_release_frees_capacity_and_clamps_at_zero(self):
        budget = PacketBudget(10)
        budget.try_acquire(10)
        budget.release(4)
        budget.try_acquire(4)
        assert budget.in_flight == 10
        budget.release(100)  # over-release clamps, never goes negative
        assert budget.in_flight == 0

    def test_oversized_request_admits_only_when_idle(self):
        """Progress guarantee: a request wider than the whole budget is
        admitted when nothing is in flight (otherwise it could never be
        served), but blocks everything else until it completes."""
        budget = PacketBudget(8)
        budget.try_acquire(1000)
        assert budget.in_flight == 1000
        with pytest.raises(QueueFullError):
            budget.try_acquire(1)
        budget.release(1000)
        budget.try_acquire(1)  # back to normal once the giant completes

    def test_shrinking_the_limit_below_in_flight_only_blocks_new_work(self):
        budget = PacketBudget(100)
        budget.try_acquire(60)
        budget.limit = 10  # the controller backing off mid-flight
        with pytest.raises(QueueFullError):
            budget.try_acquire(1)
        budget.release(60)
        budget.try_acquire(10)

    @pytest.mark.parametrize("limit", [0, -1])
    def test_rejects_invalid_limit(self, limit):
        with pytest.raises(ValueError):
            PacketBudget(limit)

    def test_rejects_invalid_acquire(self):
        with pytest.raises(ValueError):
            PacketBudget(4).try_acquire(0)

    def test_as_dict_shape(self):
        payload = PacketBudget(4).as_dict()
        assert set(payload) == {
            "limit", "in_flight", "admitted", "admitted_packets",
            "rejected", "rejected_packets",
        }


# ---------------------------------------------------------------------------
# OverloadController


def make_controller(**overrides) -> tuple[OverloadController, FakeClock]:
    clock = FakeClock()
    config = dict(
        slo_p99_us=1_000.0, window_s=0.1, headroom=0.7,
        min_batch=8, max_batch=1024, batch_step=16,
        min_delay_us=0.0, max_delay_us=5_000.0, delay_step_us=50.0,
        min_queue=64, max_queue=1 << 20, queue_growth=1.25, backoff=0.5,
    )
    config.update(overrides)
    controller = OverloadController(
        ControllerConfig(**config),
        ControlSettings(max_batch=128, max_delay_us=200.0, max_queue=1024),
        clock=clock,
    )
    return controller, clock


def roll(controller: OverloadController, clock: FakeClock) -> ControlSettings:
    """Advance exactly one window and close it."""
    clock.advance_us(controller.config.window_s * 1e6)
    settings = controller.maybe_roll()
    assert settings is not None
    return settings


class TestControllerWindows:
    def test_window_rolls_at_exactly_window_s(self):
        controller, clock = make_controller(window_s=0.1)
        assert controller.due_in() == pytest.approx(0.1)
        assert controller.maybe_roll() is None  # not due: window stays open
        clock.advance_us(99_999.0)
        assert controller.maybe_roll() is None
        clock.advance_us(1.0)  # exactly window_s
        assert controller.due_in() == 0.0
        assert controller.maybe_roll() is not None
        assert controller.windows == 1
        # The next window opens at the roll, not at the last observation.
        assert controller.due_in() == pytest.approx(0.1)

    def test_idle_window_holds(self):
        controller, clock = make_controller()
        before = controller.settings
        assert roll(controller, clock) == before
        assert controller.holds == 1
        assert controller.last_window.decision == "hold"


class TestControllerPolicy:
    def test_slo_breach_shrinks_batch_delay_and_budget(self):
        controller, clock = make_controller(slo_p99_us=1_000.0, backoff=0.5)
        controller.observe_completion(5_000.0, packets=32)
        settings = roll(controller, clock)
        assert settings.max_batch == 64       # 128 * 0.5
        assert settings.max_delay_us == 100.0  # 200 * 0.5
        assert settings.max_queue == 512      # 1024 * 0.5
        assert controller.breaches == 1
        assert controller.last_window.decision == "breach"
        assert controller.last_window.p99_us > 1_000.0

    def test_headroom_grows_batch_and_delay_additively(self):
        controller, clock = make_controller(slo_p99_us=1_000.0, headroom=0.7)
        controller.observe_completion(100.0, packets=32)  # far under headroom
        settings = roll(controller, clock)
        assert settings.max_batch == 144       # 128 + 16
        assert settings.max_delay_us == 250.0  # 200 + 50
        assert settings.max_queue == 1024      # healthy and no sheds: hold
        assert controller.grows == 1

    def test_deadband_between_headroom_and_slo_holds(self):
        controller, clock = make_controller(slo_p99_us=1_000.0, headroom=0.7)
        controller.observe_completion(800.0, packets=32)  # in (700, 1000)
        assert roll(controller, clock) == ControlSettings(128, 200.0, 1024)
        assert controller.holds == 1

    def test_budget_grows_only_when_shedding_while_healthy(self):
        controller, clock = make_controller(queue_growth=1.25)
        controller.observe_completion(100.0, packets=32)
        controller.observe_shed(500)  # budget, not engine, is the bottleneck
        settings = roll(controller, clock)
        assert settings.max_queue == int(1024 * 1.25) + 1

    def test_total_shed_window_counts_as_breach(self):
        """Nothing completed but traffic was shed: the degenerate breach
        (there are no latency samples, yet the server is clearly drowning)."""
        controller, clock = make_controller()
        controller.observe_shed(100)
        settings = roll(controller, clock)
        assert controller.breaches == 1
        assert settings.max_batch == 64

    def test_percentiles_are_packet_weighted(self):
        """One slow 512-packet batch must dominate p99 over a few fast
        singles — and vice versa, one slow single packet among 512 fast
        ones must not trip the SLO."""
        slow_heavy, clock = make_controller(slo_p99_us=1_000.0)
        slow_heavy.observe_completion(20_000.0, packets=512)
        slow_heavy.observe_completion(100.0, packets=5)
        roll(slow_heavy, clock)
        assert slow_heavy.breaches == 1

        fast_heavy, clock = make_controller(slo_p99_us=1_000.0)
        fast_heavy.observe_completion(100.0, packets=512)
        fast_heavy.observe_completion(20_000.0, packets=1)
        roll(fast_heavy, clock)
        assert fast_heavy.breaches == 0
        assert fast_heavy.grows == 1

    def test_repeated_breaches_clamp_at_the_floors(self):
        controller, clock = make_controller(
            min_batch=8, min_queue=64, min_delay_us=0.0
        )
        for _ in range(50):
            controller.observe_completion(50_000.0, packets=16)
            roll(controller, clock)
        settings = controller.settings
        assert settings.max_batch == 8
        assert settings.max_queue == 64
        # Multiplicative decay never exactly reaches the 0.0 floor, but it
        # must be pinned inside [min, previous) and effectively zero.
        assert 0.0 <= settings.max_delay_us < 1e-3

    def test_repeated_growth_clamps_at_the_ceilings(self):
        controller, clock = make_controller(
            max_batch=256, max_delay_us=400.0, max_queue=2048
        )
        for _ in range(50):
            controller.observe_completion(50.0, packets=16)
            controller.observe_shed(1)
            roll(controller, clock)
        settings = controller.settings
        assert settings.max_batch == 256
        assert settings.max_delay_us == 400.0
        assert settings.max_queue == 2048


class TestControllerConvergence:
    def test_no_oscillation_on_a_step_load(self):
        """A step load that lands in the deadband after one backoff must
        converge: one breach, then identical settings every window after."""
        controller, clock = make_controller(slo_p99_us=1_000.0, headroom=0.7)

        def service_p99(settings: ControlSettings) -> float:
            # A synthetic server: latency scales with batch size; at the
            # initial 128-batch it breaches, at 64 it sits in the deadband.
            return settings.max_batch * 12.0

        history = []
        for _ in range(20):
            controller.observe_completion(
                service_p99(controller.settings), packets=64
            )
            history.append(roll(controller, clock))
        assert controller.breaches == 1           # the single step response
        assert len(set(history[1:])) == 1         # then a fixed point
        assert history[1].max_batch == 64
        assert controller.holds == 19

    def test_admission_budget_converges_after_shedding_stops(self):
        """Budget grows while healthy sheds persist, then freezes: growth is
        driven by sheds, so the fixed point is 'no sheds at low latency'."""
        controller, clock = make_controller()
        limits = []
        for window in range(12):
            controller.observe_completion(100.0, packets=32)
            if window < 4:  # sheds only in the first four windows
                controller.observe_shed(10)
            limits.append(roll(controller, clock).max_queue)
        assert limits[0] < limits[1] < limits[2] < limits[3]  # growing
        assert len(set(limits[3:])) == 1          # frozen once sheds stop

    def test_as_dict_exposes_decisions(self):
        controller, clock = make_controller()
        controller.observe_completion(5_000.0, packets=4)
        controller.observe_queue(17)
        roll(controller, clock)
        payload = controller.as_dict()
        assert payload["windows"] == 1
        assert payload["breaches"] == 1
        assert payload["settings"]["max_batch"] == 64
        assert payload["last_window"]["decision"] == "breach"
        assert payload["last_window"]["queue_peak"] == 17
        assert payload["last_window"]["completed_packets"] == 4


class TestControllerConfigValidation:
    @pytest.mark.parametrize("overrides", [
        {"slo_p99_us": 0.0},
        {"window_s": 0.0},
        {"headroom": 1.0},
        {"headroom": 0.0},
        {"min_batch": 0},
        {"min_batch": 2048},          # above max_batch
        {"min_delay_us": -1.0},
        {"min_queue": 0},
        {"queue_growth": 1.0},
        {"backoff": 1.0},
        {"backoff": 0.0},
    ])
    def test_rejects_invalid_configuration(self, overrides):
        with pytest.raises(ValueError):
            make_controller(**overrides)

    def test_initial_settings_are_clamped_into_the_envelope(self):
        controller = OverloadController(
            ControllerConfig(slo_p99_us=1_000.0, min_batch=16, min_queue=256),
            ControlSettings(max_batch=2, max_delay_us=9e9, max_queue=1),
        )
        assert controller.settings.max_batch == 16
        assert controller.settings.max_queue == 256
        assert controller.settings.max_delay_us == 5_000.0


# ---------------------------------------------------------------------------
# CacheTuner


class TestCacheTuner:
    def test_ignores_windows_with_too_few_probes(self):
        tuner = CacheTuner(min_probes=256)
        assert tuner.on_window(512, hits=10, misses=10) == 512
        assert tuner.resizes == 0

    def test_probes_double_while_marginal_gain_pays(self):
        tuner = CacheTuner(min_gain=0.02, min_probes=100)
        assert tuner.on_window(256, hits=500, misses=500) == 512   # probe up
        assert tuner.on_window(512, hits=600, misses=400) == 1024  # +0.10: pays
        assert tuner.on_window(1024, hits=700, misses=300) == 2048
        assert tuner.resizes == 3

    def test_unpaying_doubling_reverts_and_settles(self):
        tuner = CacheTuner(min_gain=0.02, min_probes=100)
        assert tuner.on_window(256, hits=500, misses=500) == 512
        # The doubling bought only +0.005 hit rate: undo it and settle.
        assert tuner.on_window(512, hits=505, misses=495) == 256
        assert tuner.on_window(256, hits=500, misses=500) == 256  # settled
        assert tuner.on_window(256, hits=510, misses=490) == 256
        assert tuner.as_dict()["mode"] == "settled"

    def test_hit_rate_collapse_reopens_probing(self):
        tuner = CacheTuner(min_gain=0.02, min_probes=100)
        tuner.on_window(256, hits=500, misses=500)
        tuner.on_window(512, hits=505, misses=495)   # settle back at 256
        # The workload shifted: the settled rate collapses, probing reopens.
        assert tuner.on_window(256, hits=200, misses=800) == 512
        assert tuner.as_dict()["mode"] == "probing"

    def test_capacity_never_exceeds_max(self):
        tuner = CacheTuner(max_capacity=512, min_probes=100)
        assert tuner.on_window(256, hits=500, misses=500) == 512
        # At the ceiling the gain paid, but there is nowhere left to grow.
        assert tuner.on_window(512, hits=900, misses=100) == 512
        assert tuner.as_dict()["mode"] == "settled"

    @pytest.mark.parametrize("kwargs", [
        {"min_capacity": 0},
        {"min_capacity": 2048, "max_capacity": 1024},
        {"min_gain": 0.0},
        {"min_gain": 1.0},
        {"min_probes": 0},
    ])
    def test_rejects_invalid_configuration(self, kwargs):
        with pytest.raises(ValueError):
            CacheTuner(**kwargs)
