"""Scenario-matrix regression suite for the trace-replay serving stack.

Every cell of {uniform, zipf-95, caida-like} × {cached, uncached} × {1, 4
shards} replays a generated trace (§5.1.1 regimes) through the corresponding
engine configuration and checks each packet's match against linear-search
ground truth — including while rules are inserted and removed between batches.
The ordering pin for the update path (eviction-before-ack: a remove followed
immediately by a classify must never serve the removed rule from the cache)
has its own regression tests at the bottom.
"""

from __future__ import annotations

import itertools

import pytest

from repro.engine import ClassificationEngine
from repro.rules.rule import Rule
from repro.serving import CachedEngine, ShardedEngine
from repro.workloads import build_scenario_engine, make_trace, replay_trace

#: {trace kind} × {uncached, cached} × {1 shard, 4 shards}.
MATRIX = list(itertools.product(["uniform", "zipf", "caida"], [0, 256], [1, 4]))

TRACE_PACKETS = 600
BATCH = 64


def ground_truth(rules, packet):
    """Linear search with the serving stack's total order (priority, rule_id)."""
    best = None
    for rule in rules:
        if rule.matches(packet) and (
            best is None or (rule.priority, rule.rule_id) < (best.priority, best.rule_id)
        ):
            best = rule
    return best


def result_key(rule):
    return None if rule is None else (rule.priority, rule.rule_id)


def assert_matches_ground_truth(rules, packets, results):
    cache: dict[tuple, tuple] = {}
    for packet, result in zip(packets, results):
        values = tuple(packet)
        if values not in cache:
            cache[values] = result_key(ground_truth(rules, packet))
        assert result_key(result.rule) == cache[values], (
            f"packet {values}: expected {cache[values]}, "
            f"got {result_key(result.rule)}"
        )


@pytest.fixture(scope="module")
def matrix_rules():
    from repro.rules import generate_classbench

    return generate_classbench("acl1", 400, seed=13)


@pytest.mark.parametrize("trace_kind,cache_size,shards", MATRIX)
def test_scenario_matrix_matches_linear_search(
    matrix_rules, trace_kind, cache_size, shards
):
    trace = make_trace(trace_kind, matrix_rules, TRACE_PACKETS, seed=3, skew=95)
    engine = build_scenario_engine(
        matrix_rules,
        shards=shards,
        cache_size=cache_size,
        classifier="tm",
        executor="serial",
        background_retraining=False,
    )
    try:
        packets = list(trace)
        results = []
        for report in engine.serve(packets, batch_size=BATCH):
            results.extend(report.results)
        assert len(results) == len(packets)
        assert_matches_ground_truth(matrix_rules.rules, packets, results)
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()


@pytest.mark.parametrize("cache_size,shards", [(256, 1), (256, 4), (0, 4)])
def test_scenario_matrix_with_interleaved_updates(matrix_rules, cache_size, shards):
    """Replay in batches with inserts/removes between them; every batch must
    match linear search over the rules live at that moment."""
    trace = make_trace("zipf", matrix_rules, TRACE_PACKETS, seed=5, skew=95)
    engine = build_scenario_engine(
        matrix_rules,
        shards=shards,
        cache_size=cache_size,
        classifier="tm",
        executor="serial",
        background_retraining=False,
    )
    try:
        live = {rule.rule_id: rule for rule in matrix_rules}
        packets = list(trace)
        next_id = 100_000
        for step, start in enumerate(range(0, len(packets), BATCH)):
            chunk = packets[start : start + BATCH]
            results = engine.classify_batch(chunk)
            assert_matches_ground_truth(list(live.values()), chunk, results)
            if step % 2 == 0:
                # Insert a top-priority rule pinning this batch's first packet:
                # the next batch must route those packets to it.
                values = tuple(chunk[0])
                rule = Rule(
                    tuple((v, v) for v in values), priority=0, rule_id=next_id
                )
                engine.insert(rule)
                live[rule.rule_id] = rule
                next_id += 1
            else:
                # Remove the winner the batch just observed (if any).
                winner = next(
                    (res.rule for res in results if res.rule is not None), None
                )
                if winner is not None:
                    assert engine.remove(winner.rule_id)
                    del live[winner.rule_id]
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()


def test_replay_trace_reports_cached_and_uncached_consistently(matrix_rules):
    trace = make_trace("zipf", matrix_rules, TRACE_PACKETS, seed=7, skew=95)
    uncached = build_scenario_engine(matrix_rules, shards=1, classifier="tm")
    cached = build_scenario_engine(
        matrix_rules, shards=1, cache_size=512, classifier="tm"
    )
    r_uncached = replay_trace(uncached, trace, batch_size=BATCH)
    r_cached = replay_trace(cached, trace, batch_size=BATCH)
    assert r_uncached.matched == r_cached.matched
    assert r_uncached.hit_rate == 0.0
    assert r_cached.hit_rate > 0.5
    assert r_cached.cache_size == 512
    for report in (r_uncached, r_cached):
        assert report.packets == TRACE_PACKETS
        assert report.throughput_pps > 0
        assert report.latency_p99_ns >= report.latency_p50_ns > 0
        assert report.modelled_latency_ns > 0
    # The cache-aware model prices hits below the slow path.
    assert r_cached.modelled_latency_ns < r_uncached.modelled_latency_ns


def test_replay_cache_stats_are_windowed_per_replay(matrix_rules):
    """Replaying twice on one warm engine: the second report's counters cover
    only the second replay, and its embedded cache dict agrees with the
    top-level hit rate (no lifetime/window mix in one payload)."""
    trace = make_trace("zipf", matrix_rules, TRACE_PACKETS, seed=9, skew=95)
    engine = build_scenario_engine(
        matrix_rules, shards=1, cache_size=512, classifier="tm"
    )
    first = replay_trace(engine, trace, batch_size=BATCH)
    second = replay_trace(engine, trace, batch_size=BATCH)
    assert second.cache["hits"] + second.cache["misses"] == TRACE_PACKETS
    assert second.cache["hit_rate"] == pytest.approx(second.hit_rate)
    # The cache is warm on the second pass, so it hits strictly more.
    assert second.hit_rate > first.hit_rate


class TestEvictionBeforeAck:
    """Regression pins for the UpdateQueue consistency contract (§3.9 +
    flowcache docs): remove/insert must evict stale cached results before the
    update call returns."""

    def test_remove_then_classify_never_serves_removed_rule(self, matrix_rules):
        with ShardedEngine.build(
            matrix_rules,
            shards=2,
            classifier="tm",
            executor="serial",
            background_retraining=False,
        ) as sharded:
            cached = CachedEngine(sharded, capacity=1024)
            packets = matrix_rules.sample_packets(64, seed=21)
            cached.classify_batch(packets)  # warm the cache
            for packet in packets:
                winner = cached.classify(packet)
                if winner is None:
                    continue
                assert sharded.remove(winner.rule_id)
                # Immediately after the ack: the removed rule must be gone,
                # even though the pre-remove classify cached it.
                after = cached.classify(packet)
                assert result_key(after) != result_key(winner)

    def test_insert_then_classify_sees_new_rule(self, matrix_rules):
        engine = ClassificationEngine.build(matrix_rules, classifier="tm")
        cached = CachedEngine(engine, capacity=1024)
        packet = next(
            p
            for p in matrix_rules.sample_packets(50, seed=23)
            if (w := engine.classify(p)) is not None and w.priority > 0
        )
        cached.classify(packet)  # cache the old winner
        override = Rule(
            tuple((v, v) for v in tuple(packet)), priority=0, rule_id=200_000
        )
        cached.insert(override)
        after = cached.classify(packet)
        assert after is not None and after.priority == 0

    def test_listener_fires_before_remove_returns(self, matrix_rules):
        """The ordering itself: by the time remove() returns, the queue has
        already notified its listeners (eviction precedes the ack)."""
        events: list[tuple[str, object]] = []
        with ShardedEngine.build(
            matrix_rules,
            shards=2,
            classifier="tm",
            executor="serial",
            background_retraining=False,
        ) as sharded:
            sharded.updates.add_listener(lambda op, payload: events.append((op, payload)))
            rule_id = matrix_rules.rules[0].rule_id
            assert sharded.remove(rule_id)
            assert events == [("remove", rule_id)]
            new_rule = Rule(
                tuple(matrix_rules.rules[0].ranges), priority=1, rule_id=300_000
            )
            sharded.insert(new_rule)
            assert events[-1][0] == "insert" and events[-1][1].rule_id == 300_000
