"""End-to-end tests for the NuevoMatch classifier."""

import pytest

from repro.classifiers import CutSplitClassifier, TupleMergeClassifier
from repro.core.config import NuevoMatchConfig, RQRMIConfig
from repro.core.nuevomatch import NuevoMatch
from _helpers import fast_nm_config


class TestBuild:
    def test_builds_with_registry_name(self, acl_small):
        nm = NuevoMatch.build(acl_small, remainder_classifier="tm", config=fast_nm_config())
        assert nm.remainder.name == "tm"

    def test_builds_with_class(self, acl_small):
        nm = NuevoMatch.build(
            acl_small, remainder_classifier=CutSplitClassifier, config=fast_nm_config()
        )
        assert nm.remainder.name == "cs"

    def test_unknown_remainder_name_rejected(self, acl_small):
        with pytest.raises(ValueError):
            NuevoMatch.build(acl_small, remainder_classifier="bogus")

    def test_coverage_plus_remainder_is_total(self, nm_acl_medium, acl_medium):
        covered = sum(len(iset) for iset in nm_acl_medium.isets)
        assert covered + len(nm_acl_medium.partition.remainder) == len(acl_medium)
        assert nm_acl_medium.coverage == pytest.approx(covered / len(acl_medium))

    def test_min_coverage_threshold_limits_isets(self, acl_medium):
        strict = NuevoMatch.build(
            acl_medium, remainder_classifier="tm", config=fast_nm_config(min_coverage=0.25)
        )
        for iset in strict.isets:
            assert iset.coverage >= 0.25

    def test_max_isets_zero_falls_back_to_remainder_only(self, acl_small):
        config = fast_nm_config()
        config.max_isets = 0
        nm = NuevoMatch.build(acl_small, remainder_classifier="tm", config=config)
        assert nm.num_isets == 0
        assert nm.coverage == 0.0
        nm.verify(acl_small.sample_packets(50, seed=1))

    def test_remainder_params_forwarded(self, acl_small):
        nm = NuevoMatch.build(
            acl_small,
            remainder_classifier="tm",
            config=fast_nm_config(),
            collision_limit=10,
        )
        assert nm.remainder.collision_limit == 10


class TestCorrectness:
    def test_agrees_with_oracle_on_matching_packets(self, nm_acl_medium, acl_medium):
        assert nm_acl_medium.verify(acl_medium.sample_packets(300, seed=2)) == 300

    def test_agrees_with_oracle_on_random_packets(self, nm_acl_medium, acl_medium):
        import random

        rng = random.Random(3)
        for _ in range(150):
            packet = tuple(rng.randint(0, spec.max_value) for spec in acl_medium.schema)
            expected = acl_medium.match(packet)
            actual = nm_acl_medium.classify(packet)
            assert (expected is None) == (actual is None)
            if expected is not None:
                assert actual.priority == expected.priority

    def test_firewall_ruleset(self, fw_small):
        nm = NuevoMatch.build(fw_small, remainder_classifier="tm", config=fast_nm_config())
        nm.verify(fw_small.sample_packets(150, seed=4))

    def test_forwarding_ruleset(self, forwarding_small):
        nm = NuevoMatch.build(
            forwarding_small, remainder_classifier="tm", config=fast_nm_config(max_isets=3)
        )
        nm.verify(forwarding_small.sample_packets(150, seed=5))
        assert nm.coverage > 0.5

    def test_early_termination_does_not_change_results(self, acl_medium):
        with_et = NuevoMatch.build(
            acl_medium, remainder_classifier="tm", config=fast_nm_config()
        )
        config = fast_nm_config()
        config.early_termination = False
        without_et = NuevoMatch.build(acl_medium, remainder_classifier="tm", config=config)
        for packet in acl_medium.sample_packets(150, seed=6):
            a = with_et.classify(packet)
            b = without_et.classify(packet)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.priority == b.priority


class TestLookupDetails:
    def test_detailed_breakdown_populated(self, nm_acl_medium, acl_medium):
        packet = acl_medium.sample_packets(1, seed=7)[0]
        result, breakdown = nm_acl_medium.classify_detailed(packet)
        assert breakdown.inference_ops > 0
        assert breakdown.search_accesses >= nm_acl_medium.num_isets
        assert result.trace.model_accesses >= nm_acl_medium.num_isets

    def test_isets_only_lookup(self, nm_acl_medium, acl_medium):
        hits = 0
        for packet in acl_medium.sample_packets(100, seed=8):
            rule, trace = nm_acl_medium.classify_isets_only(packet)
            assert trace.model_accesses > 0
            if rule is not None:
                assert rule.matches(packet)
                hits += 1
        # Coverage is high, so most packets should be answered by the iSets.
        assert hits > 50


class TestFootprintAndStats:
    def test_rqrmi_models_are_small(self, nm_acl_medium):
        # The whole point: models for thousands of rules take a few KB.
        assert nm_acl_medium.rqrmi_size_bytes() < 64 * 1024

    def test_footprint_breakdown(self, nm_acl_medium):
        footprint = nm_acl_medium.memory_footprint()
        assert footprint.breakdown["rqrmi"] == nm_acl_medium.rqrmi_size_bytes()
        assert footprint.index_bytes == (
            footprint.breakdown["rqrmi"] + footprint.breakdown["remainder_index"]
        )

    def test_index_smaller_than_standalone_baseline(self, acl_medium, nm_acl_medium):
        baseline = TupleMergeClassifier.build(acl_medium)
        assert (
            nm_acl_medium.memory_footprint().index_bytes
            < baseline.memory_footprint().index_bytes
        )

    def test_statistics_keys(self, nm_acl_medium):
        stats = nm_acl_medium.statistics()
        for key in ("num_isets", "coverage", "remainder_rules", "rqrmi_bytes",
                    "remainder_classifier", "max_error", "build_seconds"):
            assert key in stats

    def test_error_threshold_respected_when_converged(self, acl_small):
        config = NuevoMatchConfig(
            max_isets=2,
            min_iset_coverage=0.05,
            rqrmi=RQRMIConfig(error_threshold=64, adam_epochs=80, initial_samples=256),
        )
        nm = NuevoMatch.build(acl_small, remainder_classifier="tm", config=config)
        for iset in nm.isets:
            if iset.model.report.converged:
                assert iset.model.max_error <= 64
