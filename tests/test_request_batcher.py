"""Deterministic unit tests for the request-coalescing policy.

The :class:`~repro.serving.server.RequestBatcher` policy core (submit /
due_in / take_batch) is a pure state machine over an injectable clock, so
every timing decision here is exact: batches close at *exactly* ``max_batch``
or *exactly* ``max_delay_us``, backpressure rejects at *exactly*
``max_queue``, and a scripted dispatcher drive shows no request is ever
dropped or answered twice.  The asyncio dispatcher loop is covered separately
(with real time) in ``tests/test_async_server.py``.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Future, InvalidStateError

import pytest

from repro.serving.server import (
    BatcherStats,
    PacketBudget,
    QueueFullError,
    RequestBatcher,
)


class FakeClock:
    """A manually advanced monotonic clock (seconds, like time.monotonic).

    Time accumulates in microseconds and converts to seconds once per read,
    so advancing 99us then 1us lands *exactly* on a 100us deadline instead of
    a float-summation hair before it.
    """

    def __init__(self):
        self.us = 0.0

    def __call__(self) -> float:
        return self.us / 1e6

    def advance_us(self, us: float) -> None:
        self.us += us


def make_batcher(**kwargs) -> tuple[RequestBatcher, FakeClock]:
    clock = FakeClock()
    defaults = dict(
        max_batch=4, max_delay_us=100.0, max_queue=6,
        clock=clock, future_factory=Future,
    )
    defaults.update(kwargs)
    return RequestBatcher(**defaults), clock


class TestBatchClosing:
    def test_batch_closes_at_exactly_max_batch(self):
        batcher, _clock = make_batcher(max_batch=4)
        for i in range(3):
            batcher.submit(i)
            # Below max_batch and no time has passed: the full delay remains.
            assert batcher.due_in() == pytest.approx(100.0 / 1e6)
        batcher.submit(3)
        assert batcher.due_in() == 0.0
        batch = batcher.take_batch()
        assert [p.payload for p in batch] == [0, 1, 2, 3]
        assert batcher.due_in() is None  # queue drained

    def test_batch_closes_at_exactly_max_delay(self):
        batcher, clock = make_batcher(max_delay_us=100.0)
        batcher.submit("a")
        clock.advance_us(99.0)
        remaining = batcher.due_in()
        assert remaining == pytest.approx(1.0 / 1e6)
        clock.advance_us(1.0)  # exactly max_delay_us since enqueue
        assert batcher.due_in() == 0.0
        batch = batcher.take_batch()
        assert [p.payload for p in batch] == ["a"]

    def test_delay_counts_from_oldest_request(self):
        batcher, clock = make_batcher(max_delay_us=100.0)
        batcher.submit("old")
        clock.advance_us(60.0)
        batcher.submit("new")
        # The batch closes when the *oldest* entry has waited 100us, i.e. in
        # 40us, not 100us from the second submit.
        assert batcher.due_in() == pytest.approx(40.0 / 1e6)
        clock.advance_us(40.0)
        assert [p.payload for p in batcher.take_batch()] == ["old", "new"]

    def test_zero_delay_closes_immediately(self):
        batcher, _clock = make_batcher(max_delay_us=0.0)
        batcher.submit("a")
        assert batcher.due_in() == 0.0

    def test_oversized_queue_closes_in_max_batch_chunks(self):
        batcher, _clock = make_batcher(max_batch=3, max_queue=10)
        for i in range(7):
            batcher.submit(i)
        assert [p.payload for p in batcher.take_batch()] == [0, 1, 2]
        assert [p.payload for p in batcher.take_batch()] == [3, 4, 5]
        assert [p.payload for p in batcher.take_batch()] == [6]
        assert batcher.take_batch() == []
        assert batcher.stats.batches == 3
        assert batcher.stats.max_batch_seen == 3


class TestBackpressure:
    def test_rejects_at_exactly_capacity(self):
        batcher, _clock = make_batcher(max_queue=6)
        for i in range(6):
            batcher.submit(i)
        with pytest.raises(QueueFullError):
            batcher.submit("overflow")
        assert batcher.stats.rejected == 1
        assert batcher.stats.requests == 6  # the rejection is not a request
        assert batcher.queue_depth == 6

    def test_capacity_frees_after_take_batch(self):
        batcher, _clock = make_batcher(max_batch=4, max_queue=6)
        for i in range(6):
            batcher.submit(i)
        with pytest.raises(QueueFullError):
            batcher.submit("overflow")
        batcher.take_batch()  # frees max_batch slots
        pending = batcher.submit("accepted")
        assert pending.payload == "accepted"
        assert batcher.stats.rejected == 1

    def test_closed_batcher_refuses_submissions(self):
        batcher, _clock = make_batcher()
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit("late")


class TestPacketWeightedAdmission:
    """``max_queue`` bounds *packets*, not requests: a request costs its
    ``weight`` rows against the shared budget (a 10k-row batch can no longer
    hide in one queue slot)."""

    def test_rejects_at_exactly_the_packet_boundary(self):
        batcher, _clock = make_batcher(max_queue=10)
        batcher.submit("a", weight=4)
        batcher.submit("b", weight=6)  # exactly 10 packets queued: admitted
        assert batcher.queue_depth == 2
        assert batcher.queued_packets == 10
        with pytest.raises(QueueFullError):
            batcher.submit("c", weight=1)
        assert batcher.stats.rejected == 1
        assert batcher.stats.requests == 2
        # max_queue_depth is packet-denominated, like max_queue itself.
        assert batcher.stats.max_queue_depth == 10

    def test_take_batch_frees_the_batch_weight(self):
        batcher, _clock = make_batcher(max_batch=4, max_queue=10)
        batcher.submit("a", weight=4)
        batcher.submit("b", weight=6)
        with pytest.raises(QueueFullError):
            batcher.submit("c", weight=1)
        batcher.take_batch()  # both requests leave: all 10 packets free
        assert batcher.queued_packets == 0
        batcher.submit("d", weight=10)
        assert batcher.budget.in_flight == 10

    def test_oversized_request_admits_only_into_an_empty_queue(self):
        """Progress guarantee: one batch wider than the whole budget must
        still be servable — it admits when nothing is queued, and blocks
        everything else until its batch is taken."""
        batcher, _clock = make_batcher(max_queue=4)
        batcher.submit("giant", weight=1000)
        with pytest.raises(QueueFullError):
            batcher.submit("next", weight=1)
        batcher.take_batch()
        batcher.submit("next", weight=1)

    def test_shared_budget_couples_two_admission_points(self):
        """The server shares one budget between the JSON batcher and the
        binary path; load admitted on either side sheds the other."""
        budget = PacketBudget(10)
        batcher, _clock = make_batcher(budget=budget)
        budget.try_acquire(8)  # a binary batch in flight
        batcher.submit("a", weight=2)
        with pytest.raises(QueueFullError):
            batcher.submit("b", weight=1)
        budget.release(8)  # the binary batch completes
        batcher.submit("b", weight=7)

    def test_max_queue_is_a_live_view_of_the_budget_limit(self):
        batcher, _clock = make_batcher(max_queue=10)
        assert batcher.max_queue == 10
        batcher.max_queue = 4  # what the overload controller does per window
        assert batcher.budget.limit == 4
        batcher.submit("a", weight=4)
        with pytest.raises(QueueFullError):
            batcher.submit("b", weight=1)
        with pytest.raises(ValueError):
            batcher.max_queue = 0

    def test_default_weight_matches_legacy_request_counting(self):
        batcher, _clock = make_batcher(max_queue=3)
        for i in range(3):
            batcher.submit(i)
        with pytest.raises(QueueFullError):
            batcher.submit("overflow")


class TestNoDropNoDouble:
    def test_scripted_drive_completes_every_request_exactly_once(self):
        """Drive a scripted arrival pattern through the policy the way the
        dispatcher would; every submitted request is answered exactly once."""
        batcher, clock = make_batcher(max_batch=4, max_delay_us=100.0,
                                      max_queue=100)
        submitted = {}
        answered = []

        def dispatch_ready():
            while batcher.due_in() == 0.0:
                for pending in batcher.take_batch():
                    # A double-completion would raise InvalidStateError here.
                    pending.future.set_result(f"result-{pending.payload}")
                    answered.append(pending.payload)

        serial = 0
        # Bursts of varying size with gaps longer and shorter than max_delay.
        for burst, gap_us in [(1, 150), (4, 10), (9, 0), (2, 400), (3, 99)]:
            for _ in range(burst):
                submitted[serial] = batcher.submit(serial)
                serial += 1
                dispatch_ready()
            clock.advance_us(gap_us)
            dispatch_ready()
        # Flush the tail exactly like the dispatcher's close path.
        batcher.close()
        while batcher.queue_depth:
            for pending in batcher.take_batch():
                pending.future.set_result(f"result-{pending.payload}")
                answered.append(pending.payload)

        assert sorted(answered) == sorted(submitted)  # nothing dropped
        assert len(answered) == len(set(answered))    # nothing answered twice
        for payload, pending in submitted.items():
            assert pending.future.done()
            assert pending.future.result() == f"result-{payload}"
            with pytest.raises(InvalidStateError):
                pending.future.set_result("again")
        stats = batcher.stats
        assert stats.requests == len(submitted)
        assert stats.coalesced == len(submitted)
        assert stats.mean_batch_size == pytest.approx(
            stats.coalesced / stats.batches
        )

    def test_fifo_order_is_preserved_across_batches(self):
        batcher, _clock = make_batcher(max_batch=3, max_queue=50)
        for i in range(10):
            batcher.submit(i)
        order = []
        while batcher.queue_depth:
            order.extend(p.payload for p in batcher.take_batch())
        assert order == list(range(10))


class TestAsyncDispatcher:
    """The asyncio loop on top of the policy (real clock, loose timing)."""

    def test_dispatcher_completes_futures_and_drains_on_close(self):
        async def scenario():
            batcher = RequestBatcher(max_batch=4, max_delay_us=1000.0,
                                     max_queue=64)
            calls = []

            async def process(payloads):
                calls.append(list(payloads))
                return [p * 10 for p in payloads]

            runner = asyncio.get_running_loop().create_task(
                batcher.run(process)
            )
            pendings = [batcher.submit(i) for i in range(6)]
            results = await asyncio.gather(
                *(asyncio.wait_for(p.future, timeout=5) for p in pendings)
            )
            assert results == [0, 10, 20, 30, 40, 50]
            # One full batch of 4, then the 2-entry tail on delay expiry.
            assert [len(c) for c in calls] == [4, 2]
            batcher.close()
            await asyncio.wait_for(runner, timeout=5)

        asyncio.run(scenario())

    def test_dispatcher_propagates_processing_errors(self):
        async def scenario():
            batcher = RequestBatcher(max_batch=2, max_delay_us=0.0,
                                     max_queue=8)

            async def process(payloads):
                raise RuntimeError("engine exploded")

            runner = asyncio.get_running_loop().create_task(
                batcher.run(process)
            )
            pending = batcher.submit("x")
            with pytest.raises(RuntimeError, match="engine exploded"):
                await asyncio.wait_for(pending.future, timeout=5)
            batcher.close()
            await asyncio.wait_for(runner, timeout=5)

        asyncio.run(scenario())

    def test_close_flushes_partial_batch_without_waiting_out_delay(self):
        async def scenario():
            # A delay far longer than the test: only the close-flush path can
            # complete the future in time.
            batcher = RequestBatcher(max_batch=64, max_delay_us=60_000_000.0,
                                     max_queue=8)

            async def process(payloads):
                return list(payloads)

            runner = asyncio.get_running_loop().create_task(
                batcher.run(process)
            )
            pending = batcher.submit("tail")
            batcher.close()
            assert await asyncio.wait_for(pending.future, timeout=5) == "tail"
            await asyncio.wait_for(runner, timeout=5)

        asyncio.run(scenario())


class TestValidationAndStats:
    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0},
        {"max_delay_us": -1.0},
        {"max_queue": 0},
    ])
    def test_rejects_invalid_configuration(self, kwargs):
        with pytest.raises(ValueError):
            make_batcher(**kwargs)

    def test_stats_dict_shape(self):
        stats = BatcherStats()
        assert stats.mean_batch_size == 0.0
        payload = stats.as_dict()
        assert set(payload) == {
            "requests", "rejected", "batches", "mean_batch_size",
            "max_batch_seen", "max_queue_depth",
        }
