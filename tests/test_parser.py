"""Tests for the ClassBench text format parser/writer."""

import io

import pytest

from repro.rules import generate_classbench
from repro.rules.parser import (
    parse_classbench_lines,
    parse_classbench_file,
    write_classbench_file,
)

SAMPLE = """
# a comment line
@10.0.1.0/24 192.168.0.0/16 0 : 65535 80 : 80 0x06/0xFF
@0.0.0.0/0   10.1.0.0/16    1024 : 65535 53 : 53 0x11/0xFF
@172.16.5.4/32 0.0.0.0/0    0 : 65535 0 : 65535 0x00/0x00
"""


class TestParsing:
    def test_parses_three_rules(self):
        rs = parse_classbench_lines(SAMPLE.splitlines())
        assert len(rs) == 3

    def test_prefixes_become_ranges(self):
        rs = parse_classbench_lines(SAMPLE.splitlines())
        src_lo, src_hi = rs[0].ranges[0]
        assert src_hi - src_lo + 1 == 256  # a /24
        assert rs[1].ranges[0] == (0, 0xFFFFFFFF)  # a /0 wildcard

    def test_ports_and_protocol(self):
        rs = parse_classbench_lines(SAMPLE.splitlines())
        assert rs[0].ranges[3] == (80, 80)
        assert rs[1].ranges[2] == (1024, 65535)
        assert rs[0].ranges[4] == (6, 6)
        assert rs[2].ranges[4] == (0, 255)  # mask 0x00 => wildcard

    def test_priorities_follow_file_order(self):
        rs = parse_classbench_lines(SAMPLE.splitlines())
        assert [r.priority for r in rs] == [0, 1, 2]

    def test_bad_line_raises_with_line_number(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_classbench_lines(["not a rule"])

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "rules.txt"
        path.write_text(SAMPLE)
        rs = parse_classbench_file(path)
        assert len(rs) == 3
        assert rs.name == "rules"


class TestWriting:
    def test_roundtrip_preserves_semantics(self, tmp_path):
        original = generate_classbench("acl1", 200, seed=5)
        path = tmp_path / "acl.txt"
        write_classbench_file(original, path)
        parsed = parse_classbench_file(path)
        assert len(parsed) == len(original)
        # Same match decision for packets sampled from the original rules.
        for packet in original.sample_packets(100, seed=1):
            a = original.match(packet)
            b = parsed.match(packet)
            assert (a is None) == (b is None)
            if a is not None and b is not None:
                assert a.ranges == b.ranges

    def test_write_to_stream(self):
        original = generate_classbench("ipc2", 20, seed=5)
        buffer = io.StringIO()
        write_classbench_file(original, buffer)
        text = buffer.getvalue()
        assert text.count("\n") == 20
        assert text.startswith("@")

    def test_write_rejects_non_five_tuple(self, forwarding_small, tmp_path):
        with pytest.raises(ValueError):
            write_classbench_file(forwarding_small, tmp_path / "x.txt")
