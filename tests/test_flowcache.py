"""Unit tests for the exact-match flow cache (repro.serving.flowcache)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ClassificationEngine
from repro.rules.rule import Rule
from repro.serving import CachedEngine, FlowCache, ShardedEngine
from repro.traffic import generate_zipf_trace


def keys_of(*rows: tuple[int, ...]) -> np.ndarray:
    return np.asarray(rows, dtype=np.uint64)


def rule_over(values: tuple[int, ...], priority: int, rule_id: int) -> Rule:
    """An exact-match rule covering exactly one five-tuple."""
    return Rule(tuple((v, v) for v in values), priority=priority, rule_id=rule_id)


class TestFlowCache:
    def test_probe_miss_then_fill_then_hit(self):
        cache = FlowCache(8, num_fields=2)
        keys = keys_of((1, 2), (3, 4))
        winners, mask = cache.probe_batch(keys)
        assert not mask.any() and winners == [None, None]
        rule = Rule(((0, 10), (0, 10)), priority=1, rule_id=5)
        cache.fill_batch(keys, [rule, None])
        winners, mask = cache.probe_batch(keys)
        assert mask.all()
        assert winners[0] is rule
        assert winners[1] is None  # cached no-match, distinguished by the mask
        assert cache.stats.hits == 2 and cache.stats.misses == 2

    def test_duplicate_keys_collapse_to_one_entry(self):
        cache = FlowCache(8, num_fields=2)
        keys = keys_of((1, 1), (1, 1), (1, 1))
        cache.fill_batch(keys, [None, None, None])
        assert len(cache) == 1

    def test_capacity_bound_and_bulk_lru_eviction(self):
        cache = FlowCache(4, num_fields=1)
        cache.fill_batch(keys_of((0,), (1,), (2,), (3,)), [None] * 4)
        # Touch 2 and 3: 0 and 1 become the LRU pair.
        cache.probe_batch(keys_of((2,), (3,)))
        cache.fill_batch(keys_of((4,), (5,)), [None, None])
        assert len(cache) == 4
        _, mask = cache.probe_batch(keys_of((0,), (1,), (2,), (3,), (4,), (5,)))
        assert list(mask) == [False, False, True, True, True, True]
        assert cache.stats.evictions == 2

    def test_overfull_batch_keeps_most_recent_capacity_entries(self):
        cache = FlowCache(3, num_fields=1)
        cache.fill_batch(keys_of(*[(i,) for i in range(10)]), [None] * 10)
        assert len(cache) == 3
        _, mask = cache.probe_batch(keys_of((7,), (8,), (9,), (0,)))
        assert list(mask) == [True, True, True, False]

    def test_zero_capacity_disables_cache(self):
        cache = FlowCache(0, num_fields=2)
        keys = keys_of((1, 2))
        cache.fill_batch(keys, [None])
        _, mask = cache.probe_batch(keys)
        assert not mask.any()
        assert len(cache) == 0

    def test_refill_refreshes_existing_entry(self):
        cache = FlowCache(4, num_fields=1)
        old = Rule(((0, 9),), priority=2, rule_id=1)
        new = Rule(((0, 9),), priority=1, rule_id=2)
        cache.fill_batch(keys_of((5,)), [old])
        cache.fill_batch(keys_of((5,)), [new])
        winners, mask = cache.probe_batch(keys_of((5,)))
        assert mask.all() and winners[0] is new
        assert len(cache) == 1

    def test_invalidate_insert_evicts_covered_flows_and_stale_no_match(self):
        cache = FlowCache(8, num_fields=2)
        inside = (3, 3)
        outside = (9, 9)
        cache.fill_batch(keys_of(inside, outside), [None, None])
        evicted = cache.invalidate_insert(
            Rule(((0, 5), (0, 5)), priority=0, rule_id=77)
        )
        assert evicted == 1
        _, mask = cache.probe_batch(keys_of(inside, outside))
        assert list(mask) == [False, True]
        assert cache.stats.invalidations == 1

    def test_invalidate_insert_evicts_previous_version_by_rule_id(self):
        cache = FlowCache(8, num_fields=1)
        old_version = Rule(((40, 50),), priority=1, rule_id=3)
        cache.fill_batch(keys_of((45,)), [old_version])
        # Same id re-inserted with a disjoint matching set: the cached winner
        # is a stale version even though the key is outside the new ranges.
        evicted = cache.invalidate_insert(Rule(((0, 5),), priority=1, rule_id=3))
        assert evicted == 1
        assert len(cache) == 0

    def test_invalidate_remove_evicts_only_that_winner(self):
        cache = FlowCache(8, num_fields=1)
        a = Rule(((0, 9),), priority=1, rule_id=1)
        b = Rule(((10, 19),), priority=2, rule_id=2)
        cache.fill_batch(keys_of((4,), (14,), (25,)), [a, b, None])
        assert cache.invalidate_remove(1) == 1
        _, mask = cache.probe_batch(keys_of((4,), (14,), (25,)))
        assert list(mask) == [False, True, True]

    def test_clear_counts_invalidations(self):
        cache = FlowCache(8, num_fields=1)
        cache.fill_batch(keys_of((1,), (2,)), [None, None])
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.stats.invalidations == 2

    def test_statistics_and_footprint(self):
        cache = FlowCache(16, num_fields=5)
        stats = cache.statistics()
        assert stats["capacity"] == 16
        assert stats["entries"] == 0
        assert stats["footprint_bytes"] == cache.footprint_bytes() > 0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            FlowCache(-1, num_fields=5)

    def test_stale_epoch_fill_is_dropped(self):
        """A fill computed before an invalidation must not be cached: the
        winners may predate an acknowledged update (the probe-miss → update →
        fill race)."""
        cache = FlowCache(8, num_fields=1)
        keys = keys_of((4,))
        cache.probe_batch(keys)  # miss; slow path starts computing
        epoch = cache.epoch
        # An update is applied and acknowledged mid-classification.  Nothing
        # was cached for the flow, so the invalidation evicts zero entries —
        # but it must still fence the in-flight fill.
        assert cache.invalidate_remove(rule_id=1) == 0
        cache.fill_batch(keys, [Rule(((0, 9),), priority=1, rule_id=1)], epoch=epoch)
        _, mask = cache.probe_batch(keys)
        assert not mask.any()
        assert cache.stats.dropped_fills == 1
        # A fill with the current epoch goes through.
        cache.fill_batch(keys, [None], epoch=cache.epoch)
        assert len(cache) == 1


class TestResizeAndHitWindow:
    def test_shrink_keeps_the_most_recently_used_entries(self):
        cache = FlowCache(8, num_fields=1)
        cache.fill_batch(keys_of(*[(i,) for i in range(8)]), [None] * 8)
        # Touch 4..7: 0..3 become the LRU half.
        cache.probe_batch(keys_of((4,), (5,), (6,), (7,)))
        evicted = cache.resize(4)
        assert evicted == 4
        assert cache.capacity == 4
        assert len(cache) == 4
        _, mask = cache.probe_batch(
            keys_of(*[(i,) for i in range(8)])
        )
        assert list(mask) == [False] * 4 + [True] * 4
        assert cache.stats.evictions == 4

    def test_shrink_does_not_bump_the_epoch(self):
        """A resize changes no rule state, so an in-flight slow-path fill
        fenced on the pre-resize epoch must still land."""
        cache = FlowCache(8, num_fields=1)
        epoch = cache.epoch
        cache.resize(4)
        assert cache.epoch == epoch
        cache.fill_batch(keys_of((1,)), [None], epoch=epoch)
        _, mask = cache.probe_batch(keys_of((1,)))
        assert mask.all()
        assert cache.stats.dropped_fills == 0

    def test_grow_keeps_everything_and_opens_new_slots(self):
        cache = FlowCache(2, num_fields=1)
        cache.fill_batch(keys_of((0,), (1,)), [None, None])
        assert cache.resize(4) == 0
        cache.fill_batch(keys_of((2,), (3,)), [None, None])
        assert len(cache) == 4
        _, mask = cache.probe_batch(keys_of((0,), (1,), (2,), (3,)))
        assert mask.all()

    def test_resize_preserves_winner_identity_and_lru_order(self):
        cache = FlowCache(4, num_fields=1)
        rule = rule_over((7,), priority=1, rule_id=9)
        cache.fill_batch(keys_of((7,), (8,)), [rule, None])
        cache.probe_batch(keys_of((7,)))  # 8 is now the LRU entry
        cache.resize(8)
        winners, mask = cache.probe_batch(keys_of((7,), (8,)))
        assert mask.all() and winners[0] is rule and winners[1] is None
        # The combined probe gave both entries the same LRU tick; re-touch
        # (7,) alone so (8,) is strictly the LRU tail before the fill.
        cache.probe_batch(keys_of((7,)))
        # Fill 7 fresh entries: the lone eviction must be the old LRU tail,
        # proving last-used clocks survived the array rebuild.
        cache.fill_batch(keys_of(*[(i,) for i in range(10, 17)]), [None] * 7)
        _, mask = cache.probe_batch(keys_of((7,), (8,)))
        assert list(mask) == [True, False]

    def test_resize_to_zero_disables_and_back(self):
        cache = FlowCache(4, num_fields=1)
        cache.fill_batch(keys_of((1,)), [None])
        assert cache.resize(0) == 1
        _, mask = cache.probe_batch(keys_of((1,)))
        assert not mask.any()
        cache.resize(4)
        cache.fill_batch(keys_of((1,)), [None])
        _, mask = cache.probe_batch(keys_of((1,)))
        assert mask.all()

    def test_resize_rejects_negative_and_noops_on_same_capacity(self):
        cache = FlowCache(4, num_fields=1)
        with pytest.raises(ValueError):
            cache.resize(-1)
        assert cache.resize(4) == 0

    def test_take_hit_window_drains_without_touching_stats(self):
        cache = FlowCache(4, num_fields=1)
        cache.fill_batch(keys_of((1,)), [None])
        cache.probe_batch(keys_of((1,), (2,)))  # one hit, one miss
        assert cache.take_hit_window() == (1, 1)
        assert cache.take_hit_window() == (0, 0)  # drained
        cache.probe_batch(keys_of((1,)))
        assert cache.take_hit_window() == (1, 0)
        # Aggregate counters keep the full history.
        assert cache.stats.hits == 2 and cache.stats.misses == 1


class TestCachedEngine:
    @pytest.fixture(scope="class")
    def engine(self, acl_small):
        return ClassificationEngine.build(acl_small, classifier="tm")

    def test_matches_identical_to_uncached(self, acl_small, engine):
        cached = CachedEngine(engine, capacity=256)
        trace = generate_zipf_trace(acl_small, 1500, top3_share=95, seed=3)
        packets = list(trace)
        expected = engine.classify_batch(packets)
        # Two passes: the second is served mostly from the cache.
        for _ in range(2):
            actual = cached.classify_batch(packets)
            for exp, act in zip(expected, actual):
                exp_key = exp.rule and (exp.rule.priority, exp.rule.rule_id)
                act_key = act.rule and (act.rule.priority, act.rule.rule_id)
                assert exp_key == act_key
        assert cached.hit_rate() > 0.0

    def test_hit_results_carry_cache_trace(self, acl_small, engine):
        cached = CachedEngine(engine, capacity=64)
        packet = acl_small.sample_packets(1, seed=5)[0]
        first = cached.classify_traced(packet)
        second = cached.classify_traced(packet)
        assert second.rule == first.rule
        assert second.trace.hash_ops == 1 and second.trace.index_accesses == 1
        assert second.trace is not first.trace

    def test_serve_batches_and_statistics(self, acl_small, engine):
        cached = CachedEngine(engine, capacity=128)
        trace = generate_zipf_trace(acl_small, 600, top3_share=95, seed=8)
        matched = sum(report.matched for report in cached.serve(trace, batch_size=50))
        assert matched > 0
        stats = cached.statistics()
        assert stats["name"] == "cached"
        assert stats["cache"]["capacity"] == 128
        assert stats["engine"]["name"] == "tm"

    def test_capacity_bound_holds_under_serving(self, acl_small, engine):
        cached = CachedEngine(engine, capacity=32)
        trace = generate_zipf_trace(acl_small, 800, top3_share=80, seed=2)
        for report in cached.serve(trace, batch_size=64):
            assert len(cached.cache) <= 32

    def test_sharded_updates_invalidate_through_queue(self, acl_small):
        with ShardedEngine.build(
            acl_small,
            shards=2,
            classifier="tm",
            executor="serial",
            background_retraining=False,
        ) as sharded:
            cached = CachedEngine(sharded, capacity=256)
            packet = acl_small.sample_packets(1, seed=11)[0]
            winner = cached.classify(packet)
            assert winner is not None
            # Update through the *wrapped* engine: the queue listener must
            # still evict before the remove call returns.
            assert sharded.remove(winner.rule_id)
            after = cached.classify(packet)
            assert after is None or after.rule_id != winner.rule_id

    def test_close_unregisters_queue_listener(self, acl_small):
        with ShardedEngine.build(
            acl_small,
            shards=2,
            classifier="tm",
            executor="serial",
            background_retraining=False,
        ) as sharded:
            cached = CachedEngine(sharded, capacity=64)
            packet = acl_small.sample_packets(1, seed=17)[0]
            cached.classify(packet)
            cached.close()
            before = cached.cache.stats.invalidations
            winner = sharded.classify(packet)
            if winner is not None:
                sharded.remove(winner.rule_id)
            # The closed wrapper's cache no longer receives invalidations.
            assert cached.cache.stats.invalidations == before

    def test_plain_engine_insert_invalidates_inline(self, acl_small):
        engine = ClassificationEngine.build(acl_small, classifier="tm")
        cached = CachedEngine(engine, capacity=256)
        # Pick a packet whose winner can be beaten by a priority-0 override.
        packet = next(
            p
            for p in acl_small.sample_packets(50, seed=13)
            if (winner := engine.classify(p)) is not None and winner.priority > 0
        )
        before = cached.classify(packet)
        assert before is not None and before.priority > 0
        override = rule_over(tuple(packet), priority=0, rule_id=50_000)
        cached.insert(override)
        after = cached.classify(packet)
        assert after is not None and after.priority == 0
