"""Tests for binary wire protocol v2: codecs, negotiation, fallback, and the
JSON-vs-binary equivalence property.

The codec tests are pure (no sockets).  The end-to-end tests drive a live
:class:`AsyncServer`; the central property mirrors docs/PROTOCOL.md's promise
that protocol choice is *invisible* in the results — for arbitrary batches, a
v2 connection and a JSON connection return identical
``(matched, rule_id, priority)`` triples.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ClassificationEngine
from repro.rules.rule import Rule, RuleSet
from repro.serving import AsyncClient, AsyncServer, ServerError
from repro.serving import wire

VALUES = st.integers(min_value=0, max_value=7)
PACKETS = st.tuples(VALUES, VALUES, VALUES, VALUES, VALUES)
RANGES = st.tuples(
    *[st.tuples(VALUES, VALUES).map(lambda pair: tuple(sorted(pair)))] * 5
)

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
I64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)

SCENARIO_DEADLINE = 60.0


class TestCodecs:
    @settings(max_examples=50)
    @given(
        request_id=U64,
        rows=st.lists(
            st.lists(U64, min_size=1, max_size=8), min_size=1, max_size=20
        ).filter(lambda rows: len({len(row) for row in rows}) == 1),
    )
    def test_request_round_trip(self, request_id, rows):
        block = np.array(rows, dtype=np.uint64)
        payload = wire.encode_classify_request(request_id, block)
        decoded_id, decoded = wire.decode_classify_request(payload)
        assert decoded_id == request_id
        np.testing.assert_array_equal(decoded, block)

    @settings(max_examples=50)
    @given(
        request_id=U64,
        pairs=st.lists(st.tuples(I64, I64), min_size=0, max_size=20),
    )
    def test_response_round_trip(self, request_id, pairs):
        rule_ids = np.array([p[0] for p in pairs], dtype=np.int64)
        priorities = np.array([p[1] for p in pairs], dtype=np.int64)
        payload = wire.encode_classify_response(request_id, rule_ids, priorities)
        decoded_id, status, decoded_ids, decoded_pris = (
            wire.decode_classify_response(payload)
        )
        assert decoded_id == request_id
        assert status == wire.STATUS_OK
        np.testing.assert_array_equal(decoded_ids, rule_ids)
        np.testing.assert_array_equal(decoded_pris, priorities)

    def test_error_response_round_trip(self):
        payload = wire.encode_error_response(9, wire.STATUS_OVERLOADED)
        request_id, status, rule_ids, priorities = wire.decode_classify_response(
            payload
        )
        assert (request_id, status) == (9, wire.STATUS_OVERLOADED)
        assert len(rule_ids) == 0 and len(priorities) == 0
        with pytest.raises(ValueError, match="non-OK"):
            wire.encode_error_response(9, wire.STATUS_OK)

    def test_decode_rejects_malformed_payloads(self):
        good = wire.encode_classify_request(1, np.ones((2, 5), dtype=np.uint64))
        with pytest.raises(wire.WireError, match="shorter"):
            wire.decode_classify_request(good[:4])
        with pytest.raises(wire.WireError, match="length"):
            wire.decode_classify_request(good + b"\x00" * 8)
        with pytest.raises(wire.WireError, match="unknown binary request op"):
            wire.decode_classify_request(b"\x7f" + good[1:])
        response = wire.encode_classify_response(
            1, np.zeros(2, dtype=np.int64), np.zeros(2, dtype=np.int64)
        )
        with pytest.raises(wire.WireError, match="shorter"):
            wire.decode_classify_response(response[:4])
        with pytest.raises(wire.WireError, match="length"):
            wire.decode_classify_response(response[:-8])
        with pytest.raises(wire.WireError, match="unknown binary response op"):
            wire.decode_classify_response(b"\x7f" + response[1:])

    def test_packet_block_validation(self):
        with pytest.raises(ValueError, match="at least one packet"):
            wire.packet_block([])
        with pytest.raises(ValueError, match="same width"):
            wire.packet_block([(1, 2, 3), (1, 2)])
        with pytest.raises(ValueError, match="non-negative"):
            wire.packet_block([(1, -2, 3)])
        block = wire.packet_block([(1, 2, 3), (4, 5, 6)])
        assert block.dtype == np.dtype("<u8") and block.shape == (2, 3)
        passthrough = wire.packet_block(np.ones((3, 5), dtype=np.int64))
        assert passthrough.dtype == np.dtype("<u8")

    def test_frame_magic_disjoint_from_json_lengths(self):
        # A v1 frame's first byte is its length's high byte; the 4 MiB cap
        # keeps it 0x00, so 0xB2 can never be mistaken for JSON.
        assert (wire.MAX_JSON_FRAME >> 24) == 0
        assert wire.FRAME_MAGIC > 0


def _tiny_engine(rules):
    return ClassificationEngine.build(
        RuleSet(list(rules), name="wire"), classifier="tss"
    )


@st.composite
def initial_rules(draw, min_rules=2, max_rules=5):
    ranges = draw(st.lists(RANGES, min_size=min_rules, max_size=max_rules))
    return [Rule(r, priority=index, rule_id=index) for index, r in enumerate(ranges)]


class TestNegotiation:
    def test_hello_upgrades_connection(self, acl_small):
        async def scenario():
            engine = ClassificationEngine.build(acl_small, classifier="tm")
            async with AsyncServer(engine) as server:
                await server.start("127.0.0.1", 0)
                async with await AsyncClient.connect(
                    server.host, server.port
                ) as client:
                    assert client.wire_v2
                    packets = acl_small.sample_packets(8, seed=5)
                    responses = await client.classify_batch(packets)
                    assert len(responses) == 8
                    assert all(r["matched"] for r in responses)
                    stats = await client.stats()
                    assert stats["server"]["wire_v2"] is True
                    assert stats["server"]["binary_batches"] == 1

        asyncio.run(asyncio.wait_for(scenario(), timeout=SCENARIO_DEADLINE))

    def test_old_server_falls_back_to_json(self, acl_small):
        """A client offering v2 against a server that predates it (emulated
        by ``wire_v2=False``) must silently continue on JSON."""

        async def scenario():
            engine = ClassificationEngine.build(acl_small, classifier="tm")
            async with AsyncServer(engine, wire_v2=False) as server:
                await server.start("127.0.0.1", 0)
                async with await AsyncClient.connect(
                    server.host, server.port
                ) as client:
                    assert not client.wire_v2
                    packets = acl_small.sample_packets(6, seed=6)
                    responses = await client.classify_batch(packets)
                    assert all(r["matched"] for r in responses)
                    stats = await client.stats()
                    assert stats["server"]["wire_v2"] is False
                    assert stats["server"]["binary_batches"] == 0

        asyncio.run(asyncio.wait_for(scenario(), timeout=SCENARIO_DEADLINE))

    def test_old_client_stays_on_json(self, acl_small):
        """A client that never sends hello (the pre-v2 behaviour) gets pure
        JSON service from a v2 server."""

        async def scenario():
            engine = ClassificationEngine.build(acl_small, classifier="tm")
            async with AsyncServer(engine) as server:
                await server.start("127.0.0.1", 0)
                async with await AsyncClient.connect(
                    server.host, server.port, negotiate=False
                ) as client:
                    assert not client.wire_v2
                    packet = acl_small.sample_packets(1, seed=7)[0]
                    response = await client.classify(packet)
                    assert response["matched"]
                    responses = await client.classify_batch(
                        acl_small.sample_packets(5, seed=8)
                    )
                    assert len(responses) == 5
                    stats = await client.stats()
                    assert stats["server"]["binary_batches"] == 0

        asyncio.run(asyncio.wait_for(scenario(), timeout=SCENARIO_DEADLINE))

    def test_binary_bad_width_maps_to_bad_request(self, acl_small):
        async def scenario():
            engine = ClassificationEngine.build(acl_small, classifier="tm")
            async with AsyncServer(engine) as server:
                await server.start("127.0.0.1", 0)
                async with await AsyncClient.connect(
                    server.host, server.port
                ) as client:
                    assert client.wire_v2
                    with pytest.raises(ServerError) as excinfo:
                        await client.classify_batch([(1, 2, 3)])  # schema is 5-wide
                    assert excinfo.value.code == "bad-request"
                    # The connection survives the rejected batch.
                    packet = acl_small.sample_packets(1, seed=9)[0]
                    assert (await client.classify(packet))["matched"]

        asyncio.run(asyncio.wait_for(scenario(), timeout=SCENARIO_DEADLINE))


async def _compare_protocols(rules, batches):
    engine = _tiny_engine(rules)
    async with AsyncServer(engine, max_batch=4, max_delay_us=300) as server:
        await server.start("127.0.0.1", 0)
        async with await AsyncClient.connect(
            server.host, server.port
        ) as binary_client, await AsyncClient.connect(
            server.host, server.port, negotiate=False
        ) as json_client:
            assert binary_client.wire_v2 and not json_client.wire_v2
            for batch in batches:
                binary = await binary_client.classify_batch(batch)
                via_json = await json_client.classify_batch(batch)
                assert binary == via_json, (
                    f"protocols disagree on {batch}: {binary} != {via_json}"
                )


class TestProtocolEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        rules=initial_rules(),
        batches=st.lists(
            st.lists(PACKETS, min_size=1, max_size=6), min_size=1, max_size=4
        ),
    )
    def test_json_and_binary_responses_identical(self, rules, batches):
        asyncio.run(
            asyncio.wait_for(
                _compare_protocols(rules, batches), timeout=SCENARIO_DEADLINE
            )
        )


class TestChunkedBatches:
    """Batches larger than one 24-bit frame: the client chunks instead of
    aborting the connection, and a failed send never leaks a pending future."""

    def test_max_block_rows_arithmetic(self):
        cap = wire.MAX_BINARY_FRAME
        # The request side binds for schemas with >= 2 fields (8 bytes per
        # field beats the 16-byte response record).
        assert wire.max_block_rows(5) == (cap - wire._REQ_HEADER.size) // 40
        # Single-field schemas are response-bound.
        assert wire.max_block_rows(1) == (cap - wire._RES_HEADER.size) // 16
        with pytest.raises(ValueError, match="at least one field"):
            wire.max_block_rows(0)
        # A frame at exactly max_block_rows fits under the cap.
        rows = wire.max_block_rows(5)
        payload_bytes = wire._REQ_HEADER.size + rows * 5 * 8
        assert payload_bytes <= cap < payload_bytes + 5 * 8

    def test_write_binary_frame_rejects_oversized_payload(self):
        with pytest.raises(ValueError, match="exceeds"):
            wire.write_binary_frame(None, b"x" * (wire.MAX_BINARY_FRAME + 1))

    def test_oversized_batch_round_trips_via_chunking(self, acl_small, monkeypatch):
        """With the frame cap shrunk to 4 rows, an 18-packet batch must travel
        as 5 pipelined frames and come back identical to the JSON answer —
        no connection abort, no leaked pending futures."""

        async def scenario():
            engine = ClassificationEngine.build(acl_small, classifier="tm")
            async with AsyncServer(engine) as server:
                await server.start("127.0.0.1", 0)
                async with await AsyncClient.connect(
                    server.host, server.port
                ) as client, await AsyncClient.connect(
                    server.host, server.port, negotiate=False
                ) as json_client:
                    assert client.wire_v2
                    fields = len(acl_small.schema)
                    monkeypatch.setattr(
                        wire,
                        "MAX_BINARY_FRAME",
                        wire._REQ_HEADER.size + 4 * fields * 8,
                    )
                    assert wire.max_block_rows(fields) == 4
                    packets = acl_small.sample_packets(18, seed=11)
                    binary = await client.classify_batch(packets)
                    assert binary == await json_client.classify_batch(packets)
                    assert client._binary_pending == {}
                    stats = await client.stats()
                    assert stats["server"]["binary_batches"] == 5  # ceil(18/4)
                    # The connection is still healthy for further batches.
                    again = await client.classify_batch(packets[:3])
                    assert len(again) == 3

        asyncio.run(asyncio.wait_for(scenario(), timeout=SCENARIO_DEADLINE))

    def test_failed_send_pops_pending_future(self, acl_small, monkeypatch):
        """A write failure must drop the request's pending entry (so a later
        response to a reused id cannot be mis-delivered) and leave the
        connection usable once writes succeed again."""

        async def scenario():
            engine = ClassificationEngine.build(acl_small, classifier="tm")
            async with AsyncServer(engine) as server:
                await server.start("127.0.0.1", 0)
                async with await AsyncClient.connect(
                    server.host, server.port
                ) as client:
                    assert client.wire_v2
                    packets = acl_small.sample_packets(6, seed=12)
                    real_write = wire.write_binary_frame

                    def failing_write(writer, payload):
                        raise ConnectionResetError("injected write failure")

                    monkeypatch.setattr(wire, "write_binary_frame", failing_write)
                    with pytest.raises(ConnectionResetError):
                        await client.classify_batch(packets)
                    assert client._binary_pending == {}
                    monkeypatch.setattr(wire, "write_binary_frame", real_write)
                    responses = await client.classify_batch(packets)
                    assert len(responses) == 6
                    assert client._binary_pending == {}

        asyncio.run(asyncio.wait_for(scenario(), timeout=SCENARIO_DEADLINE))
