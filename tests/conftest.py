"""Shared fixtures for the test suite.

Rule-sets and trained models are expensive to build, so the commonly used ones
are session-scoped.  Sizes are kept small (hundreds to a few thousand rules):
the goal of the tests is functional correctness; the benchmarks exercise the
larger scales.
"""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.core.nuevomatch import NuevoMatch
from repro.rules import generate_classbench, generate_stanford_backbone

from _helpers import fast_nm_config

# CI runners are noisy: hypothesis's default 200 ms per-example deadline turns
# scheduler hiccups into spurious failures (assertions still fail loudly).
settings.register_profile("repro", deadline=None, print_blob=True)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def acl_small():
    """A small ACL-like rule-set (500 rules)."""
    return generate_classbench("acl1", 500, seed=11)


@pytest.fixture(scope="session")
def acl_medium():
    """A medium ACL-like rule-set (3000 rules)."""
    return generate_classbench("acl2", 3000, seed=7)


@pytest.fixture(scope="session")
def fw_small():
    """A small firewall-like rule-set (500 rules, wildcard-heavy)."""
    return generate_classbench("fw1", 500, seed=5)


@pytest.fixture(scope="session")
def ipc_small():
    """A small IPC-like rule-set (500 rules)."""
    return generate_classbench("ipc1", 500, seed=3)


@pytest.fixture(scope="session")
def forwarding_small():
    """A small Stanford-backbone-like forwarding table (2000 rules)."""
    return generate_stanford_backbone(2000, seed=1)


@pytest.fixture(scope="session")
def nm_acl_medium(acl_medium):
    """NuevoMatch built over the medium ACL rule-set with a TupleMerge remainder."""
    return NuevoMatch.build(
        acl_medium, remainder_classifier="tm", config=fast_nm_config()
    )
