"""Tests specific to the decision-tree classifiers and the shared tree builder."""

import pytest

from repro.classifiers.cutsplit import CutSplitClassifier
from repro.classifiers.dtree import (
    CutAction,
    CutNode,
    DecisionTree,
    LeafAction,
    LeafNode,
    SplitAction,
    SplitNode,
    build_tree,
)
from repro.classifiers.hicuts import HiCutsClassifier
from repro.classifiers.neurocuts import NeuroCutsClassifier
from repro.classifiers.base import LookupTrace
from repro.rules.fields import FIVE_TUPLE
from repro.rules.rule import Rule, RuleSet


def simple_rules(count=20):
    rules = []
    for i in range(count):
        rules.append(
            Rule(
                ((i * 100, i * 100 + 50), (0, 0xFFFFFFFF), (0, 65535), (0, 65535), (0, 255)),
                priority=i,
                rule_id=i,
            )
        )
    return rules


class TestTreeBuilder:
    def test_small_input_becomes_leaf(self):
        rules = simple_rules(4)
        root = build_tree(rules, FIVE_TUPLE.full_ranges(), lambda s, r, d: CutAction(0, 4), binth=8)
        assert isinstance(root, LeafNode)
        assert len(root.rules) == 4

    def test_cut_action_partitions(self):
        rules = simple_rules(40)
        root = build_tree(rules, FIVE_TUPLE.full_ranges(), lambda s, r, d: CutAction(0, 8), binth=4)
        assert isinstance(root, CutNode)
        assert len(root.children) == 8

    def test_split_action(self):
        rules = simple_rules(40)
        root = build_tree(
            rules, FIVE_TUPLE.full_ranges(), lambda s, r, d: SplitAction(0, 2000), binth=4
        )
        assert isinstance(root, SplitNode)

    def test_leaf_action_respected_when_unsplittable(self):
        # All rules identical: nothing can separate them; must become a leaf.
        rules = [
            Rule(((0, 10), (0, 10), (0, 10), (0, 10), (0, 10)), priority=i, rule_id=i)
            for i in range(20)
        ]
        root = build_tree(rules, FIVE_TUPLE.full_ranges(), lambda s, r, d: LeafAction(), binth=4)
        assert isinstance(root, LeafNode)
        assert len(root.rules) == 20

    def test_max_depth_bounds_recursion(self):
        rules = simple_rules(60)
        root = build_tree(
            rules, FIVE_TUPLE.full_ranges(), lambda s, r, d: CutAction(0, 2), binth=1, max_depth=3
        )
        stats = DecisionTree(root).stats()
        assert stats.max_depth <= 3

    def test_best_priority_propagates(self):
        rules = simple_rules(40)
        root = build_tree(rules, FIVE_TUPLE.full_ranges(), lambda s, r, d: CutAction(0, 8), binth=4)
        assert root.best_priority == 0

    def test_lookup_finds_best_priority_match(self):
        rules = simple_rules(40)
        tree = DecisionTree(
            build_tree(rules, FIVE_TUPLE.full_ranges(), lambda s, r, d: CutAction(0, 8), binth=4)
        )
        ruleset = RuleSet(rules, FIVE_TUPLE)
        for packet in ruleset.sample_packets(100, seed=1):
            trace = LookupTrace()
            found = tree.lookup(tuple(packet), trace)
            expected = ruleset.match(packet)
            assert found is not None and expected is not None
            assert found.priority == expected.priority
            assert trace.index_accesses >= 1

    def test_lookup_with_floor_prunes(self):
        rules = simple_rules(40)
        tree = DecisionTree(
            build_tree(rules, FIVE_TUPLE.full_ranges(), lambda s, r, d: CutAction(0, 8), binth=4)
        )
        packet = (105, 0, 0, 0, 0)  # matches rule 1
        trace = LookupTrace()
        assert tree.lookup(packet, trace, priority_floor=1) is None

    def test_stats_and_footprint(self):
        rules = simple_rules(60)
        tree = DecisionTree(
            build_tree(rules, FIVE_TUPLE.full_ranges(), lambda s, r, d: CutAction(0, 8), binth=4)
        )
        stats = tree.stats()
        assert stats.num_nodes == stats.num_leaves + stats.num_cut_nodes + stats.num_split_nodes
        assert stats.total_leaf_rule_slots >= 60  # replication can only add
        footprint = tree.footprint(60)
        assert footprint.index_bytes > 0
        assert footprint.rule_bytes == 60 * 48


class TestHiCuts:
    def test_builds_and_classifies(self, acl_small):
        hicuts = HiCutsClassifier.build(acl_small, binth=8)
        hicuts.verify(acl_small.sample_packets(100, seed=1))

    def test_statistics_report_replication(self, acl_small):
        hicuts = HiCutsClassifier.build(acl_small)
        stats = hicuts.statistics()
        assert stats["replication"] >= 1.0
        assert stats["max_depth"] >= 1


class TestCutSplit:
    def test_groups_by_small_fields(self, acl_small):
        cs = CutSplitClassifier.build(acl_small)
        assert 1 <= cs.num_trees <= 4

    def test_binth_respected_in_most_leaves(self, acl_small):
        cs = CutSplitClassifier.build(acl_small, binth=8)
        stats = cs.statistics()
        # Replication stays modest thanks to pre-partitioning.
        assert stats["replication"] < 3.0

    def test_classifies_wildcard_heavy_ruleset(self, fw_small):
        cs = CutSplitClassifier.build(fw_small)
        cs.verify(fw_small.sample_packets(100, seed=2))

    def test_small_threshold_parameter(self, acl_small):
        strict = CutSplitClassifier.build(acl_small, small_prefix_threshold=24)
        relaxed = CutSplitClassifier.build(acl_small, small_prefix_threshold=8)
        strict.verify(acl_small.sample_packets(50, seed=3))
        relaxed.verify(acl_small.sample_packets(50, seed=3))


class TestNeuroCuts:
    def test_objective_validation(self, acl_small):
        with pytest.raises(ValueError):
            NeuroCutsClassifier(acl_small, objective="speed")

    def test_memory_objective_produces_smaller_trees(self, acl_medium):
        memory = NeuroCutsClassifier.build(
            acl_medium, objective="memory", num_candidates=3, seed=1
        )
        depth = NeuroCutsClassifier.build(
            acl_medium, objective="depth", num_candidates=3, seed=1
        )
        # The depth-optimised tree must not be deeper than the memory-optimised
        # one; footprints typically go the other way.
        assert depth.statistics()["max_depth"] <= memory.statistics()["max_depth"] + 1

    def test_deterministic_given_seed(self, acl_small):
        a = NeuroCutsClassifier.build(acl_small, seed=3)
        b = NeuroCutsClassifier.build(acl_small, seed=3)
        assert a.statistics()["num_nodes"] == b.statistics()["num_nodes"]

    def test_top_partition_can_be_disabled(self, acl_small):
        single = NeuroCutsClassifier.build(acl_small, top_partition=False)
        assert single.num_trees == 1
        single.verify(acl_small.sample_packets(50, seed=4))
