"""Tests for the analysis helpers: footprints, coverage reports, reporting."""

import pytest

from repro.analysis import (
    classifier_footprint,
    compare_footprints,
    coverage_report,
    coverage_table_rows,
    format_kv,
    format_series,
    format_table,
    geometric_mean,
)
from repro.classifiers import TupleMergeClassifier
from _helpers import fast_nm_config


class TestReporting:
    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([5]) == pytest.approx(5.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0, 4]) == pytest.approx(4.0)  # zeros ignored

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 123456.0]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series([1, 2, 3], [0.5, 1.0, 1.5], "x", "y")
        assert text.count("\n") == 4

    def test_format_kv(self):
        text = format_kv({"alpha": 1, "beta": 2.5}, title="cfg")
        assert "alpha" in text and "beta" in text and text.startswith("cfg")


class TestFootprintAnalysis:
    def test_classifier_footprint_report(self, acl_small):
        tm = TupleMergeClassifier.build(acl_small)
        report = classifier_footprint(tm, acl_small.name)
        assert report.classifier == "tm"
        assert report.index_bytes == tm.memory_footprint().index_bytes
        assert report.cache_level in {"L1", "L2", "L3", "DRAM"}
        assert len(report.as_row()) == 6

    def test_compare_footprints_includes_nm(self, acl_small):
        reports = compare_footprints(
            acl_small, baselines=["tm"], with_nuevomatch=True, nm_config=fast_nm_config()
        )
        names = [r.classifier for r in reports]
        assert names == ["tm", "nm(tm)"]
        baseline, nm = reports
        assert nm.rqrmi_bytes > 0
        assert nm.index_bytes <= baseline.index_bytes

    def test_compare_footprints_without_nm(self, acl_small):
        reports = compare_footprints(acl_small, baselines=["tm", "cs"], with_nuevomatch=False)
        assert [r.classifier for r in reports] == ["tm", "cs"]


class TestCoverageAnalysis:
    def test_coverage_report_monotone(self, acl_medium):
        report = coverage_report(acl_medium, max_isets=4)
        coverage = report.cumulative_coverage
        assert all(a <= b + 1e-12 for a, b in zip(coverage[:-1], coverage[1:]))
        assert report.coverage_at(1) <= report.coverage_at(4)
        assert report.coverage_at(0) == 0.0

    def test_coverage_at_beyond_available_isets(self, acl_small):
        report = coverage_report(acl_small, max_isets=2)
        assert report.coverage_at(10) == report.cumulative_coverage[-1]

    def test_table_rows_shape(self, acl_small, fw_small):
        reports = [coverage_report(acl_small, 4), coverage_report(fw_small, 4)]
        rows = coverage_table_rows(reports, max_isets=4)
        assert len(rows) == 2
        assert len(rows[0]) == 2 + 4
        assert all(0 <= value <= 100 for value in rows[0][2:])

    def test_centrality_estimation_optional(self, acl_small):
        without = coverage_report(acl_small, estimate_centrality=False)
        with_est = coverage_report(acl_small, estimate_centrality=True)
        assert without.centrality == 0
        assert with_est.centrality >= 1
