"""Property tests (hypothesis) for the flow cache.

Two invariants, over arbitrary probe/fill/evict/invalidate sequences:

* **freshness** — a classify through a :class:`~repro.serving.CachedEngine`
  never returns a stale or wrong-priority match: after any interleaving of
  lookups, inserts and removes, every answer equals linear search over the
  rules live at that instant (ordered by ``(priority, rule_id)``, the serving
  stack's total order).
* **bounded capacity** — the number of cached entries never exceeds the
  configured capacity, no matter how fills, evictions and invalidations
  interleave.

The rule/packet universe is deliberately tiny (5-tuple values in 0..7) so
flows collide, rules overlap and invalidation paths actually fire.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ClassificationEngine
from repro.rules.rule import Rule, RuleSet
from repro.serving import CachedEngine, FlowCache, ShardedEngine

VALUES = st.integers(min_value=0, max_value=7)
PACKETS = st.tuples(VALUES, VALUES, VALUES, VALUES, VALUES)
RANGES = st.tuples(
    *[st.tuples(VALUES, VALUES).map(lambda pair: tuple(sorted(pair)))] * 5
)


def linear_best(rules, packet):
    best = None
    for rule in rules:
        if rule.matches(packet) and (
            best is None
            or (rule.priority, rule.rule_id) < (best.priority, best.rule_id)
        ):
            best = rule
    return best


def result_key(rule):
    return None if rule is None else (rule.priority, rule.rule_id)


@st.composite
def initial_rules(draw, min_rules=2, max_rules=6):
    ranges = draw(st.lists(RANGES, min_size=min_rules, max_size=max_rules))
    return [
        Rule(r, priority=index, rule_id=index) for index, r in enumerate(ranges)
    ]


#: One step of a workload: probe a packet, insert a fresh rule, or remove one.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("classify"), PACKETS),
        st.tuples(st.just("insert"), RANGES),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=40)),
    ),
    min_size=1,
    max_size=25,
)


def run_workload(make_engine, rules, ops, capacity):
    """Drive ops through a cached engine, checking both invariants throughout."""
    live = {rule.rule_id: rule for rule in rules}
    engine = make_engine(RuleSet(list(rules), name="prop"))
    cached = CachedEngine(engine, capacity=capacity)
    next_priority = len(rules)
    next_id = 100
    try:
        for op, payload in ops:
            if op == "classify":
                actual = cached.classify(payload)
                expected = linear_best(live.values(), payload)
                assert result_key(actual) == result_key(expected), (
                    f"stale/wrong match for {payload}: "
                    f"{result_key(actual)} != {result_key(expected)}"
                )
            elif op == "insert":
                rule = Rule(payload, priority=next_priority, rule_id=next_id)
                next_priority += 1
                next_id += 1
                cached.insert(rule)
                live[rule.rule_id] = rule
            else:  # remove
                present = payload in live
                assert cached.remove(payload) == present
                live.pop(payload, None)
            assert len(cached.cache) <= capacity
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()


@settings(max_examples=60)
@given(rules=initial_rules(), ops=OPS, capacity=st.integers(min_value=0, max_value=5))
def test_cached_engine_never_serves_stale_match(rules, ops, capacity):
    run_workload(
        lambda ruleset: ClassificationEngine.build(ruleset, classifier="tss"),
        rules,
        ops,
        capacity,
    )


@settings(max_examples=25)
@given(rules=initial_rules(min_rules=4), ops=OPS, capacity=st.integers(min_value=1, max_value=4))
def test_cached_sharded_engine_never_serves_stale_match(rules, ops, capacity):
    run_workload(
        lambda ruleset: ShardedEngine.build(
            ruleset,
            shards=2,
            classifier="linear",
            executor="serial",
            background_retraining=False,
        ),
        rules,
        ops,
        capacity,
    )


@settings(max_examples=60)
@given(
    fills=st.lists(
        st.tuples(st.lists(PACKETS, min_size=1, max_size=6), RANGES),
        min_size=1,
        max_size=10,
    ),
    capacity=st.integers(min_value=0, max_value=4),
)
def test_flowcache_capacity_bound_under_fill_and_invalidate(fills, capacity):
    """Raw FlowCache: interleaved fills and range invalidations never push the
    entry count past capacity, and the slot bookkeeping stays consistent."""
    from repro.serving.flowcache import pack_packets

    cache = FlowCache(capacity, num_fields=5)
    for index, (packets, ranges) in enumerate(fills):
        keys = pack_packets(packets, 5)
        cache.probe_batch(keys)
        rule = Rule(ranges, priority=index, rule_id=index)
        cache.fill_batch(keys, [rule] * len(packets))
        assert len(cache) <= capacity
        if index % 2 == 1:
            cache.invalidate_insert(rule)
            # Everything inside the rule's ranges is gone now.
            winners, mask = cache.probe_batch(keys)
            for row, packet in enumerate(packets):
                if rule.matches(packet):
                    assert not mask[row]
        assert len(cache) <= capacity
    stats = cache.stats
    assert stats.insertions - stats.evictions - stats.invalidations == len(cache)
