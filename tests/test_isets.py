"""Tests for iSet partitioning (§3.6)."""

import pytest

from repro.core.isets import max_independent_set, partition_isets
from repro.rules.fields import FIVE_TUPLE
from repro.rules.rule import Rule, RuleSet


def rule_with_port_range(lo, hi, rule_id):
    return Rule(
        ((0, 0xFFFFFFFF), (0, 0xFFFFFFFF), (0, 65535), (lo, hi), (0, 255)),
        priority=rule_id,
        rule_id=rule_id,
    )


class TestMaxIndependentSet:
    def test_paper_figure6_example(self):
        # Figure 2 / Figure 6 of the paper: five rules over (IP, port); the
        # port dimension yields the iSet {R0, R2, R4} and the IP dimension
        # {R1, R3} once those are removed.
        def r(ip_lo, ip_hi, p_lo, p_hi, rid):
            return Rule(((ip_lo, ip_hi), (p_lo, p_hi)), priority=rid, rule_id=rid)

        from repro.rules.fields import FieldSchema, FieldSpec

        schema = FieldSchema([FieldSpec("ip", 32, "ip"), FieldSpec("port", 16, "port")])
        rules = [
            r(0x0A0A0000, 0x0A0AFFFF, 10, 18, 0),   # R0
            r(0x0A0A0100, 0x0A0A01FF, 15, 25, 1),   # R1
            r(0x0A000000, 0x0AFFFFFF, 5, 8, 2),     # R2
            r(0x0A0A0300, 0x0A0A03FF, 7, 20, 3),    # R3
            r(0x0A0A0364, 0x0A0A0364, 19, 19, 4),   # R4
        ]
        ruleset = RuleSet(rules, schema)
        by_port = max_independent_set(list(ruleset.rules), 1)
        assert {rule.rule_id for rule in by_port} == {0, 2, 4}

    def test_non_overlapping_by_construction(self):
        rules = [rule_with_port_range(i * 10, i * 10 + 5, i) for i in range(50)]
        chosen = max_independent_set(rules, 3)
        assert len(chosen) == 50

    def test_overlapping_rules_reduced(self):
        rules = [rule_with_port_range(0, 65535, i) for i in range(10)]
        chosen = max_independent_set(rules, 3)
        assert len(chosen) == 1

    def test_greedy_is_optimal_on_known_instance(self):
        # Intervals: [0,10] [2,3] [4,5] [6,7] — optimum picks the three small ones.
        rules = [
            rule_with_port_range(0, 10, 0),
            rule_with_port_range(2, 3, 1),
            rule_with_port_range(4, 5, 2),
            rule_with_port_range(6, 7, 3),
        ]
        chosen = max_independent_set(rules, 3)
        assert {r.rule_id for r in chosen} == {1, 2, 3}

    def test_result_sorted_by_lower_bound(self):
        rules = [rule_with_port_range(i * 100, i * 100 + 10, i) for i in (5, 1, 3, 2, 4)]
        chosen = max_independent_set(rules, 3)
        los = [r.ranges[3][0] for r in chosen]
        assert los == sorted(los)


class TestPartition:
    def test_coverage_accounts_for_all_rules(self, acl_small):
        result = partition_isets(acl_small)
        covered = sum(len(iset) for iset in result.isets)
        assert covered + len(result.remainder) == len(acl_small)

    def test_isets_are_disjoint(self, acl_small):
        result = partition_isets(acl_small)
        seen = set()
        for iset in result.isets:
            ids = {rule.rule_id for rule in iset.rules}
            assert not (ids & seen)
            seen |= ids

    def test_isets_non_overlapping_in_their_dimension(self, acl_medium):
        result = partition_isets(acl_medium, max_isets=3)
        for iset in result.isets:
            ranges = iset.ranges()
            for (alo, ahi), (blo, bhi) in zip(ranges[:-1], ranges[1:]):
                assert ahi < blo

    def test_max_isets_respected(self, acl_small):
        result = partition_isets(acl_small, max_isets=2)
        assert len(result.isets) <= 2

    def test_min_coverage_merges_small_isets_into_remainder(self, acl_small):
        strict = partition_isets(acl_small, min_coverage=0.25)
        for iset in strict.isets:
            assert iset.coverage >= 0.25

    def test_cumulative_coverage_monotone(self, acl_medium):
        result = partition_isets(acl_medium, max_isets=4)
        coverage = result.cumulative_coverage()
        assert all(a <= b + 1e-12 for a, b in zip(coverage[:-1], coverage[1:]))
        assert coverage[-1] == pytest.approx(result.coverage)

    def test_greedy_picks_largest_first(self, acl_medium):
        result = partition_isets(acl_medium, max_isets=4)
        sizes = [len(iset) for iset in result.isets]
        assert all(a >= b for a, b in zip(sizes[:-1], sizes[1:]))

    def test_acl_coverage_better_than_low_diversity(self, acl_medium):
        from repro.rules import generate_low_diversity

        low = generate_low_diversity(1000, values_per_field=8, seed=1)
        acl_cov = partition_isets(acl_medium, max_isets=2).coverage
        low_cov = partition_isets(low, max_isets=2).coverage
        assert acl_cov > low_cov

    def test_diversity_upper_bounds_single_iset_coverage(self, acl_medium, fw_small):
        # §3.7: the rule-set diversity of a field bounds the fraction of rules
        # in the largest iSet of that field.
        for ruleset in (acl_medium, fw_small):
            best_diversity = max(ruleset.diversity().values())
            result = partition_isets(ruleset, max_isets=1)
            if result.isets:
                assert result.isets[0].coverage <= best_diversity + 1e-9

    def test_empty_ruleset(self):
        empty = RuleSet([], FIVE_TUPLE)
        result = partition_isets(empty)
        assert result.isets == []
        assert result.coverage == 0.0

    def test_single_field_ruleset(self, forwarding_small):
        result = partition_isets(forwarding_small, max_isets=4)
        assert result.coverage > 0.5
        for iset in result.isets:
            assert iset.dim == 0
