"""Tests for the ClassBench-like and Stanford-backbone-like rule generators."""

import pytest

from repro.rules import (
    CLASSBENCH_APPLICATIONS,
    FIVE_TUPLE,
    blend_rulesets,
    generate_classbench,
    generate_low_diversity,
    generate_stanford_backbone,
)


class TestClassBenchGenerator:
    def test_twelve_applications(self):
        assert len(CLASSBENCH_APPLICATIONS) == 12
        families = {name[:-1] for name in CLASSBENCH_APPLICATIONS}
        assert families == {"acl", "fw", "ipc"}

    def test_requested_size_and_unique_rules(self):
        rs = generate_classbench("acl1", 800, seed=3)
        assert len(rs) == 800
        assert len({r.ranges for r in rs}) == 800

    def test_deterministic_for_same_seed(self):
        a = generate_classbench("fw2", 200, seed=9)
        b = generate_classbench("fw2", 200, seed=9)
        assert [r.ranges for r in a] == [r.ranges for r in b]

    def test_different_seeds_differ(self):
        a = generate_classbench("fw2", 200, seed=1)
        b = generate_classbench("fw2", 200, seed=2)
        assert [r.ranges for r in a] != [r.ranges for r in b]

    def test_unknown_application_rejected(self):
        with pytest.raises(ValueError):
            generate_classbench("nope", 100)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            generate_classbench("acl1", 0)

    def test_priorities_follow_position(self):
        rs = generate_classbench("ipc1", 100, seed=1)
        assert [r.priority for r in rs] == list(range(100))

    def test_acl_has_higher_address_diversity_than_fw(self):
        acl = generate_classbench("acl1", 1000, seed=4)
        fw = generate_classbench("fw1", 1000, seed=4)
        acl_div = max(acl.field_diversity(0), acl.field_diversity(1))
        fw_div = max(fw.field_diversity(0), fw.field_diversity(1))
        assert acl_div > fw_div

    def test_fw_has_more_wildcards(self):
        acl = generate_classbench("acl3", 1000, seed=4)
        fw = generate_classbench("fw3", 1000, seed=4)
        assert fw.wildcard_fraction(0) > acl.wildcard_fraction(0)

    def test_ip_fields_are_prefix_ranges(self):
        from repro.rules.fields import range_is_prefix

        rs = generate_classbench("acl4", 300, seed=2)
        for rule in rs:
            assert range_is_prefix(*rule.ranges[0])
            assert range_is_prefix(*rule.ranges[1])

    def test_schema_is_five_tuple(self):
        rs = generate_classbench("acl1", 50, seed=0)
        assert rs.schema == FIVE_TUPLE


class TestLowDiversityGenerator:
    def test_diversity_is_low(self):
        rs = generate_low_diversity(500, values_per_field=8, seed=1)
        assert max(rs.diversity().values()) <= 8 / 500 + 1e-9

    def test_rules_are_exact_matches(self):
        rs = generate_low_diversity(100, values_per_field=8, seed=1)
        for rule in rs:
            for lo, hi in rule.ranges:
                assert lo == hi

    def test_too_few_values_rejected(self):
        with pytest.raises(RuntimeError):
            generate_low_diversity(10_000, values_per_field=2, seed=1)


class TestBlendRulesets:
    def test_blend_preserves_size(self):
        base = generate_classbench("acl1", 400, seed=1)
        low = generate_low_diversity(400, values_per_field=6, seed=2)
        blended = blend_rulesets(base, low, fraction=0.5, seed=3)
        assert len(blended) == len(base)

    def test_blend_fraction_bounds(self):
        base = generate_classbench("acl1", 100, seed=1)
        low = generate_low_diversity(100, values_per_field=6, seed=2)
        with pytest.raises(ValueError):
            blend_rulesets(base, low, fraction=1.5)

    def test_blend_zero_keeps_base(self):
        base = generate_classbench("acl1", 100, seed=1)
        low = generate_low_diversity(100, values_per_field=6, seed=2)
        blended = blend_rulesets(base, low, fraction=0.0)
        assert [r.ranges for r in blended] == [r.ranges for r in base]

    def test_blend_reduces_diversity(self):
        base = generate_classbench("acl1", 600, seed=1)
        low = generate_low_diversity(600, values_per_field=6, seed=2)
        blended = blend_rulesets(base, low, fraction=0.7, seed=3)
        assert max(blended.diversity().values()) < max(base.diversity().values())


class TestStanfordGenerator:
    def test_size_and_single_field(self):
        rs = generate_stanford_backbone(3000, seed=0)
        assert len(rs) == 3000
        assert len(rs.schema) == 1

    def test_rules_are_prefixes(self):
        from repro.rules.fields import range_is_prefix

        rs = generate_stanford_backbone(1000, seed=2)
        for rule in rs:
            assert range_is_prefix(*rule.ranges[0])

    def test_longest_prefix_has_best_priority(self):
        rs = generate_stanford_backbone(2000, seed=1)
        spans = [rule.field_span(0) for rule in sorted(rs.rules, key=lambda r: r.priority)]
        # Priorities follow longest-prefix-first order: spans non-decreasing.
        assert all(a <= b for a, b in zip(spans, spans[1:]))

    def test_deterministic(self):
        a = generate_stanford_backbone(500, seed=7)
        b = generate_stanford_backbone(500, seed=7)
        assert [r.ranges for r in a] == [r.ranges for r in b]

    def test_nesting_creates_overlap(self):
        rs = generate_stanford_backbone(2000, seed=1, nesting=0.5)
        # With nesting there must exist at least one pair of overlapping rules.
        rules = sorted(rs.rules, key=lambda r: r.ranges[0])
        overlapping = any(
            a.overlaps_field(b, 0) for a, b in zip(rules[:-1], rules[1:])
        )
        assert overlapping
