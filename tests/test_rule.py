"""Unit tests for the Rule / Packet / RuleSet data model."""

import random

import pytest

from repro.rules.fields import FIVE_TUPLE, FORWARDING
from repro.rules.rule import Packet, Rule, RuleSet


def make_rule(src=(0, 0xFFFFFFFF), dst=(0, 0xFFFFFFFF), sport=(0, 65535),
              dport=(0, 65535), proto=(0, 255), priority=0, rule_id=0):
    return Rule((src, dst, sport, dport, proto), priority=priority,
                action=f"a{rule_id}", rule_id=rule_id)


class TestRule:
    def test_matches_inside_ranges(self):
        rule = make_rule(src=(10, 20), dport=(80, 80))
        assert rule.matches((15, 0, 0, 80, 6))
        assert not rule.matches((9, 0, 0, 80, 6))
        assert not rule.matches((15, 0, 0, 81, 6))

    def test_matches_accepts_packet_object(self):
        rule = make_rule()
        assert rule.matches(Packet((1, 2, 3, 4, 5)))

    def test_matches_field(self):
        rule = make_rule(dst=(100, 200))
        assert rule.matches_field(1, 150)
        assert not rule.matches_field(1, 201)

    def test_field_span_and_exact(self):
        rule = make_rule(sport=(5, 5), dport=(10, 19))
        assert rule.field_span(2) == 1
        assert rule.field_span(3) == 10
        assert rule.is_exact(2)
        assert not rule.is_exact(3)

    def test_is_wildcard(self):
        rule = make_rule()
        assert rule.is_wildcard(0, FIVE_TUPLE)
        narrowed = make_rule(src=(0, 10))
        assert not narrowed.is_wildcard(0, FIVE_TUPLE)

    def test_overlaps(self):
        a = make_rule(src=(0, 10), dst=(0, 10))
        b = make_rule(src=(5, 20), dst=(8, 30))
        c = make_rule(src=(11, 20), dst=(0, 10))
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_overlaps_field(self):
        a = make_rule(src=(0, 10))
        b = make_rule(src=(10, 20))
        c = make_rule(src=(11, 20))
        assert a.overlaps_field(b, 0)
        assert not a.overlaps_field(c, 0)

    def test_sample_packet_always_matches(self):
        rule = make_rule(src=(100, 200), dst=(5, 5), sport=(10, 20))
        rng = random.Random(0)
        for _ in range(50):
            assert rule.matches(rule.sample_packet(rng))

    def test_with_id_and_priority(self):
        rule = make_rule(priority=3, rule_id=7)
        assert rule.with_id(9).rule_id == 9
        assert rule.with_priority(1).priority == 1
        assert rule.with_id(9).priority == 3


class TestRuleSet:
    def test_priority_semantics_lowest_wins(self):
        # Figure 2 of the paper: the packet matches R3 and R4; R3 has the
        # higher priority (lower number) and is returned.
        rules = [
            make_rule(src=(0, 99), priority=4, rule_id=3),
            make_rule(src=(50, 50), priority=5, rule_id=4),
        ]
        rs = RuleSet(rules, FIVE_TUPLE)
        match = rs.match((50, 0, 0, 0, 0))
        assert match is not None and match.rule_id == 3

    def test_match_returns_none_when_nothing_matches(self):
        rs = RuleSet([make_rule(src=(10, 20))], FIVE_TUPLE)
        assert rs.match((30, 0, 0, 0, 0)) is None

    def test_all_matches_sorted_by_priority(self):
        rules = [
            make_rule(priority=5, rule_id=0),
            make_rule(priority=1, rule_id=1),
            make_rule(src=(1, 1), priority=0, rule_id=2),
        ]
        rs = RuleSet(rules, FIVE_TUPLE)
        hits = rs.all_matches((9, 0, 0, 0, 0))
        assert [r.rule_id for r in hits] == [1, 0]

    def test_schema_validation_on_construction(self):
        with pytest.raises(ValueError):
            RuleSet([Rule(((0, 10),), 0)], FIVE_TUPLE)

    def test_subset_and_without(self):
        rules = [make_rule(rule_id=i, priority=i) for i in range(10)]
        rs = RuleSet(rules, FIVE_TUPLE)
        sub = rs.subset(rules[:3])
        assert len(sub) == 3
        rest = rs.without([0, 1, 2])
        assert len(rest) == 7
        assert all(rule.rule_id >= 3 for rule in rest)

    def test_filter(self):
        rules = [make_rule(sport=(i, i), rule_id=i, priority=i) for i in range(10)]
        rs = RuleSet(rules, FIVE_TUPLE)
        even = rs.filter(lambda r: r.ranges[2][0] % 2 == 0)
        assert len(even) == 5

    def test_by_id(self):
        rules = [make_rule(rule_id=i, priority=i) for i in range(5)]
        rs = RuleSet(rules, FIVE_TUPLE)
        assert set(rs.by_id()) == set(range(5))

    def test_sample_packets_match_some_rule(self):
        rules = [make_rule(src=(i * 100, i * 100 + 50), rule_id=i, priority=i) for i in range(20)]
        rs = RuleSet(rules, FIVE_TUPLE)
        for packet in rs.sample_packets(50, seed=1):
            assert rs.match(packet) is not None

    def test_field_diversity(self):
        rules = [make_rule(src=(i, i), dst=(0, 0), rule_id=i, priority=i) for i in range(10)]
        rs = RuleSet(rules, FIVE_TUPLE)
        assert rs.field_diversity(0) == 1.0
        assert rs.field_diversity(1) == pytest.approx(0.1)

    def test_wildcard_fraction(self):
        rules = [make_rule(rule_id=0), make_rule(src=(0, 10), rule_id=1, priority=1)]
        rs = RuleSet(rules, FIVE_TUPLE)
        assert rs.wildcard_fraction(0) == pytest.approx(0.5)

    def test_stats_keys(self):
        rs = RuleSet([make_rule()], FIVE_TUPLE, name="tiny")
        stats = rs.stats()
        assert stats["name"] == "tiny"
        assert stats["num_rules"] == 1
        assert set(stats["diversity"]) == set(FIVE_TUPLE.names)

    def test_single_field_schema(self):
        rules = [Rule(((0, 100),), priority=0, rule_id=0)]
        rs = RuleSet(rules, FORWARDING)
        assert rs.match((50,)).rule_id == 0
        assert rs.match((200,)) is None
