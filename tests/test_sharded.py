"""Tests for the sharded serving layer: partitioning, fan-out, updates,
background retraining and persistence."""

import random

import pytest

from repro.core.isets import partition_shards
from repro.engine import ClassificationEngine
from repro.rules.rule import Rule
from repro.serving import (
    DEFAULT_RETRAIN_THRESHOLD,
    ShardedEngine,
    partition_for_shards,
)

from _helpers import fast_nm_config


def _key(rule):
    return None if rule is None else (rule.priority, rule.rule_id)


def _keys(results):
    return [_key(result.rule) for result in results]


def _wildcard(schema, priority, rule_id):
    return Rule(
        tuple(spec.full_range() for spec in schema),
        priority=priority,
        action="drop",
        rule_id=rule_id,
    )


class TestPartitioning:
    @pytest.mark.parametrize("strategy", ["auto", "isets", "round-robin"])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_disjoint_cover(self, acl_small, strategy, shards):
        parts = partition_for_shards(acl_small, shards, strategy)
        assert len(parts) == shards
        ids = [rule.rule_id for part in parts for rule in part]
        assert sorted(ids) == sorted(rule.rule_id for rule in acl_small)
        assert all(len(part) > 0 for part in parts)

    def test_iset_chunking_balances_shards(self, acl_small):
        sizes = [len(part) for part in partition_shards(acl_small, 4)]
        target = -(-len(acl_small) // 4)
        # Chunked iSets keep every shard within 2x of the ideal share.
        assert max(sizes) <= 2 * target

    def test_rejects_bad_inputs(self, acl_small):
        with pytest.raises(ValueError, match="unknown partitioner"):
            partition_for_shards(acl_small, 2, "bogus")
        with pytest.raises(ValueError):
            partition_for_shards(acl_small, 0)
        with pytest.raises(ValueError, match="cannot split"):
            partition_for_shards(acl_small, len(acl_small) + 1)


class TestServing:
    @pytest.fixture(scope="class")
    def unsharded(self, acl_small):
        return ClassificationEngine.build(acl_small, classifier="tm")

    @pytest.fixture(scope="class")
    def sharded(self, acl_small):
        with ShardedEngine.build(acl_small, shards=3, classifier="tm") as engine:
            yield engine

    def test_empty_batch(self, sharded):
        assert sharded.classify_batch([]) == []

    def test_thread_and_serial_executors_agree(self, acl_small, unsharded):
        packets = acl_small.sample_packets(100, seed=51)
        expected = _keys(unsharded.classify_batch(packets))
        for executor in ("serial", "thread"):
            with ShardedEngine.build(
                acl_small, shards=3, classifier="tm", executor=executor
            ) as engine:
                assert _keys(engine.classify_batch(packets)) == expected

    def test_process_executor_agrees(self, acl_small, unsharded):
        packets = acl_small.sample_packets(40, seed=52)
        expected = _keys(unsharded.classify_batch(packets))
        with ShardedEngine.build(
            acl_small, shards=2, classifier="linear", executor="process"
        ) as engine:
            assert _keys(engine.classify_batch(packets)) == expected

    def test_merged_trace_sums_shard_work(self, sharded, acl_small):
        packet = acl_small.sample_packets(1, seed=53)[0]
        per_shard = sharded.classify_batch_per_shard([packet])
        merged = sharded.classify_traced(packet)
        assert merged.trace.total_accesses == sum(
            results[0].trace.total_accesses for results in per_shard
        )
        assert merged.trace.total_accesses > 0

    def test_serve_batches_cover_all_packets(self, sharded, acl_small):
        packets = acl_small.sample_packets(70, seed=54)
        reports = list(sharded.serve(packets, batch_size=32))
        assert [len(report) for report in reports] == [32, 32, 6]
        assert sum(report.matched for report in reports) == 70
        with pytest.raises(ValueError):
            sharded.serve([], batch_size=0)

    def test_verify_against_linear(self, sharded, acl_small):
        assert sharded.verify(acl_small.sample_packets(50, seed=55)) == 50

    def test_statistics_and_footprint(self, sharded):
        stats = sharded.statistics()
        assert stats["num_shards"] == 3
        assert len(stats["shards"]) == 3
        assert stats["num_rules"] == sum(s["live_rules"] for s in stats["shards"])
        assert sharded.memory_footprint().total_bytes > 0

    def test_rejects_bad_config(self, acl_small):
        with pytest.raises(ValueError, match="unknown executor"):
            ShardedEngine.build(acl_small, shards=2, classifier="tm", executor="gpu")
        with pytest.raises(ValueError, match="at least one shard"):
            ShardedEngine([])

    def test_rejects_duplicate_rule_ids(self, acl_small):
        engine = ClassificationEngine.build(acl_small, classifier="linear")
        with pytest.raises(ValueError, match="more than one shard"):
            ShardedEngine([engine, engine])


class TestUpdates:
    @pytest.fixture()
    def engine(self, acl_small):
        with ShardedEngine.build(
            acl_small,
            shards=2,
            classifier="tm",
            executor="serial",
            background_retraining=False,
            retrain_threshold=0.95,
        ) as engine:
            yield engine

    def test_insert_wins_immediately(self, engine, acl_small):
        packet = acl_small.sample_packets(1, seed=61)[0]
        engine.insert(_wildcard(acl_small.schema, priority=-1, rule_id=70_000))
        assert engine.classify(packet).rule_id == 70_000

    def test_remove_masks_immediately(self, engine, acl_small):
        packet = acl_small.sample_packets(1, seed=62)[0]
        victim = engine.classify(packet)
        assert engine.remove(victim.rule_id)
        follow_up = engine.classify(packet)
        assert follow_up is None or follow_up.rule_id != victim.rule_id
        assert not engine.remove(victim.rule_id)  # already gone

    def test_modify_replaces_on_owning_shard(self, engine, acl_small):
        packet = acl_small.sample_packets(1, seed=63)[0]
        victim = engine.classify(packet)
        owner = engine.updates.owner_of(victim.rule_id)
        modified = Rule(
            tuple(spec.full_range() for spec in acl_small.schema),
            priority=victim.priority,
            action="modified",
            rule_id=victim.rule_id,
        )
        engine.insert(modified)
        assert engine.updates.owner_of(victim.rule_id) == owner
        hit = engine.classify(packet)
        assert hit.rule_id == victim.rule_id
        assert hit.action == "modified"

    def test_insert_goes_to_smallest_shard(self, engine, acl_small):
        sizes_before = engine.shard_sizes()
        smallest = sizes_before.index(min(sizes_before))
        engine.insert(_wildcard(acl_small.schema, priority=10_000, rule_id=70_001))
        assert engine.updates.owner_of(70_001) == smallest
        assert engine.shard_sizes()[smallest] == sizes_before[smallest] + 1

    def test_differential_after_random_churn(self, engine, acl_small):
        rng = random.Random(64)
        next_id = 80_000
        for _ in range(30):
            if rng.random() < 0.5:
                template = rng.choice(acl_small.rules)
                engine.insert(
                    Rule(
                        template.ranges,
                        priority=rng.randint(0, 1000),
                        action="churn",
                        rule_id=next_id,
                    )
                )
                next_id += 1
            else:
                victim = rng.choice(acl_small.rules)
                engine.remove(victim.rule_id)
        oracle = engine.ruleset  # live rules; RuleSet.match is ground truth
        for packet in acl_small.sample_packets(80, seed=65):
            assert _key(engine.classify(packet)) == _key(oracle.match(packet))


class TestRetraining:
    def test_inline_retrain_folds_overlay(self, acl_small):
        with ShardedEngine.build(
            acl_small,
            shards=2,
            classifier="linear",
            executor="serial",
            background_retraining=False,
            retrain_threshold=0.05,
        ) as engine:
            for index in range(40):
                template = acl_small.rules[index]
                engine.insert(
                    Rule(template.ranges, template.priority, "new", 90_000 + index)
                )
            assert engine.updates.retrains_triggered > 0
            stats = engine.statistics()
            assert sum(s["retrain_count"] for s in stats["shards"]) > 0
            # Retraining folded the overlay below the trigger threshold.
            for shard_stats in stats["shards"]:
                assert shard_stats["remainder_fraction"] < 1.0
            assert engine.verify(acl_small.sample_packets(60, seed=71)) == 60

    def test_background_retrain_swaps_atomically(self, acl_small):
        with ShardedEngine.build(
            acl_small,
            shards=2,
            classifier="linear",
            executor="serial",
            background_retraining=True,
            retrain_threshold=0.05,
        ) as engine:
            for index in range(30):
                template = acl_small.rules[index]
                engine.insert(
                    Rule(template.ranges, template.priority, "new", 91_000 + index)
                )
            engine.updates.join()
            assert engine.updates.retrains_triggered > 0
            assert sum(s.retrain_count for s in engine._shards) > 0
            assert engine.verify(acl_small.sample_packets(60, seed=72)) == 60

    def test_default_threshold_matches_paper(self):
        assert DEFAULT_RETRAIN_THRESHOLD == 0.5

    def test_retrain_preserves_remainder_build_params(self, acl_small):
        # A NuevoMatch shard's rebuilt remainder must keep the operator's
        # parameters (e.g. a non-default binth), not revert to defaults.
        with ShardedEngine.build(
            acl_small,
            shards=2,
            classifier="nm",
            executor="serial",
            background_retraining=False,
            retrain_threshold=0.05,
            remainder_classifier="hicuts",
            config=fast_nm_config(),
            binth=4,
        ) as engine:
            for index in range(30):
                template = acl_small.rules[index]
                engine.insert(
                    Rule(template.ranges, template.priority, "new", 92_000 + index)
                )
            assert engine.updates.retrains_triggered > 0
            for shard in engine._shards:
                if shard.retrain_count:
                    assert shard.engine.classifier.remainder.build_params == {
                        "binth": 4
                    }


class TestProcessPoolTeardown:
    """Regressions for the process-pool resync on engine swap: a retrain
    mid-load must rotate the pool without leaking workers, even when a pool
    worker died before the swap."""

    def _churn_engine(self, acl_small):
        return ShardedEngine.build(
            acl_small,
            shards=2,
            classifier="linear",
            executor="process",
            background_retraining=False,
            retrain_threshold=0.05,
        )

    def test_swap_under_concurrent_classify_load(self, acl_small):
        import threading

        with self._churn_engine(acl_small) as engine:
            packets = acl_small.sample_packets(20, seed=101)
            engine.classify_batch(packets)  # warm the pool
            errors: list[BaseException] = []
            stop = threading.Event()

            def hammer():
                while not stop.is_set():
                    try:
                        assert len(engine.classify_batch(packets)) == len(packets)
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)
                        return

            thread = threading.Thread(target=hammer)
            thread.start()
            try:
                # Each retrain bumps a shard generation → pool resync races
                # the classify thread.
                for index in range(40):
                    template = acl_small.rules[index]
                    engine.insert(
                        Rule(template.ranges, template.priority, "new", 96_000 + index)
                    )
            finally:
                stop.set()
                thread.join(timeout=60.0)
            assert not errors
            assert engine.updates.retrains_triggered > 0
            assert engine.verify(acl_small.sample_packets(40, seed=102)) == 40

    def test_dead_worker_does_not_leak_pool_on_swap(self, acl_small):
        import multiprocessing

        with self._churn_engine(acl_small) as engine:
            packets = acl_small.sample_packets(20, seed=103)
            expected = _keys(engine.classify_batch(packets))
            pool = engine._process_pool
            victim = next(iter(pool._processes.values()))
            victim.kill()
            victim.join()
            # Trigger a retrain (generation bump) so the next classify must
            # retire the broken pool and build a fresh one.
            for index in range(40):
                template = acl_small.rules[index]
                engine.insert(
                    Rule(template.ranges, template.priority, "new", 97_000 + index)
                )
            assert engine.updates.retrains_triggered > 0
            # Duplicates lose the (priority, rule_id) tie-break, so winners
            # are unchanged — and they came from a rebuilt pool.
            assert _keys(engine.classify_batch(packets)) == expected
            assert engine._process_pool is not pool
            assert engine.verify(acl_small.sample_packets(30, seed=104)) == 30
        # close() reaped both the broken pool's survivors and the fresh pool.
        for child in multiprocessing.active_children():
            assert not child.name.startswith("shard-worker")
        assert engine._process_pool is None


class TestPersistence:
    def test_round_trip_with_overlay(self, acl_small, tmp_path):
        with ShardedEngine.build(
            acl_small,
            shards=3,
            classifier="tm",
            executor="serial",
            background_retraining=False,
            retrain_threshold=0.95,
        ) as engine:
            engine.insert(_wildcard(acl_small.schema, priority=-1, rule_id=95_000))
            victim = acl_small.rules[10]
            assert engine.remove(victim.rule_id)
            path = tmp_path / "sharded.json.gz"
            engine.save(path)
            packets = acl_small.sample_packets(80, seed=81)
            expected = _keys(engine.classify_batch(packets))
        with ShardedEngine.load(path, executor="serial") as restored:
            assert restored.num_shards == 3
            assert _keys(restored.classify_batch(packets)) == expected
            # Overlay state survives: the insert is live, the victim is not.
            assert restored.updates.owner_of(95_000) is not None
            assert restored.updates.owner_of(victim.rule_id) is None

    def test_load_rejects_future_format(self, acl_small, tmp_path):
        import json

        with ShardedEngine.build(
            acl_small, shards=2, classifier="linear", executor="serial"
        ) as engine:
            path = tmp_path / "sharded.json"
            engine.save(path)
        document = json.loads(path.read_text())
        document["format"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="unsupported sharded-engine file format"):
            ShardedEngine.load(path)

    def test_load_rejects_plain_engine_file(self, acl_small, tmp_path):
        engine = ClassificationEngine.build(acl_small, classifier="linear")
        path = tmp_path / "plain.json"
        engine.save(path)
        with pytest.raises(ValueError, match="not a sharded-engine snapshot"):
            ShardedEngine.load(path)

    def test_engine_load_rejects_sharded_file(self, acl_small, tmp_path):
        with ShardedEngine.build(
            acl_small, shards=2, classifier="linear", executor="serial"
        ) as engine:
            path = tmp_path / "sharded.json"
            engine.save(path)
        with pytest.raises(ValueError):
            ClassificationEngine.load(path)
