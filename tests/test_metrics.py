"""Tests for the rule-set diversity and centrality metrics (§3.7)."""

import pytest

from repro.core.metrics import (
    field_diversity,
    partition_quality,
    ruleset_centrality,
    ruleset_diversity,
)
from repro.rules import generate_low_diversity
from repro.rules.fields import FIVE_TUPLE
from repro.rules.rule import Rule, RuleSet


def exact_rule(values, rule_id):
    return Rule(tuple((v, v) for v in values), priority=rule_id, rule_id=rule_id)


class TestDiversity:
    def test_unique_values_give_diversity_one(self):
        rules = [exact_rule((i, 0, 0, 0, 0), i) for i in range(10)]
        rs = RuleSet(rules, FIVE_TUPLE)
        assert field_diversity(rs, 0) == 1.0
        assert field_diversity(rs, 1) == pytest.approx(0.1)

    def test_diversity_dict_keys(self, acl_small):
        diversity = ruleset_diversity(acl_small)
        assert set(diversity) == set(acl_small.schema.names)
        assert all(0.0 < v <= 1.0 for v in diversity.values())

    def test_low_diversity_generator_is_low(self):
        rs = generate_low_diversity(400, values_per_field=8, seed=0)
        assert max(ruleset_diversity(rs).values()) <= 8 / 400 + 1e-9


class TestCentrality:
    def test_disjoint_rules_have_centrality_one(self):
        rules = [exact_rule((i, i, i, i, 0), i) for i in range(20)]
        rs = RuleSet(rules, FIVE_TUPLE)
        assert ruleset_centrality(rs) == 1

    def test_identical_rules_have_full_centrality(self):
        rules = [
            Rule(((0, 100), (0, 100), (0, 100), (0, 100), (0, 100)), priority=i, rule_id=i)
            for i in range(15)
        ]
        rs = RuleSet(rules, FIVE_TUPLE)
        assert ruleset_centrality(rs) == 15

    def test_empty_ruleset(self):
        assert ruleset_centrality(RuleSet([], FIVE_TUPLE)) == 0

    def test_centrality_lower_bounds_isets_needed(self, fw_small):
        # §3.7: centrality is a lower bound on the iSets needed for full
        # coverage; with unlimited iSets the partition must produce at least
        # that many (or leave rules uncovered, which partition_isets never does
        # without a coverage threshold).
        from repro.core.isets import partition_isets

        centrality = ruleset_centrality(fw_small)
        partition = partition_isets(fw_small)
        assert len(partition.isets) >= centrality or partition.coverage < 1.0


class TestPartitionQuality:
    def test_report_fields(self, acl_small):
        report = partition_quality(acl_small, num_isets=3)
        assert set(report) >= {
            "diversity",
            "max_diversity",
            "centrality_lower_bound",
            "cumulative_coverage",
            "remainder_fraction",
        }
        assert 0.0 <= report["remainder_fraction"] <= 1.0
        assert len(report["cumulative_coverage"]) <= 3
