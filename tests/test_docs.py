"""Documentation-system guards that run without the docs toolchain.

``mkdocs build --strict`` in CI is the authoritative check (broken
cross-references fail the build); these tests catch the same classes of rot
in the plain test run, where mkdocs may not be installed:

* every page in the mkdocs nav exists;
* every ``::: module`` directive on the API pages names an importable module;
* every ``repro`` module has a module docstring (mkdocstrings renders them —
  an undocumented module is an empty reference page);
* relative links between the checked-in markdown files resolve.
"""

from __future__ import annotations

import importlib
import pkgutil
import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"


def _nav_pages() -> list[str]:
    """Page paths referenced by mkdocs.yml's nav (regex; no yaml dependency)."""
    pages = re.findall(r":\s*([\w./-]+\.md)\s*$", MKDOCS_YML.read_text(), re.M)
    assert pages, "mkdocs.yml nav parsed to zero pages"
    return pages


def test_mkdocs_config_exists_and_is_strict():
    text = MKDOCS_YML.read_text()
    assert "strict: true" in text
    assert "mkdocstrings" in text


def test_nav_pages_exist():
    missing = [page for page in _nav_pages() if not (DOCS / page).is_file()]
    assert not missing, f"mkdocs nav references missing pages: {missing}"


def test_required_docs_exist():
    for required in ("ARCHITECTURE.md", "PROTOCOL.md", "training-pipeline.md",
                     "serving.md", "index.md"):
        assert (DOCS / required).is_file(), f"docs/{required} is missing"


def test_api_directives_import():
    failures = []
    for page in sorted((DOCS / "api").glob("*.md")):
        for module_name in re.findall(r"^::: ([\w.]+)$", page.read_text(), re.M):
            try:
                importlib.import_module(module_name)
            except Exception as exc:  # noqa: BLE001 - collected for the report
                failures.append(f"{page.name}: {module_name}: {exc}")
    assert not failures, "API pages reference unimportable modules:\n" + "\n".join(failures)


def test_every_module_has_a_docstring():
    undocumented = []
    prefix = repro.__name__ + "."
    for info in pkgutil.walk_packages(repro.__path__, prefix):
        module = importlib.import_module(info.name)
        doc = (module.__doc__ or "").strip()
        if len(doc) < 20:
            undocumented.append(info.name)
    assert not undocumented, f"modules without a real docstring: {undocumented}"


@pytest.mark.parametrize("source", ["README.md", "docs"])
def test_relative_markdown_links_resolve(source):
    roots = ([REPO_ROOT / source] if source.endswith(".md")
             else sorted((REPO_ROOT / source).rglob("*.md")))
    broken = []
    for path in roots:
        for target in re.findall(r"\]\(([^)#?]+?)(?:#[^)]*)?\)", path.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                broken.append(f"{path.relative_to(REPO_ROOT)} -> {target}")
    assert not broken, "broken relative links:\n" + "\n".join(broken)


def test_readme_bench_table_markers_present():
    text = (REPO_ROOT / "README.md").read_text()
    assert "<!-- BENCH_TABLE_START -->" in text
    assert "<!-- BENCH_TABLE_END -->" in text
    assert "scripts/bench_table.py" in text


def test_bench_table_script_renders():
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "bench_table", REPO_ROOT / "scripts" / "bench_table.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    table = module.build_table()
    assert isinstance(table, str) and table
