"""Tests for RQ-RMI / NuevoMatch configuration (Table 4)."""

from repro.core.config import (
    NuevoMatchConfig,
    RQRMIConfig,
    TABLE4_CONFIGS,
    stage_widths_for_rules,
)


class TestTable4:
    def test_boundaries_match_paper(self):
        assert stage_widths_for_rules(500) == [1, 4]
        assert stage_widths_for_rules(5_000) == [1, 4, 16]
        assert stage_widths_for_rules(50_000) == [1, 4, 128]
        assert stage_widths_for_rules(400_000) == [1, 8, 256]
        assert stage_widths_for_rules(2_000_000) == [1, 8, 512]

    def test_all_configs_start_with_width_one(self):
        for _max_rules, _stages, widths in TABLE4_CONFIGS:
            assert widths[0] == 1

    def test_stage_count_matches_table(self):
        for max_rules, stages, widths in TABLE4_CONFIGS:
            assert len(widths) == stages


class TestRQRMIConfig:
    def test_defaults_follow_paper(self):
        config = RQRMIConfig()
        assert config.hidden_units == 8
        assert config.error_threshold == 64

    def test_explicit_widths_override_table(self):
        config = RQRMIConfig(stage_widths=[1, 2])
        assert config.widths_for(1_000_000) == [1, 2]

    def test_widths_for_uses_table_when_unset(self):
        config = RQRMIConfig()
        assert config.widths_for(5_000) == [1, 4, 16]


class TestNuevoMatchConfig:
    def test_defaults(self):
        config = NuevoMatchConfig()
        assert config.min_iset_coverage == 0.25
        assert config.early_termination is True
        assert isinstance(config.rqrmi, RQRMIConfig)

    def test_independent_rqrmi_instances(self):
        a = NuevoMatchConfig()
        b = NuevoMatchConfig()
        a.rqrmi.error_threshold = 128
        assert b.rqrmi.error_threshold == 64
