"""Performance smoke test: flow-cached replay of a skewed trace.

Marked ``perf`` and deselected from the default (tier-1) run via
``addopts = -m "not perf"`` in ``pyproject.toml``; the dedicated CI perf job
runs ``pytest -m perf``.  The assertions are deliberately loose — they pin
that the cached hot path works at all under the paper's highest-skew setting
(zipf-95, §5.1.1), not a specific machine's numbers.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.engine import ClassificationEngine
from repro.rules import generate_classbench
from repro.serving import CachedEngine
from repro.traffic import generate_zipf_trace
from repro.workloads import run_scenario

pytestmark = pytest.mark.perf


def test_zipf95_replay_hits_cache_and_moves_packets():
    rules = generate_classbench("acl1", 1000, seed=7)
    report = run_scenario(
        rules,
        trace_kind="zipf",
        num_packets=8000,
        skew=95,
        shards=1,
        cache_size=2048,
        classifier="tm",
        batch_size=128,
        seed=9,
    )
    assert report.packets == 8000
    # The paper's zipf-95 trace concentrates >95% of traffic in 3% of flows;
    # a 2K-entry exact-match cache must absorb well over half the packets.
    assert report.hit_rate > 0.5, f"hit rate {report.hit_rate:.1%}"
    assert report.throughput_pps > 0
    assert report.latency_p99_ns >= report.latency_p50_ns > 0


def test_cached_sharded_replay_beats_uncached_in_the_model():
    rules = generate_classbench("acl1", 2000, seed=7)
    cached = run_scenario(
        rules, trace_kind="zipf", num_packets=6000, skew=95,
        shards=2, cache_size=4096, classifier="tm", executor="serial", seed=9,
    )
    uncached = run_scenario(
        rules, trace_kind="zipf", num_packets=6000, skew=95,
        shards=2, cache_size=0, classifier="tm", executor="serial", seed=9,
    )
    assert cached.modelled_latency_ns < uncached.modelled_latency_ns
    assert cached.matched == uncached.matched


def _best_pps(run, block, batch_size: int, repeats: int = 3) -> float:
    """Best-of-N wall-clock throughput of ``run`` over ``block`` batches."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for chunk_start in range(0, len(block), batch_size):
            run(block[chunk_start : chunk_start + batch_size])
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, len(block) / elapsed)
    return best


def test_columnar_path_beats_object_path_5x():
    """The zero-copy floor: on a warm flow cache, ``classify_block`` (arrays
    in, arrays out, no per-packet objects) must run at least 5x faster than
    ``classify_batch`` over the *same columnar batches* — what the object
    path costs is exactly the per-packet materialization the block path
    skips."""
    rules = generate_classbench("acl1", 1000, seed=7)
    trace = generate_zipf_trace(rules, 16_000, top3_share=95, seed=9)
    block = np.array([tuple(p) for p in trace], dtype=np.uint64)
    batch_size = 512
    with CachedEngine(
        ClassificationEngine.build(rules, classifier="tm"), capacity=1 << 14
    ) as cached:
        cached.classify_block(block)  # warm: fill the cache once
        columnar_pps = _best_pps(cached.classify_block, block, batch_size)
        object_pps = _best_pps(cached.classify_batch, block, batch_size)
    assert columnar_pps >= 5.0 * object_pps, (
        f"columnar path {columnar_pps:.0f} pps is below 5x the object path "
        f"{object_pps:.0f} pps"
    )
